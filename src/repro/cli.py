"""Unified command-line interface.

``python -m repro.cli <command>`` (or the installed ``shadow-repro``
script) bundles the common flows:

* ``run``       -- simulate a workload under a chosen mitigation
* ``attack``    -- drive a Row Hammer pattern and report flips
* ``security``  -- evaluate the Appendix XI bounds for a configuration
* ``experiment``-- run a paper table/figure driver by name
* ``templating``-- templating campaign (static vs SHADOW)
* ``bench``     -- pinned scheduler benchmarks (throughput + profiling)
* ``stats``     -- run a workload with metrics on and print the summary
* ``trace``     -- export a run as a Chrome/Perfetto or JSONL trace
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.security import SecurityAnalysis, SecurityParams
from repro.rowhammer.templating import TemplatingCampaign
from repro.sim import System, SystemConfig
from repro.spec import scheme_spec, workload_spec
from repro.spec.registry import SCHEMES, WORKLOADS, UnknownNameError
from repro.utils.logsetup import setup_logging
from repro.version import __version__


def cli_scheme_names() -> List[str]:
    """Registered schemes the CLI can build from ``--hcnt`` alone."""
    return sorted(name for name in SCHEMES.names()
                  if SCHEMES.accepts(name, "hcnt"))


def make_scheme(name: str, hcnt: int):
    """Instantiate a mitigation by registry name at a threshold.

    Builds through the central scheme registry -- the CLI constructs a
    scheme exactly as a cached experiment job does -- passing ``hcnt``
    only to factories that take it.
    """
    try:
        if not SCHEMES.accepts(name, "hcnt"):
            raise SystemExit(
                f"scheme {name!r} needs parameters beyond --hcnt; "
                f"runnable schemes: {cli_scheme_names()}")
        params = SCHEMES.buildable_params(name, {"hcnt": hcnt})
        return scheme_spec(name, **params).build()
    except UnknownNameError as exc:
        raise SystemExit(str(exc)) from None


def resolve_profiles(workload: str, threads: int):
    """Map a CLI workload name to the thread profile list.

    ``workload`` is either a registered workload kind buildable from
    ``--threads`` alone (mix-high, mix-blend, stream, ...) or a SPEC
    application name; unknown names get a did-you-mean error.
    """
    try:
        if workload in WORKLOADS and WORKLOADS.accepts(workload,
                                                       "threads"):
            params = WORKLOADS.buildable_params(workload,
                                                {"threads": threads})
            return list(workload_spec(workload, **params).build())
        return list(workload_spec("spec", app=workload,
                                  threads=threads).build())
    except (UnknownNameError, ValueError) as exc:
        raise SystemExit(str(exc)) from None


def _run_spec_file(args) -> int:
    """Run a serialized ExperimentSpec through the generic driver."""
    import json

    from repro.experiments.driver import run_spec
    from repro.experiments.engine import Engine
    from repro.experiments.report import report_failures, save_results
    from repro.spec import ExperimentSpec

    with open(args.spec) as handle:
        spec = ExperimentSpec.from_dict(json.load(handle))
    engine = Engine(jobs=args.jobs, use_cache=not args.no_cache,
                    retries=args.retries, job_timeout=args.job_timeout,
                    keep_going=args.keep_going)
    results = run_spec(spec, engine=engine)
    print(f"experiment={spec.name} fidelity={spec.fidelity} "
          f"points={len(spec.points)}")
    report_failures(engine)
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"{spec.name}_{spec.fidelity}", results))
    return 1 if engine.failures else 0


def cmd_run(args) -> int:
    """Handle ``shadow-repro run``."""
    if args.spec:
        return _run_spec_file(args)
    profiles = resolve_profiles(args.workload, args.threads)
    mitigation = make_scheme(args.scheme, args.hcnt)
    config = SystemConfig(requests_per_thread=args.requests,
                          seed=args.seed)
    result = System(profiles, mitigation, config=config).run()
    print(f"workload={args.workload} threads={args.threads} "
          f"scheme={result.mitigation_name}")
    print(f"cycles={result.cycles} requests={result.requests_issued} "
          f"acts={result.stats.acts} row_hits={result.stats.row_hits} "
          f"refreshes={result.refreshes} rfms={result.rfms}")
    return 0


def cmd_stats(args) -> int:
    """Handle ``shadow-repro stats``: a run with full metrics on."""
    from repro.obs import Observability

    profiles = resolve_profiles(args.workload, args.threads)
    mitigation = make_scheme(args.scheme, args.hcnt)
    config = SystemConfig(requests_per_thread=args.requests,
                          seed=args.seed)
    obs = Observability(metrics=True,
                        sample_interval=args.sample_interval)
    result = System(profiles, mitigation, config=config, obs=obs).run()
    obs.close()
    s = obs.summary
    cache = s["candidate_cache"]
    print(f"workload={args.workload} threads={args.threads} "
          f"scheme={result.mitigation_name} cycles={result.cycles}")
    print(f"row-hit rate: {s['row_hit_rate']:.2%} "
          f"({s['row_hits']} hits / {s['row_misses']} misses / "
          f"{s['row_conflicts']} conflicts)")
    print(f"commands: acts={s['acts']} reads={s['reads']} "
          f"writes={s['writes']} refreshes={s['refreshes']} "
          f"rfms={s['rfms']}")
    print(f"candidate cache: {cache['hits']}/{cache['evals']} hits "
          f"({cache['hit_rate']:.2%}), {cache['recomputes']} recomputes, "
          f"{cache['translation_invalidations']} translation "
          f"invalidations, {cache['reindexes']} reindexes")
    print(f"raa: {s['raa_crossings']} threshold crossings", end="")
    if "raa" in s:
        print(f", raaimt={s['raa']['raaimt']} "
              f"rfms_issued={s['raa']['rfms_issued']} "
              f"due_banks={s['raa']['due_banks']} "
              f"max_count={s['raa']['max_count']}")
    else:
        print(" (no RFM interface for this scheme)")
    for ch, entry in enumerate(s["channels"]):
        print(f"channel {ch}: commands={entry['commands']} "
              f"data_busy={entry['data_busy_cycles']} "
              f"blocked={entry['blocked_cycles']}")
    if args.sample_interval:
        print(f"snapshots: {s['snapshots']} "
              f"(every {args.sample_interval} cycles)")
    if args.json:
        import json as _json
        print(_json.dumps(s, indent=2, sort_keys=True))
    return 0


def cmd_trace(args) -> int:
    """Handle ``shadow-repro trace``: export a run's event trace."""
    from repro.obs import Observability

    profiles = resolve_profiles(args.workload, args.threads)
    mitigation = make_scheme(args.scheme, args.hcnt)
    config = SystemConfig(requests_per_thread=args.requests,
                          seed=args.seed)
    if args.format == "chrome":
        obs = Observability.to_chrome(
            args.out, sample_interval=args.sample_interval)
    else:
        obs = Observability.to_jsonl(
            args.out, sample_interval=args.sample_interval)
    result = System(profiles, mitigation, config=config, obs=obs).run()
    obs.close()
    print(f"workload={args.workload} scheme={result.mitigation_name} "
          f"cycles={result.cycles}")
    print(f"wrote {obs.sink.events_written} events to {args.out} "
          f"({args.format})")
    if args.format == "chrome":
        print("open in ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_security(args) -> int:
    """Handle ``shadow-repro security``."""
    from repro.analysis.security import SECURITY_MODELS

    model = SECURITY_MODELS.resolve(args.scheme)
    r = model(args.hcnt, raaimt=args.raaimt)
    raaimt = int(r.get("raaimt", args.raaimt or 0))
    print(f"{args.scheme}: Hcnt={args.hcnt} RAAIMT={raaimt}: "
          f"P(bit-flip per rank-year) = {r['overall']:.3e}")
    for key in sorted(r):
        if key in ("overall", "raaimt"):
            continue
        print(f"  {key}: {r[key]:.3e}")
    print("secure (<1%/rank-year):", r["overall"] < 0.01)
    return 0


def cmd_attack(args) -> int:
    """Handle ``shadow-repro attack`` (exit 1 on a bit-flip)."""
    from repro.analysis.montecarlo import simulate_attack
    from repro.dram.subarray import SubarrayLayout
    from repro.rowhammer.adversary import (
        ScenarioIAttacker, ScenarioIIAttacker)
    from repro.utils.rng import SystemRng

    layout = SubarrayLayout(subarrays_per_bank=2,
                            rows_per_subarray=args.rows)
    if args.scenario == 1:
        attacker = ScenarioIAttacker(layout, 0, SystemRng(args.seed))
    else:
        attacker = ScenarioIIAttacker(layout, 0, args.aggressors,
                                      SystemRng(args.seed))
    result = simulate_attack(attacker, layout, hcnt=args.hcnt,
                             raaimt=args.raaimt, intervals=args.intervals,
                             shuffle=not args.no_shuffle)
    print(f"scenario={args.scenario} hcnt={args.hcnt} "
          f"raaimt={args.raaimt} shuffle={not args.no_shuffle}")
    print(f"flipped={result.flipped} acts={result.total_acts} "
          f"max_disturbance={result.max_disturbance:.1f}")
    return 1 if result.flipped else 0


def cmd_templating(args) -> int:
    """Handle ``shadow-repro templating``."""
    for label, shadow in (("static", False), ("shadow", True)):
        report = TemplatingCampaign(shadow=shadow, seed=args.seed).run()
        print(f"{label}: templates={report.templates_found} "
              f"reuse_rate={report.reuse_rate:.0%}")
    return 0


def cmd_bench(args) -> int:
    """Handle ``shadow-repro bench`` (exit 1 on a baseline regression)."""
    from repro.bench import (
        BENCH_PROFILES, check_overhead, check_regression, load_report,
        run_bench, run_overhead, write_report)

    names = args.profiles or None
    variant = "quick" if args.quick else "full"

    if args.fault_overhead:
        from repro.bench import run_fault_overhead
        try:
            overhead = run_fault_overhead(names=names, quick=args.quick,
                                          repeats=args.repeats,
                                          retry_over=args.max_fault_overhead)
        except ValueError as exc:
            raise SystemExit(str(exc))
        failures = check_overhead(overhead, args.max_fault_overhead)
        if failures:
            for message in failures:
                print(f"OVERHEAD: {message}", file=sys.stderr)
            return 1
        print(f"fault-injection overhead within "
              f"{args.max_fault_overhead:.0%} on every profile")
        return 0

    if args.overhead:
        try:
            overhead = run_overhead(names=names, quick=args.quick,
                                    repeats=args.repeats,
                                    trace_dir=args.trace_dir,
                                    retry_over=args.max_overhead)
        except ValueError as exc:
            raise SystemExit(str(exc))
        if args.trace_dir:
            print(f"traces written under {args.trace_dir}")
        failures = check_overhead(overhead, args.max_overhead)
        if failures:
            for message in failures:
                print(f"OVERHEAD: {message}", file=sys.stderr)
            return 1
        print(f"instrumentation overhead within {args.max_overhead:.0%} "
              f"on every profile")
        return 0

    obs_factory = None
    if args.obs:
        from repro.obs import Observability
        if args.trace_dir:
            from repro.bench.harness import _trace_obs_factory
            # One factory per profile needs per-name paths; simplest is
            # to run profiles individually below, so fall back to the
            # in-memory sink when benching multiple profiles at once.
            if names is not None and len(names) == 1:
                obs_factory = _trace_obs_factory(args.trace_dir, names[0])
            else:
                raise SystemExit("--trace-dir with --obs needs exactly "
                                 "one profile via --profiles (use "
                                 "--overhead for the full set)")
        else:
            def obs_factory():
                return Observability.in_memory(sample_interval=10_000)

    try:
        results = run_bench(names=names, quick=args.quick,
                            repeats=args.repeats,
                            with_cprofile=args.profile,
                            obs_factory=obs_factory,
                            keep_going=args.keep_going)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.profile:
        for name, entry in results.items():
            if "cprofile_top" not in entry:
                continue
            print(f"-- cProfile top for {name} --")
            for row in entry["cprofile_top"]:
                print(f"  {row['cumtime_s']:>8.3f}s cum "
                      f"{row['tottime_s']:>8.3f}s tot "
                      f"{row['ncalls']:>8}x  {row['function']}")
    if args.out:
        write_report(args.out, variant, results)
        print(f"wrote {variant} results to {args.out}")
    if args.baseline:
        baseline = load_report(args.baseline)
        failures = check_regression(results, baseline, variant,
                                    args.max_regression)
        if failures:
            for message in failures:
                print(f"REGRESSION: {message}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.baseline} "
              f"(threshold {args.max_regression:.0%})")
    errored = sorted(n for n, e in results.items() if "error" in e)
    if errored:
        print(f"bench profiles failed: {', '.join(errored)}",
              file=sys.stderr)
        return 1
    return 0


def cmd_redteam(args) -> int:
    """Handle ``shadow-repro redteam`` (adversary suite x scheme zoo)."""
    from repro.experiments import redteam
    from repro.experiments.engine import Engine
    from repro.experiments.report import report_failures, save_results
    engine = Engine(jobs=args.jobs, use_cache=not args.no_cache,
                    retries=args.retries, job_timeout=args.job_timeout,
                    keep_going=args.keep_going)
    report = redteam.run(args.fidelity, engine=engine, hcnt=args.hcnt,
                         policy=args.policy, seed=args.seed,
                         schemes=args.schemes or None,
                         attacks=args.attacks or None)
    report_failures(engine)
    print(redteam.render(report))
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"redteam_{args.fidelity}", report))
    return 1 if engine.failures else 0


#: Drivers that run on the experiment engine and take its flags.
ENGINE_EXPERIMENTS = frozenset(
    ["fig8", "fig9", "fig10", "fig11", "fig12", "ablations",
     "scheme-matrix", "redteam"])

#: Experiment names whose driver module is not ``repro.experiments.<name>``.
_EXPERIMENT_MODULES = {"scheme-matrix": "matrix"}


def cmd_experiment(args) -> int:
    """Handle ``shadow-repro experiment <name>``."""
    import importlib
    module = importlib.import_module(
        f"repro.experiments.{_EXPERIMENT_MODULES.get(args.name, args.name)}")
    if args.dump_spec:
        import json
        if not hasattr(module, "spec"):
            raise SystemExit(
                f"{args.name} does not define a declarative spec")
        spec = (module.spec(args.fidelity) if args.fidelity
                else module.spec())
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return 0
    argv = [args.fidelity] if args.fidelity else []
    engine_flags_used = (args.jobs != 1 or args.no_cache or args.retries
                         or args.job_timeout is not None or args.keep_going)
    if args.name in ENGINE_EXPERIMENTS:
        if args.jobs != 1:
            argv += ["--jobs", str(args.jobs)]
        if args.no_cache:
            argv.append("--no-cache")
        if args.retries:
            argv += ["--retries", str(args.retries)]
        if args.job_timeout is not None:
            argv += ["--job-timeout", str(args.job_timeout)]
        if args.keep_going:
            argv.append("--keep-going")
    elif engine_flags_used:
        raise SystemExit(f"--jobs/--no-cache/--retries/--job-timeout/"
                         f"--keep-going only apply to "
                         f"{sorted(ENGINE_EXPERIMENTS)}")
    sys.argv = [args.name] + argv
    module.main()
    return 0


def _add_fault_tolerance_flags(parser, scope: str) -> None:
    """The engine's failure-handling knobs, shared by run/experiment."""
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help=f"retry each failing job up to N times with "
                             f"exponential backoff {scope} (default: 0)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help=f"kill any single job running longer than "
                             f"this {scope} (worker pools only)")
    parser.add_argument("--keep-going", action="store_true",
                        help=f"record failed jobs and finish with partial "
                             f"results plus a failure report {scope} "
                             f"(default: fail fast)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="shadow-repro",
        description="SHADOW (HPCA 2023) reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("--log-level", default=None, metavar="LEVEL",
                        choices=["debug", "info", "warning", "error",
                                 "critical"],
                        help="configure stdlib logging at this level")
    sub = parser.add_subparsers(dest="command", required=True)

    scheme_names = cli_scheme_names()

    from repro.analysis.security import SECURITY_MODELS
    security_model_names = SECURITY_MODELS.names()

    run_p = sub.add_parser(
        "run", help="simulate a workload (or a serialized spec)")
    run_p.add_argument("--workload", default="mcf")
    run_p.add_argument("--scheme", default="shadow",
                       choices=scheme_names)
    run_p.add_argument("--hcnt", type=int, default=4096)
    run_p.add_argument("--threads", type=int, default=1)
    run_p.add_argument("--requests", type=int, default=2000)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--spec", metavar="PATH",
                       help="run an ExperimentSpec JSON file through the "
                            "generic driver instead (see 'experiment "
                            "--dump-spec')")
    run_p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for --spec runs")
    run_p.add_argument("--no-cache", action="store_true",
                       help="bypass the result cache for --spec runs")
    _add_fault_tolerance_flags(run_p, "for --spec runs")
    run_p.set_defaults(func=cmd_run)

    stats_p = sub.add_parser(
        "stats", help="simulate with metrics on and print the summary")
    stats_p.add_argument("--workload", default="mcf")
    stats_p.add_argument("--scheme", default="shadow",
                         choices=scheme_names)
    stats_p.add_argument("--hcnt", type=int, default=4096)
    stats_p.add_argument("--threads", type=int, default=1)
    stats_p.add_argument("--requests", type=int, default=2000)
    stats_p.add_argument("--seed", type=int, default=1)
    stats_p.add_argument("--sample-interval", type=int, default=0,
                         metavar="CYCLES",
                         help="periodic snapshots every N cycles "
                              "(default: off)")
    stats_p.add_argument("--json", action="store_true",
                         help="also dump the full summary as JSON")
    stats_p.set_defaults(func=cmd_stats)

    trace_p = sub.add_parser(
        "trace", help="export a run as a Chrome/Perfetto or JSONL trace")
    trace_p.add_argument("--workload", default="mcf")
    trace_p.add_argument("--scheme", default="shadow",
                         choices=scheme_names)
    trace_p.add_argument("--hcnt", type=int, default=4096)
    trace_p.add_argument("--threads", type=int, default=1)
    trace_p.add_argument("--requests", type=int, default=2000)
    trace_p.add_argument("--seed", type=int, default=1)
    trace_p.add_argument("--out", default="shadow-repro.trace.json",
                         metavar="PATH",
                         help="output file (default: "
                              "shadow-repro.trace.json)")
    trace_p.add_argument("--format", default="chrome",
                         choices=["chrome", "jsonl"],
                         help="chrome = ui.perfetto.dev trace-event JSON; "
                              "jsonl = line-per-event stream")
    trace_p.add_argument("--sample-interval", type=int, default=10_000,
                         metavar="CYCLES",
                         help="counter-track snapshots every N cycles "
                              "(0: off; default 10000)")
    trace_p.set_defaults(func=cmd_trace)

    sec_p = sub.add_parser("security", help="per-scheme security bounds")
    sec_p.add_argument("--scheme", default="shadow",
                       choices=security_model_names,
                       help="security model (default: shadow, the "
                            "Appendix XI three-scenario analysis)")
    sec_p.add_argument("--hcnt", type=int, default=4096)
    sec_p.add_argument("--raaimt", type=int, default=None,
                       help="mitigation cadence (default: the scheme's "
                            "own secure derivation for --hcnt)")
    sec_p.set_defaults(func=cmd_security)

    atk_p = sub.add_parser("attack", help="Monte Carlo adversary")
    atk_p.add_argument("--scenario", type=int, choices=(1, 2), default=1)
    atk_p.add_argument("--hcnt", type=int, default=64)
    atk_p.add_argument("--raaimt", type=int, default=16)
    atk_p.add_argument("--rows", type=int, default=32)
    atk_p.add_argument("--aggressors", type=int, default=4)
    atk_p.add_argument("--intervals", type=int, default=200)
    atk_p.add_argument("--seed", type=int, default=1)
    atk_p.add_argument("--no-shuffle", action="store_true")
    atk_p.set_defaults(func=cmd_attack)

    tmpl_p = sub.add_parser("templating", help="templating campaign")
    tmpl_p.add_argument("--seed", type=int, default=1)
    tmpl_p.set_defaults(func=cmd_templating)

    exp_p = sub.add_parser("experiment", help="run a table/figure driver")
    exp_p.add_argument("name", choices=["table2", "table3", "fig8",
                                        "fig9", "fig10", "fig11",
                                        "fig12", "ablations", "extended",
                                        "scheme-matrix", "redteam"])
    exp_p.add_argument("fidelity", nargs="?", choices=["smoke", "full"])
    exp_p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for engine-backed drivers "
                            "(fig8-fig12, ablations)")
    exp_p.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result cache")
    _add_fault_tolerance_flags(exp_p, "for engine-backed drivers")
    exp_p.add_argument("--dump-spec", action="store_true",
                       help="print the driver's ExperimentSpec as JSON "
                            "instead of running it (feed to 'run --spec')")
    exp_p.set_defaults(func=cmd_experiment)

    bench_p = sub.add_parser(
        "bench", help="pinned scheduler benchmarks")
    bench_p.add_argument("--quick", action="store_true",
                         help="shortened CI variant of each profile")
    bench_p.add_argument("--repeats", type=int, default=1, metavar="N",
                         help="take the best wall time of N runs")
    bench_p.add_argument("--profile", action="store_true",
                         help="also report cProfile top functions")
    bench_p.add_argument("--profiles", nargs="*", metavar="NAME",
                         help="subset of profiles (default: all)")
    bench_p.add_argument("--out", metavar="PATH",
                         help="merge results into this report JSON")
    bench_p.add_argument("--baseline", metavar="PATH",
                         help="compare against a committed report")
    bench_p.add_argument("--max-regression", type=float, default=0.30,
                         metavar="FRAC",
                         help="allowed cycles/s drop vs baseline "
                              "(default 0.30)")
    bench_p.add_argument("--keep-going", action="store_true",
                         help="a profile that fails to run is recorded "
                              "as an error entry instead of aborting "
                              "the whole bench sweep")
    bench_p.add_argument("--obs", action="store_true",
                         help="run with full observability on (metrics + "
                              "trace + sampler)")
    bench_p.add_argument("--trace-dir", metavar="DIR",
                         help="write Chrome traces of observability-on "
                              "runs under this directory")
    bench_p.add_argument("--overhead", action="store_true",
                         help="measure instrumentation overhead: run each "
                              "profile off and on, compare wall times")
    bench_p.add_argument("--max-overhead", type=float, default=0.15,
                         metavar="FRAC",
                         help="allowed on-vs-off slowdown with --overhead "
                              "(default 0.15)")
    bench_p.add_argument("--fault-overhead", action="store_true",
                         help="measure fault-injection overhead: run each "
                              "profile with and without an in-loop "
                              "injector, compare wall times")
    bench_p.add_argument("--max-fault-overhead", type=float, default=0.20,
                         metavar="FRAC",
                         help="allowed injector-on slowdown with "
                              "--fault-overhead (default 0.20)")
    bench_p.set_defaults(func=cmd_bench)

    from repro.experiments.redteam import FULL_ATTACKS
    from repro.spec.registry import FAULT_POLICIES

    redteam_p = sub.add_parser(
        "redteam", help="replay the adversary suite against every scheme "
                        "with in-loop fault injection")
    redteam_p.add_argument("fidelity", nargs="?", default="smoke",
                           choices=["smoke", "full"],
                           help="smoke: the none-vs-shadow discrimination "
                                "pair; full: the whole registry zoo "
                                "(default: smoke)")
    redteam_p.add_argument("--hcnt", type=int, default=None,
                           help="hammer-count threshold "
                                "(default: 1024 smoke / 4096 full)")
    redteam_p.add_argument("--policy", default="retire",
                           choices=FAULT_POLICIES.names(),
                           help="degradation policy on detected-"
                                "uncorrectable errors (default: retire)")
    redteam_p.add_argument("--seed", type=int, default=1,
                           help="trace and injection seed (default: 1)")
    redteam_p.add_argument("--schemes", nargs="*", metavar="SCHEME",
                           help="restrict to these schemes")
    redteam_p.add_argument("--attacks", nargs="*", choices=FULL_ATTACKS,
                           metavar="ATTACK",
                           help=f"restrict to these attacks (choices: "
                                f"{', '.join(FULL_ATTACKS)})")
    redteam_p.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="worker processes (default: 1)")
    redteam_p.add_argument("--no-cache", action="store_true",
                           help="bypass the persistent result cache")
    _add_fault_tolerance_flags(redteam_p, "for the attack grid")
    redteam_p.set_defaults(func=cmd_redteam)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level:
        setup_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
