"""Unified command-line interface.

``python -m repro.cli <command>`` (or the installed ``shadow-repro``
script) bundles the common flows:

* ``run``       -- simulate a workload under a chosen mitigation
* ``attack``    -- drive a Row Hammer pattern and report flips
* ``security``  -- evaluate the Appendix XI bounds for a configuration
* ``experiment``-- run a paper table/figure driver by name
* ``templating``-- templating campaign (static vs SHADOW)
* ``bench``     -- pinned scheduler benchmarks (throughput + profiling)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.security import SecurityAnalysis, SecurityParams
from repro.core import Shadow, ShadowConfig
from repro.core.config import secure_raaimt
from repro.mitigations import (
    BlockHammer,
    DoubleRefreshRate,
    NoMitigation,
    Parfm,
    RandomizedRowSwap,
    mithril_area,
    mithril_perf,
)
from repro.rowhammer.templating import TemplatingCampaign
from repro.sim import System, SystemConfig
from repro.workloads import SPEC_PROFILES, mix_blend, mix_high

SCHEMES = {
    "none": NoMitigation,
    "shadow": None,      # built per-hcnt below
    "parfm": None,
    "mithril-perf": None,
    "mithril-area": None,
    "blockhammer": None,
    "rrs": None,
    "drr": DoubleRefreshRate,
}


def make_scheme(name: str, hcnt: int):
    """Instantiate a mitigation by CLI name at a threshold."""
    if name == "none":
        return NoMitigation()
    if name == "shadow":
        return Shadow(ShadowConfig(raaimt=secure_raaimt(hcnt),
                                   rng_kind="system"))
    if name == "parfm":
        return Parfm.for_hcnt(hcnt)
    if name == "mithril-perf":
        return mithril_perf(hcnt)
    if name == "mithril-area":
        return mithril_area(hcnt)
    if name == "blockhammer":
        return BlockHammer.for_hcnt(hcnt)
    if name == "rrs":
        return RandomizedRowSwap.for_hcnt(hcnt)
    if name == "drr":
        return DoubleRefreshRate()
    raise SystemExit(f"unknown scheme {name!r}; choose from "
                     f"{sorted(SCHEMES)}")


def cmd_run(args) -> int:
    """Handle ``shadow-repro run``."""
    if args.workload in SPEC_PROFILES:
        profiles = [SPEC_PROFILES[args.workload]] * args.threads
    elif args.workload == "mix-high":
        profiles = mix_high(args.threads)
    elif args.workload == "mix-blend":
        profiles = mix_blend(args.threads)
    else:
        raise SystemExit(
            f"unknown workload {args.workload!r}; use a SPEC app name, "
            f"'mix-high' or 'mix-blend'")
    mitigation = make_scheme(args.scheme, args.hcnt)
    config = SystemConfig(requests_per_thread=args.requests,
                          seed=args.seed)
    result = System(profiles, mitigation, config=config).run()
    print(f"workload={args.workload} threads={args.threads} "
          f"scheme={result.mitigation_name}")
    print(f"cycles={result.cycles} requests={result.requests_issued} "
          f"acts={result.stats.acts} row_hits={result.stats.row_hits} "
          f"refreshes={result.refreshes} rfms={result.rfms}")
    return 0


def cmd_security(args) -> int:
    """Handle ``shadow-repro security``."""
    analysis = SecurityAnalysis(
        SecurityParams(hcnt=args.hcnt, raaimt=args.raaimt))
    r = analysis.rank_year()
    print(f"Hcnt={args.hcnt} RAAIMT={args.raaimt}: "
          f"P(bit-flip per rank-year) = {r['overall']:.3e}")
    for key in ("scenario1", "scenario2", "scenario3"):
        print(f"  {key}: {r[key]:.3e}")
    print("secure (<1%/rank-year):", r["overall"] < 0.01)
    return 0


def cmd_attack(args) -> int:
    """Handle ``shadow-repro attack`` (exit 1 on a bit-flip)."""
    from repro.analysis.montecarlo import simulate_attack
    from repro.dram.subarray import SubarrayLayout
    from repro.rowhammer.adversary import (
        ScenarioIAttacker, ScenarioIIAttacker)
    from repro.utils.rng import SystemRng

    layout = SubarrayLayout(subarrays_per_bank=2,
                            rows_per_subarray=args.rows)
    if args.scenario == 1:
        attacker = ScenarioIAttacker(layout, 0, SystemRng(args.seed))
    else:
        attacker = ScenarioIIAttacker(layout, 0, args.aggressors,
                                      SystemRng(args.seed))
    result = simulate_attack(attacker, layout, hcnt=args.hcnt,
                             raaimt=args.raaimt, intervals=args.intervals,
                             shuffle=not args.no_shuffle)
    print(f"scenario={args.scenario} hcnt={args.hcnt} "
          f"raaimt={args.raaimt} shuffle={not args.no_shuffle}")
    print(f"flipped={result.flipped} acts={result.total_acts} "
          f"max_disturbance={result.max_disturbance:.1f}")
    return 1 if result.flipped else 0


def cmd_templating(args) -> int:
    """Handle ``shadow-repro templating``."""
    for label, shadow in (("static", False), ("shadow", True)):
        report = TemplatingCampaign(shadow=shadow, seed=args.seed).run()
        print(f"{label}: templates={report.templates_found} "
              f"reuse_rate={report.reuse_rate:.0%}")
    return 0


def cmd_bench(args) -> int:
    """Handle ``shadow-repro bench`` (exit 1 on a baseline regression)."""
    from repro.bench import (
        BENCH_PROFILES, check_regression, load_report, run_bench,
        write_report)

    names = args.profiles or None
    variant = "quick" if args.quick else "full"
    try:
        results = run_bench(names=names, quick=args.quick,
                            repeats=args.repeats,
                            with_cprofile=args.profile)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.profile:
        for name, entry in results.items():
            print(f"-- cProfile top for {name} --")
            for row in entry["cprofile_top"]:
                print(f"  {row['cumtime_s']:>8.3f}s cum "
                      f"{row['tottime_s']:>8.3f}s tot "
                      f"{row['ncalls']:>8}x  {row['function']}")
    if args.out:
        write_report(args.out, variant, results)
        print(f"wrote {variant} results to {args.out}")
    if args.baseline:
        baseline = load_report(args.baseline)
        failures = check_regression(results, baseline, variant,
                                    args.max_regression)
        if failures:
            for message in failures:
                print(f"REGRESSION: {message}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.baseline} "
              f"(threshold {args.max_regression:.0%})")
    return 0


#: Drivers that run on the experiment engine and take its flags.
ENGINE_EXPERIMENTS = frozenset(
    ["fig8", "fig9", "fig10", "fig11", "fig12", "ablations"])


def cmd_experiment(args) -> int:
    """Handle ``shadow-repro experiment <name>``."""
    import importlib
    module = importlib.import_module(f"repro.experiments.{args.name}")
    argv = [args.fidelity] if args.fidelity else []
    if args.name in ENGINE_EXPERIMENTS:
        if args.jobs != 1:
            argv += ["--jobs", str(args.jobs)]
        if args.no_cache:
            argv.append("--no-cache")
    elif args.jobs != 1 or args.no_cache:
        raise SystemExit(f"--jobs/--no-cache only apply to "
                         f"{sorted(ENGINE_EXPERIMENTS)}")
    sys.argv = [args.name] + argv
    module.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="shadow-repro",
        description="SHADOW (HPCA 2023) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate a workload")
    run_p.add_argument("--workload", default="mcf")
    run_p.add_argument("--scheme", default="shadow",
                       choices=sorted(SCHEMES))
    run_p.add_argument("--hcnt", type=int, default=4096)
    run_p.add_argument("--threads", type=int, default=1)
    run_p.add_argument("--requests", type=int, default=2000)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.set_defaults(func=cmd_run)

    sec_p = sub.add_parser("security", help="Appendix XI bounds")
    sec_p.add_argument("--hcnt", type=int, default=4096)
    sec_p.add_argument("--raaimt", type=int, default=64)
    sec_p.set_defaults(func=cmd_security)

    atk_p = sub.add_parser("attack", help="Monte Carlo adversary")
    atk_p.add_argument("--scenario", type=int, choices=(1, 2), default=1)
    atk_p.add_argument("--hcnt", type=int, default=64)
    atk_p.add_argument("--raaimt", type=int, default=16)
    atk_p.add_argument("--rows", type=int, default=32)
    atk_p.add_argument("--aggressors", type=int, default=4)
    atk_p.add_argument("--intervals", type=int, default=200)
    atk_p.add_argument("--seed", type=int, default=1)
    atk_p.add_argument("--no-shuffle", action="store_true")
    atk_p.set_defaults(func=cmd_attack)

    tmpl_p = sub.add_parser("templating", help="templating campaign")
    tmpl_p.add_argument("--seed", type=int, default=1)
    tmpl_p.set_defaults(func=cmd_templating)

    exp_p = sub.add_parser("experiment", help="run a table/figure driver")
    exp_p.add_argument("name", choices=["table2", "table3", "fig8",
                                        "fig9", "fig10", "fig11",
                                        "fig12", "ablations", "extended"])
    exp_p.add_argument("fidelity", nargs="?", choices=["smoke", "full"])
    exp_p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for engine-backed drivers "
                            "(fig8-fig12, ablations)")
    exp_p.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result cache")
    exp_p.set_defaults(func=cmd_experiment)

    bench_p = sub.add_parser(
        "bench", help="pinned scheduler benchmarks")
    bench_p.add_argument("--quick", action="store_true",
                         help="shortened CI variant of each profile")
    bench_p.add_argument("--repeats", type=int, default=1, metavar="N",
                         help="take the best wall time of N runs")
    bench_p.add_argument("--profile", action="store_true",
                         help="also report cProfile top functions")
    bench_p.add_argument("--profiles", nargs="*", metavar="NAME",
                         help="subset of profiles (default: all)")
    bench_p.add_argument("--out", metavar="PATH",
                         help="merge results into this report JSON")
    bench_p.add_argument("--baseline", metavar="PATH",
                         help="compare against a committed report")
    bench_p.add_argument("--max-regression", type=float, default=0.30,
                         metavar="FRAC",
                         help="allowed cycles/s drop vs baseline "
                              "(default 0.30)")
    bench_p.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
