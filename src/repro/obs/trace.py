"""Structured event tracing with pluggable sinks.

The simulator emits three event shapes, all stamped in DRAM cycles:

* **complete** -- a span with a duration: one DRAM command (ACT, PRE,
  RD, WR, REF, RFM) occupying its bank (or rank, for REF) track;
* **instant** -- a point event: mitigation actions (SHADOW shuffles, RRS
  swaps, BlockHammer throttles) and RAA-counter crossings;
* **counter** -- a sampled time series: queue depths, cache hit rates,
  RAA pressure (from :class:`~repro.obs.sampler.SnapshotSampler`).

Tracks are ``(pid, tid)`` pairs: ``pid`` is the channel, ``tid`` a
per-bank (or per-rank) lane, so the Chrome rendering groups commands the
way the hardware parallelism does.

Sinks:

* :class:`MemoryTraceSink` -- in-process list, for tests and quick
  post-run queries;
* :class:`JsonlTraceSink` -- one JSON object per line, cycle-stamped
  (lossless; :func:`read_jsonl` round-trips it);
* :class:`ChromeTraceSink` -- Chrome/Perfetto trace-event JSON
  (``ph``/``ts``/``dur`` in microseconds); load the output in
  ``ui.perfetto.dev`` or ``chrome://tracing``.

A sink is never consulted when tracing is off: every emission site in
the simulator is gated on a single ``is None`` check, so the disabled
path does no work at all.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple


class TraceSink:
    """Base sink: defines the protocol; all hooks default to no-ops.

    All concrete sinks buffer data events as one shared tuple shape,
    ``(ph, pid, tid, name, cat, cycle, dur, args)``, exposed through
    :attr:`raw_buffer`.  Hot emission sites (the memory controller's
    per-command path) append to that list directly -- skipping even the
    bound-method call -- while cold sites (mitigation events, the
    sampler) use the ``complete``/``instant``/``counter`` methods.
    """

    #: Events accepted so far (maintained by the concrete sinks).
    events_written = 0

    @property
    def raw_buffer(self) -> list:
        """The shared data-event tuple buffer (hot sites append here)."""
        raise NotImplementedError

    def set_timebase(self, tck_ns: float) -> None:
        """Learn the cycle length (sinks that report wall time use it)."""

    def declare_process(self, pid: int, name: str) -> None:
        """Name a process track (a channel)."""

    def declare_track(self, pid: int, tid: int, name: str) -> None:
        """Name a thread track (a bank or rank lane)."""

    def complete(self, pid: int, tid: int, name: str, cat: str,
                 cycle: int, dur: int, args: Optional[Dict] = None) -> None:
        raise NotImplementedError

    def instant(self, pid: int, tid: int, name: str, cat: str,
                cycle: int, args: Optional[Dict] = None) -> None:
        raise NotImplementedError

    def counter(self, pid: int, name: str, cycle: int,
                values: Dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; idempotent."""


class MemoryTraceSink(TraceSink):
    """Store events in ``self.events`` (tests, post-run queries).

    The emission path is on the simulator's per-command hot loop, so it
    only appends a plain tuple; the event *dicts* are materialized
    lazily on first access to :attr:`events` (and cached -- repeated
    reads are free until new events arrive).
    """

    def __init__(self):
        self._raw: List[tuple] = []
        self._built: List[Dict] = []

    @property
    def raw_buffer(self) -> list:
        return self._raw

    @property
    def events_written(self) -> int:
        return len(self._raw)

    def complete(self, pid, tid, name, cat, cycle, dur, args=None):
        self._raw.append(("X", pid, tid, name, cat, cycle, dur, args))

    def instant(self, pid, tid, name, cat, cycle, args=None):
        self._raw.append(("i", pid, tid, name, cat, cycle, None, args))

    def counter(self, pid, name, cycle, values):
        self._raw.append(("C", pid, None, name, None, cycle, None,
                          dict(values)))

    @property
    def events(self) -> List[Dict]:
        built = self._built
        for ph, pid, tid, name, cat, cycle, dur, args in \
                self._raw[len(built):]:
            if ph == "X":
                built.append({"ph": "X", "pid": pid, "tid": tid,
                              "name": name, "cat": cat, "cycle": cycle,
                              "dur": dur, "args": args})
            elif ph == "i":
                built.append({"ph": "i", "pid": pid, "tid": tid,
                              "name": name, "cat": cat, "cycle": cycle,
                              "args": args})
            else:
                built.append({"ph": "C", "pid": pid, "name": name,
                              "cycle": cycle, "args": args})
        return built

    def by_phase(self, ph: str) -> List[Dict]:
        return [e for e in self.events if e["ph"] == ph]

    def by_name(self, name: str) -> List[Dict]:
        return [e for e in self.events if e.get("name") == name]


class JsonlTraceSink(TraceSink):
    """One JSON object per line, stamped in raw cycles (lossless).

    Events are buffered as tuples during the run; the JSON encoding and
    the file write happen once, in :meth:`close`.  Metadata lines ("M")
    come first in the file, data events follow in emission order.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._meta: List[Dict] = []
        self._raw: List[tuple] = []
        self._tck_ns: Optional[float] = None
        self._closed = False

    @property
    def raw_buffer(self) -> list:
        return self._raw

    @property
    def events_written(self) -> int:
        return len(self._raw)

    def set_timebase(self, tck_ns: float) -> None:
        self._tck_ns = tck_ns
        self._meta.append({"ph": "M", "name": "timebase",
                           "args": {"tck_ns": tck_ns}})

    def declare_process(self, pid, name):
        self._meta.append({"ph": "M", "name": "process_name", "pid": pid,
                           "args": {"name": name}})

    def declare_track(self, pid, tid, name):
        self._meta.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid, "args": {"name": name}})

    def complete(self, pid, tid, name, cat, cycle, dur, args=None):
        self._raw.append(("X", pid, tid, name, cat, cycle, dur, args))

    def instant(self, pid, tid, name, cat, cycle, args=None):
        self._raw.append(("i", pid, tid, name, cat, cycle, None, args))

    def counter(self, pid, name, cycle, values):
        self._raw.append(("C", pid, None, name, None, cycle, None,
                          dict(values)))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with open(self.path, "w", encoding="utf-8") as fh:
            for event in self._meta:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
            for ph, pid, tid, name, cat, cycle, dur, args in self._raw:
                if ph == "X":
                    event = {"ph": "X", "pid": pid, "tid": tid,
                             "name": name, "cat": cat, "cycle": cycle,
                             "dur": dur}
                elif ph == "i":
                    event = {"ph": "i", "pid": pid, "tid": tid,
                             "name": name, "cat": cat, "cycle": cycle}
                else:
                    event = {"ph": "C", "pid": pid, "name": name,
                             "cycle": cycle, "args": args}
                if ph != "C" and args:
                    event["args"] = args
                fh.write(json.dumps(event, sort_keys=True) + "\n")


def read_jsonl(path) -> List[Dict]:
    """Parse a :class:`JsonlTraceSink` file back into event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


class ChromeTraceSink(TraceSink):
    """Chrome/Perfetto trace-event format (the JSON object form).

    Timestamps and durations are microseconds (the format's unit); the
    cycle-to-us factor comes from :meth:`set_timebase` (DRAM tCK).  Load
    the written file in ``ui.perfetto.dev`` or ``chrome://tracing``.
    """

    def __init__(self, path, tck_ns: float = 1.0):
        self.path = Path(path)
        self._tck_us = tck_ns / 1000.0
        self._raw: List[tuple] = []
        self._process_names: Dict[int, str] = {}
        self._track_names: Dict[Tuple[int, int], str] = {}
        self._closed = False

    @property
    def raw_buffer(self) -> list:
        return self._raw

    @property
    def events_written(self) -> int:
        return len(self._raw)

    def set_timebase(self, tck_ns: float) -> None:
        # Applied at close, so it covers already-buffered events too.
        self._tck_us = tck_ns / 1000.0

    def declare_process(self, pid, name):
        self._process_names[pid] = name

    def declare_track(self, pid, tid, name):
        self._track_names[(pid, tid)] = name

    def complete(self, pid, tid, name, cat, cycle, dur, args=None):
        self._raw.append(("X", pid, tid, name, cat, cycle, dur, args))

    def instant(self, pid, tid, name, cat, cycle, args=None):
        self._raw.append(("i", pid, tid, name, cat, cycle, None, args))

    def counter(self, pid, name, cycle, values):
        self._raw.append(("C", pid, None, name, None, cycle, None,
                          dict(values)))

    def _data_events(self) -> List[Dict]:
        scale = self._tck_us
        events = []
        for ph, pid, tid, name, cat, cycle, dur, args in self._raw:
            if ph == "X":
                event = {"name": name, "cat": cat, "ph": "X",
                         "ts": cycle * scale, "dur": dur * scale,
                         "pid": pid, "tid": tid}
                if args:
                    event["args"] = args
            elif ph == "i":
                event = {"name": name, "cat": cat, "ph": "i", "s": "t",
                         "ts": cycle * scale, "pid": pid, "tid": tid}
                if args:
                    event["args"] = args
            else:
                event = {"name": name, "ph": "C", "ts": cycle * scale,
                         "pid": pid, "tid": 0, "args": args}
            events.append(event)
        return events

    def _metadata_events(self) -> List[Dict]:
        meta = []
        for pid, name in sorted(self._process_names.items()):
            meta.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": name}})
        for (pid, tid), name in sorted(self._track_names.items()):
            meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": name}})
            # Sort lanes by tid (bank order) rather than name.
            meta.append({"name": "thread_sort_index", "ph": "M",
                         "pid": pid, "tid": tid,
                         "args": {"sort_index": tid}})
        return meta

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        payload = {
            "traceEvents": self._metadata_events() + self._data_events(),
            "displayTimeUnit": "ns",
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
            fh.write("\n")
