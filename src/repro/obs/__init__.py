"""Observability: metrics, structured event tracing, snapshot sampling.

The hub object is :class:`Observability`: build one, hand it to
:class:`~repro.sim.system.System` (``obs=``), and after ``run()`` read
``obs.summary`` / ``obs.snapshots`` or open the written trace in
``ui.perfetto.dev``.

Cost contract (the reason this package exists as a separate layer):

* **off (the default, ``obs=None``)** -- every instrumentation site in
  the simulator is gated on a single pre-hoisted ``is None`` or bool
  check; no metric objects are touched, no events are built.  The
  bench-smoke regression gate pins this path.
* **metrics on** -- counter updates are one attribute add on a held
  handle; registry lookups are ~one dict access.
* **tracing on** -- each command/mitigation event builds one small dict
  and hands it to the sink; sinks never block the simulation (JSONL
  streams, Chrome buffers until :meth:`Observability.close`).

Example::

    from repro.obs import Observability
    obs = Observability.to_chrome("run.trace.json", sample_interval=10_000)
    result = System(profiles, mitigation, config=cfg, obs=obs).run()
    obs.close()            # flushes the Chrome JSON
    print(obs.summary)     # row-hit rate, cache hits, RAA pressure, ...
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullCounter,
    NullGauge,
    NullHistogram,
    NullRegistry,
)
from repro.obs.sampler import SnapshotSampler, collect_summary
from repro.obs.trace import (
    ChromeTraceSink,
    JsonlTraceSink,
    MemoryTraceSink,
    TraceSink,
    read_jsonl,
)


class Observability:
    """One run's observability configuration and collected state.

    ``metrics=True`` attaches a :class:`MetricRegistry`; ``sink`` is an
    optional :class:`TraceSink`; ``sample_interval`` (cycles, 0 = off)
    enables the periodic :class:`SnapshotSampler` in the system event
    loop.  The hub is single-run: build a fresh one per ``System``.
    """

    def __init__(self, metrics: bool = True,
                 sink: Optional[TraceSink] = None,
                 sample_interval: int = 0):
        if sample_interval < 0:
            raise ValueError("sample_interval must be >= 0")
        self.metrics: Optional[MetricRegistry] = \
            MetricRegistry() if metrics else None
        self.sink = sink
        self.sample_interval = sample_interval
        self.snapshots: List[Dict] = []
        self.summary: Optional[Dict] = None

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def to_chrome(cls, path, metrics: bool = True,
                  sample_interval: int = 0) -> "Observability":
        """Hub tracing to a Chrome/Perfetto trace-event file."""
        return cls(metrics=metrics, sink=ChromeTraceSink(path),
                   sample_interval=sample_interval)

    @classmethod
    def to_jsonl(cls, path, metrics: bool = True,
                 sample_interval: int = 0) -> "Observability":
        """Hub tracing to a JSON-lines event file."""
        return cls(metrics=metrics, sink=JsonlTraceSink(path),
                   sample_interval=sample_interval)

    @classmethod
    def in_memory(cls, metrics: bool = True,
                  sample_interval: int = 0) -> "Observability":
        """Hub tracing to an in-process :class:`MemoryTraceSink`."""
        return cls(metrics=metrics, sink=MemoryTraceSink(),
                   sample_interval=sample_interval)

    # -- lifecycle ----------------------------------------------------------------

    def bind(self, tck_ns: float) -> None:
        """Called by the system before the run: fixes the timebase."""
        if self.sink is not None:
            self.sink.set_timebase(tck_ns)

    def close(self) -> None:
        """Flush the trace sink (idempotent)."""
        if self.sink is not None:
            self.sink.close()


__all__ = [
    "ChromeTraceSink",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTraceSink",
    "MemoryTraceSink",
    "MetricRegistry",
    "NULL_REGISTRY",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "Observability",
    "SnapshotSampler",
    "TraceSink",
    "collect_summary",
    "read_jsonl",
]
