"""Periodic snapshot sampling and the end-of-run summary.

The sampler rides the :mod:`repro.sim.system` event loop: every
``sample_interval`` cycles it reads (never mutates) the live simulator
state and records one snapshot -- queue depths, row-hit rate, the
scheduler's candidate-cache hit/invalidation counters, RAA pressure and
channel occupancy.  Snapshots accumulate on the
:class:`~repro.obs.Observability` hub and, when a trace sink is
attached, are also emitted as Chrome counter tracks so Perfetto renders
them as time series above the command lanes.

Read-only contract: the sampler may read bank/channel statistics
counters, the controller's O(1) pending counters and observability
counters, and the RAA counter values.  It must not call anything that
advances timing state (``issue_*``, ``drain``, ``translate``) --
sampling with observability enabled is required to leave the command
stream byte-identical (pinned by ``tests/test_obs_golden.py``).
"""

from __future__ import annotations

from typing import Dict


class SnapshotSampler:
    """Samples a running :class:`~repro.sim.system.System` periodically."""

    def __init__(self, system, obs):
        if obs.sample_interval <= 0:
            raise ValueError("sample_interval must be positive to sample")
        self.system = system
        self.mc = system.mc
        self.device = system.device
        self.interval = obs.sample_interval
        self.sink = obs.sink
        self.snapshots = obs.snapshots
        self._channels = system.config.geometry.channels

    def sample(self, cycle: int) -> int:
        """Record one snapshot; returns the next due cycle."""
        mc = self.mc
        hits = misses = 0
        for bank in self.device.banks.values():
            stats = bank.stats
            hits += stats.row_hits
            misses += stats.row_misses
        accesses = hits + misses
        pending = [mc.pending_requests(ch) for ch in range(self._channels)]
        snap: Dict = {
            "cycle": cycle,
            "pending_total": mc.pending_requests(),
            "pending_per_channel": pending,
            "row_hits": hits,
            "row_misses": misses,
            "row_hit_rate": (hits / accesses) if accesses else 0.0,
            "cand_evals": mc.cand_evals,
            "cand_hits": mc.cand_hits,
            "cand_recomputes": mc.cand_recomputes,
            "translation_invalidations": mc.translation_invalidations,
            "reindexes": mc.reindexes,
            "channel_commands": [c.commands_issued for c in mc._chans],
            "channel_blocked_cycles": [c.blocked_cycles for c in mc._chans],
        }
        raa = mc.raa
        if raa is not None:
            counts = raa.counters.values()
            peak = max(counts, default=0)
            snap["raa"] = {
                "due_banks": raa.due_count,
                "max_count": peak,
                "pressure": peak / raa.raaimt,
                "rfms_issued": raa.rfms_issued,
            }
        self.snapshots.append(snap)

        sink = self.sink
        if sink is not None:
            for ch in range(self._channels):
                sink.counter(ch, "queue_depth", cycle,
                             {"pending": pending[ch]})
            evals = mc.cand_evals
            sink.counter(0, "scheduler", cycle, {
                "cand_hit_rate": (mc.cand_hits / evals) if evals else 0.0,
                "row_hit_rate": snap["row_hit_rate"],
            })
            if raa is not None:
                sink.counter(0, "raa", cycle, {
                    "pressure": snap["raa"]["pressure"],
                    "due_banks": raa.due_count,
                })
        return cycle + self.interval


def collect_summary(system, result=None) -> Dict:
    """Assemble the run's observability summary (JSON-able).

    ``system`` is a finished :class:`~repro.sim.system.System`;
    ``result`` its :class:`~repro.sim.system.SystemResult` (recomputed
    from device stats when omitted).  This is what ``shadow-repro
    stats`` prints and what the experiment engine stores alongside each
    cached job result.
    """
    mc = system.mc
    stats = result.stats if result is not None \
        else system.device.aggregate_stats()
    evals = mc.cand_evals
    summary: Dict = {
        "row_hit_rate": stats.row_hit_rate,
        "row_hits": stats.row_hits,
        "row_misses": stats.row_misses,
        "row_conflicts": stats.row_conflicts,
        "acts": stats.acts,
        "reads": stats.reads,
        "writes": stats.writes,
        "refreshes": stats.refreshes,
        "rfms": stats.rfms,
        "candidate_cache": {
            "evals": evals,
            "hits": mc.cand_hits,
            "recomputes": mc.cand_recomputes,
            "hit_rate": (mc.cand_hits / evals) if evals else 0.0,
            "translation_invalidations": mc.translation_invalidations,
            "reindexes": mc.reindexes,
        },
        "raa_crossings": mc.raa_crossings,
        "channels": [
            {"commands": c.commands_issued,
             "data_busy_cycles": c.data_busy_cycles,
             "blocked_cycles": c.blocked_cycles}
            for c in mc._chans
        ],
        "snapshots": len(system.obs.snapshots)
        if system.obs is not None else 0,
    }
    if mc.raa is not None:
        summary["raa"] = {
            "raaimt": mc.raa.raaimt,
            "rfms_issued": mc.raa.rfms_issued,
            "due_banks": mc.raa.due_count,
            "max_count": max(mc.raa.counters.values(), default=0),
        }
    obs = getattr(system, "obs", None)
    if obs is not None and obs.metrics is not None:
        summary["metrics"] = obs.metrics.snapshot()
    # A fault injector on the controller's observer seam contributes its
    # end-of-run report (injection counts, degradation events).
    observer = getattr(mc, "observer", None)
    report = getattr(observer, "report", None)
    if report is not None:
        summary["faults"] = report()
    return summary


__all__ = ["SnapshotSampler", "collect_summary"]
