"""Counters, gauges and log-scale histograms (`repro.obs`).

Two cost regimes, by construction:

* **enabled** -- a metric handle is a tiny ``__slots__`` object; updating
  it is one attribute add, and looking one up in a
  :class:`MetricRegistry` is ~one dict access (instrument once, hold the
  handle, update forever);
* **disabled** -- the null family (:data:`NULL_REGISTRY` and the
  ``Null*`` singletons) accepts the same calls as no-ops, and the
  simulator's own hot paths go one step further: they gate on a single
  pre-hoisted ``is None``/bool check so that a run without an
  :class:`~repro.obs.Observability` hub executes *zero* metric code.

Histograms are log-scale (power-of-two buckets via ``int.bit_length``):
request latencies and queue depths span orders of magnitude, and a
constant-size bucket table keeps ``observe`` allocation-free.
"""

from __future__ import annotations

from typing import Dict, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot(self) -> Number:
        return self.value


class Histogram:
    """Log-scale (power-of-two bucket) histogram of non-negative values.

    Bucket ``b`` holds values whose ``bit_length`` is ``b``, i.e. the
    range ``[2**(b-1), 2**b - 1]`` (bucket 0 holds exactly 0).
    """

    __slots__ = ("name", "_buckets", "count", "total", "max")

    #: Initial bucket-table size; covers values up to 2**67 - 1 without
    #: ever growing (``observe`` extends it on demand beyond that).
    _INITIAL_BUCKETS = 68

    def __init__(self, name: str):
        self.name = name
        self._buckets = [0] * self._INITIAL_BUCKETS
        self.count = 0
        self.total = 0
        self.max = 0

    def observe(self, value: int) -> None:
        b = int(value).bit_length()
        try:
            self._buckets[b] += 1
        except IndexError:
            self._buckets.extend([0] * (b + 1 - len(self._buckets)))
            self._buckets[b] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    @staticmethod
    def bucket_bounds(b: int):
        """Inclusive ``(lo, hi)`` value range of bucket ``b``."""
        if b == 0:
            return (0, 0)
        return (1 << (b - 1), (1 << b) - 1)

    def snapshot(self) -> Dict:
        return {
            "count": self.count,
            "sum": self.total,
            "max": self.max,
            "mean": (self.total / self.count) if self.count else 0.0,
            "buckets": {
                f"{self.bucket_bounds(b)[0]}..{self.bucket_bounds(b)[1]}":
                    n for b, n in enumerate(self._buckets) if n
            },
        }


class MetricRegistry:
    """Named metric store: get-or-create handles, one dict lookup each."""

    __slots__ = ("_metrics",)

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """All current values, JSON-able, sorted by name."""
        return {name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())}


# -- the null (disabled) family ---------------------------------------------------

class NullCounter:
    """Accepts :class:`Counter` calls, records nothing."""

    __slots__ = ()
    name = "<null>"
    value = 0

    def inc(self, n: int = 1) -> None:
        pass

    def snapshot(self) -> int:
        return 0


class NullGauge:
    __slots__ = ()
    name = "<null>"
    value = 0

    def set(self, value: Number) -> None:
        pass

    def snapshot(self) -> int:
        return 0


class NullHistogram:
    __slots__ = ()
    name = "<null>"

    def observe(self, value: int) -> None:
        pass

    def snapshot(self) -> Dict:
        return {"count": 0, "sum": 0, "max": 0, "mean": 0.0, "buckets": {}}


class NullRegistry:
    """Registry stand-in for disabled observability: hands out shared
    no-op singletons so instrumented code needs no conditionals."""

    __slots__ = ()

    _counter = NullCounter()
    _gauge = NullGauge()
    _histogram = NullHistogram()

    def counter(self, name: str) -> NullCounter:
        return self._counter

    def gauge(self, name: str) -> NullGauge:
        return self._gauge

    def histogram(self, name: str) -> NullHistogram:
        return self._histogram

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> Dict:
        return {}


#: Shared null registry; safe to pass anywhere a MetricRegistry goes.
NULL_REGISTRY = NullRegistry()
