"""The composed DRAM device: channels -> ranks -> banks -> subarrays."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.dram.bank import Bank, BankStats
from repro.dram.channel import ChannelTiming
from repro.dram.rank import RankTiming
from repro.dram.subarray import Subarray, SubarrayLayout
from repro.dram.timing import TimingParams


@dataclass(frozen=True, order=True)
class BankAddress:
    """Fully-qualified bank coordinate."""

    channel: int
    rank: int
    bank: int

    def __post_init__(self) -> None:
        # Addresses key the hottest dicts in the simulator (mitigation
        # trackers, disturbance counters); the generated dataclass hash
        # rebuilds a field tuple on every lookup, so pin it once.
        object.__setattr__(
            self, "_hash", hash((self.channel, self.rank, self.bank)))

    def __hash__(self) -> int:
        return self._hash


@dataclass(frozen=True)
class DramGeometry:
    """Static organisation of the memory system (paper Figure 1)."""

    channels: int = 4
    ranks_per_channel: int = 2
    banks_per_rank: int = 16
    bank_groups: int = 4            # DDR4 x8: 4 groups of 4 banks
    layout: SubarrayLayout = SubarrayLayout()
    columns_per_row: int = 128      # cache lines per row (8 KB row / 64 B)

    def __post_init__(self) -> None:
        for attr in ("channels", "ranks_per_channel", "banks_per_rank",
                     "columns_per_row", "bank_groups"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.banks_per_rank % self.effective_bank_groups:
            raise ValueError(
                "banks_per_rank must divide evenly into bank_groups")

    @property
    def effective_bank_groups(self) -> int:
        """Small test geometries may have fewer banks than the nominal
        group count; the effective group count never exceeds the banks."""
        return min(self.bank_groups, self.banks_per_rank)

    def bank_group_of(self, bank: int) -> int:
        """The bank group a bank index belongs to (low bits select the
        group, so consecutive banks alternate groups -- the layout that
        lets streaming traffic use the short tCCD_S spacing)."""
        if not 0 <= bank < self.banks_per_rank:
            raise ValueError(f"bank {bank} outside geometry")
        return bank % self.effective_bank_groups

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def rows_per_bank(self) -> int:
        """MC-addressable rows per bank."""
        return self.layout.mc_rows_per_bank

    @property
    def total_mc_rows(self) -> int:
        return self.total_banks * self.rows_per_bank

    def bank_addresses(self) -> Iterator[BankAddress]:
        for ch in range(self.channels):
            for rk in range(self.ranks_per_channel):
                for bk in range(self.banks_per_rank):
                    yield BankAddress(ch, rk, bk)

    def validate(self, addr: BankAddress) -> None:
        if not (0 <= addr.channel < self.channels
                and 0 <= addr.rank < self.ranks_per_channel
                and 0 <= addr.bank < self.banks_per_rank):
            raise ValueError(f"bank address {addr} outside geometry")


class DramDevice:
    """Runtime state of the whole memory system.

    The device owns per-bank timing FSMs, per-rank ACT trackers, per-channel
    bus trackers and per-(bank, subarray) occupancy state.  The memory
    controller (:mod:`repro.controller.mc`) drives it; mitigations reach in
    through the controller, never directly.
    """

    def __init__(self, geometry: DramGeometry, timing: TimingParams):
        self.geometry = geometry
        self.timing = timing
        self.banks: Dict[BankAddress, Bank] = {
            addr: Bank(timing) for addr in geometry.bank_addresses()
        }
        self.ranks: Dict[tuple, RankTiming] = {
            (ch, rk): RankTiming(timing)
            for ch in range(geometry.channels)
            for rk in range(geometry.ranks_per_channel)
        }
        self.channels: List[ChannelTiming] = [
            ChannelTiming() for _ in range(geometry.channels)
        ]
        # Subarray occupancy is lazily created: most experiments only touch
        # a few banks and the full cross-product would be large.
        self._subarrays: Dict[tuple, Subarray] = {}

    def bank(self, addr: BankAddress) -> Bank:
        self.geometry.validate(addr)
        return self.banks[addr]

    def rank(self, addr: BankAddress) -> RankTiming:
        self.geometry.validate(addr)
        return self.ranks[(addr.channel, addr.rank)]

    def channel(self, channel: int) -> ChannelTiming:
        if not 0 <= channel < self.geometry.channels:
            raise ValueError(f"channel {channel} outside geometry")
        return self.channels[channel]

    def subarray(self, addr: BankAddress, subarray_index: int) -> Subarray:
        """The occupancy state of one subarray (lazily instantiated)."""
        self.geometry.validate(addr)
        key = (addr, subarray_index)
        if key not in self._subarrays:
            self._subarrays[key] = Subarray(self.geometry.layout, subarray_index)
        return self._subarrays[key]

    def aggregate_stats(self) -> BankStats:
        """Sum of all per-bank command counters."""
        total = BankStats()
        for bank in self.banks.values():
            total.merge(bank.stats)
        return total
