"""JEDEC timing parameter sets.

All parameters are stored in DRAM clock cycles of the speed grade's tCK.
The two presets used throughout the reproduction match the paper's
configurations: DDR4-2666 (the actual-system rig, Table IV) and DDR5-4800
(the architectural-simulation configuration).

The values follow the paper where stated (19-19-19, tRFC=467, tREFI=10400
for DDR4-2666) and public JEDEC/datasheet values elsewhere.  Exact
nanosecond fidelity is not required for the reproduction's claims -- what
matters is that relative deltas (tRCD increases, tRFM blocking, refresh
overheads) are charged on the correct timescale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


def ns_to_cycles(ns: float, tck_ns: float) -> int:
    """Convert a duration in nanoseconds to clock cycles, rounding up."""
    if ns < 0:
        raise ValueError("duration must be non-negative")
    if tck_ns <= 0:
        raise ValueError("tCK must be positive")
    return math.ceil(ns / tck_ns - 1e-9)


@dataclass(frozen=True)
class TimingParams:
    """A complete DRAM timing parameter set (cycles of ``tck_ns``)."""

    name: str
    tck_ns: float

    # Core access timings.
    tCL: int        # ACT->data (CAS latency); tAA in ns terms
    tRCD: int       # ACT -> RD/WR
    tRP: int        # PRE -> ACT
    tRAS: int       # ACT -> PRE (row restoration)
    tWR: int        # end of write data -> PRE
    tRTP: int       # RD -> PRE
    tBL: int        # data burst duration on the bus
    tCWL: int       # WR command -> write data

    # Bank/rank-level spacing.
    tCCD_L: int     # RD->RD same bank group
    tCCD_S: int     # RD->RD different bank group
    tRRD_L: int     # ACT->ACT same bank group
    tRRD_S: int     # ACT->ACT different bank group
    tFAW: int       # four-activate window
    tWTR_L: int     # WR->RD turnaround, same bank group
    tWTR_S: int

    # Refresh machinery.
    tRFC: int       # all-bank refresh cycle time
    tREFI: int      # refresh command interval
    tREFW: int      # refresh window (every row refreshed once per tREFW)

    # DDR5 refresh management (RFM).
    tRFM: int       # bank-blocking time provisioned per RFM command
    raaimt: int = 32   # default RFM threshold (overridden per experiment)

    # Extra ACT latency charged by a mitigation (SHADOW's tRD_RM); kept in
    # the timing set so a configured system has one source of truth.
    act_extra: int = 0

    extras: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        for attr in (
            "tCL", "tRCD", "tRP", "tRAS", "tWR", "tRTP", "tBL", "tCWL",
            "tCCD_L", "tCCD_S", "tRRD_L", "tRRD_S", "tFAW", "tWTR_L",
            "tWTR_S", "tRFC", "tREFI", "tREFW", "tRFM",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")
        if self.tREFI > self.tREFW:
            raise ValueError("tREFI cannot exceed tREFW")
        if self.raaimt <= 0:
            raise ValueError("RAAIMT must be positive")

    # -- derived quantities -------------------------------------------------

    @property
    def tRC(self) -> int:
        """ACT-to-ACT time for the same bank (tRAS + tRP)."""
        return self.tRAS + self.tRP

    @property
    def tRCD_effective(self) -> int:
        """tRCD including any mitigation-imposed extra latency (tRCD')."""
        return self.tRCD + self.act_extra

    @property
    def refreshes_per_window(self) -> int:
        """Number of REF commands in one tREFW."""
        return max(1, self.tREFW // self.tREFI)

    def cycles(self, ns: float) -> int:
        """Convert nanoseconds to cycles of this speed grade."""
        return ns_to_cycles(ns, self.tck_ns)

    def nanoseconds(self, cycles: int) -> float:
        """Convert cycles of this speed grade to nanoseconds."""
        return cycles * self.tck_ns

    def with_act_extra(self, extra_cycles: int) -> "TimingParams":
        """Return a copy with ``act_extra`` (e.g. SHADOW's tRD_RM) set."""
        if extra_cycles < 0:
            raise ValueError("extra ACT latency must be non-negative")
        return replace(self, act_extra=extra_cycles)

    def with_trcd(self, trcd: int) -> "TimingParams":
        """Return a copy with a different base tRCD (Fig. 9 sensitivity)."""
        return replace(self, tRCD=trcd)

    def with_refresh_interval(self, trefi: int) -> "TimingParams":
        """Return a copy with a different tREFI (DRR, RFM emulation)."""
        return replace(self, tREFI=trefi)

    def with_raaimt(self, raaimt: int) -> "TimingParams":
        return replace(self, raaimt=raaimt)

    def with_trfm(self, trfm: int) -> "TimingParams":
        return replace(self, tRFM=trfm)


def _make_ddr4_2666() -> TimingParams:
    tck = 0.75
    return TimingParams(
        name="DDR4-2666",
        tck_ns=tck,
        tCL=19,                      # paper Table IV: 19-19-19
        tRCD=19,
        tRP=19,
        tRAS=ns_to_cycles(32.0, tck),     # 43 cycles
        tWR=ns_to_cycles(15.0, tck),      # 20
        tRTP=ns_to_cycles(7.5, tck),      # 10
        tBL=4,                            # BL8, double data rate
        tCWL=14,
        tCCD_L=7,
        tCCD_S=4,
        tRRD_L=ns_to_cycles(4.9, tck),    # 7
        tRRD_S=4,
        tFAW=ns_to_cycles(21.0, tck),     # 28
        tWTR_L=ns_to_cycles(7.5, tck),    # 10
        tWTR_S=ns_to_cycles(2.5, tck),    # 4
        tRFC=467,                    # paper Table IV (350 ns)
        tREFI=10400,                 # paper Table IV (7.8 us)
        tREFW=ns_to_cycles(64e6, tck),    # 64 ms
        tRFM=ns_to_cycles(350.0, tck),    # 467
    )


def _make_ddr5_4800() -> TimingParams:
    tck = 1 / 2.4              # 0.4167 ns
    return TimingParams(
        name="DDR5-4800",
        tck_ns=tck,
        tCL=40,
        tRCD=ns_to_cycles(16.0, tck),     # 39
        tRP=ns_to_cycles(16.0, tck),      # 39
        tRAS=ns_to_cycles(32.0, tck),     # 77
        tWR=ns_to_cycles(30.0, tck),      # 72
        tRTP=ns_to_cycles(7.5, tck),      # 18
        tBL=8,                            # BL16
        tCWL=38,
        tCCD_L=12,
        tCCD_S=8,
        tRRD_L=12,
        tRRD_S=8,
        tFAW=32,
        tWTR_L=ns_to_cycles(10.0, tck),   # 24
        tWTR_S=ns_to_cycles(2.5, tck),    # 6
        tRFC=ns_to_cycles(410.0, tck),    # 16 Gb die
        tREFI=ns_to_cycles(3900.0, tck),  # 3.9 us
        tREFW=ns_to_cycles(32e6, tck),    # 32 ms
        tRFM=ns_to_cycles(350.0, tck),    # 840
    )


#: DDR4-2666: the paper's actual-system configuration (Table IV).
DDR4_2666 = _make_ddr4_2666()

#: DDR5-4800: the paper's architectural-simulation configuration.
DDR5_4800 = _make_ddr5_4800()


# -- spec-registry entries ---------------------------------------------------------
#
# Speed grades register by name so a ``TimingSpec`` (and therefore any
# serialized experiment) can select one from plain data.

from repro.spec.registry import TIMINGS as _TIMINGS

_TIMINGS.register("DDR4-2666", lambda: DDR4_2666)
_TIMINGS.register("DDR5-4800", lambda: DDR5_4800)
