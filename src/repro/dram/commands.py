"""DRAM command vocabulary.

Commands follow the primary-secondary DDR protocol (paper Section II-A):
the memory controller issues commands; the device obeys fixed JEDEC
timings.  ``RFM`` is the DDR5 refresh-management command (paper Table I)
that SHADOW repurposes to trigger row-shuffles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class CommandType(enum.Enum):
    """The DRAM commands the simulator issues."""

    ACT = "activate"
    PRE = "precharge"
    RD = "read"
    WR = "write"
    REF = "refresh"          # all-bank auto-refresh (per rank)
    RFM = "refresh_mgmt"     # per-bank refresh management (DDR5)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CommandType.{self.name}"


@dataclass(frozen=True)
class Command:
    """A single DRAM command instance.

    ``row`` is a *device address* (DA) row for ACT; ``column`` applies to
    RD/WR.  REF carries neither.  ``cycle`` is the issue time in DRAM
    clock cycles.
    """

    kind: CommandType
    channel: int
    rank: int
    bank: int
    cycle: int
    row: Optional[int] = None
    column: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("command cycle must be non-negative")
        if self.kind is CommandType.ACT and self.row is None:
            raise ValueError("ACT requires a row")
        if self.kind in (CommandType.RD, CommandType.WR) and self.column is None:
            raise ValueError(f"{self.kind.name} requires a column")
