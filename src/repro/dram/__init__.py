"""DRAM device substrate.

A command-level model of a DDR4/DDR5 main-memory system: JEDEC timing
parameter sets, per-bank timing state machines, rank-level activation
constraints (tRRD/tFAW), channel bus occupancy, subarray geometry, and the
auto-refresh machinery (tREFI/tRFC/tREFW) including the DDR5 refresh
management (RFM) interface that SHADOW builds on.

The model is *timing-faithful at command granularity*: every protocol
effect the SHADOW paper measures (longer tRCD, tRFM bank blocking, extra
refreshes, channel-blocking row-swaps) is representable here.
"""

from repro.dram.commands import Command, CommandType
from repro.dram.device import BankAddress, DramDevice, DramGeometry
from repro.dram.refresh import RefreshTracker
from repro.dram.sppr import SpprConfig, SpprState
from repro.dram.subarray import Subarray, SubarrayLayout
from repro.dram.timing import (
    DDR4_2666,
    DDR5_4800,
    TimingParams,
    ns_to_cycles,
)

__all__ = [
    "BankAddress",
    "Command",
    "CommandType",
    "DDR4_2666",
    "DDR5_4800",
    "DramDevice",
    "DramGeometry",
    "RefreshTracker",
    "SpprConfig",
    "SpprState",
    "Subarray",
    "SubarrayLayout",
    "TimingParams",
    "ns_to_cycles",
]
