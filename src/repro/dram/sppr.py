"""Soft post-package repair (sPPR) resources (paper Section VIII).

Since DDR4, JEDEC defines sPPR: at runtime, a faulty row address can be
remapped to a spare row, and -- the observation SHADOW leans on -- the
device's tRCD is *unchanged* afterwards, proving a zero-latency address
relocation path exists in commodity DRAM.  The number of sPPR resources
per bank group has grown each generation, and the paper suggests SHADOW
could exploit them (or provide the mechanism for an enhanced sPPR).

This module models that resource pool: a per-bank set of spare rows and
an associative repair table, with the JEDEC constraints (bounded
repairs per bank group, soft repairs lost on power cycle).  It is used
by the ablations to size how many SHADOW empty rows the existing spare
infrastructure could already donate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.dram.device import BankAddress


@dataclass(frozen=True)
class SpprConfig:
    """Generation-dependent sPPR resources."""

    spare_rows_per_bank: int = 2        # DDR4: one or two per bank
    repairs_per_bank_group: int = 4     # grows with generations [70]
    banks_per_group: int = 4

    def __post_init__(self) -> None:
        if self.spare_rows_per_bank <= 0:
            raise ValueError("spare_rows_per_bank must be positive")
        if self.repairs_per_bank_group <= 0:
            raise ValueError("repairs_per_bank_group must be positive")


@dataclass
class SpprState:
    """Runtime repair table of one device."""

    config: SpprConfig = field(default_factory=SpprConfig)
    _repairs: Dict[BankAddress, Dict[int, int]] = field(
        default_factory=dict)
    _group_counts: Dict[tuple, int] = field(default_factory=dict)

    def _group(self, addr: BankAddress) -> tuple:
        return (addr.channel, addr.rank,
                addr.bank // self.config.banks_per_group)

    def repairs_used(self, addr: BankAddress) -> int:
        return len(self._repairs.get(addr, {}))

    def group_repairs_used(self, addr: BankAddress) -> int:
        return self._group_counts.get(self._group(addr), 0)

    def can_repair(self, addr: BankAddress) -> bool:
        return (self.repairs_used(addr) < self.config.spare_rows_per_bank
                and self.group_repairs_used(addr)
                < self.config.repairs_per_bank_group)

    def repair(self, addr: BankAddress, faulty_row: int) -> int:
        """Soft-repair ``faulty_row``; returns the spare index used."""
        if faulty_row < 0:
            raise ValueError("row must be non-negative")
        table = self._repairs.setdefault(addr, {})
        if faulty_row in table:
            return table[faulty_row]
        if not self.can_repair(addr):
            raise RuntimeError(
                "sPPR resources exhausted for this bank/bank-group")
        spare = len(table)
        table[faulty_row] = spare
        group = self._group(addr)
        self._group_counts[group] = self._group_counts.get(group, 0) + 1
        return spare

    def resolve(self, addr: BankAddress, row: int) -> Optional[int]:
        """The spare index serving ``row``, or None if unrepaired."""
        return self._repairs.get(addr, {}).get(row)

    def power_cycle(self) -> None:
        """Soft repairs do not survive power loss (unlike hard PPR)."""
        self._repairs.clear()
        self._group_counts.clear()

    # -- SHADOW synergy accounting -----------------------------------------------

    def donatable_rows_per_subarray(self, subarrays_per_bank: int) -> float:
        """How many SHADOW empty-row slots the spare pool could donate.

        SHADOW needs one MC-invisible row per subarray; spares are
        per-bank resources on the same relocation path.
        """
        if subarrays_per_bank <= 0:
            raise ValueError("subarrays_per_bank must be positive")
        return self.config.spare_rows_per_bank / subarrays_per_bank
