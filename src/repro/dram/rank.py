"""Rank-level constraints: tRRD, the four-activate window, and
bank-group-aware command spacing.

A rank limits how quickly ACTs may issue across its banks: consecutive
ACTs must be tRRD apart (tRRD_L within a bank group, tRRD_S across
groups) and at most four ACTs may fall in any tFAW window.  Column
commands on the shared bus are likewise spaced tCCD_L within a group
and tCCD_S across groups -- the reason controllers interleave bank
groups on DDR4/DDR5.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from repro.dram.timing import TimingParams

_FAR_PAST = -(10**12)


class RankTiming:
    """Sliding-window tracker for rank-wide ACT/column constraints."""

    __slots__ = ("_t", "_act_times", "_last_act", "_last_act_group",
                 "_group_last_act", "_last_col", "_last_col_group")

    def __init__(self, timing: TimingParams):
        self._t = timing
        self._act_times: Deque[int] = deque(maxlen=4)
        self._last_act = _FAR_PAST
        self._last_act_group = None
        self._group_last_act: Dict[int, int] = {}
        self._last_col = _FAR_PAST
        self._last_col_group = None

    # -- activates --------------------------------------------------------------

    def earliest_act(self, cycle: int, group: int = 0) -> int:
        """Earliest cycle >= ``cycle`` an ACT to ``group`` may issue."""
        t = self._t
        spacing = t.tRRD_L if group == self._last_act_group else t.tRRD_S
        earliest = max(cycle, self._last_act + spacing)
        # Same-group back-to-back ACTs always honour tRRD_L even if an
        # other-group ACT slipped in between.
        last_same = self._group_last_act.get(group, _FAR_PAST)
        earliest = max(earliest, last_same + t.tRRD_L)
        if len(self._act_times) == 4:
            earliest = max(earliest, self._act_times[0] + t.tFAW)
        return earliest

    def record_act(self, cycle: int, group: int = 0) -> None:
        # Validation == cycle >= earliest_act(cycle, group), inlined:
        # this runs once per ACT issued.
        t = self._t
        spacing = t.tRRD_L if group == self._last_act_group else t.tRRD_S
        act_times = self._act_times
        if (cycle < self._last_act + spacing
                or cycle < self._group_last_act.get(group, _FAR_PAST)
                + t.tRRD_L
                or (len(act_times) == 4
                    and cycle < act_times[0] + t.tFAW)):
            raise RuntimeError(
                "DRAM protocol violation: rank ACT before tRRD/tFAW allow"
            )
        self._last_act = cycle
        self._last_act_group = group
        self._group_last_act[group] = cycle
        act_times.append(cycle)

    def faw_occupancy(self, cycle: int) -> int:
        """ACTs currently inside this rank's tFAW window (0..4).

        Read-only observability helper: 4 means the four-activate window
        is saturated and the next ACT waits on the oldest entry to age
        out.  Never mutates the tracker.
        """
        floor = cycle - self._t.tFAW
        return sum(1 for t in self._act_times if t > floor)

    # -- column commands ------------------------------------------------------------

    def earliest_column(self, cycle: int, group: int = 0) -> int:
        """Earliest cycle >= ``cycle`` a RD/WR to ``group`` may issue."""
        t = self._t
        spacing = t.tCCD_L if group == self._last_col_group else t.tCCD_S
        return max(cycle, self._last_col + spacing)

    def record_column(self, cycle: int, group: int = 0) -> None:
        t = self._t
        spacing = t.tCCD_L if group == self._last_col_group else t.tCCD_S
        if cycle < self._last_col + spacing:
            raise RuntimeError(
                "DRAM protocol violation: column command before tCCD allows"
            )
        self._last_col = cycle
        self._last_col_group = group
