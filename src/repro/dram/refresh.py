"""Auto-refresh bookkeeping.

The MC sends REF every tREFI; over one tREFW every row is refreshed once
(paper Section II-A).  Each REF refreshes the next segment of rows in
every bank of the rank (rolling pointer).  The Row Hammer fault model
needs to know *which* rows a given REF recharged, so the tracker exposes
the refreshed DA row range per REF.

The tracker also implements the paper's tREFI-reduction emulation
(Equation 1) used to mimic RFM commands on real DDR4 hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.dram.timing import TimingParams


@dataclass
class RefreshTracker:
    """Rolling refresh pointer for one rank."""

    timing: TimingParams
    rows_per_bank: int

    def __post_init__(self) -> None:
        if self.rows_per_bank <= 0:
            raise ValueError("rows_per_bank must be positive")
        self._refs_per_window = self.timing.refreshes_per_window
        # Rows refreshed per REF command (ceiling so a full window always
        # covers every row at least once).
        self._rows_per_ref = -(-self.rows_per_bank // self._refs_per_window)
        self._pointer = 0
        self.next_due = self.timing.tREFI
        self.refs_issued = 0

    @property
    def rows_per_ref(self) -> int:
        return self._rows_per_ref

    def is_due(self, cycle: int) -> bool:
        return cycle >= self.next_due

    def record_ref(self, cycle: int) -> Tuple[int, int]:
        """Account one REF; returns the refreshed DA row range ``[lo, hi)``.

        ``hi`` may exceed ``rows_per_bank``; callers wrap modulo the row
        count (the returned range is pre-wrap to keep it a single span).
        """
        lo = self._pointer
        hi = lo + self._rows_per_ref
        self._pointer = hi % self.rows_per_bank
        self.refs_issued += 1
        self.next_due += self.timing.tREFI
        if self.next_due <= cycle:
            # The MC fell behind (e.g. long blocking); re-anchor so refreshes
            # do not pile up unboundedly.  JEDEC allows postponing a bounded
            # number of REFs; the fault model conservatively keeps charging
            # disturbance while refreshes are late.
            self.next_due = cycle + self.timing.tREFI
        return lo, hi


def emulated_trefi(timing: TimingParams, acts_per_window: int,
                   raaimt: int) -> int:
    """The paper's Equation 1: tREFI' emulating RFM via extra refreshes.

    ``tREFI' = tREFI * tRFC / (tRFC + tRFM * N_RFM / N_REF)`` where
    ``N_RFM`` is the number of RFM commands a workload would trigger per
    tREFW (measured ACTs / RAAIMT) and ``N_REF`` the number of normal
    refreshes per tREFW.
    """
    if raaimt <= 0:
        raise ValueError("RAAIMT must be positive")
    if acts_per_window < 0:
        raise ValueError("acts_per_window must be non-negative")
    n_ref = timing.refreshes_per_window
    n_rfm = acts_per_window / raaimt
    scale = timing.tRFC / (timing.tRFC + timing.tRFM * n_rfm / n_ref)
    trefi_prime = int(timing.tREFI * scale)
    return max(1, trefi_prime)
