"""Channel-level shared resources: command bus and data bus.

One command may issue per channel per cycle; data bursts occupy the
shared data bus for tBL cycles.  RRS-style row swaps block the whole
channel (paper Section III-A), which is modelled here explicitly.
"""

from __future__ import annotations


class ChannelTiming:
    """Occupancy tracking for one channel's command and data buses."""

    __slots__ = ("_cmd_free_at", "_data_free_at", "_blocked_until",
                 "blocked_cycles", "commands_issued", "data_busy_cycles")

    def __init__(self):
        self._cmd_free_at = 0
        self._data_free_at = 0
        self._blocked_until = 0
        self.blocked_cycles = 0   # total channel-blocking time (RRS swaps)
        self.commands_issued = 0  # commands placed on the command bus
        self.data_busy_cycles = 0  # total data-bus burst occupancy

    def floors(self):
        """``(command_floor, data_floor)``: the earliest cycles either bus
        is free.  Both are constant between issued commands, so the
        scheduler hoists them once per candidate-selection pass instead
        of calling :meth:`earliest_command` per bank."""
        blocked = self._blocked_until
        cmd = self._cmd_free_at
        data = self._data_free_at
        return ((cmd if cmd > blocked else blocked),
                (data if data > blocked else blocked))

    # -- command bus -----------------------------------------------------------

    def earliest_command(self, cycle: int) -> int:
        return max(cycle, self._cmd_free_at, self._blocked_until)

    def record_command(self, cycle: int) -> None:
        # == cycle < earliest_command(cycle), without the call/max.
        if cycle < self._cmd_free_at or cycle < self._blocked_until:
            raise RuntimeError(
                "DRAM protocol violation: command bus busy at issue time"
            )
        self._cmd_free_at = cycle + 1
        self.commands_issued += 1

    # -- data bus ---------------------------------------------------------------

    def earliest_data(self, start: int) -> int:
        """Earliest cycle >= ``start`` a data burst may begin."""
        return max(start, self._data_free_at, self._blocked_until)

    def record_data(self, start: int, burst: int) -> None:
        if start < self._data_free_at or start < self._blocked_until:
            raise RuntimeError(
                "DRAM protocol violation: data bus busy at burst start"
            )
        self._data_free_at = start + burst
        self.data_busy_cycles += burst

    # -- whole-channel blocking (RRS) --------------------------------------------

    def block(self, cycle: int, duration: int) -> int:
        """Block the entire channel for ``duration`` cycles; returns end."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(cycle, self._blocked_until)
        self._blocked_until = start + duration
        self.blocked_cycles += duration
        return self._blocked_until
