"""Subarray geometry and row roles.

A bank is a stack of subarrays (paper Figure 1); each subarray owns its
row buffer, which is why SHADOW can confine shuffling inside one subarray
and why subarray-pairing can overlap remapping-row access with target-row
activation (paper Section V).

SHADOW provisions, per subarray:

* ``rows_per_subarray`` ordinary rows addressable by the MC,
* one *empty row* (``Row_empt``) used as the row-shuffle bounce buffer,
  never addressable by the MC,
* one *remapping row* holding the paired subarray's PA-to-DA table,
  likewise MC-inaccessible.

This module provides the index arithmetic for those roles.  Device-address
(DA) rows are numbered bank-wide; within a bank, subarray ``s`` owns DA
rows ``[s * stride, (s+1) * stride)`` where ``stride`` counts ordinary
rows plus the empty row.  The remapping row sits on a separate wordline
next to the row buffer and is not part of the DA space (it is reached by
the dedicated RRA signal, not by an address).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class SubarrayLayout:
    """Static geometry of the subarrays within one bank."""

    subarrays_per_bank: int = 16
    rows_per_subarray: int = 512     # ordinary (MC-visible) rows
    has_empty_row: bool = True       # SHADOW's Row_empt slot

    def __post_init__(self) -> None:
        if self.subarrays_per_bank <= 0:
            raise ValueError("subarrays_per_bank must be positive")
        if self.rows_per_subarray <= 0:
            raise ValueError("rows_per_subarray must be positive")

    @property
    def slots_per_subarray(self) -> int:
        """DA slots per subarray (ordinary rows + the empty row if any)."""
        return self.rows_per_subarray + (1 if self.has_empty_row else 0)

    @property
    def mc_rows_per_bank(self) -> int:
        """Rows the memory controller can address per bank."""
        return self.subarrays_per_bank * self.rows_per_subarray

    @property
    def da_rows_per_bank(self) -> int:
        """All DA row slots per bank, including empty rows."""
        return self.subarrays_per_bank * self.slots_per_subarray

    # -- MC-visible (PA-side) row arithmetic --------------------------------

    def subarray_of_pa(self, pa_row: int) -> int:
        """Subarray index holding MC-visible row ``pa_row``."""
        self._check_pa(pa_row)
        return pa_row // self.rows_per_subarray

    def pa_offset(self, pa_row: int) -> int:
        """Index of ``pa_row`` within its subarray (0..rows_per_subarray)."""
        self._check_pa(pa_row)
        return pa_row % self.rows_per_subarray

    def pa_row(self, subarray: int, offset: int) -> int:
        self._check_subarray(subarray)
        if not 0 <= offset < self.rows_per_subarray:
            raise ValueError("PA offset out of range")
        return subarray * self.rows_per_subarray + offset

    # -- DA-side row arithmetic ---------------------------------------------

    def subarray_of_da(self, da_row: int) -> int:
        """Subarray index holding DA slot ``da_row``."""
        self._check_da(da_row)
        return da_row // self.slots_per_subarray

    def da_offset(self, da_row: int) -> int:
        self._check_da(da_row)
        return da_row % self.slots_per_subarray

    def da_row(self, subarray: int, offset: int) -> int:
        self._check_subarray(subarray)
        if not 0 <= offset < self.slots_per_subarray:
            raise ValueError("DA offset out of range")
        return subarray * self.slots_per_subarray + offset

    def da_range(self, subarray: int) -> Tuple[int, int]:
        """Half-open DA row range ``[lo, hi)`` of a subarray."""
        self._check_subarray(subarray)
        lo = subarray * self.slots_per_subarray
        return lo, lo + self.slots_per_subarray

    def identity_da(self, pa_row: int) -> int:
        """The DA slot a PA row occupies under the factory-default mapping."""
        sub = self.subarray_of_pa(pa_row)
        return self.da_row(sub, self.pa_offset(pa_row))

    def paired_subarray(self, subarray: int) -> int:
        """The subarray holding this subarray's remapping row.

        Open-bitline constraint (paper Section V-B): paired subarrays
        sandwich another subarray between them, i.e. pairs are (0,2),
        (1,3), (4,6), (5,7), ... so partners never share a row buffer.
        """
        self._check_subarray(subarray)
        group = subarray // 4
        within = subarray % 4
        partner_within = (within + 2) % 4
        partner = group * 4 + partner_within
        if partner >= self.subarrays_per_bank:
            # Degenerate tail (bank not a multiple of 4): fall back to the
            # adjacent-pair scheme which is always well defined for even
            # subarray counts.
            partner = subarray ^ 1
        return partner

    def da_neighbors(self, da_row: int, radius: int):
        """DA rows within ``radius`` wordlines of ``da_row``, with distances.

        Confined to the subarray: the threat model (paper Section II-D)
        states an aggressor does not disturb other subarrays' rows.
        Returns ``[(row, distance), ...]`` excluding ``da_row`` itself.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        lo, hi = self.da_range(self.subarray_of_da(da_row))
        neighbors = []
        for d in range(1, radius + 1):
            if da_row - d >= lo:
                neighbors.append((da_row - d, d))
            if da_row + d < hi:
                neighbors.append((da_row + d, d))
        return neighbors

    # -- validation helpers ---------------------------------------------------

    def _check_pa(self, pa_row: int) -> None:
        if not 0 <= pa_row < self.mc_rows_per_bank:
            raise ValueError(
                f"PA row {pa_row} out of range [0, {self.mc_rows_per_bank})"
            )

    def _check_da(self, da_row: int) -> None:
        if not 0 <= da_row < self.da_rows_per_bank:
            raise ValueError(
                f"DA row {da_row} out of range [0, {self.da_rows_per_bank})"
            )

    def _check_subarray(self, subarray: int) -> None:
        if not 0 <= subarray < self.subarrays_per_bank:
            raise ValueError(
                f"subarray {subarray} out of range "
                f"[0, {self.subarrays_per_bank})"
            )


class Subarray:
    """Runtime state of one subarray: which PA row occupies each DA slot.

    Under the factory mapping, slot ``i`` holds ordinary row ``i`` and the
    last slot (if an empty row is provisioned) holds ``None``.  SHADOW
    permutes this occupancy via row-copies; the class enforces that the
    occupancy stays a permutation (each PA row in exactly one slot).
    """

    def __init__(self, layout: SubarrayLayout, index: int):
        layout._check_subarray(index)
        self.layout = layout
        self.index = index
        # occupancy[offset] = PA offset stored there, or None for empty.
        self.occupancy = list(range(layout.rows_per_subarray))
        if layout.has_empty_row:
            self.occupancy.append(None)

    @property
    def empty_offset(self) -> int:
        """DA offset of the slot currently holding no PA row."""
        if not self.layout.has_empty_row:
            raise RuntimeError("this layout has no empty row")
        return self.occupancy.index(None)

    def slot_of(self, pa_offset: int) -> int:
        """DA offset currently holding PA offset ``pa_offset``."""
        if not 0 <= pa_offset < self.layout.rows_per_subarray:
            raise ValueError("PA offset out of range")
        return self.occupancy.index(pa_offset)

    def copy_row(self, src_offset: int, dst_offset: int) -> None:
        """Move the content of DA slot ``src`` into DA slot ``dst``.

        The destination must currently be the empty slot; after the copy
        the source becomes the empty slot.  (The physical row-copy leaves
        stale data in the source, but logically the source is now free;
        SHADOW's remapping row no longer references it.)
        """
        n = self.layout.slots_per_subarray
        if not (0 <= src_offset < n and 0 <= dst_offset < n):
            raise ValueError("slot offset out of range")
        if src_offset == dst_offset:
            raise ValueError("source and destination slots must differ")
        if self.occupancy[dst_offset] is not None:
            raise ValueError("destination slot is not empty")
        if self.occupancy[src_offset] is None:
            raise ValueError("source slot is empty")
        self.occupancy[dst_offset] = self.occupancy[src_offset]
        self.occupancy[src_offset] = None

    def check_permutation(self) -> None:
        """Raise if the occupancy stopped being a valid permutation."""
        present = [x for x in self.occupancy if x is not None]
        expected = self.layout.rows_per_subarray
        if len(present) != expected or len(set(present)) != expected:
            raise AssertionError("subarray occupancy is not a permutation")
        if self.layout.has_empty_row and self.occupancy.count(None) != 1:
            raise AssertionError("subarray must have exactly one empty slot")
