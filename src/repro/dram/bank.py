"""Per-bank timing state machine.

The bank enforces the JEDEC command spacings (paper Section II-A):
tRCD between ACT and RD/WR, tRAS before PRE, tRP before the next ACT,
tRC between ACTs, tCCD between column commands, tWR/tRTP write/read to
precharge, plus blocking windows for REF/RFM.

The bank also keeps the open-row state used by FR-FCFS scheduling and
counts command statistics for the power model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dram.commands import CommandType
from repro.dram.timing import TimingParams

#: Sentinel for "never constrained".
NEVER = -1


@dataclass
class BankStats:
    """Command counters used by the power model and the experiments."""

    acts: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    rfms: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    extra_act_cycles: int = 0   # total tRD_RM-style latency charged

    def merge(self, other: "BankStats") -> None:
        for name in vars(self):
            setattr(self, name, getattr(self, name) + getattr(other, name))

    @property
    def row_hit_rate(self) -> float:
        """Fraction of row-buffer lookups that hit the open row."""
        accesses = self.row_hits + self.row_misses
        return self.row_hits / accesses if accesses else 0.0


@dataclass
class Bank:
    """Timing and row-buffer state of one DRAM bank."""

    timing: TimingParams
    stats: BankStats = field(default_factory=BankStats)

    open_row: Optional[int] = None     # DA row latched in the row buffer

    # Earliest cycles at which each command class may issue.
    next_act: int = 0
    next_pre: int = 0
    next_rd: int = 0
    next_wr: int = 0
    busy_until: int = 0                # REF/RFM/mitigation blocking window

    def __post_init__(self) -> None:
        t = self.timing
        self._t = t
        # Composite delays used on every column command, summed once.
        self._rd_done = t.tCL + t.tBL
        self._wr_done = t.tCWL + t.tBL
        self._wr_to_rd = t.tCWL + t.tBL + t.tWTR_L
        self._wr_to_pre = t.tCWL + t.tBL + t.tWR

    # -- queries --------------------------------------------------------------

    def is_open(self, row: int) -> bool:
        return self.open_row == row

    def earliest_issue(self, kind: CommandType, cycle: int) -> int:
        """Earliest cycle >= ``cycle`` this command could legally issue.

        Does not check open-row semantics (the scheduler decides whether a
        PRE or ACT is needed); checks timing constraints only.
        """
        base = max(cycle, self.busy_until)
        if kind is CommandType.ACT:
            return max(base, self.next_act)
        if kind is CommandType.PRE:
            return max(base, self.next_pre)
        if kind is CommandType.RD:
            return max(base, self.next_rd)
        if kind is CommandType.WR:
            return max(base, self.next_wr)
        if kind in (CommandType.REF, CommandType.RFM):
            # Requires the bank precharged; the caller must PRE first.
            return max(base, self.next_act)
        raise ValueError(f"unsupported command: {kind}")

    # -- state transitions ------------------------------------------------------

    def issue_act(self, row: int, cycle: int, extra_latency: int = 0) -> None:
        """Issue ACT at ``cycle``; ``extra_latency`` is SHADOW's tRD_RM.

        The extra latency models the remapping-row read that precedes the
        real activation: the row buffer is usable (RD/WR) only after
        tRCD + extra, and restoration (tRAS) also starts ``extra`` late.
        """
        # Validation inlined (== earliest_issue(ACT) <= cycle): these
        # guards run once per DRAM command and are the issue-path floor.
        if cycle < self.next_act or cycle < self.busy_until:
            self._fail("ACT issued before its timing constraints allow")
        if self.open_row is not None:
            self._fail("ACT issued to an open bank")
        t = self._t
        self.open_row = row
        self.next_rd = cycle + t.tRCD + extra_latency
        self.next_wr = cycle + t.tRCD + extra_latency
        self.next_pre = cycle + t.tRAS + extra_latency
        self.next_act = cycle + t.tRC + extra_latency
        self.stats.acts += 1
        self.stats.extra_act_cycles += extra_latency

    def issue_pre(self, cycle: int) -> None:
        if cycle < self.next_pre or cycle < self.busy_until:
            self._fail("PRE issued before its timing constraints allow")
        self.open_row = None
        floor = cycle + self._t.tRP
        if floor > self.next_act:
            self.next_act = floor
        self.stats.precharges += 1

    def issue_rd(self, cycle: int) -> int:
        """Issue RD; returns the cycle the data burst completes."""
        if self.open_row is None:
            self._fail("RD issued to a closed bank")
        if cycle < self.next_rd or cycle < self.busy_until:
            self._fail("RD issued before its timing constraints allow")
        t = self._t
        ccd = cycle + t.tCCD_L
        self.next_rd = ccd
        if ccd > self.next_wr:
            self.next_wr = ccd
        rtp = cycle + t.tRTP
        if rtp > self.next_pre:
            self.next_pre = rtp
        self.stats.reads += 1
        return cycle + self._rd_done

    def issue_wr(self, cycle: int) -> int:
        """Issue WR; returns the cycle the write burst completes."""
        if self.open_row is None:
            self._fail("WR issued to a closed bank")
        if cycle < self.next_wr or cycle < self.busy_until:
            self._fail("WR issued before its timing constraints allow")
        t = self._t
        self.next_wr = cycle + t.tCCD_L
        rd = cycle + self._wr_to_rd
        if rd > self.next_rd:
            self.next_rd = rd
        pre = cycle + self._wr_to_pre
        if pre > self.next_pre:
            self.next_pre = pre
        self.stats.writes += 1
        return cycle + self._wr_done

    def issue_ref(self, cycle: int) -> int:
        """All-bank refresh touching this bank; returns completion cycle."""
        if self.open_row is not None:
            self._fail("REF requires a precharged bank")
        if cycle < self.next_act or cycle < self.busy_until:
            self._fail("REF issued before its timing constraints allow")
        done = cycle + self._t.tRFC
        if done > self.busy_until:
            self.busy_until = done
        if done > self.next_act:
            self.next_act = done
        self.stats.refreshes += 1
        return done

    def issue_rfm(self, cycle: int, duration: Optional[int] = None) -> int:
        """Per-bank RFM; blocks the bank for ``duration`` (default tRFM)."""
        if self.open_row is not None:
            self._fail("RFM requires a precharged bank")
        if cycle < self.next_act or cycle < self.busy_until:
            self._fail("RFM issued before its timing constraints allow")
        if duration is None:
            duration = self._t.tRFM
        done = cycle + duration
        if done > self.busy_until:
            self.busy_until = done
        if done > self.next_act:
            self.next_act = done
        self.stats.rfms += 1
        return done

    def block_until(self, cycle: int) -> None:
        """External blocking (RRS channel swaps, throttling windows)."""
        self.busy_until = max(self.busy_until, cycle)
        self.next_act = max(self.next_act, cycle)

    def add_act_penalty(self, cycles: int) -> None:
        """Delay the next ACT by internal work (TRR victim refreshes).

        The bank's currently-open row remains readable; only the next
        activation is pushed out, matching an in-DRAM TRR that runs after
        the aggressor row closes.
        """
        if cycles < 0:
            raise ValueError("penalty must be non-negative")
        self.next_act += cycles

    @staticmethod
    def _require(condition: bool, message: str) -> None:
        if not condition:
            raise RuntimeError(f"DRAM protocol violation: {message}")

    @staticmethod
    def _fail(message: str) -> None:
        raise RuntimeError(f"DRAM protocol violation: {message}")
