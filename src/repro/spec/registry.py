"""Central factory registries behind the declarative spec layer.

A :class:`Registry` maps names to factories.  Provider packages register
their factories **at import time** (``repro.mitigations`` and
``repro.core`` fill :data:`SCHEMES`, ``repro.workloads`` fills
:data:`WORKLOADS`, ``repro.dram.timing`` fills :data:`TIMINGS`); the
registry lazily imports its providers on first lookup, so merely
importing :mod:`repro.spec` never drags the whole simulator in, yet a
spec can always resolve its name.

Unknown names raise :class:`UnknownNameError` (a ``ValueError``) with a
did-you-mean suggestion and the full list of registered keys, so the CLI
and the engine share one source of truth for what exists -- they can
never diverge on scheme or workload construction again.
"""

from __future__ import annotations

import difflib
import importlib
import inspect
from typing import Any, Callable, Dict, Iterable, List, Optional


class UnknownNameError(ValueError):
    """A name not present in a registry (carries a did-you-mean hint)."""


def _source_identity(factory: Any):
    """Where a factory's code lives: ``(qualname, source file)``.

    A provider module executed as ``__main__`` (``python -m ...``) and
    later imported under its canonical name registers *distinct* objects
    compiled from the *same* source; those must not count as shadowing.
    """
    target = factory if inspect.isroutine(factory) else type(factory)
    try:
        filename = inspect.getfile(target)
    except TypeError:
        filename = None
    return getattr(target, "__qualname__", None), filename


class Registry:
    """A named factory table with lazy provider loading."""

    def __init__(self, kind: str, providers: Iterable[str] = ()):
        self.kind = kind
        self._providers = list(providers)
        self._entries: Dict[str, Callable[..., Any]] = {}
        self._loaded = False

    # -- registration (called by providers at import time) ---------------------

    def register(self, name: str,
                 factory: Optional[Callable[..., Any]] = None):
        """Register ``factory`` under ``name``; usable as a decorator.

        Re-registering a name with a different factory is an error --
        silent shadowing is exactly the divergence this layer removes.
        The one tolerated duplicate is the same source re-imported under
        another module name (``__main__`` vs canonical); the first
        registration wins so lookups stay stable.
        """
        def _add(fn: Callable[..., Any]) -> Callable[..., Any]:
            existing = self._entries.get(name)
            if existing is None:
                self._entries[name] = fn
            elif (existing is not fn
                  and _source_identity(existing) != _source_identity(fn)):
                raise ValueError(
                    f"{self.kind} {name!r} is already registered")
            return fn

        if factory is None:
            return _add
        return _add(factory)

    # -- lookup -----------------------------------------------------------------

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        for module in self._providers:
            importlib.import_module(module)

    def names(self) -> List[str]:
        """Every registered name, sorted."""
        self._ensure_loaded()
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        self._ensure_loaded()
        return name in self._entries

    def resolve(self, name: str) -> Callable[..., Any]:
        """The factory for ``name`` (did-you-mean error if unknown)."""
        self._ensure_loaded()
        try:
            return self._entries[name]
        except KeyError:
            hint = ""
            close = difflib.get_close_matches(name, self._entries, n=1)
            if close:
                hint = f" (did you mean {close[0]!r}?)"
            raise UnknownNameError(
                f"unknown {self.kind} {name!r}{hint}; "
                f"registered: {sorted(self._entries)}") from None

    def build(self, name: str, **params: Any) -> Any:
        """Instantiate ``name`` with keyword parameters."""
        return self.resolve(name)(**params)

    def accepts(self, name: str, *available: str) -> bool:
        """Whether ``name`` can be built from (a subset of) ``available``
        keyword arguments alone -- i.e. every required parameter of its
        factory is among them.  Lets the CLI offer exactly the schemes
        its flags can parameterise."""
        signature = inspect.signature(self.resolve(name))
        for param in signature.parameters.values():
            if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
                continue
            if param.default is param.empty and param.name not in available:
                return False
        return True

    def buildable_params(self, name: str, params: Dict[str, Any]
                         ) -> Dict[str, Any]:
        """The subset of ``params`` the factory for ``name`` accepts."""
        signature = inspect.signature(self.resolve(name))
        accepted = {
            p.name for p in signature.parameters.values()
            if p.kind not in (p.VAR_POSITIONAL,)
        }
        if any(p.kind == p.VAR_KEYWORD
               for p in signature.parameters.values()):
            return dict(params)
        return {k: v for k, v in params.items() if k in accepted}


#: Mitigation factories.  ``repro.mitigations`` registers the baselines
#: and comparison schemes; ``repro.core`` registers the SHADOW variants.
SCHEMES = Registry("scheme", providers=("repro.mitigations", "repro.core"))

#: Tracker structures for the tracker x policy x scope composition
#: layer (``repro.mitigations.compose``).  Loading the mitigation
#: package registers the generic adapters plus any scheme-private
#: trackers defined next to their scheme (the one-file-mitigation rule).
TRACKERS = Registry("tracker", providers=("repro.mitigations",))

#: Action policies -- the Section III mitigating-action taxonomy
#: (synchronous TRR, RFM-hosted TRR, throttling, row swaps) that
#: composed mitigations bind a tracker to.
POLICIES = Registry("policy", providers=("repro.mitigations",))

#: Workload-profile factories (each returns a tuple of profiles).
WORKLOADS = Registry("workload", providers=("repro.workloads",))

#: JEDEC timing parameter sets by speed-grade name.
TIMINGS = Registry("timing", providers=("repro.dram.timing",))

#: Graceful-degradation policies for detected-uncorrectable ECC errors
#: (``repro.faults`` registers retire / refresh-retry / panic / none).
FAULT_POLICIES = Registry("fault policy", providers=("repro.faults",))


__all__ = [
    "FAULT_POLICIES",
    "POLICIES",
    "Registry",
    "SCHEMES",
    "TIMINGS",
    "TRACKERS",
    "UnknownNameError",
    "WORKLOADS",
]
