"""Declarative configuration: typed specs + central factory registries.

One vocabulary describes every run in the repository -- ``(scheme x
workload x timing x fidelity)`` grid points are plain frozen dataclasses
that round-trip through JSON, and the factories they name live in
central registries the provider packages fill at import time.  The CLI,
the experiment engine, the figure drivers and the bench harness all
construct runs from this vocabulary, so a job is a JSON blob any worker
(local process pool today, remote shard tomorrow) can rehydrate.

See DESIGN.md section 11 for the architecture and cache-key derivation.
"""

from repro.spec.base import SpecBase, freeze, freeze_params, thaw, thaw_params
from repro.spec.registry import (
    FAULT_POLICIES,
    Registry,
    SCHEMES,
    TIMINGS,
    UnknownNameError,
    WORKLOADS,
)
from repro.spec.specs import (
    ExperimentSpec,
    FaultSpec,
    PointSpec,
    SchemeSpec,
    SimSpec,
    TimingSpec,
    WorkloadSpec,
    fault_spec,
    scheme_spec,
    workload_spec,
)

__all__ = [
    "ExperimentSpec",
    "FAULT_POLICIES",
    "FaultSpec",
    "PointSpec",
    "Registry",
    "SCHEMES",
    "SchemeSpec",
    "SimSpec",
    "SpecBase",
    "TIMINGS",
    "TimingSpec",
    "UnknownNameError",
    "WORKLOADS",
    "WorkloadSpec",
    "fault_spec",
    "freeze",
    "freeze_params",
    "scheme_spec",
    "thaw",
    "thaw_params",
    "workload_spec",
]
