"""The typed spec vocabulary: every run is constructible from data.

Five frozen dataclasses describe everything the experiment layer can
execute:

* :class:`SchemeSpec`   -- a mitigation: registry kind + parameters;
* :class:`WorkloadSpec` -- a workload: registry kind + parameters,
  resolving to a tuple of :class:`~repro.workloads.trace.WorkloadProfile`;
* :class:`TimingSpec`   -- a JEDEC speed grade by name, with optional
  field overrides;
* :class:`SimSpec`      -- the run-scale knobs of one simulation
  (timing + requests + seed + ...), buildable into a
  :class:`~repro.sim.system.SystemConfig`;
* :class:`ExperimentSpec` -- a whole figure/table: a grid of
  :class:`PointSpec` entries plus grouping/reporting hints, executed by
  the generic driver (:mod:`repro.experiments.driver`).

All of them round-trip through plain dicts (``from_dict(to_dict(s)) ==
s``), so an experiment -- and every job it expands into -- is a JSON
blob any worker process can rehydrate.  Factories are resolved through
the central registries (:mod:`repro.spec.registry`); no closure or
lambda ever crosses a process-pool boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.spec.base import (
    Params,
    SpecBase,
    freeze,
    freeze_params,
    thaw,
    thaw_params,
)
from repro.spec.registry import FAULT_POLICIES, SCHEMES, TIMINGS, WORKLOADS


@dataclass(frozen=True)
class SchemeSpec(SpecBase):
    """A mitigation named declaratively: registry kind + parameters.

    Hashable, picklable and JSON-able -- the properties a lambda factory
    lacks -- so it can ride in a job across process boundaries and into
    the cache key.
    """

    kind: str
    params: Params = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", freeze_params(self.params))
        SCHEMES.resolve(self.kind)   # raises with did-you-mean if unknown

    def build(self):
        """A fresh mitigation instance (per-run state never shared)."""
        return SCHEMES.build(self.kind, **thaw_params(self.params))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": thaw_params(self.params)}

    #: The cache-key fragment for this scheme (the historical name for
    #: ``to_dict`` -- the engine's job specs are keyed on this shape).
    payload = to_dict

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SchemeSpec":
        return cls(payload["kind"], freeze_params(payload.get("params", {})))


def scheme_spec(kind: str, **params: Any) -> SchemeSpec:
    """Convenience constructor with keyword parameters."""
    return SchemeSpec(kind, freeze_params(params))


@dataclass(frozen=True)
class WorkloadSpec(SpecBase):
    """A workload named declaratively, resolving to profile tuples."""

    kind: str
    params: Params = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", freeze_params(self.params))
        WORKLOADS.resolve(self.kind)

    def build(self) -> tuple:
        """The tuple of :class:`WorkloadProfile` this spec names."""
        return tuple(WORKLOADS.build(self.kind, **thaw_params(self.params)))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": thaw_params(self.params)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WorkloadSpec":
        return cls(payload["kind"], freeze_params(payload.get("params", {})))


def workload_spec(kind: str, **params: Any) -> WorkloadSpec:
    """Convenience constructor with keyword parameters."""
    return WorkloadSpec(kind, freeze_params(params))


@dataclass(frozen=True)
class TimingSpec(SpecBase):
    """A JEDEC speed grade by registry name, with field overrides."""

    grade: str = "DDR4-2666"
    overrides: Params = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "overrides", freeze_params(self.overrides))
        TIMINGS.resolve(self.grade)

    def build(self):
        """The :class:`~repro.dram.timing.TimingParams` this spec names."""
        import dataclasses as _dc
        timing = TIMINGS.build(self.grade)
        if self.overrides:
            timing = _dc.replace(timing, **thaw_params(self.overrides))
        return timing

    def to_dict(self) -> Dict[str, Any]:
        return {"grade": self.grade, "overrides": thaw_params(self.overrides)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TimingSpec":
        return cls(payload.get("grade", "DDR4-2666"),
                   freeze_params(payload.get("overrides", {})))


@dataclass(frozen=True)
class SimSpec(SpecBase):
    """Run-scale knobs of one simulation, mirroring ``SystemConfig``.

    The geometry is always the paper's Table IV organisation (128 banks)
    -- see :mod:`repro.experiments.configs` for why it never shrinks --
    so the spec only carries the knobs the experiments actually vary.
    """

    timing: TimingSpec = field(default_factory=TimingSpec)
    requests: int = 2000
    seed: int = 1
    mlp: int = 16
    cpu_ghz: float = 3.1
    enable_refresh: bool = True
    max_cycles: int = 2_000_000_000

    def __post_init__(self) -> None:
        if self.requests <= 0:
            raise ValueError("requests must be positive")

    def to_system_config(self):
        """The equivalent :class:`~repro.sim.system.SystemConfig`."""
        from repro.dram.device import DramGeometry
        from repro.sim.system import SystemConfig
        return SystemConfig(
            geometry=DramGeometry(),
            timing=self.timing.build(),
            requests_per_thread=self.requests,
            mlp=self.mlp,
            seed=self.seed,
            cpu_ghz=self.cpu_ghz,
            enable_refresh=self.enable_refresh,
            max_cycles=self.max_cycles,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "timing": self.timing.to_dict(),
            "requests": self.requests,
            "seed": self.seed,
            "mlp": self.mlp,
            "cpu_ghz": self.cpu_ghz,
            "enable_refresh": self.enable_refresh,
            "max_cycles": self.max_cycles,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimSpec":
        defaults = cls()
        return cls(
            timing=TimingSpec.from_dict(payload.get("timing", {})),
            requests=payload.get("requests", defaults.requests),
            seed=payload.get("seed", defaults.seed),
            mlp=payload.get("mlp", defaults.mlp),
            cpu_ghz=payload.get("cpu_ghz", defaults.cpu_ghz),
            enable_refresh=payload.get("enable_refresh",
                                       defaults.enable_refresh),
            max_cycles=payload.get("max_cycles", defaults.max_cycles),
        )


@dataclass(frozen=True)
class FaultSpec(SpecBase):
    """A fault-injection run named declaratively.

    Describes one :class:`~repro.faults.inject.FaultInjector`: the
    disturbance threshold and blast radius, the SEC-DED code shape, and
    the graceful-degradation policy (validated against the central
    ``FAULT_POLICIES`` registry).  Jobs carrying a ``FaultSpec`` fold it
    into their cache key; jobs without one keep their historical key.
    """

    hcnt: int = 4096
    blast_radius: int = 3
    policy: str = "retire"
    seed: int = 1
    data_bits: int = 64
    check_bits: int = 8
    codewords_per_row: int = 1024
    max_retries: int = 3
    scrub_on_refresh: bool = True
    refresh_hammers_neighbors: bool = False

    def __post_init__(self) -> None:
        if self.hcnt <= 0:
            raise ValueError("hcnt must be positive")
        if self.blast_radius < 0:
            raise ValueError("blast_radius must be non-negative")
        FAULT_POLICIES.resolve(self.policy)

    def build(self):
        """A fresh :class:`~repro.faults.inject.FaultInjector`."""
        from repro.faults import build_injector
        return build_injector(self)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hcnt": self.hcnt,
            "blast_radius": self.blast_radius,
            "policy": self.policy,
            "seed": self.seed,
            "data_bits": self.data_bits,
            "check_bits": self.check_bits,
            "codewords_per_row": self.codewords_per_row,
            "max_retries": self.max_retries,
            "scrub_on_refresh": self.scrub_on_refresh,
            "refresh_hammers_neighbors": self.refresh_hammers_neighbors,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSpec":
        defaults = cls()
        return cls(**{
            name: payload.get(name, getattr(defaults, name))
            for name in (
                "hcnt", "blast_radius", "policy", "seed", "data_bits",
                "check_bits", "codewords_per_row", "max_retries",
                "scrub_on_refresh", "refresh_hammers_neighbors",
            )
        })


def fault_spec(**params: Any) -> FaultSpec:
    """Convenience constructor mirroring :func:`scheme_spec`."""
    return FaultSpec(**params)


@dataclass(frozen=True)
class PointSpec(SpecBase):
    """One cell of an experiment grid.

    ``metric`` names how the cell's value is computed (a key of the
    driver's metric registry); ``group`` is the output path the value
    lands at -- several points sharing a path are averaged in order
    (e.g. fig8's per-app ratios within a SPEC group).  Simulation
    metrics carry workload/scheme/sim specs; analytic metrics (Table II
    security bounds, the circuit model) carry only ``params``.
    """

    metric: str
    group: Tuple[str, ...]
    workload: Optional[WorkloadSpec] = None
    scheme: Optional[SchemeSpec] = None
    sim: Optional[SimSpec] = None
    params: Params = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "group",
                           tuple(str(g) for g in self.group))
        object.__setattr__(self, "params", freeze_params(self.params))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "group": list(self.group),
            "workload": (self.workload.to_dict()
                         if self.workload is not None else None),
            "scheme": (self.scheme.to_dict()
                       if self.scheme is not None else None),
            "sim": self.sim.to_dict() if self.sim is not None else None,
            "params": thaw_params(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PointSpec":
        def load(key, spec_cls):
            value = payload.get(key)
            return spec_cls.from_dict(value) if value is not None else None
        return cls(
            metric=payload["metric"],
            group=tuple(payload.get("group", ())),
            workload=load("workload", WorkloadSpec),
            scheme=load("scheme", SchemeSpec),
            sim=load("sim", SimSpec),
            params=freeze_params(payload.get("params", {})),
        )


@dataclass(frozen=True)
class ExperimentSpec(SpecBase):
    """A whole figure/table as data: a grid of points + report hints.

    ``meta`` is static metadata merged verbatim into the result dict
    (``hcnt``, sweep lists, ...).  The generic driver interprets the
    spec; nothing about *how* to run it lives here.
    """

    name: str
    fidelity: str = "smoke"
    points: Tuple[PointSpec, ...] = ()
    meta: Params = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(self.points))
        object.__setattr__(self, "meta", freeze_params(self.meta))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "fidelity": self.fidelity,
            "points": [p.to_dict() for p in self.points],
            "meta": thaw_params(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentSpec":
        return cls(
            name=payload["name"],
            fidelity=payload.get("fidelity", "smoke"),
            points=tuple(PointSpec.from_dict(p)
                         for p in payload.get("points", ())),
            meta=freeze_params(payload.get("meta", {})),
        )


__all__ = [
    "ExperimentSpec",
    "FaultSpec",
    "PointSpec",
    "SchemeSpec",
    "SimSpec",
    "TimingSpec",
    "WorkloadSpec",
    "fault_spec",
    "freeze",
    "scheme_spec",
    "thaw",
    "workload_spec",
]
