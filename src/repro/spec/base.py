"""Shared machinery of the declarative spec layer.

Every spec dataclass in :mod:`repro.spec.specs` is **frozen** (usable as
a dict key, safe to share), **dict-round-trippable** (``from_dict(
to_dict(s)) == s``) and **canonically hashable** (``canonical_json`` is
key-order independent and defaulted-field complete, so its sha256 digest
is a stable identity defined by the data alone).  This module holds the
conversion helpers those guarantees rest on.

Parameter bags are stored internally as sorted tuples of ``(key,
value)`` pairs with every list frozen to a tuple -- the hashable normal
form -- and surface in ``to_dict`` as plain dicts/lists, the JSON normal
form.  Normalisation happens in ``__post_init__``, so two specs built
from differently-ordered inputs compare (and hash) equal.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Dict, Tuple

from repro.utils.cache import canonical_json

#: A normalised parameter bag: sorted, hashable ``(key, value)`` pairs.
Params = Tuple[Tuple[str, Any], ...]


def freeze(value: Any) -> Any:
    """The hashable normal form: lists/tuples to tuples, recursively."""
    if isinstance(value, dict):
        return tuple(sorted((str(k), freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    return value


def thaw(value: Any) -> Any:
    """The JSON normal form: tuples back to lists, recursively."""
    if isinstance(value, tuple):
        return [thaw(v) for v in value]
    return value


def freeze_params(params: Any) -> Params:
    """Normalise a parameter bag (dict or pair iterable) for storage."""
    if isinstance(params, dict):
        pairs = params.items()
    else:
        pairs = tuple(params)
    return tuple(sorted((str(k), freeze(v)) for k, v in pairs))


def thaw_params(params: Params) -> Dict[str, Any]:
    """A parameter bag as the plain keyword dict factories consume."""
    return {k: thaw(v) for k, v in params}


class SpecBase:
    """Mixin giving every spec dataclass one serialisation contract."""

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-able dict (every field present, lists not tuples)."""
        raise NotImplementedError

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpecBase":
        """Rebuild from :meth:`to_dict` output (missing fields default)."""
        raise NotImplementedError

    def canonical_json(self) -> str:
        """Key-order-independent JSON encoding of :meth:`to_dict`."""
        return canonical_json(self.to_dict())

    def digest(self) -> str:
        """sha256 of the canonical JSON: the spec's data-defined identity."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")).hexdigest()

    def replace(self, **changes) -> "SpecBase":
        return dataclasses.replace(self, **changes)


__all__ = [
    "Params",
    "SpecBase",
    "canonical_json",
    "freeze",
    "freeze_params",
    "thaw",
    "thaw_params",
]
