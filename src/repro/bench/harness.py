"""Pinned scheduler benchmarks and the report/regression machinery.

Every profile is fully seeded: the simulated outcome (cycles, command
counts) is deterministic, so ``cycles / wall_seconds`` is a clean
throughput metric for the command-level hot path.  Wall time is the only
noisy quantity; ``repeats`` takes the best of N runs to suppress jitter.

The report format (schema ``shadow-repro-bench/1``) keeps one entry per
variant (``quick`` / ``full``) so CI's quick runs compare against the
committed quick baseline rather than against full-length numbers.
"""

from __future__ import annotations

import cProfile
import json
import platform
import pstats
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.sim import System, SystemConfig
from repro.spec import FaultSpec, SchemeSpec
from repro.workloads.trace import WorkloadProfile

SCHEMA = "shadow-repro-bench/1"

#: Overhead-gate measurement shape: each timed block covers at least
#: this much wall (fast profiles run several times per block), and the
#: interleaved on/off block pairs repeat for this many rounds.
_GATE_BLOCK_SECONDS = 0.25
_GATE_MAX_INNER = 16
_GATE_ROUNDS = 9

#: Requests-per-thread divisor for the quick (CI) variant.
QUICK_DIVISOR = 8

# -- pinned workloads -----------------------------------------------------------

#: Streaming with high row-buffer locality: the open-row hit scan is the
#: hot path (FR-FCFS serves long runs of column commands per ACT).
_HIT_HEAVY = WorkloadProfile(
    name="bench-hit", mpki=50.0, row_buffer_locality=0.92,
    write_fraction=0.2, footprint_pages=256, sequential=True)

#: Near-zero locality over a wide footprint: almost every access is an
#: ACT/PRE pair, stressing the demand-candidate and rank-timing paths.
_CONFLICT_HEAVY = WorkloadProfile(
    name="bench-conflict", mpki=50.0, row_buffer_locality=0.05,
    write_fraction=0.3, footprint_pages=8192, zipf_alpha=0.4)

#: Low-intensity traffic whose inter-request gaps dwarf tREFI: the
#: refresh/idle-wake machinery dominates the event count.
_REFRESH_DOMINATED = WorkloadProfile(
    name="bench-refresh", mpki=0.6, row_buffer_locality=0.3,
    write_fraction=0.25, footprint_pages=1024)

#: Many mostly-idle threads with even sparser traffic than
#: ``bench-refresh``: nearly every simulated cycle is fast-forwarded, so
#: the event loop's horizon selection (not command issue) is the hot
#: path being measured.
_IDLE_HEAVY = WorkloadProfile(
    name="bench-idle", mpki=0.25, row_buffer_locality=0.4,
    write_fraction=0.25, footprint_pages=2048)


@dataclass(frozen=True)
class BenchProfile:
    """One pinned, seeded benchmark configuration.

    The mitigation is a declarative :class:`~repro.spec.SchemeSpec`
    (central-registry name + parameters) rather than a factory callable,
    so a profile -- like an engine job -- is plain, serialisable data.
    """

    name: str
    description: str
    workload: WorkloadProfile
    threads: int
    requests_per_thread: int
    seed: int
    scheme: SchemeSpec = field(
        default_factory=lambda: SchemeSpec("none"))
    enable_refresh: bool = True
    #: Optional in-loop fault injection (a declarative FaultSpec); the
    #: injector rides the controller's observer seam and never perturbs
    #: the simulated outcome, only wall time.
    faults: Optional[FaultSpec] = None

    def build(self, quick: bool, obs=None, observer=None) -> System:
        requests = self.requests_per_thread
        if quick:
            requests = max(64, requests // QUICK_DIVISOR)
        config = SystemConfig(requests_per_thread=requests, seed=self.seed,
                              enable_refresh=self.enable_refresh)
        if observer is None and self.faults is not None:
            observer = self.faults.build()
        return System([self.workload] * self.threads,
                      self.scheme.build(), observer=observer,
                      config=config, obs=obs)


BENCH_PROFILES: Dict[str, BenchProfile] = {
    p.name: p for p in (
        BenchProfile(
            name="hit-heavy",
            description="streaming row-buffer hits, no mitigation",
            workload=_HIT_HEAVY, threads=4,
            requests_per_thread=12000, seed=101),
        BenchProfile(
            name="conflict-heavy",
            description="row-miss traffic over a wide footprint",
            workload=_CONFLICT_HEAVY, threads=4,
            requests_per_thread=4000, seed=202),
        BenchProfile(
            name="shadow-rfm",
            description="SHADOW at RAAIMT=32: RFM-heavy + translation",
            workload=_CONFLICT_HEAVY, threads=4,
            requests_per_thread=3000, seed=303,
            scheme=SchemeSpec("shadow-raw", (("raaimt", 32),))),
        BenchProfile(
            name="refresh-dominated",
            description="sparse traffic; REF/idle-wake dominates events",
            workload=_REFRESH_DOMINATED, threads=2,
            requests_per_thread=1500, seed=404),
        BenchProfile(
            name="idle-heavy",
            description="many near-idle threads; event-horizon "
                        "fast-forward dominates",
            workload=_IDLE_HEAVY, threads=16,
            requests_per_thread=250, seed=505),
        BenchProfile(
            name="tracker-heavy",
            description="row-miss traffic into a composed tracker "
                        "scheme (DAPPER at a low threshold): per-ACT "
                        "observe, frequent RFM TRR work, REF-window "
                        "resets",
            workload=_CONFLICT_HEAVY, threads=4,
            requests_per_thread=3000, seed=606,
            scheme=SchemeSpec("dapper", (("hcnt", 1024),))),
        BenchProfile(
            name="faults-on",
            description="row-miss traffic with in-loop fault injection "
                        "at a tiny threshold: per-ACT disturbance "
                        "accumulation plus live ECC/recovery work",
            workload=_CONFLICT_HEAVY, threads=4,
            requests_per_thread=3000, seed=707,
            faults=FaultSpec(hcnt=64, policy="retire", seed=707)),
    )
}


# -- measurement ------------------------------------------------------------------

def _profile_top(profiler: cProfile.Profile, top_n: int) -> List[Dict]:
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        filename, lineno, name = func
        rows.append({
            "function": f"{Path(filename).name}:{lineno}({name})",
            "ncalls": nc,
            "tottime_s": round(tt, 4),
            "cumtime_s": round(ct, 4),
        })
    rows.sort(key=lambda r: r["cumtime_s"], reverse=True)
    return rows[:top_n]


def run_one(profile: BenchProfile, quick: bool = False, repeats: int = 1,
            with_cprofile: bool = False, top_n: int = 15,
            obs_factory: Optional[Callable[[], object]] = None) -> Dict:
    """Run one pinned profile; returns its report entry.

    ``obs_factory`` builds a fresh :class:`~repro.obs.Observability` per
    repeat (observability state is single-run); ``None`` benches the
    instrumentation-off fast path.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    best_wall = None
    result = None
    for _ in range(repeats):
        obs = obs_factory() if obs_factory is not None else None
        system = profile.build(quick, obs=obs)
        t0 = time.perf_counter()
        result = system.run()
        wall = time.perf_counter() - t0
        if obs is not None:
            obs.close()
        if best_wall is None or wall < best_wall:
            best_wall = wall
    entry = {
        "description": profile.description,
        "quick": quick,
        "threads": profile.threads,
        "requests": result.requests_issued,
        "cycles": result.cycles,
        "acts": result.stats.acts,
        "row_hits": result.stats.row_hits,
        "refreshes": result.refreshes,
        "rfms": result.rfms,
        "wall_s": round(best_wall, 4),
        "cycles_per_s": round(result.cycles / best_wall, 1),
    }
    if with_cprofile:
        system = profile.build(quick)
        profiler = cProfile.Profile()
        profiler.enable()
        system.run()
        profiler.disable()
        entry["cprofile_top"] = _profile_top(profiler, top_n)
    return entry


def run_bench(names: Optional[List[str]] = None, quick: bool = False,
              repeats: int = 1, with_cprofile: bool = False,
              log=print,
              obs_factory: Optional[Callable[[], object]] = None,
              keep_going: bool = False) -> Dict[str, Dict]:
    """Run the pinned profile set; returns ``{name: entry}``.

    With ``keep_going``, a profile that raises becomes an ``{"error":
    {"type", "message"}}`` entry and the sweep continues -- the report
    stays complete and :func:`check_regression` flags the failure --
    instead of one bad profile aborting the whole bench run.
    """
    if names is None:
        names = list(BENCH_PROFILES)
    unknown = sorted(set(names) - set(BENCH_PROFILES))
    if unknown:
        raise ValueError(f"unknown bench profiles: {unknown}; "
                         f"choose from {sorted(BENCH_PROFILES)}")
    results = {}
    for name in names:
        try:
            entry = run_one(BENCH_PROFILES[name], quick=quick,
                            repeats=repeats, with_cprofile=with_cprofile,
                            obs_factory=obs_factory)
        except Exception as exc:
            if not keep_going:
                raise
            entry = {
                "description": BENCH_PROFILES[name].description,
                "quick": quick,
                "error": {"type": type(exc).__name__,
                          "message": str(exc)},
            }
            results[name] = entry
            if log is not None:
                log(f"{name:>18}: FAILED "
                    f"({type(exc).__name__}: {exc})")
            continue
        results[name] = entry
        if log is not None:
            log(f"{name:>18}: {entry['cycles']:>9} cycles in "
                f"{entry['wall_s']:.2f}s -> {entry['cycles_per_s']:>10.0f} "
                f"cycles/s")
    return results


def _trace_obs_factory(trace_dir, profile_name: str):
    """Factory of per-repeat Observability hubs tracing to a file."""
    from repro.obs import Observability
    trace_dir = Path(trace_dir)
    trace_dir.mkdir(parents=True, exist_ok=True)
    path = trace_dir / f"{profile_name}.trace.json"

    def factory():
        return Observability.to_chrome(path, sample_interval=10_000)

    return factory


def run_overhead(names: Optional[List[str]] = None, quick: bool = False,
                 repeats: int = 1, trace_dir=None,
                 retry_over: Optional[float] = None,
                 log=print) -> Dict[str, Dict]:
    """Measure instrumentation overhead: each profile off vs fully on.

    The "on" leg enables metrics, Chrome tracing (to ``trace_dir`` when
    given, an in-memory sink otherwise) and the snapshot sampler -- the
    most expensive observability configuration.  Both legs run on this
    host back to back, so the ratio cancels machine speed; the committed
    baseline report plays no part.  Returns ``{name: {"off": entry,
    "on": entry, "overhead": fraction}}``.

    A percent-level ratio needs care on a noisy host, so the
    measurement differs from :func:`run_one` in three ways.  The legs
    are *interleaved* -- each round times one on and one off block back
    to back (order alternating), so load drift between legs cancels.
    Each timed block runs a fast profile several times back-to-back
    (``inner``) so every block covers at least ``_GATE_BLOCK_SECONDS``
    of wall: a ~20ms profile timed alone jitters by +-50% per draw,
    which no feasible number of rounds averages away.  And the per-leg
    estimate is the *second-smallest* block across rounds -- the plain
    minimum is an extreme statistic one lucky draw can skew, while
    means and medians absorb the host's multiplicative load bursts.

    ``retry_over`` (a fraction, normally the gate threshold): a profile
    whose first estimate exceeds it is measured once more and the lower
    of the two estimates kept.  Load-burst noise only ever *inflates* an
    estimate, so min-of-two-measurements is strictly closer to the true
    overhead; a genuine regression shows up in both and still fails.
    """
    if names is None:
        names = list(BENCH_PROFILES)
    unknown = sorted(set(names) - set(BENCH_PROFILES))
    if unknown:
        raise ValueError(f"unknown bench profiles: {unknown}; "
                         f"choose from {sorted(BENCH_PROFILES)}")
    from repro.obs import Observability
    results = {}
    for name in names:
        profile = BENCH_PROFILES[name]
        if trace_dir is not None:
            factory = _trace_obs_factory(trace_dir, name)
        else:
            def factory():
                return Observability.in_memory(sample_interval=10_000)

        def make_on(profile=profile, factory=factory):
            obs = factory()
            return profile.build(quick, obs=obs), obs

        results[name] = _overhead_gate(
            name, profile, quick, repeats, retry_over, make_on,
            what="observability", log=log)
    return results


def run_fault_overhead(names: Optional[List[str]] = None,
                       quick: bool = False, repeats: int = 1,
                       retry_over: Optional[float] = None,
                       log=print) -> Dict[str, Dict]:
    """Measure fault-injection overhead: each profile off vs injector on.

    The "on" leg attaches a fresh :class:`~repro.faults.FaultInjector`
    (default :class:`~repro.spec.FaultSpec`, so online disturbance
    accumulation at the paper's Hcnt) to the controller's observer
    seam; no other instrumentation runs, so the ratio isolates the
    per-ACT accumulation cost.  Shares :func:`run_overhead`'s
    interleaved-block statistics, and its probe-vs-on cycles check
    doubles as the passivity assert: injection must never perturb the
    simulated outcome.  Profiles that bake in their own ``faults``
    (e.g. ``faults-on``) are excluded -- their off leg would not be
    injection-free.
    """
    if names is None:
        names = [n for n, p in BENCH_PROFILES.items() if p.faults is None]
    unknown = sorted(set(names) - set(BENCH_PROFILES))
    if unknown:
        raise ValueError(f"unknown bench profiles: {unknown}; "
                         f"choose from {sorted(BENCH_PROFILES)}")
    baked = sorted(n for n in names if BENCH_PROFILES[n].faults is not None)
    if baked:
        raise ValueError(f"profiles {baked} bake in fault injection; "
                         f"their off leg cannot be injection-free")
    results = {}
    for name in names:
        profile = BENCH_PROFILES[name]

        def make_on(profile=profile):
            return profile.build(quick, observer=FaultSpec().build()), None

        results[name] = _overhead_gate(
            name, profile, quick, repeats, retry_over, make_on,
            what="fault injection", log=log)
    return results


def _overhead_gate(name: str, profile: BenchProfile, quick: bool,
                   repeats: int, retry_over: Optional[float], make_on,
                   what: str, log) -> Dict:
    """Interleaved on-vs-off measurement for one profile.

    ``make_on()`` builds one "on"-leg run as ``(system, closeable)``
    (closeable may be ``None``); the off leg is the bare profile.  See
    :func:`run_overhead` for the statistics rationale.  Raises
    ``RuntimeError`` if the on leg changes the simulated cycle count.
    """
    def block(inner, on=False):
        """One timed region of ``inner`` back-to-back fresh runs."""
        pairs = []
        for _ in range(inner):
            pairs.append(make_on() if on
                         else (profile.build(quick), None))
        t0 = time.perf_counter()
        result = None
        for system, _closer in pairs:
            result = system.run()
        wall = time.perf_counter() - t0
        for _system, closer in pairs:
            if closer is not None:
                closer.close()
        return wall, result

    probe_wall, probe = block(1)
    inner = min(_GATE_MAX_INNER, max(1, round(
        _GATE_BLOCK_SECONDS / max(probe_wall, 1e-6))))
    rounds = max(repeats, _GATE_ROUNDS)

    def measure():
        off_walls, on_walls, result = [], [], None
        for r in range(rounds):
            # Alternate leg order so within-round effects (GC debt,
            # a load burst spanning one pair) don't bias one leg.
            if r % 2 == 0:
                wall, result = block(inner, on=True)
                on_walls.append(wall)
                off_walls.append(block(inner)[0])
            else:
                off_walls.append(block(inner)[0])
                wall, result = block(inner, on=True)
                on_walls.append(wall)
        return sorted(off_walls)[1], sorted(on_walls)[1], result

    off_wall, on_wall, on_result = measure()
    if probe.cycles != on_result.cycles:
        raise RuntimeError(
            f"{name}: {what} changed the simulated outcome "
            f"({probe.cycles} vs {on_result.cycles} cycles)")
    overhead = on_wall / off_wall - 1.0
    if retry_over is not None and overhead > retry_over:
        off2, on2, on_result = measure()
        if on2 / off2 < on_wall / off_wall:
            off_wall, on_wall = off2, on2
            overhead = on_wall / off_wall - 1.0
    if log is not None:
        log(f"{name:>18}: off {off_wall / inner:.3f}s, on "
            f"{on_wall / inner:.3f}s (x{inner} runs/block) "
            f"-> {overhead:+.1%} overhead")
    return {
        "off": _leg_entry(off_wall, inner, probe),
        "on": _leg_entry(on_wall, inner, on_result),
        "overhead": round(overhead, 4),
    }


def _leg_entry(block_wall: float, inner: int, result) -> Dict:
    """Report entry for one overhead-gate leg (per-run normalized)."""
    wall = block_wall / inner
    return {
        "cycles": result.cycles,
        "requests": result.requests_issued,
        "wall_s": round(wall, 4),
        "cycles_per_s": round(result.cycles / wall, 1),
        "runs_per_block": inner,
    }


def check_overhead(results: Dict[str, Dict],
                   max_overhead: float) -> List[str]:
    """Failure messages for profiles whose on-vs-off overhead exceeds
    ``max_overhead`` (a fraction, e.g. 0.15)."""
    if max_overhead <= 0:
        raise ValueError("max_overhead must be positive")
    failures = []
    for name, entry in results.items():
        if entry["overhead"] > max_overhead:
            failures.append(
                f"{name}: instrumentation overhead {entry['overhead']:+.1%} "
                f"exceeds {max_overhead:.0%}")
    return failures


# -- report I/O ---------------------------------------------------------------------

def load_report(path) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_report(path, variant: str, results: Dict[str, Dict],
                 extra: Optional[Dict] = None) -> Dict:
    """Merge ``results`` for ``variant`` into the report at ``path``.

    Existing entries for other variants (and any ``pre_pr`` reference
    section) are preserved so one file carries the whole trajectory.
    """
    path = Path(path)
    report = {}
    if path.exists():
        report = load_report(path)
    report.setdefault("schema", SCHEMA)
    report["host"] = {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }
    report.setdefault("variants", {})[variant] = results
    if extra:
        report.update(extra)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return report


def check_regression(results: Dict[str, Dict], baseline: Dict,
                     variant: str, max_regression: float) -> List[str]:
    """Compare ``results`` against a report's matching variant.

    Returns failure messages for every profile whose cycles/s dropped by
    more than ``max_regression`` (a fraction, e.g. 0.30).  Profiles
    missing from the baseline are skipped (new profiles are allowed).
    """
    if not 0 <= max_regression < 1:
        raise ValueError("max_regression must be in [0, 1)")
    base_variant = baseline.get("variants", {}).get(variant, {})
    failures = []
    for name, entry in results.items():
        if "error" in entry:
            failures.append(
                f"{name}: failed to run ({entry['error']['type']}: "
                f"{entry['error']['message']})")
            continue
        base = base_variant.get(name)
        if base is None:
            continue
        floor = base["cycles_per_s"] * (1.0 - max_regression)
        if entry["cycles_per_s"] < floor:
            failures.append(
                f"{name}: {entry['cycles_per_s']:.0f} cycles/s is below "
                f"{floor:.0f} (baseline {base['cycles_per_s']:.0f} "
                f"- {max_regression:.0%})")
    return failures
