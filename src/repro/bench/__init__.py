"""Simulator hot-path benchmarking (``shadow-repro bench``).

The bench harness pins a small set of seeded system configurations that
each stress a different scheduler regime (row-hit streaming, row-miss
conflicts, RFM-heavy SHADOW traffic, refresh-dominated idling), measures
cycles-simulated-per-second for each, and writes a machine-readable
report (``BENCH_PR2.json``) so successive PRs accumulate a performance
trajectory.  CI runs the quick variant and fails on large regressions.
"""

from repro.bench.harness import (
    BENCH_PROFILES,
    BenchProfile,
    check_overhead,
    check_regression,
    load_report,
    run_bench,
    run_fault_overhead,
    run_overhead,
    write_report,
)

__all__ = [
    "BENCH_PROFILES",
    "BenchProfile",
    "check_overhead",
    "check_regression",
    "load_report",
    "run_bench",
    "run_fault_overhead",
    "run_overhead",
    "write_report",
]
