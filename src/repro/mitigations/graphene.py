"""Graphene: Misra-Gries-tracked TRR at the memory controller
(Park et al., MICRO 2020).

Composition: ``misra-gries x trr-threshold x bank/ref-window``.

Each bank has a Misra-Gries heavy-hitters table; whenever a row's
estimated count crosses the TRR threshold, the controller immediately
refreshes the row's neighbours and resets the entry.  Unlike the
RFM-hosted schemes the mitigation cost lands synchronously on the bank
(one tRC per victim refresh, modelled as an ACT penalty).

Used in the reproduction's ablations and as the tracker reference the
paper's related-work section discusses; not part of the headline
figures.
"""

from __future__ import annotations

from typing import Optional

from repro.mitigations.compose import (
    ComposedMitigation,
    RefWindowResetMixin,
    Scope,
    ThresholdTrr,
    TrackerSpec,
)
from repro.rowhammer.model import blast_weight_sum


class Graphene(RefWindowResetMixin, ComposedMitigation):
    """MC-side Misra-Gries TRR."""

    def __init__(self, hcnt: int, blast_radius: int = 1,
                 table_entries: Optional[int] = None):
        if hcnt <= 4:
            raise ValueError("hcnt too small to derive a TRR threshold")
        self.blast_radius = max(1, blast_radius)
        # TRR threshold: a victim accumulates at most W_sum weighted
        # disturbance per tracked-aggressor count, so trigger with margin.
        self.threshold = max(
            1, int(hcnt / (2 * blast_weight_sum(self.blast_radius))))
        # Misra-Gries guarantee needs one entry per threshold-sized slice
        # of the worst-case ACTs in a refresh window; Graphene sizes the
        # table as acts_per_trefw / threshold.  We default to that bound
        # for a tRC-limited bank (resolved at bind, see below).
        self.table_entries = table_entries
        super().__init__(
            tracker=TrackerSpec.of(
                "misra-gries", entries=lambda g, t: self.table_entries),
            policy=ThresholdTrr(self.threshold, self.blast_radius),
            scope=Scope(per="bank", reset="ref-window"),
            name=f"Graphene-h{hcnt}",
        )

    def bind(self, geometry, timing) -> None:
        super().bind(geometry, timing)
        if self.table_entries is None:
            acts_per_window = timing.tREFW // timing.tRC
            self.table_entries = max(16, acts_per_window // self.threshold)
