"""Graphene: Misra-Gries-tracked TRR at the memory controller
(Park et al., MICRO 2020).

Each bank has a Misra-Gries heavy-hitters table; whenever a row's
estimated count crosses the TRR threshold, the controller immediately
refreshes the row's neighbours and resets the entry.  Unlike the
RFM-hosted schemes the mitigation cost lands synchronously on the bank
(one tRC per victim refresh, modelled as an ACT penalty).

Used in the reproduction's ablations and as the tracker reference the
paper's related-work section discusses; not part of the headline
figures.
"""

from __future__ import annotations

from typing import Dict

from repro.dram.device import BankAddress
from repro.mitigations.base import ActOutcome, Mitigation
from repro.rowhammer.model import blast_weight_sum


class Graphene(Mitigation):
    """MC-side Misra-Gries TRR."""

    def __init__(self, hcnt: int, blast_radius: int = 1,
                 table_entries: int = None):
        super().__init__()
        if hcnt <= 4:
            raise ValueError("hcnt too small to derive a TRR threshold")
        self.blast_radius = max(1, blast_radius)
        # TRR threshold: a victim accumulates at most W_sum weighted
        # disturbance per tracked-aggressor count, so trigger with margin.
        self.threshold = max(
            1, int(hcnt / (2 * blast_weight_sum(self.blast_radius))))
        # Misra-Gries guarantee needs one entry per threshold-sized slice
        # of the worst-case ACTs in a refresh window; Graphene sizes the
        # table as acts_per_trefw / threshold.  We default to that bound
        # for a tRC-limited bank.
        self.table_entries = table_entries
        self._tables: Dict[BankAddress, "MisraGries"] = {}
        self.trr_count = 0
        self.name = f"Graphene-h{hcnt}"

    def bind(self, geometry, timing) -> None:
        super().bind(geometry, timing)
        if self.table_entries is None:
            acts_per_window = timing.tREFW // timing.tRC
            self.table_entries = max(16, acts_per_window // self.threshold)

    def on_activate(self, addr: BankAddress, pa_row: int, da_row: int,
                    cycle: int) -> ActOutcome:
        from repro.mitigations.trackers import MisraGries
        table = self._tables.setdefault(
            addr, MisraGries(self.table_entries))
        estimate = table.observe(da_row)
        if estimate < self.threshold:
            return ActOutcome()
        table.reset_key(da_row)
        layout = self.geometry.layout
        victims = [row for row, _d in
                   layout.da_neighbors(da_row, self.blast_radius)]
        self.trr_count += len(victims)
        return ActOutcome(trr_rows=victims)

    def on_ref(self, addr: BankAddress, lo_row: int, hi_row: int,
               cycle: int) -> None:
        # A refresh window boundary resets the threat; clearing per-REF
        # segment would be more precise but strictly weaker for the
        # attacker, so Graphene clears its table once per full window
        # sweep (approximated by clearing when the sweep wraps to row 0).
        if lo_row == 0 and addr in self._tables:
            self._tables[addr].clear()
