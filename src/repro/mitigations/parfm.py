"""PARFM: PARA hosted on the RFM interface (paper Section VII-C).

Composition: ``recent-history x rfm-trr-sampled x bank``.

On every RFM command the device refreshes the neighbours of one row
sampled uniformly from the RAAIMT rows activated since the previous RFM.
It is the natural "what if we only had RFM + randomness" baseline: the
same trigger as SHADOW, but a TRR mitigating action instead of a
row-shuffle.

Protection scaling: a TRR action protects exactly one victim
neighbourhood, and under a blast radius ``B`` the victims charge
``W_sum(B)/W_sum(1)`` times faster, so PARFM's secure RAAIMT shrinks
both relative to SHADOW's (about 2x, since the shuffle destroys the
victim's *accumulated* disturbance while TRR merely resets it for one
neighbourhood) and with the radius.  :func:`parfm_raaimt` encodes that
derivation; the experiments use it to configure each ``H_cnt`` point for
the same 1%/year budget the paper uses.
"""

from __future__ import annotations

from typing import Optional

from repro.mitigations.compose import (
    ComposedMitigation,
    RfmTrrSampled,
    Scope,
    TrackerSpec,
)
from repro.rowhammer.model import blast_weight_sum
from repro.utils.rng import RandomSource, SystemRng

#: SHADOW's secure RAAIMT per H_cnt (paper Table II diagonal).
SHADOW_SECURE_RAAIMT = {16384: 256, 8192: 128, 4096: 64, 2048: 32}


def shadow_raaimt(hcnt: int) -> int:
    """The secure SHADOW RAAIMT for ``hcnt`` (Table II, bold entries)."""
    if hcnt in SHADOW_SECURE_RAAIMT:
        return SHADOW_SECURE_RAAIMT[hcnt]
    # General rule behind the table: RAAIMT scales linearly with hcnt.
    return max(1, hcnt // 64)


def parfm_raaimt(hcnt: int, blast_radius: int = 1) -> int:
    """PARFM's secure RAAIMT for the same 1%/year budget.

    Half of SHADOW's at the same threshold (TRR resets one
    neighbourhood's charge; the shuffle relocates the aggressor itself),
    further derated by the blast weight when the radius grows.
    """
    base = shadow_raaimt(hcnt) // 2
    scale = blast_weight_sum(1) / blast_weight_sum(max(1, blast_radius))
    return max(1, int(base * scale))


class Parfm(ComposedMitigation):
    """PARA-with-RFM: TRR on a sampled recent aggressor at every RFM."""

    def __init__(self, raaimt: int, blast_radius: int = 1,
                 rng: Optional[RandomSource] = None):
        if raaimt <= 0:
            raise ValueError("raaimt must be positive")
        if blast_radius < 1:
            raise ValueError("blast_radius must be >= 1")
        self._raaimt = raaimt
        self.blast_radius = blast_radius
        self.rng = rng or SystemRng(0x9A7F)
        super().__init__(
            tracker=TrackerSpec.of("recent-history", depth=raaimt),
            policy=RfmTrrSampled(blast_radius),
            scope=Scope(per="bank"),
            name=f"PARFM-r{raaimt}-b{blast_radius}",
        )

    @classmethod
    def for_hcnt(cls, hcnt: int, blast_radius: int = 1,
                 rng: Optional[RandomSource] = None) -> "Parfm":
        return cls(parfm_raaimt(hcnt, blast_radius), blast_radius, rng)

    @property
    def uses_rfm(self) -> bool:
        return True

    @property
    def raaimt(self) -> int:
        return self._raaimt
