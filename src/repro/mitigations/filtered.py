"""RFM filtering with a random-projection counter (paper Section VIII).

The paper's final discussion point: BlockHammer/Hydra-style filtering
structures (dual counting Bloom filters, group-count tables) can sit in
front of the RFM interface and skip RFM commands when no tracked row is
anywhere near dangerous, reclaiming most of the RFM performance tax on
benign workloads while leaving the defense intact under attack.

:class:`FilteredRfm` wraps any RFM-based mitigation (SHADOW, PARFM,
Mithril): the RAA counters still run at RAAIMT, but when an RFM window
arrives and the filter's hottest estimate is below the hazard
threshold, the wrapped scheme's in-DRAM work is skipped (the window
still obeys tRFM -- the JEDEC interface provisions it either way; the
filter saves the *extra* mitigations a scheme would otherwise need and,
with ``elide_rfm``, models a future interface that drops the command
entirely).
"""

from __future__ import annotations

from typing import Dict

from repro.dram.device import BankAddress
from repro.mitigations.base import ActOutcome, Mitigation, RfmOutcome
from repro.mitigations.compose import Tracker
from repro.spec.registry import TRACKERS


class FilteredRfm(Mitigation):
    """Hazard-filtered wrapper around an RFM-based mitigation."""

    def __init__(self, inner: Mitigation, hazard_threshold: int,
                 cbf_width: int = 1024, cbf_depth: int = 4,
                 elide_rfm: bool = False):
        super().__init__()
        if not inner.uses_rfm:
            raise ValueError("FilteredRfm wraps RFM-based schemes only")
        if hazard_threshold <= 0:
            raise ValueError("hazard_threshold must be positive")
        self.inner = inner
        self.hazard_threshold = hazard_threshold
        self.cbf_width = cbf_width
        self.cbf_depth = cbf_depth
        self.elide_rfm = elide_rfm
        self._filters: Dict[BankAddress, Tracker] = {}
        self._hot: Dict[BankAddress, int] = {}
        self.rfms_filtered = 0
        self.rfms_passed = 0
        self.name = f"Filtered({inner.name},t{hazard_threshold})"

    def bind(self, geometry, timing) -> None:
        super().bind(geometry, timing)
        self.inner.bind(geometry, timing)
        self._epoch = max(1, timing.tREFW // 2)

    # -- pass-through surface ------------------------------------------------------

    @property
    def act_extra_cycles(self) -> int:
        return self.inner.act_extra_cycles

    @property
    def uses_rfm(self) -> bool:
        return True

    @property
    def raaimt(self) -> int:
        return self.inner.raaimt

    @property
    def refresh_interval_scale(self) -> float:
        return self.inner.refresh_interval_scale

    def translate(self, addr: BankAddress, pa_row: int) -> int:
        return self.inner.translate(addr, pa_row)

    def translation_generation(self, addr: BankAddress) -> int:
        return self.inner.translation_generation(addr)

    def register_translation_listener(self, callback) -> None:
        # Translation is delegated to the inner scheme, so its bumps are
        # the ones listeners care about.
        self.inner.register_translation_listener(callback)

    def register_event_listener(self, callback) -> None:
        # Both layers emit telemetry: the wrapper reports filtered RFMs,
        # the inner scheme its shuffles/refreshes.
        super().register_event_listener(callback)
        self.inner.register_event_listener(callback)

    def before_activate(self, addr: BankAddress, pa_row: int,
                        cycle: int) -> int:
        return self.inner.before_activate(addr, pa_row, cycle)

    def on_ref(self, addr: BankAddress, lo_row: int, hi_row: int,
               cycle: int) -> None:
        self.inner.on_ref(addr, lo_row, hi_row, cycle)

    # -- the filter ------------------------------------------------------------------

    def _filter(self, addr: BankAddress) -> Tracker:
        f = self._filters.get(addr)
        if f is None:
            # Built through the tracker registry so the filter rides the
            # same protocol (and telemetry surface) as scheme trackers.
            f = TRACKERS.build("dcbf", width=self.cbf_width,
                               epoch_cycles=self._epoch,
                               depth=self.cbf_depth)
            self._filters[addr] = f
        return f

    def on_activate(self, addr: BankAddress, pa_row: int, da_row: int,
                    cycle: int) -> ActOutcome:
        f = self._filter(addr)
        f.observe(da_row, cycle)
        estimate = f.estimate(da_row, cycle)
        if estimate > self._hot.get(addr, 0):
            self._hot[addr] = estimate
        return self.inner.on_activate(addr, pa_row, da_row, cycle)

    def hazard(self, addr: BankAddress, cycle: int) -> bool:
        """Was any row of this bank near the hazard threshold since the
        last RFM?  Conservative: the sketch never undercounts, so a
        False answer is always safe to act on."""
        return self._hot.get(addr, 0) >= self.hazard_threshold

    def on_rfm(self, addr: BankAddress, cycle: int) -> RfmOutcome:
        hazardous = self.hazard(addr, cycle)
        self._hot[addr] = 0
        if not hazardous:
            self.rfms_filtered += 1
            if self._event_listeners:
                self.emit_event("rfm-filtered", addr, cycle)
            return RfmOutcome(duration=0)
        self.rfms_passed += 1
        return self.inner.on_rfm(addr, cycle)
