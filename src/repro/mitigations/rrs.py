"""Randomized Row-Swap (Saileshwar et al., ASPLOS 2022).

The state-of-the-art row-shuffle *competitor* to SHADOW: a Misra-Gries
tracker at the MC samples hot rows; when a row's count crosses the swap
threshold (the paper favourably grants RRS ``H_cnt / 6``), the MC swaps
it with a uniformly random row of the bank through an indirection
table.

The decisive cost (paper Section III-A): each swap streams two rows
through the memory channel, blocking it for >= 4 microseconds.  At low
``H_cnt`` the swap rate explodes and so does the blocking time -- the
mechanism behind RRS's collapse in Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dram.device import BankAddress
from repro.mitigations.base import ActOutcome, Mitigation
from repro.mitigations.trackers import MisraGries
from repro.utils.rng import RandomSource, SystemRng


@dataclass(frozen=True)
class RrsConfig:
    """RRS sizing for a target ``H_cnt``."""

    hcnt: int
    swap_latency_ns: float = 4000.0   # paper Section III-A: >= 4 us
    threshold_divisor: int = 6        # paper Section VII-C: hcnt/6
    table_entries: int = None

    def __post_init__(self) -> None:
        if self.hcnt <= self.threshold_divisor:
            raise ValueError("hcnt too small for the swap threshold")

    @property
    def swap_threshold(self) -> int:
        return max(1, self.hcnt // self.threshold_divisor)


class _BankIndirection:
    """The Row Indirection Table of one bank: a PA->DA permutation."""

    def __init__(self, identity):
        self._identity = identity
        self._forward: Dict[int, int] = {}
        self.swap_count = 0

    def translate(self, pa_row: int) -> int:
        da = self._forward.get(pa_row)
        if da is None:
            return self._identity(pa_row)
        return da

    def swap(self, pa_a: int, pa_b: int) -> None:
        da_a, da_b = self.translate(pa_a), self.translate(pa_b)
        self._forward[pa_a] = da_b
        self._forward[pa_b] = da_a
        self.swap_count += 1

    @property
    def moved_rows(self) -> int:
        return len(self._forward)


class RandomizedRowSwap(Mitigation):
    """Misra-Gries sampling + channel-blocking row swaps."""

    def __init__(self, config: RrsConfig, rng: RandomSource = None):
        super().__init__()
        self.config = config
        self.rng = rng or SystemRng(0x5A5A)
        self._trackers: Dict[BankAddress, MisraGries] = {}
        self._tables: Dict[BankAddress, _BankIndirection] = {}
        self.swaps = 0
        self.name = f"RRS-h{config.hcnt}"
        self._swap_cycles = None
        self._entries = None

    @classmethod
    def for_hcnt(cls, hcnt: int, rng: RandomSource = None) -> "RandomizedRowSwap":
        return cls(RrsConfig(hcnt=hcnt), rng)

    def bind(self, geometry, timing) -> None:
        super().bind(geometry, timing)
        self._swap_cycles = timing.cycles(self.config.swap_latency_ns)
        if self.config.table_entries is not None:
            self._entries = self.config.table_entries
        else:
            # Misra-Gries sizing: worst-case ACTs per window / threshold.
            acts_per_window = timing.tREFW // timing.tRC
            self._entries = max(
                16, acts_per_window // self.config.swap_threshold)

    # -- address translation ----------------------------------------------------

    def _table(self, addr: BankAddress) -> _BankIndirection:
        table = self._tables.get(addr)
        if table is None:
            table = _BankIndirection(self.geometry.layout.identity_da)
            self._tables[addr] = table
        return table

    def translate(self, addr: BankAddress, pa_row: int) -> int:
        self._require_bound()
        return self._table(addr).translate(pa_row)

    def translation_generation(self, addr: BankAddress) -> int:
        table = self._tables.get(addr)
        return table.swap_count if table is not None else 0

    # -- swap logic ---------------------------------------------------------------

    def on_activate(self, addr: BankAddress, pa_row: int, da_row: int,
                    cycle: int) -> ActOutcome:
        tracker = self._trackers.setdefault(addr, MisraGries(self._entries))
        estimate = tracker.observe(pa_row)
        if estimate < self.config.swap_threshold:
            return ActOutcome()
        partner = self.rng.randrange(self.geometry.rows_per_bank)
        if partner == pa_row:
            partner = (partner + 1) % self.geometry.rows_per_bank
        table = self._table(addr)
        old_a, old_b = table.translate(pa_row), table.translate(partner)
        table.swap(pa_row, partner)
        self.notify_translation_changed(addr)
        tracker.reset_key(pa_row)
        tracker.reset_key(partner)
        self.swaps += 1
        if self._event_listeners:
            self.emit_event("swap", addr, cycle, {
                "pa_a": pa_row, "pa_b": partner,
                "da_a": old_a, "da_b": old_b,
                "block_cycles": self._swap_cycles,
            })
        # The swap streams both rows over the channel: both physical rows
        # end up rewritten (fault reset) and the channel blocks.
        return ActOutcome(
            channel_block_cycles=self._swap_cycles,
            restored_rows=[old_a, old_b],
        )
