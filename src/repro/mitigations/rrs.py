"""Randomized Row-Swap (Saileshwar et al., ASPLOS 2022).

Composition: ``misra-gries x row-swap x bank`` -- with the swap policy
(and its indirection-table state) defined here, next to the scheme: the
one-file pattern a new action-policy mitigation follows.

The state-of-the-art row-shuffle *competitor* to SHADOW: a Misra-Gries
tracker at the MC samples hot rows; when a row's count crosses the swap
threshold (the paper favourably grants RRS ``H_cnt / 6``), the MC swaps
it with a uniformly random row of the bank through an indirection
table.

The decisive cost (paper Section III-A): each swap streams two rows
through the memory channel, blocking it for >= 4 microseconds.  At low
``H_cnt`` the swap rate explodes and so does the blocking time -- the
mechanism behind RRS's collapse in Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dram.device import BankAddress
from repro.mitigations.base import ActOutcome
from repro.mitigations.compose import (
    ActionPolicy,
    ComposedMitigation,
    Scope,
    TrackerSpec,
)
from repro.spec.registry import POLICIES
from repro.utils.rng import RandomSource, SystemRng


@dataclass(frozen=True)
class RrsConfig:
    """RRS sizing for a target ``H_cnt``."""

    hcnt: int
    swap_latency_ns: float = 4000.0   # paper Section III-A: >= 4 us
    threshold_divisor: int = 6        # paper Section VII-C: hcnt/6
    table_entries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.hcnt <= self.threshold_divisor:
            raise ValueError("hcnt too small for the swap threshold")

    @property
    def swap_threshold(self) -> int:
        return max(1, self.hcnt // self.threshold_divisor)


class _BankIndirection:
    """The Row Indirection Table of one bank: a PA->DA permutation."""

    def __init__(self, identity):
        self._identity = identity
        self._forward: Dict[int, int] = {}
        self.swap_count = 0

    def translate(self, pa_row: int) -> int:
        da = self._forward.get(pa_row)
        if da is None:
            return self._identity(pa_row)
        return da

    def swap(self, pa_a: int, pa_b: int) -> None:
        da_a, da_b = self.translate(pa_a), self.translate(pa_b)
        self._forward[pa_a] = da_b
        self._forward[pa_b] = da_a
        self.swap_count += 1

    @property
    def moved_rows(self) -> int:
        return len(self._forward)


@POLICIES.register("row-swap")
class RowSwapPolicy(ActionPolicy):
    """Swap a threshold-crossing row with a uniformly random partner
    through the bank's indirection table, blocking the channel for the
    two-row stream.  Per-scope state is the indirection table."""

    kind = "row-swap"

    def __init__(self, threshold: int, swap_latency_ns: float = 4000.0):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.swap_latency_ns = swap_latency_ns
        self.block_cycles: Optional[int] = None

    def bind(self, owner) -> None:
        self.block_cycles = owner.timing.cycles(self.swap_latency_ns)

    def make_state(self, owner) -> _BankIndirection:
        return _BankIndirection(owner.geometry.layout.identity_da)

    def on_activate(self, owner, state, addr, pa_row, da_row, cycle):
        estimate = state.tracker.observe(pa_row)
        if estimate < self.threshold:
            return ActOutcome()
        partner = owner.rng.randrange(owner.geometry.rows_per_bank)
        if partner == pa_row:
            partner = (partner + 1) % owner.geometry.rows_per_bank
        table = state.policy
        old_a, old_b = table.translate(pa_row), table.translate(partner)
        table.swap(pa_row, partner)
        owner.notify_translation_changed(addr)
        state.tracker.reset_key(pa_row)
        state.tracker.reset_key(partner)
        owner.swaps += 1
        if owner._event_listeners:
            owner.emit_event("swap", addr, cycle, {
                "pa_a": pa_row, "pa_b": partner,
                "da_a": old_a, "da_b": old_b,
                "block_cycles": self.block_cycles,
            })
        # The swap streams both rows over the channel: both physical rows
        # end up rewritten (fault reset) and the channel blocks.
        return ActOutcome(
            channel_block_cycles=self.block_cycles,
            restored_rows=[old_a, old_b],
        )


class RandomizedRowSwap(ComposedMitigation):
    """Misra-Gries sampling + channel-blocking row swaps."""

    def __init__(self, config: RrsConfig,
                 rng: Optional[RandomSource] = None):
        self.config = config
        self.rng = rng or SystemRng(0x5A5A)
        super().__init__(
            tracker=TrackerSpec.of("misra-gries", entries=self._entries_for),
            policy=RowSwapPolicy(config.swap_threshold,
                                 config.swap_latency_ns),
            scope=Scope(per="bank"),
            name=f"RRS-h{config.hcnt}",
        )
        self.swaps = 0

    @classmethod
    def for_hcnt(cls, hcnt: int,
                 rng: Optional[RandomSource] = None) -> "RandomizedRowSwap":
        return cls(RrsConfig(hcnt=hcnt), rng)

    def _entries_for(self, geometry, timing) -> int:
        if self.config.table_entries is not None:
            return self.config.table_entries
        # Misra-Gries sizing: worst-case ACTs per window / threshold.
        acts_per_window = timing.tREFW // timing.tRC
        return max(16, acts_per_window // self.config.swap_threshold)

    # -- address translation ----------------------------------------------------

    def translate(self, addr: BankAddress, pa_row: int) -> int:
        self._require_bound()
        return self._state(addr).policy.translate(pa_row)

    def translation_generation(self, addr: BankAddress) -> int:
        state = self._peek_state(addr)
        return state.policy.swap_count if state is not None else 0
