"""Double refresh rate (DRR).

The industry's first RH response: halve tREFI so every row refreshes
twice per tREFW, shrinking the attack window.  Cheap to deploy, but the
extra refreshes cost bandwidth and energy, and the protection factor is
only 2x -- far from sufficient at modern thresholds (paper Figure 8 uses
it as the "blunt instrument" yardstick).
"""

from __future__ import annotations

from repro.mitigations.base import Mitigation


class DoubleRefreshRate(Mitigation):
    """Refresh-rate multiplier scheme (default 2x => tREFI/2)."""

    def __init__(self, factor: float = 2.0):
        super().__init__()
        if factor < 1.0:
            raise ValueError("refresh-rate factor must be >= 1")
        self.factor = factor
        self.name = f"DRR-x{factor:g}" if factor != 2.0 else "DRR"

    @property
    def refresh_interval_scale(self) -> float:
        return 1.0 / self.factor
