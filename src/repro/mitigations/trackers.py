"""Activation-tracking data structures used by the baseline mitigations.

* :class:`MisraGries` -- frequent-items tracker with a spillover counter
  (the Graphene/RRS formulation [Park MICRO'20, Saileshwar ASPLOS'22]).
* :class:`CounterSummary` -- Mithril's Counter-based Summary (CbS): a
  bounded table whose minimum counter inherits evicted counts, queried
  for the *maximum* entry at each RFM [Kim HPCA'22].
* :class:`DualCountingBloomFilter` -- BlockHammer's D-CBF: two counting
  Bloom filters alternating over epoch halves [Yaglikci HPCA'21].
* :class:`CountMinSketch` -- the random-projection counter underlying
  the Bloom-filter variants, exposed for the RFM-filtering extension
  (paper Section VIII).
* :class:`MintSampler` -- MINT's single-entry window sampler
  [Qureshi MICRO'24]: O(1) storage, uniform over the mitigation window.
* :class:`ResilientMisraGries` -- a DAPPER-style performance-attack-
  resilient Misra-Gries variant [Woo & Nair '25]: decisions use the
  provable lower bound and window resets decay instead of clearing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class MisraGries:
    """Misra-Gries heavy-hitters with a spillover counter.

    Guarantees: any key activated more than ``spill + capacity`` times
    since its last reset is present in the table with a count no less
    than its true count minus the spillover.  That bounded undercount is
    exactly what Graphene's TRR threshold accounts for.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.counts: Dict[int, int] = {}
        self.spill = 0

    def observe(self, key: int) -> int:
        """Count one occurrence; returns the key's current estimate."""
        if key in self.counts:
            self.counts[key] += 1
            return self.counts[key]
        if len(self.counts) < self.capacity:
            self.counts[key] = self.spill + 1
            return self.counts[key]
        self.spill += 1
        # Replace a minimal entry once the spillover catches up to it.
        min_key = min(self.counts, key=self.counts.get)
        if self.counts[min_key] <= self.spill:
            del self.counts[min_key]
            self.counts[key] = self.spill + 1
            return self.counts[key]
        return self.spill

    def estimate(self, key: int) -> int:
        return self.counts.get(key, self.spill)

    def max_entry(self) -> Optional[Tuple[int, int]]:
        if not self.counts:
            return None
        key = max(self.counts, key=self.counts.get)
        return key, self.counts[key]

    def reset_key(self, key: int) -> None:
        """Graphene-style reset after a TRR: drop the entry to the floor."""
        if key in self.counts:
            self.counts[key] = self.spill

    def clear(self) -> None:
        self.counts.clear()
        self.spill = 0


class CounterSummary:
    """Mithril's CbS: bounded counter table with min-inheritance insert."""

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.counts: Dict[int, int] = {}

    def observe(self, key: int) -> None:
        if key in self.counts:
            self.counts[key] += 1
            return
        if len(self.counts) < self.entries:
            self.counts[key] = 1
            return
        # Evict a minimum entry; the newcomer inherits min + 1 so its
        # count never undercounts by more than the table minimum.
        min_key = min(self.counts, key=self.counts.get)
        min_count = self.counts.pop(min_key)
        self.counts[key] = min_count + 1

    def hottest(self) -> Optional[Tuple[int, int]]:
        """The entry with the highest count (the RFM mitigation target)."""
        if not self.counts:
            return None
        key = max(self.counts, key=self.counts.get)
        return key, self.counts[key]

    def floor(self) -> int:
        return min(self.counts.values(), default=0)

    def settle(self, key: int) -> None:
        """After mitigating ``key``, sink its count below the table floor.

        Going one under the current minimum (rather than to it) makes
        tie-breaking rotate across equally-hot rows instead of repeatedly
        re-mitigating the same entry.
        """
        if key in self.counts:
            self.counts[key] = max(0, self.floor() - 1)

    def clear(self) -> None:
        self.counts.clear()


class MintSampler:
    """MINT's minimalist in-DRAM sampler: one entry per bank.

    At the start of each mitigation window (the RAAIMT activations
    between two RFMs) the sampler draws a uniform slot ``1..window`` and
    captures the row of exactly that activation; the window's mitigation
    then targets the captured row.  Every activation in the window has
    the same ``1/window`` chance of being picked -- the same distribution
    PARFM gets from a ``window``-deep history, with O(1) storage.

    The slot is drawn lazily on the window's *first* activation, so an
    idle bank consumes no randomness.
    """

    def __init__(self, window: int, rng):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.rng = rng
        self.windows = 0
        self._position = 0
        self._select: Optional[int] = None
        self._captured: Optional[int] = None

    def observe(self, key: int) -> None:
        if self._select is None:
            self._select = self.rng.randrange(self.window) + 1
            self.windows += 1
        self._position += 1
        if self._position == self._select:
            self._captured = key

    def sample(self) -> Optional[int]:
        """The captured row of the current window (None while unarmed
        or before the selected slot has passed)."""
        return self._captured

    def clear(self) -> None:
        """End the window: forget the capture, re-arm for the next."""
        self._position = 0
        self._select = None
        self._captured = None


class ResilientMisraGries(MisraGries):
    """DAPPER-style performance-attack-resilient Misra-Gries.

    Two hardenings over the plain tracker, aimed at adversaries that
    attack the *tracker* (to induce spurious mitigations and tank
    performance) rather than the DRAM:

    * decisions use :meth:`lower_bound` -- the provable true-count floor
      ``count - spill`` -- so thrashing the table inflates ``spill`` but
      can never promote a cold row into a mitigation target;
    * :meth:`halve` decays counters and spill at the window boundary
      instead of clearing, so forcing resets cannot launder a hot row's
      accumulated history.
    """

    def lower_bound(self, key: int) -> int:
        """Provable minimum true count since the key's last reset."""
        count = self.counts.get(key)
        if count is None:
            return 0
        return max(0, count - self.spill)

    def hottest(self) -> Optional[Tuple[int, int]]:
        """The max entry with its lower bound; None when nothing is
        provably hot (mitigating then would be attacker-steerable)."""
        entry = self.max_entry()
        if entry is None:
            return None
        key, count = entry
        bound = count - self.spill
        if bound <= 0:
            return None
        return key, bound

    def halve(self) -> None:
        """Window-boundary decay: halve every counter and the spill,
        dropping entries that sink to the new floor."""
        self.spill //= 2
        halved = {key: count // 2 for key, count in self.counts.items()}
        self.counts = {key: count for key, count in halved.items()
                       if count > self.spill}


class CountMinSketch:
    """Count-min sketch with multiplicative hashing."""

    _PRIMES = (0x9E3779B1, 0x85EBCA77, 0xC2B2AE3D, 0x27D4EB2F,
               0x165667B1, 0x94D049BB)

    def __init__(self, width: int, depth: int = 4):
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        if depth > len(self._PRIMES):
            raise ValueError(f"depth is limited to {len(self._PRIMES)}")
        self.width = width
        self.depth = depth
        self.rows: List[List[int]] = [[0] * width for _ in range(depth)]

    def _index(self, row: int, key: int) -> int:
        h = (key * self._PRIMES[row] + row) & 0xFFFFFFFF
        h ^= h >> 15
        return h % self.width

    def add(self, key: int, amount: int = 1) -> None:
        for r in range(self.depth):
            self.rows[r][self._index(r, key)] += amount

    def estimate(self, key: int) -> int:
        return min(self.rows[r][self._index(r, key)]
                   for r in range(self.depth))

    def clear(self) -> None:
        for row in self.rows:
            for i in range(len(row)):
                row[i] = 0


@dataclass
class _Epoch:
    filter: CountMinSketch
    started: int


class DualCountingBloomFilter:
    """BlockHammer's D-CBF: two sketches alternating per epoch half.

    One sketch is *active* (counts new ACTs); the other holds the
    previous half-epoch.  A row's estimate is the max of the two, so a
    row hot across an epoch boundary is still caught; clearing the
    retired sketch bounds staleness to one epoch.
    """

    def __init__(self, width: int, epoch_cycles: int, depth: int = 4):
        if epoch_cycles <= 0:
            raise ValueError("epoch_cycles must be positive")
        self.epoch_cycles = epoch_cycles
        self._active = _Epoch(CountMinSketch(width, depth), 0)
        self._retired = _Epoch(CountMinSketch(width, depth), -epoch_cycles)
        self.rotations = 0

    def _maybe_rotate(self, cycle: int) -> None:
        while cycle - self._active.started >= self.epoch_cycles:
            self._retired.filter.clear()
            self._retired, self._active = self._active, self._retired
            self._active.started = self._retired.started + self.epoch_cycles
            self.rotations += 1

    def observe(self, key: int, cycle: int) -> None:
        self._maybe_rotate(cycle)
        self._active.filter.add(key)

    def estimate(self, key: int, cycle: int) -> int:
        self._maybe_rotate(cycle)
        return max(self._active.filter.estimate(key),
                   self._retired.filter.estimate(key))
