"""BlockHammer: blacklist-and-throttle (Yaglikci et al., HPCA 2021).

Composition: ``dcbf x throttle x bank/epoch`` (the D-CBF rotates its
own epoch halves on the cycle stamps it is fed).

A dual counting Bloom filter (D-CBF) per bank estimates each row's ACT
count over rolling epoch halves.  Rows whose estimate crosses the
blacklist threshold ``N_BL`` are rate-limited: consecutive ACTs must be
at least ``tDelay`` apart, chosen so a blacklisted row physically cannot
reach ``H_cnt`` activations inside a refresh window.

Two properties drive the paper's Figure 11 shape:

* ``tDelay ~ tREFW / H_cnt`` -- at 2K thresholds the delay becomes tens
  of microseconds per ACT, devastating anything that trips it;
* the Bloom filter aliases: at low thresholds (small ``N_BL``) ordinary
  hot rows in a busy bank get misidentified more often, so normal
  workloads also pay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mitigations.compose import (
    ComposedMitigation,
    Scope,
    Throttle,
    ThrottleMixin,
    TrackerSpec,
)
from repro.rowhammer.model import blast_weight_sum


@dataclass(frozen=True)
class BlockHammerConfig:
    """BlockHammer sizing for a target ``H_cnt``."""

    hcnt: int
    blast_radius: int = 1
    cbf_width: int = 1024
    cbf_depth: int = 4
    safety_margin: float = 4.0   # hcnt/2 per epoch, two overlapping epochs
    #: Steady-state correction for short simulations.  Blacklisting is a
    #: *rate* condition (a row exceeding N_BL per epoch); a run covering
    #: 1/s of an epoch observes 1/s of each row's count, so the
    #: threshold scales by 1/s to classify the same rows.
    #: 1.0 = full-length run.
    history_scale: float = 1.0
    #: Trace-rate normalization.  The synthetic traces concentrate
    #: per-row activity so count-threshold trackers trigger within short
    #: runs; their hot-row *rates* end up roughly this factor above the
    #: benign applications they model.  The throttle's rate cap (the
    #: delay between a blacklisted row's ACTs) is normalized by the same
    #: factor so throttling severity relative to the workload matches a
    #: full-length run.  1.0 = traces are rate-faithful.
    rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.hcnt <= 1:
            raise ValueError("hcnt must be > 1")
        if self.safety_margin < 1.0:
            raise ValueError("safety_margin must be >= 1")
        if self.history_scale < 1.0:
            raise ValueError("history_scale must be >= 1")
        if self.rate_scale < 1.0:
            raise ValueError("rate_scale must be >= 1")

    @property
    def blacklist_threshold(self) -> int:
        """N_BL: estimate at which a row becomes rate-limited."""
        derate = blast_weight_sum(max(1, self.blast_radius)) / 2.0
        return max(1, int(self.hcnt / self.safety_margin / derate
                          / self.history_scale))


class BlockHammer(ThrottleMixin, ComposedMitigation):
    """D-CBF blacklisting + ACT throttling."""

    def __init__(self, config: BlockHammerConfig):
        self.config = config
        super().__init__(
            tracker=TrackerSpec.of(
                "dcbf", width=config.cbf_width, depth=config.cbf_depth,
                epoch_cycles=lambda g, t: max(1, t.tREFW // 2)),
            policy=Throttle(threshold=config.blacklist_threshold,
                            delay=self._derive_delay),
            scope=Scope(per="bank", reset="epoch"),
            name=(f"BlockHammer-h{config.hcnt}-b{config.blast_radius}"
                  f"-s{config.history_scale:g}"),
        )
        self.throttled_acts = 0
        self.total_delay_cycles = 0

    @classmethod
    def for_hcnt(cls, hcnt: int, blast_radius: int = 1,
                 history_scale: float = 1.0,
                 rate_scale: float = 1.0) -> "BlockHammer":
        return cls(BlockHammerConfig(hcnt=hcnt, blast_radius=blast_radius,
                                     history_scale=history_scale,
                                     rate_scale=rate_scale))

    def _derive_delay(self, geometry, timing) -> int:
        # A blacklisted row may sustain at most hcnt ACTs per tREFW
        # (per weighted blast unit): enforce the matching inter-ACT gap,
        # normalized by the trace-rate compression factor.
        derate = blast_weight_sum(max(1, self.config.blast_radius)) / 2.0
        budget = max(1, int(self.config.hcnt / derate))
        return max(1, int(timing.tREFW / budget / self.config.rate_scale))

    @property
    def _delay(self) -> Optional[int]:
        return self.policy.delay
