"""Row Hammer mitigations: SHADOW's baselines and comparison points.

Every scheme from the paper's evaluation is implemented behind one
:class:`~repro.mitigations.base.Mitigation` interface:

* :class:`~repro.mitigations.none.NoMitigation` -- the unprotected
  baseline every figure normalizes against.
* :class:`~repro.mitigations.drr.DoubleRefreshRate` -- DRR (Figure 8).
* :class:`~repro.mitigations.para.Para` / :class:`~repro.mitigations.
  parfm.Parfm` -- probabilistic TRR, stand-alone and RFM-hosted.
* :class:`~repro.mitigations.mithril.Mithril` -- Counter-based-Summary
  tracker + RFM TRR, in perf- and area-optimized configurations.
* :class:`~repro.mitigations.graphene.Graphene` -- Misra-Gries TRR at
  the MC (related work, used in ablations).
* :class:`~repro.mitigations.blockhammer.BlockHammer` -- dual counting
  Bloom filter + ACT throttling.
* :class:`~repro.mitigations.rrs.RandomizedRowSwap` -- MC-side row-swap
  with channel-blocking swaps.
* :class:`~repro.mitigations.mint.Mint` / :class:`~repro.mitigations.
  dapper.Dapper` -- post-paper tracker designs (MINT's single-entry
  sampler, DAPPER's performance-attack-resilient tracker), expressed as
  one-file compositions on the tracker x policy x scope substrate in
  :mod:`repro.mitigations.compose`.

SHADOW itself lives in :mod:`repro.core` (it is the paper's primary
contribution) but implements this same interface.
"""

from repro.mitigations.base import ActOutcome, Mitigation, RfmOutcome
from repro.mitigations.blockhammer import BlockHammer, BlockHammerConfig
from repro.mitigations.compose import (
    ActionPolicy,
    ComposedMitigation,
    RefWindowResetMixin,
    Scope,
    ThrottleMixin,
    Tracker,
    TrackerSpec,
)
from repro.mitigations.dapper import Dapper
from repro.mitigations.drr import DoubleRefreshRate
from repro.mitigations.filtered import FilteredRfm
from repro.mitigations.graphene import Graphene
from repro.mitigations.mint import Mint
from repro.mitigations.mithril import Mithril, mithril_area, mithril_perf
from repro.mitigations.none import NoMitigation
from repro.mitigations.para import Para
from repro.mitigations.parfm import Parfm
from repro.mitigations.rrs import RandomizedRowSwap, RrsConfig
from repro.mitigations.trackers import (
    CountMinSketch,
    CounterSummary,
    DualCountingBloomFilter,
    MintSampler,
    MisraGries,
    ResilientMisraGries,
)

# -- spec-registry entries ---------------------------------------------------------
#
# Every comparison scheme registers a plain-keyword factory so a
# ``SchemeSpec`` (CLI flag, experiment grid point, rehydrated JSON job)
# can construct it by name.  The SHADOW variants register from
# ``repro.core.factories`` (SHADOW is the paper's contribution, not a
# baseline).

from repro.spec.registry import SCHEMES as _SCHEMES


@_SCHEMES.register("none")
def _make_none() -> NoMitigation:
    return NoMitigation()


@_SCHEMES.register("drr")
def _make_drr() -> DoubleRefreshRate:
    return DoubleRefreshRate()


@_SCHEMES.register("parfm")
def _make_parfm(hcnt: int, radius: int = 1) -> Parfm:
    return Parfm.for_hcnt(hcnt, radius)


@_SCHEMES.register("mithril-perf")
def _make_mithril_perf(hcnt: int, radius: int = 1) -> Mithril:
    return mithril_perf(hcnt, radius)


@_SCHEMES.register("mithril-area")
def _make_mithril_area(hcnt: int, radius: int = 1) -> Mithril:
    return mithril_area(hcnt, radius)


@_SCHEMES.register("blockhammer")
def _make_blockhammer(hcnt: int, history_scale: float = 1.0,
                      rate_scale: float = 1.0) -> BlockHammer:
    return BlockHammer.for_hcnt(hcnt, history_scale=history_scale,
                                rate_scale=rate_scale)


@_SCHEMES.register("rrs")
def _make_rrs(hcnt: int) -> RandomizedRowSwap:
    return RandomizedRowSwap.for_hcnt(hcnt)


@_SCHEMES.register("graphene")
def _make_graphene(hcnt: int) -> Graphene:
    return Graphene(hcnt)


@_SCHEMES.register("para")
def _make_para(hcnt: int) -> Para:
    from repro.mitigations.para import para_probability
    return Para(para_probability(hcnt))


@_SCHEMES.register("mint")
def _make_mint(hcnt: int, radius: int = 1) -> Mint:
    return Mint.for_hcnt(hcnt, radius)


@_SCHEMES.register("dapper")
def _make_dapper(hcnt: int, radius: int = 1) -> Dapper:
    return Dapper.for_hcnt(hcnt, radius)

__all__ = [
    "ActOutcome",
    "ActionPolicy",
    "BlockHammer",
    "ComposedMitigation",
    "RefWindowResetMixin",
    "Scope",
    "ThrottleMixin",
    "Tracker",
    "TrackerSpec",
    "BlockHammerConfig",
    "CountMinSketch",
    "CounterSummary",
    "Dapper",
    "DoubleRefreshRate",
    "DualCountingBloomFilter",
    "FilteredRfm",
    "Graphene",
    "Mint",
    "MintSampler",
    "MisraGries",
    "Mithril",
    "Mitigation",
    "NoMitigation",
    "Para",
    "Parfm",
    "RandomizedRowSwap",
    "ResilientMisraGries",
    "RfmOutcome",
    "RrsConfig",
    "mithril_area",
    "mithril_perf",
]
