"""Row Hammer mitigations: SHADOW's baselines and comparison points.

Every scheme from the paper's evaluation is implemented behind one
:class:`~repro.mitigations.base.Mitigation` interface:

* :class:`~repro.mitigations.none.NoMitigation` -- the unprotected
  baseline every figure normalizes against.
* :class:`~repro.mitigations.drr.DoubleRefreshRate` -- DRR (Figure 8).
* :class:`~repro.mitigations.para.Para` / :class:`~repro.mitigations.
  parfm.Parfm` -- probabilistic TRR, stand-alone and RFM-hosted.
* :class:`~repro.mitigations.mithril.Mithril` -- Counter-based-Summary
  tracker + RFM TRR, in perf- and area-optimized configurations.
* :class:`~repro.mitigations.graphene.Graphene` -- Misra-Gries TRR at
  the MC (related work, used in ablations).
* :class:`~repro.mitigations.blockhammer.BlockHammer` -- dual counting
  Bloom filter + ACT throttling.
* :class:`~repro.mitigations.rrs.RandomizedRowSwap` -- MC-side row-swap
  with channel-blocking swaps.

SHADOW itself lives in :mod:`repro.core` (it is the paper's primary
contribution) but implements this same interface.
"""

from repro.mitigations.base import ActOutcome, Mitigation, RfmOutcome
from repro.mitigations.blockhammer import BlockHammer, BlockHammerConfig
from repro.mitigations.drr import DoubleRefreshRate
from repro.mitigations.filtered import FilteredRfm
from repro.mitigations.graphene import Graphene
from repro.mitigations.mithril import Mithril, mithril_area, mithril_perf
from repro.mitigations.none import NoMitigation
from repro.mitigations.para import Para
from repro.mitigations.parfm import Parfm
from repro.mitigations.rrs import RandomizedRowSwap, RrsConfig
from repro.mitigations.trackers import (
    CountMinSketch,
    CounterSummary,
    DualCountingBloomFilter,
    MisraGries,
)

__all__ = [
    "ActOutcome",
    "BlockHammer",
    "BlockHammerConfig",
    "CountMinSketch",
    "CounterSummary",
    "DoubleRefreshRate",
    "DualCountingBloomFilter",
    "FilteredRfm",
    "Graphene",
    "MisraGries",
    "Mithril",
    "Mitigation",
    "NoMitigation",
    "Para",
    "Parfm",
    "RandomizedRowSwap",
    "RfmOutcome",
    "RrsConfig",
    "mithril_area",
    "mithril_perf",
]
