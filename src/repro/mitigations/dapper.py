"""DAPPER-style performance-attack-resilient tracking (Woo & Nair, 2025).

Composition: ``dapper x rfm-trr-hottest x bank/ref-window``.

Tracker-based defenses open a second attack surface: an adversary who
cannot flip bits may still *thrash the tracker* -- spray activations so
eviction noise promotes cold rows into mitigation targets, turning the
defense itself into a performance attack (spurious TRRs, swaps, or
throttles against victim applications).  DAPPER hardens the tracker
against that adversary; this module reproduces the idea in this
codebase's terms as a resilient Misra-Gries composed with the standard
RFM-hosted TRR action:

* mitigation decisions use the **provable lower bound**
  ``count - spill`` rather than the raw estimate, so table thrash
  (which inflates ``spill``) can never manufacture a hot row -- at
  worst it suppresses mitigations, which the deterministic security
  bound below already budgets for;
* the REF-window reset **halves** counters and spill instead of
  clearing, so an attacker cannot launder a hot row's history by
  straddling window boundaries.

Security is deterministic rather than probabilistic: with ``E`` table
entries and an RFM every ``RAAIMT`` activations, a row's unmitigated
true count is bounded by ``spill_max + RAAIMT`` where
``spill_max <= acts_per_tREFW / E`` (the Misra-Gries guarantee).  The
:mod:`repro.analysis.security` model checks that bound against the
blast-weighted ``H_cnt``; :func:`dapper_for_hcnt` sizes the table so it
holds across the paper's Table II range.
"""

from __future__ import annotations

from repro.mitigations.compose import (
    ComposedMitigation,
    RefWindowResetMixin,
    RfmTrrHottest,
    Scope,
    TrackerSpec,
)
from repro.mitigations.mithril import _blast_derate
from repro.mitigations.parfm import shadow_raaimt


def dapper_entries(hcnt: int) -> int:
    """Table sizing: entries scale inversely with ``H_cnt`` so the
    Misra-Gries spill bound (~2M worst-case ACTs per tREFW divided by
    the entry count) stays well under the threshold."""
    return min(4096, max(128, (1 << 21) // hcnt))


def dapper_raaimt(hcnt: int, blast_radius: int = 1) -> int:
    """Mitigation cadence: a quarter of SHADOW's secure RAAIMT (the
    deterministic hottest-first TRR wastes no mitigations, but each one
    covers a single neighbourhood), blast-derated like the other TRR
    schemes and floored at 8."""
    base = max(8, shadow_raaimt(hcnt) // 4)
    return max(8, _blast_derate(base, blast_radius))


class Dapper(RefWindowResetMixin, ComposedMitigation):
    """Resilient Misra-Gries + RFM-hosted TRR on the provable hottest."""

    def __init__(self, raaimt: int, table_entries: int,
                 blast_radius: int = 1):
        if raaimt <= 0:
            raise ValueError("raaimt must be positive")
        if table_entries <= 0:
            raise ValueError("table_entries must be positive")
        self._raaimt = raaimt
        self.table_entries = table_entries
        self.blast_radius = max(1, blast_radius)
        super().__init__(
            tracker=TrackerSpec.of("dapper", entries=table_entries),
            policy=RfmTrrHottest(self.blast_radius),
            scope=Scope(per="bank", reset="ref-window"),
            name=(f"DAPPER-r{raaimt}-e{table_entries}"
                  f"-b{self.blast_radius}"),
        )

    @classmethod
    def for_hcnt(cls, hcnt: int, blast_radius: int = 1) -> "Dapper":
        return cls(dapper_raaimt(hcnt, blast_radius),
                   dapper_entries(hcnt), blast_radius)

    @property
    def uses_rfm(self) -> bool:
        return True

    @property
    def raaimt(self) -> int:
        return self._raaimt

    def table_kilobytes(self) -> float:
        """CAM footprint per bank, sized like Mithril's (18b row tag +
        22b counter per entry) plus one spill counter."""
        bits = self.table_entries * (18 + 22) + 22
        return bits / 8 / 1024


def dapper_for_hcnt(hcnt: int, blast_radius: int = 1) -> Dapper:
    """The default DAPPER configuration for a target ``H_cnt``."""
    return Dapper.for_hcnt(hcnt, blast_radius)
