"""MINT: a minimalist in-DRAM tracker (Qureshi, Qazi & Jaleel, MICRO 2024).

Composition: ``mint x rfm-trr-sampled x bank/rfm`` -- the poster child
of the tracker/policy/scope decomposition: the *entire* scheme is a new
single-entry tracker dropped onto the existing RFM-hosted TRR action.

MINT stores exactly one row per bank.  At the start of each mitigation
window (the RAAIMT activations between two RFMs) it draws a uniform
slot and captures the row of exactly that activation; the RFM then
refreshes the captured row's neighbourhood and the sampler re-arms
(``Scope(reset="rfm")``).  Every ACT in the window has the same
``1/RAAIMT`` selection probability -- the distribution PARFM needs a
RAAIMT-deep history buffer to produce -- so MINT inherits PARFM's
secure-RAAIMT derivation while shrinking tracker storage from
``O(RAAIMT)`` to a single entry (the paper's point: the minimalist
tracker already matches the probabilistic protection bound).
"""

from __future__ import annotations

from typing import Optional

from repro.mitigations.compose import (
    ComposedMitigation,
    RfmTrrSampled,
    Scope,
    TrackerSpec,
)
from repro.mitigations.parfm import parfm_raaimt
from repro.utils.rng import RandomSource, SystemRng


def mint_raaimt(hcnt: int, blast_radius: int = 1) -> int:
    """MINT's secure RAAIMT for the 1%/year budget.

    Identical to PARFM's: pre-committing the sample slot instead of
    drawing from a window-deep history leaves the per-window selection
    distribution (uniform over RAAIMT activations) unchanged, so the
    evasion analysis and therefore the secure RAAIMT carry over.
    """
    return parfm_raaimt(hcnt, blast_radius)


class Mint(ComposedMitigation):
    """Single-entry window sampler + RFM-hosted TRR."""

    def __init__(self, raaimt: int, blast_radius: int = 1,
                 rng: Optional[RandomSource] = None):
        if raaimt <= 0:
            raise ValueError("raaimt must be positive")
        if blast_radius < 1:
            raise ValueError("blast_radius must be >= 1")
        self._raaimt = raaimt
        self.blast_radius = blast_radius
        self.rng = rng or SystemRng(0x317A)
        super().__init__(
            tracker=TrackerSpec.of("mint", window=raaimt, rng=self.rng),
            policy=RfmTrrSampled(blast_radius),
            scope=Scope(per="bank", reset="rfm"),
            name=f"MINT-r{raaimt}-b{blast_radius}",
        )

    @classmethod
    def for_hcnt(cls, hcnt: int, blast_radius: int = 1,
                 rng: Optional[RandomSource] = None) -> "Mint":
        return cls(mint_raaimt(hcnt, blast_radius), blast_radius, rng)

    @property
    def uses_rfm(self) -> bool:
        return True

    @property
    def raaimt(self) -> int:
        return self._raaimt

    def sampler_entries(self) -> int:
        """Tracker storage per bank, in entries.  The headline number:
        one, versus PARFM's RAAIMT-deep history."""
        return 1
