"""Mithril: CbS-tracked TRR over the RFM interface (Kim et al., HPCA 2022).

Each bank carries a Counter-based Summary (CbS) table; on every RFM the
device refreshes the neighbours of the hottest tracked row and settles
its counter to the table floor.  Mithril trades table size against
RAAIMT for a target ``H_cnt``:

* **Mithril-perf** -- a large (~10 KB/bank) CAM lets RFMs be rare: the
  table alone bounds the max accumulated count, so RAAIMT can sit well
  above SHADOW's.
* **Mithril-area** -- RAAIMT pinned at 32 (paper Section VII-C) with a
  smaller table (~5 KB/bank at 2K ``H_cnt``).

Blast handling mirrors PARFM: 2*radius victim refreshes per RFM and a
blast-derated RAAIMT.
"""

from __future__ import annotations

from typing import Dict

from repro.dram.device import BankAddress
from repro.mitigations.base import Mitigation, RfmOutcome
from repro.mitigations.trackers import CounterSummary
from repro.rowhammer.model import blast_weight_sum


class Mithril(Mitigation):
    """CbS tracker + RFM-hosted TRR."""

    def __init__(self, raaimt: int, table_entries: int,
                 blast_radius: int = 1, variant: str = "custom"):
        super().__init__()
        if raaimt <= 0:
            raise ValueError("raaimt must be positive")
        if table_entries <= 0:
            raise ValueError("table_entries must be positive")
        self._raaimt = raaimt
        self.table_entries = table_entries
        self.blast_radius = max(1, blast_radius)
        self.variant = variant
        self._tables: Dict[BankAddress, CounterSummary] = {}
        self.trr_count = 0
        self.name = (f"Mithril-{variant}-r{raaimt}-e{table_entries}"
                     f"-b{self.blast_radius}")

    @property
    def uses_rfm(self) -> bool:
        return True

    @property
    def raaimt(self) -> int:
        return self._raaimt

    def table_kilobytes(self) -> float:
        """CAM footprint per bank: ~(row address + counter) per entry."""
        bits_per_entry = 18 + 22   # 18b row tag + 22b counter, as in the paper's sizing
        return self.table_entries * bits_per_entry / 8 / 1024

    def on_activate(self, addr: BankAddress, pa_row: int, da_row: int,
                    cycle: int):
        table = self._tables.setdefault(
            addr, CounterSummary(self.table_entries))
        table.observe(da_row)
        return None

    def on_rfm(self, addr: BankAddress, cycle: int) -> RfmOutcome:
        self._require_bound()
        table = self._tables.get(addr)
        if table is None:
            return RfmOutcome(duration=0)
        hottest = table.hottest()
        if hottest is None:
            return RfmOutcome(duration=0)
        target, _count = hottest
        table.settle(target)
        layout = self.geometry.layout
        victims = [row for row, _d in
                   layout.da_neighbors(target, self.blast_radius)]
        self.trr_count += len(victims)
        duration = len(victims) * self.timing.tRC
        return RfmOutcome(duration=duration, refreshed_rows=victims)


def _blast_derate(raaimt: int, blast_radius: int) -> int:
    scale = blast_weight_sum(1) / blast_weight_sum(max(1, blast_radius))
    return max(1, int(raaimt * scale))


def mithril_perf(hcnt: int, blast_radius: int = 1) -> Mithril:
    """Performance-optimized configuration (~10 KB CAM per bank)."""
    entries = 2048
    raaimt = _blast_derate(max(64, hcnt // 32), blast_radius)
    return Mithril(raaimt, entries, blast_radius, variant="perf")


def mithril_area(hcnt: int, blast_radius: int = 1) -> Mithril:
    """Area-optimized configuration: RAAIMT = 32 (paper Section VII-C).

    The table shrinks with the threshold down to ~5 KB per bank at 2K
    ``H_cnt`` (the paper's quoted worst case), always staying below the
    perf configuration's 10 KB.
    """
    entries = min(1024, max(128, hcnt // 2))
    raaimt = _blast_derate(32, blast_radius)
    return Mithril(max(raaimt, 8), entries, blast_radius, variant="area")
