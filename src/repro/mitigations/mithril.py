"""Mithril: CbS-tracked TRR over the RFM interface (Kim et al., HPCA 2022).

Composition: ``counter-summary x rfm-trr-hottest x bank``.

Each bank carries a Counter-based Summary (CbS) table; on every RFM the
device refreshes the neighbours of the hottest tracked row and settles
its counter to the table floor.  Mithril trades table size against
RAAIMT for a target ``H_cnt``:

* **Mithril-perf** -- a large (~10 KB/bank) CAM lets RFMs be rare: the
  table alone bounds the max accumulated count, so RAAIMT can sit well
  above SHADOW's.
* **Mithril-area** -- RAAIMT pinned at 32 (paper Section VII-C) with a
  smaller table (~5 KB/bank at 2K ``H_cnt``).

Blast handling mirrors PARFM: 2*radius victim refreshes per RFM and a
blast-derated RAAIMT.
"""

from __future__ import annotations

from repro.mitigations.compose import (
    ComposedMitigation,
    RfmTrrHottest,
    Scope,
    TrackerSpec,
)
from repro.rowhammer.model import blast_weight_sum


class Mithril(ComposedMitigation):
    """CbS tracker + RFM-hosted TRR."""

    def __init__(self, raaimt: int, table_entries: int,
                 blast_radius: int = 1, variant: str = "custom"):
        if raaimt <= 0:
            raise ValueError("raaimt must be positive")
        if table_entries <= 0:
            raise ValueError("table_entries must be positive")
        self._raaimt = raaimt
        self.table_entries = table_entries
        self.blast_radius = max(1, blast_radius)
        self.variant = variant
        super().__init__(
            tracker=TrackerSpec.of("counter-summary", entries=table_entries),
            policy=RfmTrrHottest(self.blast_radius),
            scope=Scope(per="bank"),
            name=(f"Mithril-{variant}-r{raaimt}-e{table_entries}"
                  f"-b{self.blast_radius}"),
        )

    @property
    def uses_rfm(self) -> bool:
        return True

    @property
    def raaimt(self) -> int:
        return self._raaimt

    def table_kilobytes(self) -> float:
        """CAM footprint per bank: ~(row address + counter) per entry."""
        bits_per_entry = 18 + 22   # 18b row tag + 22b counter, as in the paper's sizing
        return self.table_entries * bits_per_entry / 8 / 1024


def _blast_derate(raaimt: int, blast_radius: int) -> int:
    scale = blast_weight_sum(1) / blast_weight_sum(max(1, blast_radius))
    return max(1, int(raaimt * scale))


def mithril_perf(hcnt: int, blast_radius: int = 1) -> Mithril:
    """Performance-optimized configuration (~10 KB CAM per bank)."""
    entries = 2048
    raaimt = _blast_derate(max(64, hcnt // 32), blast_radius)
    return Mithril(raaimt, entries, blast_radius, variant="perf")


def mithril_area(hcnt: int, blast_radius: int = 1) -> Mithril:
    """Area-optimized configuration: RAAIMT = 32 (paper Section VII-C).

    The table shrinks with the threshold down to ~5 KB per bank at 2K
    ``H_cnt`` (the paper's quoted worst case), always staying below the
    perf configuration's 10 KB.
    """
    entries = min(1024, max(128, hcnt // 2))
    raaimt = _blast_derate(32, blast_radius)
    return Mithril(max(raaimt, 8), entries, blast_radius, variant="area")
