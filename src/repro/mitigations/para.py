"""PARA: probabilistic adjacent-row activation (Kim et al., ISCA 2014).

Stateless TRR: on every ACT, with probability ``p`` the device refreshes
one neighbour of the activated row (a side chosen at random).  With
blast-aware extension, all rows within the blast radius on the chosen
side are refreshed.

The protection analysis gives the failure probability per hammer
campaign as roughly ``(1 - p/2)^(hcnt/2)`` per side; :func:`para_probability`
inverts that for a target failure rate, which is how the experiments
pick ``p`` per ``H_cnt``.
"""

from __future__ import annotations


from repro.dram.device import BankAddress
from repro.mitigations.base import ActOutcome, Mitigation
from repro.utils.rng import RandomSource, SystemRng


def para_probability(hcnt: int, target_failure: float = 1e-4) -> float:
    """Pick ``p`` so a single campaign fails with <= ``target_failure``.

    Solves ``(1 - p)^(hcnt/2) <= target`` for p; the hcnt/2 exponent is
    the number of chances PARA gets while the attacker accumulates half
    the threshold on one side.
    """
    if hcnt <= 1:
        raise ValueError("hcnt must be > 1")
    if not 0 < target_failure < 1:
        raise ValueError("target_failure must be in (0, 1)")
    p = 1.0 - target_failure ** (2.0 / hcnt)
    return min(1.0, max(p, 1e-9))


class Para(Mitigation):
    """Stand-alone PARA (per-ACT sampling, no RFM)."""

    def __init__(self, probability: float, blast_radius: int = 1,
                 rng: RandomSource = None):
        super().__init__()
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if blast_radius < 1:
            raise ValueError("blast_radius must be >= 1")
        self.probability = probability
        self.blast_radius = blast_radius
        self.rng = rng or SystemRng(0xBA5E)
        self.trr_count = 0
        self.name = f"PARA-p{probability:.2g}"

    def on_activate(self, addr: BankAddress, pa_row: int, da_row: int,
                    cycle: int) -> ActOutcome:
        # Bernoulli(p) trial using 24 fresh random bits.
        draw = self.rng.next_bits(24)
        if draw >= int(self.probability * (1 << 24)):
            return ActOutcome()
        side = 1 if self.rng.next_bits(1) else -1
        layout = self.geometry.layout
        lo, hi = layout.da_range(layout.subarray_of_da(da_row))
        victims = []
        for d in range(1, self.blast_radius + 1):
            row = da_row + side * d
            if lo <= row < hi:
                victims.append(row)
        self.trr_count += len(victims)
        return ActOutcome(trr_rows=victims)
