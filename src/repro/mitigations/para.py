"""PARA: probabilistic adjacent-row activation (Kim et al., ISCA 2014).

Composition: ``none x trr-probabilistic x bank`` -- the degenerate
corner of the tracker/policy/scope space: no tracker at all.

Stateless TRR: on every ACT, with probability ``p`` the device refreshes
one neighbour of the activated row (a side chosen at random).  With
blast-aware extension, all rows within the blast radius on the chosen
side are refreshed.

The protection analysis gives the failure probability per hammer
campaign as roughly ``(1 - p/2)^(hcnt/2)`` per side; :func:`para_probability`
inverts that for a target failure rate, which is how the experiments
pick ``p`` per ``H_cnt``.
"""

from __future__ import annotations

from typing import Optional

from repro.mitigations.compose import (
    ComposedMitigation,
    ProbabilisticTrr,
    Scope,
    TrackerSpec,
)
from repro.utils.rng import RandomSource, SystemRng


def para_probability(hcnt: int, target_failure: float = 1e-4) -> float:
    """Pick ``p`` so a single campaign fails with <= ``target_failure``.

    Solves ``(1 - p)^(hcnt/2) <= target`` for p; the hcnt/2 exponent is
    the number of chances PARA gets while the attacker accumulates half
    the threshold on one side.
    """
    if hcnt <= 1:
        raise ValueError("hcnt must be > 1")
    if not 0 < target_failure < 1:
        raise ValueError("target_failure must be in (0, 1)")
    p = 1.0 - target_failure ** (2.0 / hcnt)
    return min(1.0, max(p, 1e-9))


class Para(ComposedMitigation):
    """Stand-alone PARA (per-ACT sampling, no RFM)."""

    def __init__(self, probability: float, blast_radius: int = 1,
                 rng: Optional[RandomSource] = None):
        self.probability = probability
        self.blast_radius = blast_radius
        self.rng = rng or SystemRng(0xBA5E)
        super().__init__(
            tracker=TrackerSpec.of("none"),
            policy=ProbabilisticTrr(probability, blast_radius),
            scope=Scope(per="bank"),
            name=f"PARA-p{probability:.2g}",
        )
