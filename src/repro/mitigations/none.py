"""The unprotected baseline every figure normalizes against."""

from __future__ import annotations

from repro.mitigations.base import Mitigation


class NoMitigation(Mitigation):
    """No Row Hammer protection: plain JEDEC refresh only."""

    name = "baseline"
