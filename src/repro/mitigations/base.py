"""The mitigation interface the memory controller drives.

A mitigation can affect the system in exactly the ways the paper's
Section III taxonomy allows:

* stretch ACT latency (SHADOW's remapping-row read: ``act_extra_cycles``);
* request RFM commands (``uses_rfm`` / ``raaimt``) and perform in-DRAM
  work inside the tRFM window (``on_rfm`` -> :class:`RfmOutcome`);
* refresh victim rows after an ACT (TRR: :class:`ActOutcome.trr_rows`);
* delay an ACT before it issues (throttling: :class:`ActOutcome` via
  ``before_activate``);
* block a whole channel (RRS row swaps, reported via ``on_activate``
  returning a :class:`ActOutcome` with ``channel_block_cycles``);
* change the auto-refresh rate (DRR: ``refresh_interval_scale``);
* remap row addresses (SHADOW, RRS: ``translate``).

The MC applies each effect on the correct resource, and reports all
row-touching side effects to the Row Hammer fault model so that security
experiments observe exactly what the timing experiments charge for.

Observer contract (what the fault model sees, in DA space):

* every issued ACT -> ``observer.on_activate`` with the post-translate
  DA row, so a remapping scheme's shuffled hot rows are charged where
  the device actually activates them;
* :attr:`ActOutcome.trr_rows`, :attr:`ActOutcome.restored_rows` and
  :attr:`RfmOutcome.refreshed_rows` -> ``observer.on_row_refresh``
  (targeted recharge: the row's accumulated disturbance resets);
* :attr:`RfmOutcome.copies` -> ``observer.on_row_copy`` (disturbance
  and any injected bit flips travel with the row's content);
* each auto-refresh sweep segment -> ``observer.on_refresh_range``.

With ``refresh_hammers_neighbors`` enabled in the fault model, targeted
refreshes are themselves half-rate aggressors (the Half-Double lever),
so a TRR scheme's own victim refreshes can disturb rows one further
out.  Observers never return timing -- the injector is passive, and the
bench gate asserts cycle-for-cycle equality with the observer detached.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.dram.device import BankAddress, DramGeometry
from repro.dram.timing import TimingParams


@dataclass
class RfmOutcome:
    """What a mitigation did during one RFM command.

    ``duration`` is the internal busy time in cycles; the MC blocks the
    bank for ``max(duration, tRFM)`` as the JEDEC interface provisions a
    fixed window.  ``refreshed_rows`` are DA rows recharged (TRR or
    incremental refresh); ``copies`` are in-DRAM row copies (src, dst) in
    DA space.  Both feed the fault model.
    """

    duration: int = 0
    refreshed_rows: List[int] = field(default_factory=list)
    copies: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class ActOutcome:
    """Side effects of one ACT command.

    ``trr_rows``: DA rows the device must internally refresh right after
    this activation (each charged one tRC of bank time).
    ``channel_block_cycles``: whole-channel blocking started by this ACT
    (RRS row swaps).
    ``restored_rows``: DA rows physically rewritten by an operation whose
    timing is already charged elsewhere (e.g. the two rows of an RRS
    swap, covered by the channel block) -- fault-model reset only.
    """

    trr_rows: List[int] = field(default_factory=list)
    channel_block_cycles: int = 0
    restored_rows: List[int] = field(default_factory=list)


class Mitigation(abc.ABC):
    """Base class; the default implementation is a no-op scheme."""

    name = "base"

    def __init__(self) -> None:
        self.geometry: Optional[DramGeometry] = None
        self.timing: Optional[TimingParams] = None
        self._translation_listeners: List[Callable[[BankAddress], None]] = []
        self._event_listeners: List[
            Callable[[str, BankAddress, int, dict], None]] = []

    # -- lifecycle ------------------------------------------------------------

    def bind(self, geometry: DramGeometry, timing: TimingParams) -> None:
        """Attach to a concrete memory system before simulation starts."""
        self.geometry = geometry
        self.timing = timing

    def _require_bound(self) -> None:
        if self.geometry is None or self.timing is None:
            raise RuntimeError(f"{self.name} used before bind()")

    # -- static timing effects ---------------------------------------------------

    @property
    def act_extra_cycles(self) -> int:
        """Extra latency added to every ACT (SHADOW's tRD_RM)."""
        return 0

    @property
    def uses_rfm(self) -> bool:
        """Whether the MC must run RAA counters and issue RFM commands."""
        return False

    @property
    def raaimt(self) -> int:
        """RFM threshold; only meaningful when :attr:`uses_rfm`."""
        self._require_bound()
        return self.timing.raaimt

    @property
    def refresh_interval_scale(self) -> float:
        """Multiplier on tREFI (DRR returns 0.5)."""
        return 1.0

    # -- address translation ----------------------------------------------------

    def translate(self, addr: BankAddress, pa_row: int) -> int:
        """Map an MC-visible row to the DA row actually activated.

        The default is the factory-identity mapping (PA offsets occupy
        the matching DA slots; empty rows are skipped).
        """
        self._require_bound()
        return self.geometry.layout.identity_da(pa_row)

    def translation_generation(self, addr: BankAddress) -> int:
        """Monotonic counter bumped whenever this bank's PA-to-DA mapping
        changes.  Static schemes return a constant so the controller can
        cache translations per request."""
        return 0

    # -- invalidation hooks -------------------------------------------------------

    def register_translation_listener(
            self, callback: Callable[[BankAddress], None]) -> None:
        """Subscribe to PA-to-DA mapping changes.

        The memory controller registers here so a translation-generation
        bump (a SHADOW shuffle, an RRS swap) invalidates exactly the
        affected bank's cached scheduling state.  Wrappers delegating
        :meth:`translate` to an inner scheme must forward registration
        to that scheme.
        """
        self._translation_listeners.append(callback)

    def notify_translation_changed(self, addr: BankAddress) -> None:
        """Tell listeners ``addr``'s mapping (and generation) changed.

        Dynamic schemes MUST call this whenever they bump a bank's
        translation generation; controllers may otherwise serve stale
        cached candidates for that bank.
        """
        for callback in self._translation_listeners:
            callback(addr)

    # -- telemetry events ---------------------------------------------------------

    def register_event_listener(
            self, callback: Callable[[str, BankAddress, int, dict], None]
    ) -> None:
        """Subscribe to mitigation telemetry events.

        The observability layer registers here to receive structured
        security/mitigation events -- SHADOW shuffles (with the shuffle's
        source/target DA copies), RRS swaps, BlockHammer throttles.
        Wrappers that delegate behaviour to an inner scheme must forward
        registration so the inner scheme's events are seen too.
        """
        self._event_listeners.append(callback)

    def emit_event(self, kind: str, addr: BankAddress, cycle: int,
                   payload: Optional[dict] = None) -> None:
        """Deliver ``(kind, addr, cycle, payload)`` to event listeners.

        Emitting schemes MUST pre-gate on ``self._event_listeners`` (one
        truthiness check) so that runs without observability never build
        payload dicts: the no-listener path is a true no-op.
        """
        if payload is None:
            payload = {}
        for callback in self._event_listeners:
            callback(kind, addr, cycle, payload)

    # -- event hooks ------------------------------------------------------------

    def before_activate(self, addr: BankAddress, pa_row: int,
                        cycle: int) -> int:
        """Return the earliest cycle this ACT may issue (throttling).

        Non-throttling schemes return ``cycle`` unchanged.
        """
        return cycle

    def on_activate(self, addr: BankAddress, pa_row: int, da_row: int,
                    cycle: int) -> Optional[ActOutcome]:
        """Observe an issued ACT; optionally demand TRR/blocking work."""
        return None

    def on_rfm(self, addr: BankAddress, cycle: int) -> RfmOutcome:
        """Perform the scheme's RFM-hosted mitigating action."""
        return RfmOutcome()

    def on_ref(self, addr: BankAddress, lo_row: int, hi_row: int,
               cycle: int) -> None:
        """Observe an auto-refresh covering DA rows ``[lo, hi)``."""

    # -- reporting ---------------------------------------------------------------

    def describe(self) -> str:
        return self.name
