"""Tracker x ActionPolicy x Scope: the mitigation composition substrate.

Every tracker-based Row Hammer defense in the paper's evaluation is the
same machine seen three ways:

* a **Tracker** observes the ACT stream in a bounded structure and
  answers queries -- estimate, hottest entry, or a sampled row;
* an **ActionPolicy** turns those answers into one of the Section III
  mitigating actions: synchronous TRR (Graphene), RFM-hosted TRR
  (Mithril, PARFM, MINT, DAPPER), ACT throttling (BlockHammer), or row
  swaps (RRS);
* a **Scope** binds the state to a granularity (per bank / per rank)
  and a reset cadence (REF-window sweep, every RFM, tracker-internal
  epoch, or never).

:class:`ComposedMitigation` is the glue: schemes declare the triple and
inherit the per-scope state management, the hook plumbing, and tracker
telemetry (reset/query counters, occupancy and spill snapshots routed
through the standard mitigation-event channel into ``repro.obs``).
Adding a mitigation becomes one file: a tracker adapter (if the
structure is new), a policy (if the action is new), and a class naming
the composition -- see ``mint.py`` and ``dapper.py``.

Hot-path discipline: the memory controller hoists per-scheme feature
gates by checking ``type(m).hook is not Mitigation.hook`` (see
``controller/mc.py``), and disables its candidate-reuse memo for
throttling schemes.  The base class therefore only overrides
``on_activate`` and ``on_rfm`` -- the hooks every composed scheme uses
-- while ``before_activate`` (:class:`ThrottleMixin`), ``on_ref``
(:class:`RefWindowResetMixin`) and ``translate`` (scheme-defined, e.g.
RRS) are opted into per scheme.  A composed scheme keeps exactly the
gate profile of its hand-written predecessor, which is what pins the
golden command streams byte-identical across the refactor.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.dram.device import BankAddress
from repro.mitigations.base import ActOutcome, Mitigation, RfmOutcome
from repro.mitigations.trackers import (
    CounterSummary,
    CountMinSketch,
    DualCountingBloomFilter,
    MintSampler,
    MisraGries,
    ResilientMisraGries,
)
from repro.spec.registry import POLICIES, TRACKERS


# -- the Tracker protocol ------------------------------------------------------------

class Tracker(abc.ABC):
    """Uniform protocol over the structures in ``trackers.py``.

    ``observe`` counts one occurrence and may return the key's fresh
    estimate when that is free (Misra-Gries does; sketches return None
    rather than pay extra hash reads on the hot path).  Queries a
    structure cannot answer fall back to safe defaults: no hottest
    entry, no sample, estimate 0.
    """

    kind = "tracker"

    @abc.abstractmethod
    def observe(self, key: int, cycle: int = 0) -> Optional[int]:
        """Count one occurrence of ``key``; optionally return its
        estimate."""

    def estimate(self, key: int, cycle: int = 0) -> int:
        return 0

    def hottest(self) -> Optional[Tuple[int, int]]:
        """The (key, count) a deterministic policy should mitigate."""
        return None

    def sample(self, rng) -> Optional[int]:
        """A row drawn from the tracked window (sampling policies)."""
        return None

    def reset_key(self, key: int) -> None:
        """Forget ``key``'s accumulated count after mitigating it."""

    def settle(self, key: int) -> None:
        """Sink ``key`` below the table floor after mitigating it."""

    def window_reset(self) -> None:
        """Scope-cadence reset (REF window / RFM).  Defaults to a full
        clear; resilient trackers may decay instead."""
        self.clear()

    def clear(self) -> None:
        """Drop all state."""

    def occupancy(self) -> int:
        """Entries currently held (telemetry)."""
        return 0

    def spillover(self) -> int:
        """Evicted/uncounted mass the structure admits (telemetry)."""
        return 0


@TRACKERS.register("misra-gries")
class MisraGriesTracker(Tracker):
    """Heavy-hitters table with spillover floor (Graphene, RRS)."""

    kind = "misra-gries"

    def __init__(self, entries: int):
        self.inner = MisraGries(entries)

    def observe(self, key: int, cycle: int = 0) -> int:
        return self.inner.observe(key)

    def estimate(self, key: int, cycle: int = 0) -> int:
        return self.inner.estimate(key)

    def hottest(self) -> Optional[Tuple[int, int]]:
        return self.inner.max_entry()

    def reset_key(self, key: int) -> None:
        self.inner.reset_key(key)

    def clear(self) -> None:
        self.inner.clear()

    def occupancy(self) -> int:
        return len(self.inner.counts)

    def spillover(self) -> int:
        return self.inner.spill


@TRACKERS.register("counter-summary")
class CounterSummaryTracker(Tracker):
    """Mithril's CbS: min-inheriting bounded counter table."""

    kind = "counter-summary"

    def __init__(self, entries: int):
        self.inner = CounterSummary(entries)

    def observe(self, key: int, cycle: int = 0) -> None:
        self.inner.observe(key)
        return None

    def estimate(self, key: int, cycle: int = 0) -> int:
        return self.inner.counts.get(key, self.inner.floor())

    def hottest(self) -> Optional[Tuple[int, int]]:
        return self.inner.hottest()

    def settle(self, key: int) -> None:
        self.inner.settle(key)

    def clear(self) -> None:
        self.inner.clear()

    def occupancy(self) -> int:
        return len(self.inner.counts)

    def spillover(self) -> int:
        return self.inner.floor()


@TRACKERS.register("dcbf")
class DcbfTracker(Tracker):
    """BlockHammer's dual counting Bloom filter.

    Epoch cadence lives *inside* the structure (it rotates on the cycle
    stamps it is fed), so schemes declare ``Scope(reset="epoch")`` for
    documentation while the composition layer performs no reset calls.
    """

    kind = "dcbf"

    def __init__(self, width: int, epoch_cycles: int, depth: int = 4):
        self.inner = DualCountingBloomFilter(width, epoch_cycles, depth)

    def observe(self, key: int, cycle: int = 0) -> None:
        self.inner.observe(key, cycle)
        return None

    def estimate(self, key: int, cycle: int = 0) -> int:
        return self.inner.estimate(key, cycle)

    def spillover(self) -> int:
        return self.inner.rotations


@TRACKERS.register("count-min")
class CountMinTracker(Tracker):
    """Plain count-min sketch (the RFM-filter extension's counter)."""

    kind = "count-min"

    def __init__(self, width: int, depth: int = 4):
        self.inner = CountMinSketch(width, depth)

    def observe(self, key: int, cycle: int = 0) -> None:
        self.inner.add(key)
        return None

    def estimate(self, key: int, cycle: int = 0) -> int:
        return self.inner.estimate(key)

    def clear(self) -> None:
        self.inner.clear()


@TRACKERS.register("recent-history")
class RecentHistoryTracker(Tracker):
    """PARFM's sampling window: the last ``depth`` activated rows."""

    kind = "recent-history"

    def __init__(self, depth: int):
        if depth <= 0:
            raise ValueError("depth must be positive")
        self._items = deque(maxlen=depth)

    def observe(self, key: int, cycle: int = 0) -> None:
        self._items.append(key)
        return None

    def sample(self, rng) -> Optional[int]:
        if not self._items:
            return None
        return self._items[rng.randrange(len(self._items))]

    def clear(self) -> None:
        self._items.clear()

    def occupancy(self) -> int:
        return len(self._items)


@TRACKERS.register("mint")
class MintTracker(Tracker):
    """MINT's single-entry sampler; selection is pre-committed inside
    the window, so :meth:`sample` consumes no randomness."""

    kind = "mint"

    def __init__(self, window: int, rng):
        self.inner = MintSampler(window, rng)

    def observe(self, key: int, cycle: int = 0) -> None:
        self.inner.observe(key)
        return None

    def sample(self, rng) -> Optional[int]:
        return self.inner.sample()

    def clear(self) -> None:
        self.inner.clear()

    def occupancy(self) -> int:
        return 1 if self.inner.sample() is not None else 0


@TRACKERS.register("dapper")
class DapperTracker(Tracker):
    """DAPPER-style resilient Misra-Gries: estimates and the hottest
    entry are provable lower bounds; window resets decay (halve)."""

    kind = "dapper"

    def __init__(self, entries: int):
        self.inner = ResilientMisraGries(entries)

    def observe(self, key: int, cycle: int = 0) -> int:
        self.inner.observe(key)
        return self.inner.lower_bound(key)

    def estimate(self, key: int, cycle: int = 0) -> int:
        return self.inner.lower_bound(key)

    def hottest(self) -> Optional[Tuple[int, int]]:
        return self.inner.hottest()

    def reset_key(self, key: int) -> None:
        self.inner.reset_key(key)

    def settle(self, key: int) -> None:
        self.inner.reset_key(key)

    def window_reset(self) -> None:
        self.inner.halve()

    def clear(self) -> None:
        self.inner.clear()

    def occupancy(self) -> int:
        return len(self.inner.counts)

    def spillover(self) -> int:
        return self.inner.spill


@TRACKERS.register("none")
class NullTracker(Tracker):
    """No tracking (stateless policies like PARA)."""

    kind = "none"

    def observe(self, key: int, cycle: int = 0) -> None:
        return None


# -- scope ---------------------------------------------------------------------------

#: Reset cadences a scope may declare.  ``"epoch"`` documents trackers
#: that rotate internally on cycle stamps (D-CBF); the composition layer
#: only drives ``"ref-window"`` (via :class:`RefWindowResetMixin`) and
#: ``"rfm"`` (after each RFM's policy work).
RESET_CADENCES = (None, "ref-window", "rfm", "epoch")

_SCOPE_GRAINS = ("bank", "rank", "channel", "global")


@dataclass(frozen=True)
class Scope:
    """Where tracker/policy state lives and when it resets."""

    per: str = "bank"
    reset: Optional[str] = None

    def __post_init__(self) -> None:
        if self.per not in _SCOPE_GRAINS:
            raise ValueError(f"scope granularity must be one of "
                             f"{_SCOPE_GRAINS}, got {self.per!r}")
        if self.reset not in RESET_CADENCES:
            raise ValueError(f"reset cadence must be one of "
                             f"{RESET_CADENCES}, got {self.reset!r}")

    def key(self, addr: BankAddress) -> Hashable:
        if self.per == "bank":
            return addr
        if self.per == "rank":
            return (addr.channel, addr.rank)
        if self.per == "channel":
            return addr.channel
        return 0


@dataclass(frozen=True)
class TrackerSpec:
    """A tracker by registry name plus constructor parameters.

    Parameter values may be callables ``(geometry, timing) -> value`` so
    sizing that depends on the bound system (table entries from the
    worst-case ACTs per tREFW, D-CBF epochs from tREFW) resolves lazily
    at tracker creation, after ``bind``.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, name: str, **params: Any) -> "TrackerSpec":
        return cls(name, tuple(sorted(params.items())))


# -- the action policies --------------------------------------------------------------

class ActionPolicy(abc.ABC):
    """One Section III mitigating action, driven by tracker answers.

    Policies are stateless across scopes: per-scope mutable state comes
    from :meth:`make_state` and is threaded back into every hook, so one
    policy instance serves every bank of its owning mitigation.
    """

    kind = "policy"

    def bind(self, owner: "ComposedMitigation") -> None:
        """Resolve timing-derived parameters once the owner is bound."""

    def make_state(self, owner: "ComposedMitigation") -> Any:
        """Fresh per-scope policy state (None when the tracker is all
        the state there is)."""
        return None

    def on_activate(self, owner: "ComposedMitigation", state: "_ScopeState",
                    addr: BankAddress, pa_row: int, da_row: int,
                    cycle: int) -> Optional[ActOutcome]:
        return None

    def before_activate(self, owner: "ComposedMitigation",
                        state: "_ScopeState", addr: BankAddress,
                        pa_row: int, cycle: int) -> int:
        return cycle

    def on_rfm(self, owner: "ComposedMitigation", state: "_ScopeState",
               addr: BankAddress, cycle: int) -> RfmOutcome:
        return RfmOutcome()


def _blast_victims(owner: "ComposedMitigation", da_row: int,
                   blast_radius: int):
    layout = owner.geometry.layout
    return [row for row, _d in layout.da_neighbors(da_row, blast_radius)]


@POLICIES.register("trr-threshold")
class ThresholdTrr(ActionPolicy):
    """Synchronous TRR when a row's estimate crosses a threshold
    (Graphene): victims refresh immediately on the triggering ACT."""

    kind = "trr-threshold"

    def __init__(self, threshold: int, blast_radius: int = 1):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.blast_radius = max(1, blast_radius)

    def on_activate(self, owner, state, addr, pa_row, da_row, cycle):
        estimate = state.tracker.observe(da_row)
        if estimate < self.threshold:
            return ActOutcome()
        state.tracker.reset_key(da_row)
        victims = _blast_victims(owner, da_row, self.blast_radius)
        owner.trr_count += len(victims)
        return ActOutcome(trr_rows=victims)


@POLICIES.register("rfm-trr-hottest")
class RfmTrrHottest(ActionPolicy):
    """RFM-hosted TRR on the tracker's hottest row (Mithril, DAPPER):
    each RFM refreshes one neighbourhood and settles the entry."""

    kind = "rfm-trr-hottest"

    def __init__(self, blast_radius: int = 1):
        self.blast_radius = max(1, blast_radius)

    def on_activate(self, owner, state, addr, pa_row, da_row, cycle):
        state.tracker.observe(da_row)
        return None

    def on_rfm(self, owner, state, addr, cycle):
        hottest = state.tracker.hottest()
        if hottest is None:
            return RfmOutcome(duration=0)
        target, _count = hottest
        state.tracker.settle(target)
        victims = _blast_victims(owner, target, self.blast_radius)
        owner.trr_count += len(victims)
        duration = len(victims) * owner.timing.tRC
        return RfmOutcome(duration=duration, refreshed_rows=victims)


@POLICIES.register("rfm-trr-sampled")
class RfmTrrSampled(ActionPolicy):
    """RFM-hosted TRR on a row sampled from the tracked window (PARFM's
    history, MINT's single entry)."""

    kind = "rfm-trr-sampled"

    def __init__(self, blast_radius: int = 1):
        if blast_radius < 1:
            raise ValueError("blast_radius must be >= 1")
        self.blast_radius = blast_radius

    def on_activate(self, owner, state, addr, pa_row, da_row, cycle):
        state.tracker.observe(da_row)
        return None

    def on_rfm(self, owner, state, addr, cycle):
        target = state.tracker.sample(owner.rng)
        if target is None:
            return RfmOutcome(duration=0)
        victims = _blast_victims(owner, target, self.blast_radius)
        owner.trr_count += len(victims)
        duration = len(victims) * owner.timing.tRC
        return RfmOutcome(duration=duration, refreshed_rows=victims)


@POLICIES.register("trr-probabilistic")
class ProbabilisticTrr(ActionPolicy):
    """PARA: Bernoulli(p) per ACT, TRR one random-side neighbourhood of
    the activated row.  Needs no tracker at all."""

    kind = "trr-probabilistic"

    def __init__(self, probability: float, blast_radius: int = 1):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if blast_radius < 1:
            raise ValueError("blast_radius must be >= 1")
        self.probability = probability
        self.blast_radius = blast_radius

    def on_activate(self, owner, state, addr, pa_row, da_row, cycle):
        # Bernoulli(p) trial using 24 fresh random bits.
        draw = owner.rng.next_bits(24)
        if draw >= int(self.probability * (1 << 24)):
            return ActOutcome()
        side = 1 if owner.rng.next_bits(1) else -1
        layout = owner.geometry.layout
        lo, hi = layout.da_range(layout.subarray_of_da(da_row))
        victims = []
        for d in range(1, self.blast_radius + 1):
            row = da_row + side * d
            if lo <= row < hi:
                victims.append(row)
        owner.trr_count += len(victims)
        return ActOutcome(trr_rows=victims)


@POLICIES.register("throttle")
class Throttle(ActionPolicy):
    """BlockHammer: rate-limit ACTs to rows whose estimate crosses the
    blacklist threshold.  Per-scope state is the last-ACT cycle map."""

    kind = "throttle"

    def __init__(self, threshold: int, delay):
        self.threshold = threshold
        #: ``delay`` may be a callable ``(geometry, timing) -> cycles``.
        self._delay_spec = delay
        self.delay = None if callable(delay) else delay

    def bind(self, owner):
        spec = self._delay_spec
        self.delay = (spec(owner.geometry, owner.timing)
                      if callable(spec) else spec)

    def make_state(self, owner):
        return {}

    def before_activate(self, owner, state, addr, pa_row, cycle):
        estimate = state.tracker.estimate(pa_row, cycle)
        if estimate < self.threshold:
            return cycle
        last = state.policy.get(pa_row)
        if last is None:
            return cycle
        allowed = last + self.delay
        if allowed > cycle:
            owner.throttled_acts += 1
            owner.total_delay_cycles += allowed - cycle
            if owner._event_listeners:
                # Per throttle *evaluation* (the scheduler may probe a
                # candidate more than once before it issues), matching
                # the ``throttled_acts`` counter's semantics.
                owner.emit_event("throttle", addr, cycle, {
                    "pa_row": pa_row, "delay": allowed - cycle})
            return allowed
        return cycle

    def on_activate(self, owner, state, addr, pa_row, da_row, cycle):
        state.tracker.observe(pa_row, cycle)
        state.policy[pa_row] = cycle
        return None


# -- the composition glue -------------------------------------------------------------

class _ScopeState:
    """One scope key's state: its tracker plus the policy's scratch."""

    __slots__ = ("tracker", "policy")

    def __init__(self, tracker: Tracker, policy: Any):
        self.tracker = tracker
        self.policy = policy


class ComposedMitigation(Mitigation):
    """A mitigation declared as tracker x policy x scope.

    Subclasses pass the triple up and keep only their public face
    (name, ``uses_rfm``/``raaimt`` properties, reporting attributes).
    The glue owns per-scope state creation, the ``on_activate`` /
    ``on_rfm`` plumbing, reset cadences, and tracker telemetry.
    """

    def __init__(self, tracker: TrackerSpec, policy: ActionPolicy,
                 scope: Scope = Scope(), name: Optional[str] = None):
        super().__init__()
        self.tracker_spec = tracker
        self.policy = policy
        self.scope = scope
        if (scope.reset == "ref-window"
                and type(self).on_ref is Mitigation.on_ref):
            raise TypeError(
                f"{type(self).__name__}: reset='ref-window' requires "
                f"RefWindowResetMixin (the MC only calls on_ref on "
                f"schemes whose class overrides it)")
        self._states: Dict[Hashable, _ScopeState] = {}
        self.trr_count = 0
        self.tracker_queries = 0
        self.tracker_resets = 0
        if name is not None:
            self.name = name

    def bind(self, geometry, timing) -> None:
        super().bind(geometry, timing)
        self.policy.bind(self)

    def describe_composition(self) -> str:
        cadence = f"/{self.scope.reset}" if self.scope.reset else ""
        return (f"{self.tracker_spec.name} x {self.policy.kind} x "
                f"{self.scope.per}{cadence}")

    # -- per-scope state -------------------------------------------------------

    def _make_tracker(self) -> Tracker:
        params = {key: (value(self.geometry, self.timing)
                        if callable(value) else value)
                  for key, value in self.tracker_spec.params}
        return TRACKERS.build(self.tracker_spec.name, **params)

    def _state(self, addr: BankAddress) -> _ScopeState:
        key = self.scope.key(addr)
        state = self._states.get(key)
        if state is None:
            state = _ScopeState(self._make_tracker(),
                                self.policy.make_state(self))
            self._states[key] = state
        return state

    def _peek_state(self, addr: BankAddress) -> Optional[_ScopeState]:
        return self._states.get(self.scope.key(addr))

    def _reset_tracker(self, state: _ScopeState, addr: BankAddress,
                       cycle: int) -> None:
        self.tracker_resets += 1
        if self._event_listeners:
            self.emit_event("tracker-reset", addr, cycle, {
                "occupancy": state.tracker.occupancy(),
                "spill": state.tracker.spillover(),
            })
        state.tracker.window_reset()

    # -- telemetry -------------------------------------------------------------

    def tracker_occupancy(self) -> int:
        """Entries held across every scope (obs snapshots)."""
        return sum(s.tracker.occupancy() for s in self._states.values())

    def tracker_spill(self) -> int:
        """Spilled/evicted mass across every scope (obs snapshots)."""
        return sum(s.tracker.spillover() for s in self._states.values())

    # -- hooks -----------------------------------------------------------------

    def on_activate(self, addr: BankAddress, pa_row: int, da_row: int,
                    cycle: int) -> Optional[ActOutcome]:
        return self.policy.on_activate(self, self._state(addr), addr,
                                       pa_row, da_row, cycle)

    def on_rfm(self, addr: BankAddress, cycle: int) -> RfmOutcome:
        self._require_bound()
        state = self._state(addr)
        self.tracker_queries += 1
        outcome = self.policy.on_rfm(self, state, addr, cycle)
        if self.scope.reset == "rfm":
            self._reset_tracker(state, addr, cycle)
        return outcome


class RefWindowResetMixin:
    """Opt-in ``reset="ref-window"`` cadence.

    Defines ``on_ref`` (so the MC's ``_observes_ref`` gate opens for the
    scheme) and resets each bank's tracker when the refresh sweep wraps
    to row 0 -- clearing per-REF segment would be more precise but
    strictly weaker for the attacker.  Resilient trackers decay instead
    of clearing (their ``window_reset``)."""

    def on_ref(self, addr: BankAddress, lo_row: int, hi_row: int,
               cycle: int) -> None:
        if lo_row == 0:
            state = self._peek_state(addr)
            if state is not None:
                self._reset_tracker(state, addr, cycle)


class ThrottleMixin:
    """Opt-in ACT throttling.

    Defines ``before_activate`` (so the MC's ``_throttles`` gate opens
    and its candidate-reuse memo is disabled) and delegates to the
    policy.  Only genuinely throttling schemes should carry that
    scheduling cost, hence the opt-in."""

    def before_activate(self, addr: BankAddress, pa_row: int,
                        cycle: int) -> int:
        return self.policy.before_activate(self, self._state(addr), addr,
                                           pa_row, cycle)


__all__ = [
    "ActionPolicy",
    "ComposedMitigation",
    "CounterSummaryTracker",
    "CountMinTracker",
    "DapperTracker",
    "DcbfTracker",
    "MintTracker",
    "MisraGriesTracker",
    "NullTracker",
    "ProbabilisticTrr",
    "RecentHistoryTracker",
    "RefWindowResetMixin",
    "RfmTrrHottest",
    "RfmTrrSampled",
    "Scope",
    "ThresholdTrr",
    "Throttle",
    "ThrottleMixin",
    "Tracker",
    "TrackerSpec",
]
