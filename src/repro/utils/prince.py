"""PRINCE block cipher (Borghoff et al., ASIACRYPT 2012).

SHADOW's per-chip RNG unit is a cryptographically secure PRNG built on the
PRINCE low-latency block cipher (paper Section V-C and VIII).  PRINCE is a
64-bit block cipher with a 128-bit key, designed for unrolled low-latency
hardware -- exactly the constraint a DRAM die imposes.

This is a complete, from-scratch implementation:

* 128-bit key schedule ``k = k0 || k1`` with the whitening key
  ``k0' = (k0 >>> 1) ^ (k0 >> 63)``;
* the FX whitening construction around ``PRINCE_core`` keyed by ``k1``;
* the 12-round alpha-reflective core with the published S-box, round
  constants, involutive ``M'`` linear layer, and AES-like nibble ShiftRows.

The implementation is validated against the five published test vectors in
``tests/test_prince.py``.
"""

from __future__ import annotations

from typing import List

MASK64 = 0xFFFF_FFFF_FFFF_FFFF

#: The PRINCE 4-bit S-box (Table 3 of the paper).
SBOX = (0xB, 0xF, 0x3, 0x2, 0xA, 0xC, 0x9, 0x1,
        0x6, 0x7, 0x8, 0x0, 0xE, 0x5, 0xD, 0x4)
SBOX_INV = tuple(SBOX.index(i) for i in range(16))

#: Round constants RC0 .. RC11.  RC_i ^ RC_{11-i} == ALPHA for all i.
ROUND_CONSTANTS = (
    0x0000000000000000,
    0x13198A2E03707344,
    0xA4093822299F31D0,
    0x082EFA98EC4E6C89,
    0x452821E638D01377,
    0xBE5466CF34E90C6C,
    0x7EF84F78FD955CB1,
    0x85840851F1AC43AA,
    0xC882D32F25323C54,
    0x64A51195E0E3610D,
    0xD3B5A399CA0C2399,
    0xC0AC29B7C97C50DD,
)

ALPHA = 0xC0AC29B7C97C50DD

#: ShiftRows nibble permutation: output nibble ``i`` (0 = most significant)
#: takes input nibble ``SR[i]``.
SHIFT_ROWS = (0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11)
SHIFT_ROWS_INV = tuple(SHIFT_ROWS.index(i) for i in range(16))


def _build_m_prime_masks() -> List[int]:
    """Build the involutive M' layer as 64 per-output-bit input masks.

    M' is block-diagonal ``diag(M^0, M^1, M^1, M^0)`` where each 16x16
    block is assembled from the four 4x4 matrices ``m0..m3`` (identity with
    one diagonal element removed) arranged in a circulant pattern.

    Bit convention: bit 63 of the integer state is row 0 of the matrix
    (most-significant-first), matching the published test vectors.
    """
    def m_row(k: int) -> List[int]:
        # m_k is the 4x4 identity with the k-th diagonal entry zeroed.
        rows = []
        for r in range(4):
            rows.append([1 if (r == c and r != k) else 0 for c in range(4)])
        return rows

    m = [m_row(k) for k in range(4)]

    def mhat(order: List[List[int]]) -> List[List[int]]:
        # Assemble a 16x16 block from a 4x4 arrangement of m-indices.
        block = [[0] * 16 for _ in range(16)]
        for br in range(4):
            for bc in range(4):
                sub = m[order[br][bc]]
                for r in range(4):
                    for c in range(4):
                        block[4 * br + r][4 * bc + c] = sub[r][c]
        return block

    mhat0 = mhat([[0, 1, 2, 3], [1, 2, 3, 0], [2, 3, 0, 1], [3, 0, 1, 2]])
    mhat1 = mhat([[1, 2, 3, 0], [2, 3, 0, 1], [3, 0, 1, 2], [0, 1, 2, 3]])

    blocks = [mhat0, mhat1, mhat1, mhat0]
    masks = []
    for b, block in enumerate(blocks):
        for r in range(16):
            mask = 0
            for c in range(16):
                if block[r][c]:
                    # Column c of block b corresponds to state bit
                    # 63 - (16*b + c).
                    mask |= 1 << (63 - (16 * b + c))
            masks.append(mask)
    # masks[i] is the input mask for output bit 63 - i.
    return masks


_M_PRIME_MASKS = _build_m_prime_masks()


def m_prime_layer(state: int) -> int:
    """Apply the involutive M' binary matrix to a 64-bit state."""
    out = 0
    for i, mask in enumerate(_M_PRIME_MASKS):
        v = state & mask
        # Parity of v.
        v ^= v >> 32
        v ^= v >> 16
        v ^= v >> 8
        v ^= v >> 4
        v ^= v >> 2
        v ^= v >> 1
        out |= (v & 1) << (63 - i)
    return out


def _nibbles(state: int) -> List[int]:
    """Split a 64-bit state into 16 nibbles, most significant first."""
    return [(state >> (60 - 4 * i)) & 0xF for i in range(16)]


def _from_nibbles(nibbles: List[int]) -> int:
    state = 0
    for n in nibbles:
        state = (state << 4) | (n & 0xF)
    return state


def sbox_layer(state: int, inverse: bool = False) -> int:
    """Apply the PRINCE S-box (or its inverse) to all 16 nibbles."""
    table = SBOX_INV if inverse else SBOX
    return _from_nibbles([table[n] for n in _nibbles(state)])


def shift_rows(state: int, inverse: bool = False) -> int:
    """Apply the AES-like nibble ShiftRows permutation (or inverse)."""
    perm = SHIFT_ROWS_INV if inverse else SHIFT_ROWS
    nibbles = _nibbles(state)
    return _from_nibbles([nibbles[perm[i]] for i in range(16)])


class PrinceCipher:
    """The PRINCE cipher with a fixed 128-bit key.

    Parameters
    ----------
    key:
        A 128-bit integer ``k0 || k1`` (``k0`` in the high 64 bits).

    Examples
    --------
    >>> c = PrinceCipher(0)
    >>> hex(c.encrypt(0))
    '0x818665aa0d02dfda'
    """

    def __init__(self, key: int):
        if not 0 <= key < (1 << 128):
            raise ValueError("PRINCE key must be a 128-bit integer")
        self._k0 = (key >> 64) & MASK64
        self._k1 = key & MASK64
        # k0' = (k0 >>> 1) XOR (k0 >> 63)
        rotated = ((self._k0 >> 1) | ((self._k0 & 1) << 63)) & MASK64
        self._k0_prime = rotated ^ (self._k0 >> 63)

    @property
    def key(self) -> int:
        return (self._k0 << 64) | self._k1

    def _round_forward(self, state: int, index: int) -> int:
        state = sbox_layer(state)
        state = m_prime_layer(state)
        state = shift_rows(state)
        state ^= ROUND_CONSTANTS[index]
        state ^= self._k1
        return state

    def _round_backward(self, state: int, index: int) -> int:
        state ^= self._k1
        state ^= ROUND_CONSTANTS[index]
        state = shift_rows(state, inverse=True)
        state = m_prime_layer(state)
        state = sbox_layer(state, inverse=True)
        return state

    def _core(self, state: int) -> int:
        state ^= self._k1
        state ^= ROUND_CONSTANTS[0]
        for i in range(1, 6):
            state = self._round_forward(state, i)
        # Middle involution: S, M', S^-1.
        state = sbox_layer(state)
        state = m_prime_layer(state)
        state = sbox_layer(state, inverse=True)
        for i in range(6, 11):
            state = self._round_backward(state, i)
        state ^= ROUND_CONSTANTS[11]
        state ^= self._k1
        return state

    def encrypt(self, plaintext: int) -> int:
        """Encrypt a 64-bit block."""
        if not 0 <= plaintext <= MASK64:
            raise ValueError("plaintext must be a 64-bit integer")
        state = plaintext ^ self._k0
        state = self._core(state)
        return state ^ self._k0_prime

    def decrypt(self, ciphertext: int) -> int:
        """Decrypt a 64-bit block (alpha-reflection property)."""
        if not 0 <= ciphertext <= MASK64:
            raise ValueError("ciphertext must be a 64-bit integer")
        # Decryption is encryption with (k0', k0, k1 ^ alpha).
        inverse = PrinceCipher.__new__(PrinceCipher)
        inverse._k0 = self._k0_prime
        inverse._k0_prime = self._k0
        inverse._k1 = self._k1 ^ ALPHA
        return inverse.encrypt(ciphertext)
