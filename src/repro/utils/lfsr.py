"""Galois linear-feedback shift register.

Paper Section VIII notes that SHADOW can also use an LFSR-based RNG with a
periodically re-randomized seed, as recent DDR5 chips already carry LFSRs
for read-training pattern generation.  This module provides a Galois LFSR
with maximal-period default taps for common widths.
"""

from __future__ import annotations

#: Maximal-length feedback polynomials (taps as a bitmask, LSB = x^1 term)
#: for a Galois LFSR of the given width.  The mask includes the output tap.
DEFAULT_TAPS = {
    8: 0xB8,
    16: 0xB400,
    24: 0xE10000,
    32: 0xA3000000,
    48: 0xC00000401000,
    64: 0xD800000000000000,
}


class GaloisLFSR:
    """A Galois LFSR producing one bit per :meth:`step`.

    Parameters
    ----------
    width:
        Register width in bits.
    seed:
        Initial non-zero state (an all-zero LFSR is stuck).
    taps:
        Optional feedback mask; defaults to a maximal-length polynomial for
        the requested width.
    """

    def __init__(self, width: int = 64, seed: int = 1, taps: int | None = None):
        if width <= 0:
            raise ValueError("width must be positive")
        if taps is None:
            if width not in DEFAULT_TAPS:
                raise ValueError(
                    f"no default taps for width {width}; "
                    f"choose one of {sorted(DEFAULT_TAPS)} or pass taps"
                )
            taps = DEFAULT_TAPS[width]
        mask = (1 << width) - 1
        seed &= mask
        if seed == 0:
            raise ValueError("seed must be non-zero")
        self._width = width
        self._mask = mask
        self._taps = taps & mask
        self._state = seed

    @property
    def width(self) -> int:
        return self._width

    @property
    def state(self) -> int:
        return self._state

    def reseed(self, seed: int) -> None:
        """Replace the register state (paper: periodic seed randomization)."""
        seed &= self._mask
        if seed == 0:
            raise ValueError("seed must be non-zero")
        self._state = seed

    def step(self) -> int:
        """Advance one cycle and return the output bit."""
        out = self._state & 1
        self._state >>= 1
        if out:
            self._state ^= self._taps
        return out

    def next_bits(self, count: int) -> int:
        """Return ``count`` output bits packed MSB-first."""
        value = 0
        for _ in range(count):
            value = (value << 1) | self.step()
        return value
