"""Utility primitives shared across the reproduction.

The SHADOW paper (Section V-C, Section VIII) requires a hardware random
number generator per DRAM chip.  The default is a cryptographically secure
PRNG built on the PRINCE block cipher; a cheaper LFSR-based option is also
described.  Both are implemented here, together with small bit-manipulation
helpers used by the DRAM address-mapping code.
"""

from repro.utils.bits import bit_length_for, extract_bits, parity64, popcount
from repro.utils.lfsr import GaloisLFSR
from repro.utils.prince import PrinceCipher
from repro.utils.rng import (
    BufferedRng,
    LfsrRng,
    PrinceRng,
    RandomSource,
    SystemRng,
    make_rng,
)

__all__ = [
    "BufferedRng",
    "GaloisLFSR",
    "LfsrRng",
    "PrinceCipher",
    "PrinceRng",
    "RandomSource",
    "SystemRng",
    "bit_length_for",
    "extract_bits",
    "make_rng",
    "parity64",
    "popcount",
]
