"""Content-addressed on-disk result cache.

Simulation runs are deterministic functions of their spec (workload
profiles, scheme, system configuration, seed), so their results can be
memoised on disk: the spec is serialised to canonical JSON, hashed, and
the result stored under ``<digest>.json``.  A schema version is part of
the digested payload, so changing the result format (or anything about
what a cached value means) invalidates old entries by construction
rather than by manual cleanup.

Writes are atomic (``os.replace`` of a temp file) so an interrupted
sweep never leaves a torn entry behind -- a rerun simply resumes from
whatever completed.  Corrupt or stale entries read as misses.

Wipe the cache by deleting its directory (``rm -rf results/.cache``) or
calling :meth:`ResultCache.wipe`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
from typing import Any, Dict, Optional

#: Bump whenever the meaning or format of cached values changes.
SCHEMA_VERSION = 1

#: Default location, shared by every experiment driver.
DEFAULT_CACHE_DIR = "results/.cache"

#: Age (seconds) past which an orphaned ``*.tmp`` file -- left behind by
#: a :meth:`ResultCache.put` that died between ``mkstemp`` and
#: ``os.replace`` -- is considered stale and safe to delete.  Young tmp
#: files may belong to a concurrently writing engine and are left alone.
STALE_TMP_AGE_S = 3600.0


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_digest(spec: Any, schema_version: int = SCHEMA_VERSION) -> str:
    """Stable hex digest of a JSON-serialisable spec."""
    body = canonical_json({"schema": schema_version, "spec": spec})
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:40]


class ResultCache:
    """A keyed store of JSON values addressed by their spec's hash."""

    def __init__(self, directory: str = DEFAULT_CACHE_DIR,
                 schema_version: int = SCHEMA_VERSION,
                 stale_tmp_age_s: float = STALE_TMP_AGE_S):
        self.directory = pathlib.Path(directory)
        self.schema_version = schema_version
        self.stale_tmp_age_s = stale_tmp_age_s
        self.hits = 0
        self.misses = 0
        self._tmps_cleaned = False

    def path_for(self, spec: Any) -> pathlib.Path:
        """Where the entry for ``spec`` lives (whether or not it exists)."""
        return self.directory / f"{spec_digest(spec, self.schema_version)}.json"

    def get(self, spec: Any) -> Optional[Dict]:
        """The cached value for ``spec``, or None on a miss.

        The stored spec is compared against the requested one, so a
        (vanishingly unlikely) digest collision or a hand-edited entry
        degrades to a miss, never a wrong result.
        """
        path = self.path_for(spec)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (entry.get("schema") != self.schema_version
                or entry.get("spec") != json.loads(canonical_json(spec))):
            self.misses += 1
            return None
        self.hits += 1
        return entry["value"]

    def put(self, spec: Any, value: Dict) -> pathlib.Path:
        """Persist ``value`` for ``spec`` atomically; returns the path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        if not self._tmps_cleaned:
            self.clean_stale_tmps()
        path = self.path_for(spec)
        entry = {"schema": self.schema_version,
                 "spec": json.loads(canonical_json(spec)),
                 "value": value}
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def clean_stale_tmps(self, max_age_s: Optional[float] = None) -> int:
        """Remove orphaned ``*.tmp`` files left by interrupted ``put``
        calls; returns how many were deleted.

        Only tmps older than ``max_age_s`` (default: the cache's
        ``stale_tmp_age_s``) go -- a fresh tmp may be a concurrent
        writer mid-``os.replace``.
        """
        self._tmps_cleaned = True
        if max_age_s is None:
            max_age_s = self.stale_tmp_age_s
        removed = 0
        if self.directory.is_dir():
            cutoff = time.time() - max_age_s
            for path in self.directory.glob("*.tmp"):
                try:
                    if path.stat().st_mtime <= cutoff:
                        path.unlink()
                        removed += 1
                except OSError:
                    pass
        return removed

    def wipe(self) -> int:
        """Delete every entry (and orphaned tmp file); returns how many
        were removed."""
        removed = 0
        if self.directory.is_dir():
            for pattern in ("*.json", "*.tmp"):
                for path in self.directory.glob(pattern):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed


__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "SCHEMA_VERSION",
    "STALE_TMP_AGE_S",
    "canonical_json",
    "spec_digest",
]
