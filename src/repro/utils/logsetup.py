"""Process-wide logging configuration for the CLI and drivers.

One call configures the root logger; repeat calls only adjust the
level, so library code can call :func:`setup_logging` defensively
without stacking duplicate handlers.  Modules log through the stdlib
(``logging.getLogger(__name__)``) and stay silent unless the user opts
in with ``--log-level``.
"""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"

_configured = False


def setup_logging(level: str = "warning") -> int:
    """Configure the root logger once; returns the numeric level.

    ``level`` is a case-insensitive stdlib level name.  The first call
    installs a single stderr handler; later calls only change the level
    (idempotent, so tests and nested drivers can call it freely).
    """
    global _configured
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    if not _configured:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
        logging.getLogger().addHandler(handler)
        _configured = True
    logging.getLogger().setLevel(numeric)
    return numeric


__all__ = ["setup_logging"]
