"""Random-number sources for the SHADOW controller.

SHADOW selects ``Row_aggr`` and ``Row_rand`` using random numbers produced
by a per-chip RNG unit and buffered in each bank's SHADOW controller
(Section V-C).  The default unit is a CSPRNG built on the PRINCE block
cipher in counter mode; a cheaper LFSR option exists (Section VIII).

All sources implement :class:`RandomSource` so simulation code can swap
them.  Every source is deterministic under its seed, which makes every
experiment in this repository reproducible.
"""

from __future__ import annotations

import abc
import random
from typing import List

from repro.utils.lfsr import GaloisLFSR
from repro.utils.prince import PrinceCipher


class RandomSource(abc.ABC):
    """Uniform random bit/integer source."""

    @abc.abstractmethod
    def next_bits(self, width: int) -> int:
        """Return ``width`` uniform random bits as an integer."""

    def randrange(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)`` by rejection sampling.

        Rejection (rather than modulo) keeps the output exactly uniform,
        which the security analysis relies on.
        """
        if bound <= 0:
            raise ValueError("bound must be positive")
        if bound == 1:
            return 0
        width = (bound - 1).bit_length()
        while True:
            value = self.next_bits(width)
            if value < bound:
                return value

    def choice(self, items: List):
        """Return a uniformly-chosen element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randrange(len(items))]

    def shuffle(self, items: List) -> None:
        """Fisher-Yates shuffle in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randrange(i + 1)
            items[i], items[j] = items[j], items[i]


class PrinceRng(RandomSource):
    """CSPRNG: PRINCE in counter mode (the paper's default RNG unit).

    Each encryption of an incrementing counter yields 64 fresh bits.  The
    paper budgets 126 Mbit/s of required throughput at 4K ``H_cnt``; PRINCE
    delivers >1 Gbit/s even at DRAM core clocks, hence buffering hides all
    latency.  Functionally we only need determinism + uniformity.
    """

    def __init__(self, key: int = 0x0123456789ABCDEF_FEDCBA9876543210, counter: int = 0):
        self._cipher = PrinceCipher(key)
        self._counter = counter
        self._buffer = 0
        self._buffered_bits = 0
        self.blocks_generated = 0

    def reseed(self, key: int, counter: int = 0) -> None:
        """Boot-time / periodic key+counter initialization (Section VIII)."""
        self._cipher = PrinceCipher(key)
        self._counter = counter
        self._buffer = 0
        self._buffered_bits = 0

    def _refill(self) -> None:
        block = self._cipher.encrypt(self._counter & 0xFFFF_FFFF_FFFF_FFFF)
        self._counter += 1
        self.blocks_generated += 1
        self._buffer = (self._buffer << 64) | block
        self._buffered_bits += 64

    def next_bits(self, width: int) -> int:
        if width < 0:
            raise ValueError("width must be non-negative")
        while self._buffered_bits < width:
            self._refill()
        self._buffered_bits -= width
        value = self._buffer >> self._buffered_bits
        self._buffer &= (1 << self._buffered_bits) - 1
        return value


class LfsrRng(RandomSource):
    """LFSR-based RNG (the paper's low-area alternative, Section VIII)."""

    def __init__(self, seed: int = 0xACE1, width: int = 64):
        self._lfsr = GaloisLFSR(width=width, seed=seed)

    def reseed(self, seed: int) -> None:
        self._lfsr.reseed(seed)

    def next_bits(self, width: int) -> int:
        return self._lfsr.next_bits(width)


class SystemRng(RandomSource):
    """Wrapper over :mod:`random` for simulation plumbing (seeded)."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def next_bits(self, width: int) -> int:
        if width < 0:
            raise ValueError("width must be non-negative")
        if width == 0:
            return 0
        return self._rng.getrandbits(width)

    def randrange(self, bound: int) -> int:  # fast path
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self._rng.randrange(bound)


class BufferedRng(RandomSource):
    """Models the SHADOW controller's pre-buffered random values.

    The RNG unit fills a small FIFO of fixed-width words in advance so the
    row-shuffle never waits on random-number generation latency.  The FIFO
    depth is observable for the area model; functionally the stream equals
    the backing source's stream.
    """

    def __init__(self, source: RandomSource, word_width: int = 32, depth: int = 8):
        if word_width <= 0 or depth <= 0:
            raise ValueError("word_width and depth must be positive")
        self._source = source
        self._word_width = word_width
        self._depth = depth
        self._fifo: List[int] = []
        self.refills = 0

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def word_width(self) -> int:
        return self._word_width

    @property
    def occupancy(self) -> int:
        return len(self._fifo)

    def _fill(self) -> None:
        while len(self._fifo) < self._depth:
            self._fifo.append(self._source.next_bits(self._word_width))
            self.refills += 1

    def next_bits(self, width: int) -> int:
        if width < 0:
            raise ValueError("width must be non-negative")
        value = 0
        remaining = width
        while remaining > 0:
            if not self._fifo:
                self._fill()
            word = self._fifo.pop(0)
            take = min(remaining, self._word_width)
            value = (value << take) | (word >> (self._word_width - take))
            remaining -= take
        return value


def make_rng(kind: str = "prince", seed: int = 1) -> RandomSource:
    """Factory used by configuration code.

    ``kind`` is one of ``"prince"``, ``"lfsr"``, or ``"system"``.
    """
    if kind == "prince":
        # Spread the seed across the 128-bit key space.
        key = (seed * 0x9E3779B97F4A7C15) & ((1 << 128) - 1) | 1
        return PrinceRng(key=key)
    if kind == "lfsr":
        return LfsrRng(seed=seed or 1)
    if kind == "system":
        return SystemRng(seed=seed)
    raise ValueError(f"unknown RNG kind: {kind!r}")
