"""Small bit-manipulation helpers.

These are used by the DRAM address mapping code (:mod:`repro.controller.
address`) and by the PRINCE cipher's binary linear layer.
"""

MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def popcount(value: int) -> int:
    """Return the number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount is defined for non-negative integers")
    return bin(value).count("1")


def parity64(value: int) -> int:
    """Return the XOR of all 64 low bits of ``value`` (0 or 1)."""
    value &= MASK64
    value ^= value >> 32
    value ^= value >> 16
    value ^= value >> 8
    value ^= value >> 4
    value ^= value >> 2
    value ^= value >> 1
    return value & 1


def extract_bits(value: int, low: int, width: int) -> int:
    """Return ``width`` bits of ``value`` starting at bit ``low``.

    >>> extract_bits(0b101100, 2, 3)
    3
    """
    if width < 0 or low < 0:
        raise ValueError("low and width must be non-negative")
    return (value >> low) & ((1 << width) - 1)


def bit_length_for(count: int) -> int:
    """Return the number of bits needed to index ``count`` distinct items.

    ``count`` must be positive.  ``bit_length_for(1)`` is 0 (a single item
    needs no index bits); ``bit_length_for(512)`` is 9.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    return (count - 1).bit_length()
