"""Fault injection and integrity verification (``repro.faults``).

The subsystem turns the analytic threat model into end-to-end
experiments: the timing simulator's observer seam drives a
:class:`~repro.faults.inject.FaultInjector` that accumulates DA-space
disturbance online, injects concrete per-row bit flips past ``H_cnt``,
classifies them through a SEC-DED ECC model
(:mod:`repro.faults.ecc`), and escalates detected-uncorrectable errors
into sPPR repair / retry / panic policies
(:mod:`repro.faults.recovery`).

Importing this package registers the degradation policies in the
central ``FAULT_POLICIES`` registry; the declarative
:class:`~repro.spec.FaultSpec` builds injectors through
:func:`build_injector` so engine cache keys and CLI flags share one
definition of a fault-injection run.
"""

from __future__ import annotations

from repro.faults.ecc import (
    CORRECTED,
    MASKED,
    SILENT,
    UNCORRECTABLE,
    EccConfig,
    EccModel,
    classify,
)
from repro.faults.inject import FaultInjector
from repro.faults.recovery import (
    RecoveryConfig,
    RecoveryPipeline,
)
from repro.rowhammer.model import HammerConfig


def build_injector(spec) -> FaultInjector:
    """Build a :class:`FaultInjector` from a ``FaultSpec``.

    Lives here (not on the spec) so :mod:`repro.spec` stays import-light;
    ``FaultSpec.build()`` delegates to this function lazily.
    """
    hammer = HammerConfig(
        hcnt=spec.hcnt,
        blast_radius=spec.blast_radius,
        refresh_hammers_neighbors=spec.refresh_hammers_neighbors,
    )
    ecc = EccConfig(
        data_bits=spec.data_bits,
        check_bits=spec.check_bits,
        codewords_per_row=spec.codewords_per_row,
    )
    recovery = RecoveryConfig(
        policy=spec.policy,
        max_retries=spec.max_retries,
    )
    return FaultInjector(
        hammer, ecc=ecc, recovery=recovery, seed=spec.seed,
        scrub_on_refresh=spec.scrub_on_refresh,
    )


__all__ = [
    "CORRECTED",
    "EccConfig",
    "EccModel",
    "FaultInjector",
    "MASKED",
    "RecoveryConfig",
    "RecoveryPipeline",
    "SILENT",
    "UNCORRECTABLE",
    "build_injector",
    "classify",
]
