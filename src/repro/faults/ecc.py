"""Per-codeword SEC-DED ECC error accounting.

Server DDR4/DDR5 DIMMs protect each 64-bit data word with an 8-bit
Hamming extension (a (72,64) SEC-DED code): any single bit error in a
codeword is corrected on read, any double bit error is detected but not
correctable, and three or more flipped bits alias -- the syndrome either
looks clean or points at an innocent bit, so the error is *silent*
(possibly made worse by a miscorrection).

This module keeps the minimal state that classification needs: for each
physical row, the set of flipped bit positions per codeword.  Rows with
no flips carry no state, so the model costs nothing until the
disturbance model actually crosses ``H_cnt``.  Classification happens
*per injected bit* -- the interesting quantity for the red-team harness
is the transition a flip causes (clean -> correctable -> detected
uncorrectable -> silent), because the detected-uncorrectable transition
is the moment a real machine takes its recovery action.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

#: Classification of one injected bit by its codeword's new error count.
CORRECTED = "corrected"          # k = 1: fixed transparently on read
UNCORRECTABLE = "uncorrectable"  # k = 2: detected, machine must react
SILENT = "silent"                # k >= 3: syndrome aliases; undetected
MASKED = "masked"                # the cell was already flipped (no-op)


@dataclass(frozen=True)
class EccConfig:
    """Shape of the code protecting one DRAM row."""

    data_bits: int = 64        # payload bits per codeword
    check_bits: int = 8        # Hamming + overall-parity bits
    #: Codewords per row: an 8 KB row is 1024 64-bit data words.
    codewords_per_row: int = 1024

    def __post_init__(self) -> None:
        if self.data_bits <= 0:
            raise ValueError("data_bits must be positive")
        if self.check_bits <= 0:
            raise ValueError("check_bits must be positive")
        if self.codewords_per_row <= 0:
            raise ValueError("codewords_per_row must be positive")

    @property
    def codeword_bits(self) -> int:
        """Total bits per codeword (data + check, all flippable)."""
        return self.data_bits + self.check_bits


def classify(flipped_in_codeword: int) -> str:
    """SEC-DED outcome for a codeword carrying ``k`` flipped bits."""
    if flipped_in_codeword < 0:
        raise ValueError("flip count must be non-negative")
    if flipped_in_codeword <= 1:
        return CORRECTED
    if flipped_in_codeword == 2:
        return UNCORRECTABLE
    return SILENT


class EccModel:
    """Flipped-bit positions per (row, codeword), with scrub semantics.

    Keys are opaque row identities (the injector uses ``(BankAddress,
    da_row)`` tuples).  The model is purely structural -- counters and
    policy live in the caller -- so it is cheap to reason about:

    * :meth:`inject` adds one flipped bit and returns the transition;
    * :meth:`scrub_row` models a patrol-scrub pass: every codeword with
      a single flipped bit is corrected and its state dropped, while
      multi-bit codewords stay broken (SEC-DED cannot fix them);
    * :meth:`move_row` follows an in-DRAM row copy: the data -- flipped
      bits included -- now lives in the destination physical row;
    * :meth:`clear_row` / :meth:`clear_all` model repair and reboot.
    """

    def __init__(self, config: EccConfig):
        self.config = config
        self._rows: Dict[object, Dict[int, Set[int]]] = {}

    def __len__(self) -> int:
        """Rows currently carrying at least one flipped bit."""
        return len(self._rows)

    def inject(self, row_key, codeword: int, bit: int) -> str:
        """Flip one bit; returns the transition classification.

        A RowHammer flip discharges a cell; flipping the same cell again
        is a no-op (:data:`MASKED`), which is exactly what the birthday
        statistics of repeated injection need.
        """
        if not 0 <= codeword < self.config.codewords_per_row:
            raise ValueError("codeword index out of range")
        if not 0 <= bit < self.config.codeword_bits:
            raise ValueError("bit index out of range")
        codewords = self._rows.setdefault(row_key, {})
        bits = codewords.setdefault(codeword, set())
        if bit in bits:
            return MASKED
        bits.add(bit)
        return classify(len(bits))

    def flipped_bits(self, row_key) -> int:
        """Total flipped bits currently resident in ``row_key``."""
        return sum(len(bits)
                   for bits in self._rows.get(row_key, {}).values())

    def worst_codeword(self, row_key) -> int:
        """Highest per-codeword flip count in ``row_key`` (0 if clean)."""
        codewords = self._rows.get(row_key)
        if not codewords:
            return 0
        return max(len(bits) for bits in codewords.values())

    def scrub_row(self, row_key) -> Tuple[int, int]:
        """Patrol-scrub one row: fix single-bit codewords.

        Returns ``(codewords_corrected, codewords_still_broken)``.  Rows
        with no remaining state are dropped entirely.
        """
        codewords = self._rows.get(row_key)
        if not codewords:
            return 0, 0
        corrected = [cw for cw, bits in codewords.items()
                     if len(bits) == 1]
        for cw in corrected:
            del codewords[cw]
        if not codewords:
            del self._rows[row_key]
        return len(corrected), len(codewords)

    def move_row(self, src_key, dst_key) -> None:
        """An in-DRAM copy moved the data (errors included) to ``dst``.

        The source physical row is left logically free; whatever error
        state the destination held is overwritten by the copy.
        """
        state = self._rows.pop(src_key, None)
        if state:
            self._rows[dst_key] = state
        else:
            self._rows.pop(dst_key, None)

    def clear_row(self, row_key) -> None:
        """Drop a row's error state (repaired or rewritten)."""
        self._rows.pop(row_key, None)

    def clear_all(self) -> None:
        """Reboot semantics: memory is reloaded, all errors gone."""
        self._rows.clear()


__all__ = [
    "CORRECTED",
    "EccConfig",
    "EccModel",
    "MASKED",
    "SILENT",
    "UNCORRECTABLE",
    "classify",
]
