"""Graceful-degradation policies for detected-uncorrectable errors.

When ECC reports a detected-uncorrectable error (two flipped bits in
one codeword), a real platform has to *do* something: the OS or the
memory controller retires the page/row, firmware burns a spare row via
soft post-package repair (sPPR), the access is retried after a targeted
refresh, or -- when nothing else is left -- the machine panics so that
silent data corruption cannot propagate.

The :class:`RecoveryPipeline` owns the sPPR resource ledger
(:class:`~repro.dram.sppr.SpprState`) and applies one registered policy
per run.  Policies are looked up through the central
``FAULT_POLICIES`` registry so CLI validation, did-you-mean errors and
per-run selection follow the same path as schemes and workloads.

Every policy resolves an uncorrectable error to one *action* string the
injector acts on:

``retired``
    the faulty row was remapped to a spare; future flips in it are
    absorbed by the repair.
``retry``
    the access is replayed after a targeted refresh; the error stands
    (RowHammer flips are hard until the row is rewritten), but the
    machine soldiers on until the per-row retry budget is gone.
``panic``
    the machine halts and power-cycles; all volatile state -- including
    sPPR soft repairs, which do not survive a power cycle -- is reset.
``recorded``
    nothing was done (measurement-only runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dram.device import BankAddress
from repro.dram.sppr import SpprConfig, SpprState
from repro.spec.registry import FAULT_POLICIES

#: Action strings a policy may return.
RETIRED = "retired"
RETRY = "retry"
PANIC = "panic"
RECORDED = "recorded"

#: Degradation events kept verbatim; beyond this only counters grow.
MAX_EVENTS = 256


@dataclass(frozen=True)
class RecoveryConfig:
    """Per-run recovery selection."""

    policy: str = "retire"
    #: ``refresh-retry`` gives up on a row after this many replays.
    max_retries: int = 3
    sppr: SpprConfig = field(default_factory=SpprConfig)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        FAULT_POLICIES.resolve(self.policy)


class RecoveryPipeline:
    """sPPR ledger + one degradation policy + a bounded event log."""

    def __init__(self, config: Optional[RecoveryConfig] = None):
        # The default is built lazily: evaluating ``RecoveryConfig()``
        # at class-definition time would validate the policy name before
        # this module's registrations below have run.
        config = config if config is not None else RecoveryConfig()
        self.config = config
        self.policy = FAULT_POLICIES.build(config.policy)
        self.sppr = SpprState(config=config.sppr)
        self.repairs = 0
        self.retries = 0
        self.panics = 0
        self.sppr_exhausted = 0
        self.events_total = 0
        self.events: List[Dict] = []
        self.panicked = False
        self._retries_used: Dict[Tuple[BankAddress, int], int] = {}

    def record(self, kind: str, addr: BankAddress, da_row: int,
               cycle: int) -> None:
        """Append one degradation event (log bounded, count exact)."""
        self.events_total += 1
        if len(self.events) < MAX_EVENTS:
            self.events.append({
                "kind": kind,
                "bank": f"{addr.channel}.{addr.rank}.{addr.bank}",
                "da_row": da_row,
                "cycle": cycle,
            })

    def on_uncorrectable(self, addr: BankAddress, da_row: int,
                         cycle: int) -> str:
        """Dispatch one detected-uncorrectable error to the policy."""
        return self.policy.apply(self, addr, da_row, cycle)

    def panic(self, addr: BankAddress, da_row: int, cycle: int) -> str:
        """Halt and power-cycle: the terminal escalation of any policy.

        sPPR *soft* repairs are volatile by definition, so the power
        cycle both releases the spare-row budget and un-maps every
        repair made so far -- this is the real caller for
        :meth:`SpprState.power_cycle`.
        """
        self.panics += 1
        self.panicked = True
        self.record("panic", addr, da_row, cycle)
        self.sppr.power_cycle()
        self._retries_used.clear()
        return PANIC


class RetireRow:
    """Burn an sPPR spare for the faulty row; panic once spares run out."""

    def apply(self, pipe: RecoveryPipeline, addr: BankAddress,
              da_row: int, cycle: int) -> str:
        try:
            pipe.sppr.repair(addr, da_row)
        except RuntimeError:
            pipe.sppr_exhausted += 1
            pipe.record("sppr-exhausted", addr, da_row, cycle)
            return pipe.panic(addr, da_row, cycle)
        pipe.repairs += 1
        pipe.record("retire", addr, da_row, cycle)
        return RETIRED


class RefreshRetry:
    """Replay after a targeted refresh, up to ``max_retries`` per row.

    RowHammer flips are hard until the row is rewritten, so the retry
    never clears the error -- the policy models availability-first
    platforms that keep serving until the budget is exhausted, then
    escalate to a panic.
    """

    def apply(self, pipe: RecoveryPipeline, addr: BankAddress,
              da_row: int, cycle: int) -> str:
        key = (addr, da_row)
        used = pipe._retries_used.get(key, 0)
        if used < pipe.config.max_retries:
            pipe._retries_used[key] = used + 1
            pipe.retries += 1
            pipe.record("refresh-retry", addr, da_row, cycle)
            return RETRY
        pipe.record("retry-exhausted", addr, da_row, cycle)
        return pipe.panic(addr, da_row, cycle)


class PanicOnly:
    """Fail-stop: any detected-uncorrectable error halts the machine."""

    def apply(self, pipe: RecoveryPipeline, addr: BankAddress,
              da_row: int, cycle: int) -> str:
        return pipe.panic(addr, da_row, cycle)


class RecordOnly:
    """Measurement-only: log the event, change nothing."""

    def apply(self, pipe: RecoveryPipeline, addr: BankAddress,
              da_row: int, cycle: int) -> str:
        pipe.record("uncorrectable", addr, da_row, cycle)
        return RECORDED


FAULT_POLICIES.register("retire", RetireRow)
FAULT_POLICIES.register("refresh-retry", RefreshRetry)
FAULT_POLICIES.register("panic", PanicOnly)
FAULT_POLICIES.register("none", RecordOnly)


__all__ = [
    "MAX_EVENTS",
    "PANIC",
    "PanicOnly",
    "RECORDED",
    "RETIRED",
    "RETRY",
    "RecordOnly",
    "RecoveryConfig",
    "RecoveryPipeline",
    "RefreshRetry",
    "RetireRow",
]
