"""In-loop fault injection: disturbance -> concrete bits -> recovery.

:class:`FaultInjector` is a :class:`~repro.rowhammer.model.DisturbanceModel`
that plugs into the memory controller's observer seam
(``MemoryController(..., observer=...)``).  Every activation the timing
simulator performs charges the DA-space disturbance counters online;
each activation past ``H_cnt`` injects one concrete bit flip at a
seeded-random (codeword, bit) position in the victim row, classifies it
through the SEC-DED model, and -- for detected-uncorrectable errors --
escalates into the recovery pipeline (sPPR retire, refresh-and-retry,
or panic).

The injector is a **passive observer**: it never issues commands, never
perturbs timing, and never touches controller state.  A run with the
injector attached produces the exact same command stream, cycle count
and statistics as a run without it -- the property the golden suites
pin with injection off, and which the fault-overhead bench gate asserts
directly by comparing cycle counts of the on/off legs.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dram.device import BankAddress
from repro.faults.ecc import MASKED, UNCORRECTABLE, EccConfig, EccModel
from repro.faults.recovery import (
    PANIC,
    RETIRED,
    RecoveryConfig,
    RecoveryPipeline,
)
from repro.rowhammer.model import BitFlip, DisturbanceModel, HammerConfig
from repro.utils.rng import SystemRng


class FaultInjector(DisturbanceModel):
    """Disturbance model + ECC classification + degradation policy."""

    def __init__(self, hammer: HammerConfig,
                 ecc: Optional[EccConfig] = None,
                 recovery: Optional[RecoveryConfig] = None,
                 seed: int = 1,
                 scrub_on_refresh: bool = True):
        super().__init__(hammer)
        self.ecc_config = ecc if ecc is not None else EccConfig()
        self.ecc = EccModel(self.ecc_config)
        self.recovery = RecoveryPipeline(
            recovery if recovery is not None else RecoveryConfig())
        self.seed = seed
        self._rng = SystemRng(seed)
        self._scrub = scrub_on_refresh
        # "Any resident errors to scrub?" is asked for every bank of
        # every REF; alias the ECC model's (stable, cleared-in-place)
        # row dict so the common no-errors answer is one truth test.
        self._ecc_rows = self.ecc._rows
        self._retired: set = set()
        self._rows_ever: set = set()
        self._first_flip_cycle: Optional[int] = None
        self.counts: Dict[str, int] = {
            "bits_injected": 0,
            "bits_masked": 0,
            "corrected": 0,
            "uncorrectable": 0,
            "silent": 0,
            "scrub_corrected": 0,
            "suppressed_by_repair": 0,
            "power_cycles": 0,
        }
        self._obs_counters: Dict[str, object] = {}
        self._sink = None

    # -- observability -------------------------------------------------------------

    def attach_obs(self, obs) -> None:
        """Mirror injection counters into ``obs.metrics`` and emit one
        trace instant per injected bit when a sink is attached."""
        if obs is None:
            return
        metrics = obs.metrics
        if metrics is not None:
            for name, value in self.counts.items():
                counter = metrics.counter(f"faults.{name}")
                if value:
                    counter.inc(value)
                self._obs_counters[name] = counter
        self._sink = obs.sink

    def _bump(self, name: str, n: int = 1) -> None:
        self.counts[name] += n
        counter = self._obs_counters.get(name)
        if counter is not None:
            counter.inc(n)

    # -- injection -----------------------------------------------------------------

    def _record_flip(self, addr: BankAddress, da_row: int, cycle: int,
                     value: float) -> None:
        # Called by the base model for *every* activation whose victim
        # counter sits at or above hcnt -- each one flips one more bit.
        key = (addr, da_row)
        if key in self._retired:
            # The faulty row was sPPR-remapped to a spare; the spare's
            # cells are not the ones being disturbed.
            self._bump("suppressed_by_repair")
            return
        if self._first_flip_cycle is None:
            self._first_flip_cycle = cycle
        if key not in self._flipped:
            self._flipped.add(key)
            self._rows_ever.add(key)
            self.flips.append(BitFlip(addr, da_row, cycle, value))
        rng = self._rng
        codeword = rng.randrange(self.ecc_config.codewords_per_row)
        bit = rng.randrange(self.ecc_config.codeword_bits)
        outcome = self.ecc.inject(key, codeword, bit)
        if outcome == MASKED:
            self._bump("bits_masked")
            return
        self._bump("bits_injected")
        self._bump(outcome)
        sink = self._sink
        if sink is not None:
            sink.instant(addr.channel, addr.bank,
                         f"bit-flip:{outcome}", "fault", cycle,
                         {"rank": addr.rank, "da_row": da_row,
                          "codeword": codeword, "bit": bit,
                          "disturbance": value})
        if outcome == UNCORRECTABLE:
            action = self.recovery.on_uncorrectable(addr, da_row, cycle)
            if action == RETIRED:
                self._retired.add(key)
                self.ecc.clear_row(key)
                bank = self._counters.get(addr)
                if bank is not None:
                    bank.pop(da_row, None)
            elif action == PANIC:
                self._power_cycle()

    def _power_cycle(self) -> None:
        """Reboot: volatile state is gone, memory reloads clean.

        The recovery pipeline already dropped the sPPR soft repairs
        (they do not survive power loss); here the DRAM side resets:
        disturbance counters, resident ECC errors, and the per-epoch
        flip dedup all start over.
        """
        self._bump("power_cycles")
        self._counters.clear()
        self.ecc.clear_all()
        self._retired.clear()
        self._flipped.clear()

    # -- refresh / copy hooks --------------------------------------------------------

    def on_refresh_range(self, addr: BankAddress, lo: int, hi: int,
                         cycle: int) -> None:
        # Base-model sweep inlined: this fires for every bank of every
        # REF, and on refresh-dominated workloads the extra super()
        # frame alone is measurable against the bench overhead gate.
        bank = self._counters.get(addr)
        if bank:
            rows = self.config.layout.da_rows_per_bank
            for r in range(lo, hi):
                bank.pop(r % rows, None)
        if self._ecc_rows and self._scrub:
            rows = self.config.layout.da_rows_per_bank
            for r in range(lo, hi):
                fixed, _ = self.ecc.scrub_row((addr, r % rows))
                if fixed:
                    self._bump("scrub_corrected", fixed)

    def on_row_refresh(self, addr: BankAddress, da_row: int,
                       cycle: int) -> None:
        super().on_row_refresh(addr, da_row, cycle)
        if self._ecc_rows and self._scrub:
            fixed, _ = self.ecc.scrub_row((addr, da_row))
            if fixed:
                self._bump("scrub_corrected", fixed)

    def on_row_copy(self, addr: BankAddress, src: int, dst: int,
                    cycle: int) -> None:
        super().on_row_copy(addr, src, dst, cycle)
        if len(self.ecc):
            # The copy moves the *data* -- flipped bits included -- to
            # the destination physical row.
            self.ecc.move_row((addr, src), (addr, dst))

    # -- results -------------------------------------------------------------------

    @property
    def first_flip_cycle(self) -> Optional[int]:
        return self._first_flip_cycle

    def report(self) -> Dict:
        """JSON-able end-of-run summary for engine results and obs."""
        pipe = self.recovery
        counts = dict(self.counts)
        counts.update({
            "repairs": pipe.repairs,
            "retries": pipe.retries,
            "panics": pipe.panics,
            "sppr_exhausted": pipe.sppr_exhausted,
        })
        return {
            "hcnt": self.config.hcnt,
            "blast_radius": self.config.blast_radius,
            "policy": pipe.config.policy,
            "seed": self.seed,
            "total_acts": self.total_acts,
            "first_flip_cycle": self._first_flip_cycle,
            "rows_flipped": len(self._rows_ever),
            "counts": counts,
            "degradation_events": list(pipe.events),
            "degradation_events_total": pipe.events_total,
            "panicked": pipe.panicked,
        }


__all__ = ["FaultInjector"]
