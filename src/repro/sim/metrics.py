"""Performance metrics (paper Section VII-C).

Single-/multi-threaded workloads compare by the reciprocal of execution
time; multi-programmed mixes use the weighted speedup
``WS = sum_i IPC_shared_i / IPC_alone_i`` [Eyerman & Eeckhout].  With a
fixed request budget per thread, IPC ratios reduce to time ratios:
``IPC_shared/IPC_alone = T_alone / T_shared``.
"""

from __future__ import annotations

from typing import Sequence


def throughput(requests: int, cycles: int) -> float:
    """Requests retired per cycle (the IPC proxy)."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return requests / cycles


def normalized_performance(baseline_cycles: int, cycles: int) -> float:
    """Reciprocal-execution-time ratio: >1 means faster than baseline."""
    if baseline_cycles <= 0 or cycles <= 0:
        raise ValueError("cycle counts must be positive")
    return baseline_cycles / cycles


def weighted_speedup(alone_cycles: Sequence[int],
                     shared_cycles: Sequence[int]) -> float:
    """``sum_i T_alone_i / T_shared_i`` for equal per-thread work."""
    if len(alone_cycles) != len(shared_cycles):
        raise ValueError("per-thread cycle lists must align")
    if not alone_cycles:
        raise ValueError("weighted speedup needs at least one thread")
    total = 0.0
    for alone, shared in zip(alone_cycles, shared_cycles):
        if alone <= 0 or shared <= 0:
            raise ValueError("cycle counts must be positive")
        total += alone / shared
    return total


def relative_weighted_speedup(alone: Sequence[int],
                              shared_scheme: Sequence[int],
                              shared_baseline: Sequence[int]) -> float:
    """The figures' y-axis: WS(scheme) / WS(no-mitigation baseline)."""
    return (weighted_speedup(alone, shared_scheme)
            / weighted_speedup(alone, shared_baseline))
