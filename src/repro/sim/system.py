"""The event-driven full-system loop.

Threads inject requests (subject to their gaps and MLP windows); each
channel of the memory controller drains at its own pace; completions
wake stalled threads.  Three event kinds drive the heap:

* ``thread`` -- a thread may have become ready to issue;
* ``channel`` -- a channel should try issuing commands;
* (completions are processed inline when a channel drains.)

The loop is deterministic: equal-time events process in insertion
order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.controller.address import AddressMapping
from repro.controller.mc import McConfig, MemoryController
from repro.dram.device import DramDevice, DramGeometry
from repro.dram.timing import DDR4_2666, TimingParams
from repro.mitigations.base import Mitigation
from repro.mitigations.none import NoMitigation
from repro.sim.core_model import ThreadState
from repro.workloads.trace import TraceGenerator, WorkloadProfile


@dataclass
class SystemConfig:
    """Everything one simulation run needs."""

    geometry: DramGeometry = field(default_factory=DramGeometry)
    timing: TimingParams = DDR4_2666
    requests_per_thread: int = 2000
    #: Outstanding-load window per thread.  Modern cores sustain 10-20
    #: in-flight misses; a small window would serialize ACT latency into
    #: the critical path and overstate tRCD-sensitive overheads.
    mlp: int = 16
    seed: int = 1
    cpu_ghz: float = 3.1
    enable_refresh: bool = True
    max_cycles: int = 2_000_000_000

    def __post_init__(self) -> None:
        if self.requests_per_thread <= 0:
            raise ValueError("requests_per_thread must be positive")


@dataclass
class SystemResult:
    """Outcome of one run."""

    cycles: int
    thread_finish_cycles: List[int]
    reads_completed: int
    requests_issued: int
    stats: "BankStats"
    refreshes: int
    rfms: int
    mitigation_name: str
    #: tCK of the run's speed grade, so cycle counts can be reported on
    #: the wall-clock scale without the caller re-plumbing the timing.
    tck_ns: float = 1.0

    @property
    def finish_ns(self) -> List[float]:
        """Per-thread finish times in nanoseconds (cycles x tCK)."""
        return [cycles * self.tck_ns
                for cycles in self.thread_finish_cycles]


class System:
    """One simulated machine: cores + MC + DRAM + mitigation."""

    def __init__(self, profiles: List[WorkloadProfile],
                 mitigation: Optional[Mitigation] = None,
                 observer=None,
                 config: Optional[SystemConfig] = None,
                 obs=None):
        if not profiles:
            raise ValueError("at least one workload profile is required")
        self.config = config or SystemConfig()
        self.mitigation = mitigation or NoMitigation()
        self.device = DramDevice(self.config.geometry, self.config.timing)
        self.mapping = AddressMapping(self.config.geometry)
        self.obs = obs
        if obs is not None:
            obs.bind(self.config.timing.tck_ns)
        self.mc = MemoryController(
            self.device, self.mitigation, observer=observer,
            config=McConfig(enable_refresh=self.config.enable_refresh),
            obs=obs)
        self.threads = [
            ThreadState(
                thread_id=i,
                trace=TraceGenerator(
                    profile, self.mapping, thread_id=i,
                    seed=self.config.seed,
                    cpu_ghz=self.config.cpu_ghz).requests(),
                request_budget=self.config.requests_per_thread,
                tck_ns=self.config.timing.tck_ns,
                mlp=self.config.mlp)
            for i, profile in enumerate(profiles)
        ]

    # -- the event loop --------------------------------------------------------------

    def run(self) -> SystemResult:
        counter = itertools.count()
        heap: List = []

        def push(cycle: int, kind: str, payload) -> None:
            heapq.heappush(heap, (cycle, next(counter), kind, payload))

        for thread in self.threads:
            push(thread.next_ready, "thread", thread.thread_id)

        last_cycle = 0

        # Snapshot sampling: when off, ``next_sample`` sits past
        # max_cycles so the hot loop pays one int compare and nothing
        # else.
        sampler = None
        next_sample = self.config.max_cycles + 1
        obs = self.obs
        if obs is not None and obs.sample_interval > 0:
            from repro.obs.sampler import SnapshotSampler
            sampler = SnapshotSampler(self, obs)
            next_sample = obs.sample_interval

        # Earliest scheduled wake per channel; later duplicates are
        # dropped when popped (each drain re-derives its next wake).
        armed_wake: Dict[int, Optional[int]] = {
            ch: None for ch in range(self.config.geometry.channels)}

        def arm_channel(ch: int, at: int) -> None:
            current = armed_wake[ch]
            if current is None or at < current:
                armed_wake[ch] = at
                push(at, "channel", ch)

        while heap:
            cycle, _seq, kind, payload = heapq.heappop(heap)
            if cycle > self.config.max_cycles:
                raise RuntimeError(
                    "simulation exceeded max_cycles; the system is likely "
                    "livelocked (check mitigation blocking times)")
            last_cycle = max(last_cycle, cycle)
            if cycle >= next_sample:
                next_sample = sampler.sample(cycle)

            if kind == "thread":
                thread = self.threads[payload]
                touched = set()
                while thread.can_issue(cycle):
                    request = thread.issue(cycle)
                    self.mc.enqueue(request)
                    touched.add(request.location.channel)
                for ch in touched:
                    arm_channel(ch, cycle)
                if not thread.drained and not thread.stalled_on_mlp(cycle):
                    push(thread.next_ready, "thread", thread.thread_id)
                # If stalled on MLP, a completion event reschedules us.

            elif kind == "channel":
                ch = payload
                if armed_wake[ch] != cycle:
                    continue  # stale duplicate; an earlier event ran
                armed_wake[ch] = None
                completions, wake = self.mc.drain(ch, cycle)
                for request, done in completions:
                    # Data returns at `done`, possibly beyond this drain
                    # horizon: deliver it as its own event.
                    push(max(done, cycle), "complete", request)
                if wake is not None:
                    arm_channel(ch, max(wake, cycle + 1))

            else:  # complete
                request = payload
                thread = self.threads[request.thread_id]
                thread.on_completion(request, cycle)
                if not thread.drained and thread.can_issue(cycle):
                    push(cycle, "thread", thread.thread_id)

            # pending_requests() is an O(1) counter read; check it first
            # so the common not-done case skips the thread scan.
            if self.mc.pending_requests() == 0 \
                    and all(t.finished for t in self.threads):
                break

        if sampler is not None:
            sampler.sample(last_cycle)

        stats = self.device.aggregate_stats()
        refreshes = sum(t.refs_issued for t in self.mc.refresh.values())
        rfms = self.mc.raa.rfms_issued if self.mc.raa else 0
        result = SystemResult(
            cycles=last_cycle,
            thread_finish_cycles=[t.finish_cycle or last_cycle
                                  for t in self.threads],
            reads_completed=sum(t.completed_reads for t in self.threads),
            requests_issued=sum(t.issued for t in self.threads),
            stats=stats,
            refreshes=refreshes,
            rfms=rfms,
            mitigation_name=self.mitigation.name,
            tck_ns=self.config.timing.tck_ns,
        )
        if obs is not None:
            from repro.obs.sampler import collect_summary
            obs.summary = collect_summary(self, result)
        return result
