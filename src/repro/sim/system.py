"""The event-driven full-system loop.

Threads inject requests (subject to their gaps and MLP windows); each
channel of the memory controller drains at its own pace; completions
wake stalled threads.

The loop is deterministic: equal-time events process in insertion
order.  Two loop implementations share that contract:

* :meth:`System.run` -- the production *event-horizon* loop.  Thread
  readiness and load completions live in a heap; each channel's single
  live wake lives in a per-channel array slot (re-arming overwrites the
  slot, so superseded wakes never exist as heap garbage).  Every
  iteration jumps the clock straight to the earliest horizon -- the
  minimum ``(cycle, seq)`` over the heap top and the armed channel
  wakes, which covers REF ticks, controller wake cycles, and thread
  readiness -- instead of popping and discarding intermediate stale
  heap events.
* :meth:`System.run` with ``reference=True`` -- the original
  single-heap step-by-step loop, kept as the executable specification.
  ``tests/test_event_loop.py`` pins both loops to the same per-bank
  command stream, and the golden suites pin them to the streams
  recorded before this rewrite.

Event ordering contract (both loops): every scheduled occurrence --
thread wake, channel wake (or re-arm to an earlier cycle), completion
delivery -- consumes one ticket from a single global sequence counter,
and occurrences are processed in ``(cycle, seq)`` order.  Fast-forward
is legal precisely because nothing in the simulator advances state
between events: skipping from one horizon to the next cannot skip
work, only bookkeeping.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.controller.address import AddressMapping
from repro.controller.mc import McConfig, MemoryController
from repro.dram.device import DramDevice, DramGeometry
from repro.dram.timing import DDR4_2666, TimingParams
from repro.mitigations.base import Mitigation
from repro.mitigations.none import NoMitigation
from repro.sim.core_model import ThreadState
from repro.workloads.trace import TraceGenerator, WorkloadProfile


@dataclass
class SystemConfig:
    """Everything one simulation run needs."""

    geometry: DramGeometry = field(default_factory=DramGeometry)
    timing: TimingParams = DDR4_2666
    requests_per_thread: int = 2000
    #: Outstanding-load window per thread.  Modern cores sustain 10-20
    #: in-flight misses; a small window would serialize ACT latency into
    #: the critical path and overstate tRCD-sensitive overheads.
    mlp: int = 16
    seed: int = 1
    cpu_ghz: float = 3.1
    enable_refresh: bool = True
    max_cycles: int = 2_000_000_000

    def __post_init__(self) -> None:
        if self.requests_per_thread <= 0:
            raise ValueError("requests_per_thread must be positive")
        if self.mlp <= 0:
            raise ValueError("mlp must be positive")
        if self.cpu_ghz <= 0:
            raise ValueError("cpu_ghz must be positive")
        if self.max_cycles <= 0:
            raise ValueError("max_cycles must be positive")


@dataclass
class SystemResult:
    """Outcome of one run."""

    cycles: int
    thread_finish_cycles: List[int]
    reads_completed: int
    requests_issued: int
    stats: "BankStats"
    refreshes: int
    rfms: int
    mitigation_name: str
    #: tCK of the run's speed grade, so cycle counts can be reported on
    #: the wall-clock scale without the caller re-plumbing the timing.
    tck_ns: float = 1.0

    @property
    def finish_ns(self) -> List[float]:
        """Per-thread finish times in nanoseconds (cycles x tCK)."""
        return [cycles * self.tck_ns
                for cycles in self.thread_finish_cycles]


class System:
    """One simulated machine: cores + MC + DRAM + mitigation."""

    def __init__(self, profiles: List[WorkloadProfile],
                 mitigation: Optional[Mitigation] = None,
                 observer=None,
                 config: Optional[SystemConfig] = None,
                 obs=None):
        if not profiles:
            raise ValueError("at least one workload profile is required")
        self.config = config or SystemConfig()
        self.mitigation = mitigation or NoMitigation()
        self.device = DramDevice(self.config.geometry, self.config.timing)
        self.mapping = AddressMapping(self.config.geometry)
        self.obs = obs
        if obs is not None:
            obs.bind(self.config.timing.tck_ns)
        self.mc = MemoryController(
            self.device, self.mitigation, observer=observer,
            config=McConfig(enable_refresh=self.config.enable_refresh),
            obs=obs)
        # Traces are materialized up front (exactly the per-thread
        # request budget, gaps pre-converted to cycles): the hot loop's
        # issue path indexes a list instead of resuming a generator.
        # Profiles exposing ``trace_generator`` (the adversarial hammer
        # profiles) supply their own stream; everything else takes the
        # statistical TraceGenerator path unchanged.
        tck_ns = self.config.timing.tck_ns
        self.threads = []
        for i, profile in enumerate(profiles):
            make = getattr(profile, "trace_generator", None)
            if make is not None:
                generator = make(self.mapping, i, self.config.seed,
                                 self.config.cpu_ghz)
            else:
                generator = TraceGenerator(
                    profile, self.mapping, thread_id=i,
                    seed=self.config.seed, cpu_ghz=self.config.cpu_ghz)
            self.threads.append(ThreadState(
                thread_id=i,
                ops=generator.materialize(
                    self.config.requests_per_thread, tck_ns),
                request_budget=self.config.requests_per_thread,
                tck_ns=tck_ns,
                mlp=self.config.mlp))

    # -- the event loop --------------------------------------------------------------

    def run(self, reference: bool = False) -> SystemResult:
        """Simulate to completion.

        ``reference=True`` runs the pre-rewrite single-heap loop (the
        executable spec of the event ordering); both loops produce
        byte-identical command streams and results.
        """
        # Snapshot sampling: when off, ``next_sample`` sits past
        # max_cycles so the hot loop pays one int compare and nothing
        # else.
        sampler = None
        next_sample = self.config.max_cycles + 1
        obs = self.obs
        if obs is not None and obs.sample_interval > 0:
            from repro.obs.sampler import SnapshotSampler
            sampler = SnapshotSampler(self, obs)
            next_sample = obs.sample_interval

        if reference:
            last_cycle = self._loop_reference(sampler, next_sample)
        else:
            last_cycle = self._loop_fast(sampler, next_sample)

        if sampler is not None:
            sampler.sample(last_cycle)

        stats = self.device.aggregate_stats()
        refreshes = sum(t.refs_issued for t in self.mc.refresh.values())
        rfms = self.mc.raa.rfms_issued if self.mc.raa else 0
        result = SystemResult(
            cycles=last_cycle,
            thread_finish_cycles=[t.finish_cycle or last_cycle
                                  for t in self.threads],
            reads_completed=sum(t.completed_reads for t in self.threads),
            requests_issued=sum(t.issued for t in self.threads),
            stats=stats,
            refreshes=refreshes,
            rfms=rfms,
            mitigation_name=self.mitigation.name,
            tck_ns=self.config.timing.tck_ns,
        )
        if obs is not None:
            from repro.obs.sampler import collect_summary
            obs.summary = collect_summary(self, result)
        return result

    def _livelock(self) -> RuntimeError:
        return RuntimeError(
            "simulation exceeded max_cycles; the system is likely "
            "livelocked (check mitigation blocking times)")

    # -- the event-horizon loop (production) --------------------------------------

    def _loop_fast(self, sampler, next_sample: int) -> int:
        """Event-horizon loop; returns the last processed cycle.

        Heap events are ``(cycle, seq, kind, payload)`` with kind 0 =
        thread readiness and kind 1 = load completion; ``seq`` tickets
        are drawn from the same global counter as channel-wake arms, so
        the ``(cycle, seq)`` total order is identical to the reference
        loop's push order.  Channel wakes are not heap events: channel
        ``ch``'s live wake sits in ``wake_cycle[ch]`` / ``wake_seq[ch]``
        (-1 = unarmed) and each iteration fast-forwards the clock to the
        minimum ``(cycle, seq)`` across the heap top and the armed
        wakes.  The reference loop instead leaves superseded wakes in
        the heap and pops/discards them one by one.

        Seq-revival: in the reference loop a superseded wake entry
        ``(cycle, seq)`` stays in the heap, and if the channel is later
        re-armed *at that same cycle* the old entry -- with its old,
        earlier seq -- is the one that fires (the stale check compares
        cycles, not seqs).  Same-cycle ordering against other events
        depends on it.  ``pend[ch]`` therefore keeps, per armed-at
        cycle, the FIFO of pushed-and-still-live seq tickets: arming
        appends a fresh ticket (the reference always pushes a new heap
        entry) but the *effective* seq is the FIFO head, which an
        earlier superseded push may own.  Tickets the reference's pop
        pointer has already passed (``(cycle, seq) <=`` the event being
        processed) are pruned at arm time; firing consumes the head.
        """
        config = self.config
        max_cycles = config.max_cycles
        threads = self.threads
        mc = self.mc
        drain = mc.drain
        enqueue = mc.enqueue
        heap: List = []
        heappush = heapq.heappush
        heappop = heapq.heappop
        seq = 0
        for thread in threads:
            heappush(heap, (thread.next_ready, seq, 0, thread.thread_id))
            seq += 1
        nchan = config.geometry.channels
        chan_range = range(nchan)
        wake_cycle = [-1] * nchan
        wake_seq = [0] * nchan
        pend: List[Dict[int, List[int]]] = [{} for _ in chan_range]
        armed = 0
        last_cycle = 0
        kind = 0
        payload = None
        # O(1) termination bookkeeping: a thread finishes exactly once
        # (its last issue for posted-write tails, its last read
        # completion otherwise), so count down instead of re-scanning
        # ``all(t.finished ...)`` after every drain.
        unfinished = sum(1 for t in threads if not t.finished)

        # ``armed_one`` caches the channel index when exactly one wake
        # is armed (the common state for sparse traffic); -1 means
        # unknown, so the selection scan below rediscovers it.
        armed_one = -1

        while True:
            # -- fast-forward: find the earliest horizon ------------------
            wch = -1
            if armed:
                if armed == 1 and armed_one >= 0:
                    wch = armed_one
                    wc = wake_cycle[wch]
                    ws = wake_seq[wch]
                else:
                    wc = ws = -1
                    for ch in chan_range:
                        c = wake_cycle[ch]
                        if c >= 0 and (wc < 0 or c < wc or
                                       (c == wc and wake_seq[ch] < ws)):
                            wc = c
                            ws = wake_seq[ch]
                            wch = ch
                if heap:
                    top = heap[0]
                    tc = top[0]
                    if tc < wc or (tc == wc and top[1] < ws):
                        wch = -1
            if wch >= 0:
                cycle = wake_cycle[wch]
                wake_cycle[wch] = -1
                armed -= 1
                armed_one = -1
                fifos = pend[wch]
                fifo = fifos[cycle]
                del fifo[0]  # the fired ticket is the armed head
                if not fifo:
                    del fifos[cycle]
                elif len(fifos) > 2:
                    # Tickets for passed cycles can never revive (arms
                    # never target a cycle before the clock).
                    for c in [c for c in fifos if c < cycle]:
                        del fifos[c]
            elif heap:
                cycle, _s, kind, payload = heappop(heap)
            else:
                break
            if cycle > max_cycles:
                raise self._livelock()
            if cycle > last_cycle:
                last_cycle = cycle
            if cycle >= next_sample:
                next_sample = sampler.sample(cycle)

            if wch >= 0:
                # -- channel wake: drain commands up to ``cycle`` ---------
                completions, wake = drain(wch, cycle)
                for request, done in completions:
                    # Data returns at `done`, possibly beyond this drain
                    # horizon: deliver it as its own event.
                    heappush(heap, (done if done > cycle else cycle,
                                    seq, 1, request))
                    seq += 1
                if wake is not None:
                    at = wake if wake > cycle else cycle + 1
                    # at > cycle, so no ticket pruning is needed here.
                    c = wake_cycle[wch]
                    if c < 0 or at < c:
                        fifo = pend[wch].get(at)
                        if fifo is None:
                            pend[wch][at] = fifo = []
                        fifo.append(seq)
                        seq += 1
                        wake_cycle[wch] = at
                        wake_seq[wch] = fifo[0]
                        if c < 0:
                            armed += 1
                            armed_one = wch if armed == 1 else -1
                # Termination can only first become true after a drain
                # (pending hits zero) or a completion (a final load
                # returns); thread events always add pending work.
                if not unfinished and mc._pending_total == 0:
                    break

            elif kind == 0:
                # -- thread readiness: issue while window/gaps allow ------
                thread = threads[payload]
                # ThreadState.can_issue inlined on both loop edges.
                pending = thread._pending
                if pending is not None and cycle >= thread.next_ready \
                        and (pending[2]
                             or thread.outstanding < thread.mlp):
                    touched = set()
                    add = touched.add
                    while True:
                        request = thread.issue(cycle)
                        enqueue(request)
                        add(request.location.channel)
                        pending = thread._pending
                        if pending is None \
                                or cycle < thread.next_ready \
                                or not (pending[2] or
                                        thread.outstanding < thread.mlp):
                            break
                    if thread.finished:
                        # Posted-write tail: drained with no loads out.
                        unfinished -= 1
                    now_s = _s
                    for ch in touched:
                        c = wake_cycle[ch]
                        if c < 0 or cycle < c:
                            fifo = pend[ch].get(cycle)
                            if fifo is not None:
                                # Drop tickets the reference's pop
                                # pointer already passed and discarded.
                                while fifo and fifo[0] <= now_s:
                                    del fifo[0]
                            else:
                                pend[ch][cycle] = fifo = []
                            fifo.append(seq)
                            seq += 1
                            wake_cycle[ch] = cycle
                            wake_seq[ch] = fifo[0]
                            if c < 0:
                                armed += 1
                                armed_one = ch if armed == 1 else -1
                # drained/stalled_on_mlp inlined: reschedule unless the
                # trace is exhausted or the load window is full.
                pending = thread._pending
                if pending is not None and not (
                        cycle >= thread.next_ready and not pending[2]
                        and thread.outstanding >= thread.mlp):
                    heappush(heap, (thread.next_ready, seq, 0, payload))
                    seq += 1
                # If stalled on MLP, a completion event reschedules us.

            else:
                # -- completion: data returned to the issuing thread ------
                request = payload
                thread = threads[request.thread_id]
                thread.on_completion(request, cycle)
                if not request.is_write and thread.finished:
                    # This read was the thread's last outstanding load.
                    unfinished -= 1
                # can_issue inlined (drained is subsumed by the
                # pending-None check).
                pending = thread._pending
                if pending is not None and cycle >= thread.next_ready \
                        and (pending[2]
                             or thread.outstanding < thread.mlp):
                    heappush(heap, (cycle, seq, 0, request.thread_id))
                    seq += 1
                if not unfinished and mc._pending_total == 0:
                    break

        return last_cycle

    # -- the reference loop (executable spec) --------------------------------------

    def _loop_reference(self, sampler, next_sample: int) -> int:
        """The pre-rewrite single-heap loop, kept as the ordering spec.

        Channel wakes are ordinary heap events here; a re-arm to an
        earlier cycle pushes a second event and the superseded one is
        recognised (``armed_wake[ch] != cycle``) and discarded when
        popped.  Apart from those no-op stale pops -- which touch no
        simulator state -- the processed event sequence is identical to
        :meth:`_loop_fast`.
        """
        counter = itertools.count()
        heap: List = []

        def push(cycle: int, kind: str, payload) -> None:
            heapq.heappush(heap, (cycle, next(counter), kind, payload))

        for thread in self.threads:
            push(thread.next_ready, "thread", thread.thread_id)

        last_cycle = 0

        # Earliest scheduled wake per channel; later duplicates are
        # dropped when popped (each drain re-derives its next wake).
        armed_wake: Dict[int, Optional[int]] = {
            ch: None for ch in range(self.config.geometry.channels)}

        def arm_channel(ch: int, at: int) -> None:
            current = armed_wake[ch]
            if current is None or at < current:
                armed_wake[ch] = at
                push(at, "channel", ch)

        while heap:
            cycle, _seq, kind, payload = heapq.heappop(heap)
            if cycle > self.config.max_cycles:
                raise self._livelock()
            last_cycle = max(last_cycle, cycle)
            if cycle >= next_sample:
                next_sample = sampler.sample(cycle)

            if kind == "thread":
                thread = self.threads[payload]
                touched = set()
                while thread.can_issue(cycle):
                    request = thread.issue(cycle)
                    self.mc.enqueue(request)
                    touched.add(request.location.channel)
                for ch in touched:
                    arm_channel(ch, cycle)
                if not thread.drained and not thread.stalled_on_mlp(cycle):
                    push(thread.next_ready, "thread", thread.thread_id)
                # If stalled on MLP, a completion event reschedules us.

            elif kind == "channel":
                ch = payload
                if armed_wake[ch] != cycle:
                    continue  # stale duplicate; an earlier event ran
                armed_wake[ch] = None
                completions, wake = self.mc.drain(ch, cycle)
                for request, done in completions:
                    push(max(done, cycle), "complete", request)
                if wake is not None:
                    arm_channel(ch, max(wake, cycle + 1))

            else:  # complete
                request = payload
                thread = self.threads[request.thread_id]
                thread.on_completion(request, cycle)
                if not thread.drained and thread.can_issue(cycle):
                    push(cycle, "thread", thread.thread_id)

            # pending_requests() is an O(1) counter read; check it first
            # so the common not-done case skips the thread scan.
            if self.mc.pending_requests() == 0 \
                    and all(t.finished for t in self.threads):
                break

        return last_cycle
