"""Full-system simulation harness.

Glues cores (:mod:`repro.sim.core_model`) to the memory controller,
DRAM device, mitigation and fault model (:mod:`repro.sim.system`);
computes the paper's metrics (:mod:`repro.sim.metrics`); and provides
the experiment runner with alone-run caching for weighted speedup
(:mod:`repro.sim.runner`).
"""

from repro.sim.core_model import ThreadState
from repro.sim.metrics import (
    normalized_performance,
    throughput,
    weighted_speedup,
)
from repro.sim.runner import ExperimentRunner, RunResult
from repro.sim.system import System, SystemConfig

__all__ = [
    "ExperimentRunner",
    "RunResult",
    "System",
    "SystemConfig",
    "ThreadState",
    "normalized_performance",
    "throughput",
    "weighted_speedup",
]
