"""A simple out-of-order core front end.

Each hardware thread replays its trace with bounded memory-level
parallelism: up to ``mlp`` loads outstanding; stores are posted (they
occupy DRAM but never stall the thread).  Request ``i`` becomes ready
``gap_i`` after request ``i-1`` was *issued*, modelling the compute
between misses; when the MLP window is full the thread stalls until a
load returns.

This is the McSimA+-style application-level abstraction: detailed
enough that memory latency and bandwidth changes move end-to-end
runtime the way they do on real cores, cheap enough to simulate many
threads.

Feeding: a thread accepts either a lazy ``trace`` iterator of
``(gap_ns, location, is_write)`` tuples (the historical interface) or a
pregenerated ``ops`` list of ``(gap_cycles, location, is_write)``
tuples (see :meth:`~repro.workloads.trace.TraceGenerator.materialize`).
The ops path is the simulator's hot configuration: advancing the trace
is an index bump instead of a generator resume, and the ns->cycle gap
conversion happened up front.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.controller.address import MemoryLocation
from repro.controller.request import MemoryRequest


class ThreadState:
    """Execution state of one hardware thread."""

    __slots__ = ("thread_id", "budget", "issued", "completed_reads",
                 "_tck_ns", "mlp", "outstanding", "next_ready",
                 "finish_cycle", "_pending", "_trace", "_ops", "_pos")

    def __init__(self, thread_id: int,
                 trace: Optional[Iterator[
                     Tuple[float, MemoryLocation, bool]]] = None,
                 request_budget: int = 1, tck_ns: float = 1.0, mlp: int = 8,
                 ops: Optional[List[
                     Tuple[int, MemoryLocation, bool]]] = None):
        if request_budget <= 0:
            raise ValueError("request_budget must be positive")
        if mlp <= 0:
            raise ValueError("mlp must be positive")
        if (trace is None) == (ops is None):
            raise ValueError("provide exactly one of trace= or ops=")
        if ops is not None and len(ops) < request_budget:
            raise ValueError("ops must cover the full request budget")
        self.thread_id = thread_id
        self._trace = trace
        self._ops = ops
        self._pos = 0
        self.budget = request_budget
        self.issued = 0
        self.completed_reads = 0
        self._tck_ns = tck_ns
        self.mlp = mlp
        self.outstanding = 0
        self.next_ready: int = 0        # cycle the next request may issue
        self.finish_cycle: Optional[int] = None
        self._pending: Optional[Tuple[int, MemoryLocation, bool]] = None
        self._load_next(0)

    # -- trace plumbing -----------------------------------------------------------

    def _load_next(self, after_cycle: int) -> None:
        if self.issued >= self.budget:
            self._pending = None
            return
        ops = self._ops
        if ops is not None:
            pending = ops[self._pos]
            self._pos += 1
            self._pending = pending
            self.next_ready = after_cycle + pending[0]
            return
        gap_ns, location, is_write = next(self._trace)
        gap_cycles = max(1, int(gap_ns / self._tck_ns))
        self._pending = (gap_cycles, location, is_write)
        self.next_ready = after_cycle + gap_cycles

    # -- scheduling interface ---------------------------------------------------------

    @property
    def drained(self) -> bool:
        """All requests issued (completions may still be in flight)."""
        return self._pending is None

    @property
    def finished(self) -> bool:
        return self._pending is None and self.outstanding == 0

    def can_issue(self, cycle: int) -> bool:
        pending = self._pending
        if pending is None or cycle < self.next_ready:
            return False
        return pending[2] or self.outstanding < self.mlp

    def stalled_on_mlp(self, cycle: int) -> bool:
        """Ready to run but blocked by the load window."""
        pending = self._pending
        if pending is None or cycle < self.next_ready:
            return False
        return not pending[2] and self.outstanding >= self.mlp

    def issue(self, cycle: int) -> MemoryRequest:
        """Materialize the pending request at ``cycle``."""
        pending = self._pending
        if pending is None or cycle < self.next_ready or \
                not (pending[2] or self.outstanding < self.mlp):
            raise RuntimeError("thread cannot issue at this cycle")
        _gap, location, is_write = pending
        request = MemoryRequest(location=location, is_write=is_write,
                                thread_id=self.thread_id, arrival=cycle)
        self.issued += 1
        if not is_write:
            self.outstanding += 1
        self._load_next(cycle)
        if self._pending is None and self.outstanding == 0:
            self.finish_cycle = cycle
        return request

    def on_completion(self, request: MemoryRequest, cycle: int) -> None:
        """A load of this thread returned."""
        if request.is_write:
            return
        if self.outstanding <= 0:
            raise RuntimeError("completion without an outstanding load")
        self.outstanding -= 1
        self.completed_reads += 1
        if self._pending is None and self.outstanding == 0:
            self.finish_cycle = max(self.finish_cycle or 0, cycle)
