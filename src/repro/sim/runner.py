"""Experiment runner with alone-run caching.

Weighted speedup needs each thread's alone execution time under each
scheme.  Mixes reuse a handful of distinct profiles, and alone times
depend only on (profile, scheme timing effects), so the runner caches
them aggressively -- this is what makes the figure sweeps tractable.

Two cache layers back ``run_alone``: a per-runner in-memory dict, and
(optionally) the same content-addressed on-disk store the experiment
engine uses (:class:`repro.utils.cache.ResultCache`), so alone times
survive across processes and invocations.

The figure drivers themselves run on :mod:`repro.experiments.engine`,
which parallelises and caches whole grids; this runner remains the
convenient in-process API for ad-hoc comparisons and tests.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.mitigations.base import Mitigation
from repro.mitigations.none import NoMitigation
from repro.sim.metrics import weighted_speedup
from repro.sim.system import System, SystemConfig, SystemResult
from repro.spec import SchemeSpec
from repro.utils.cache import ResultCache
from repro.workloads.trace import WorkloadProfile

#: A factory is needed (not an instance) because mitigations carry
#: per-run state (remapping tables, trackers) that must not leak
#: between the shared run and the alone runs.
MitigationFactory = Callable[[], Mitigation]

#: Every runner entry point takes either a factory callable or a
#: declarative :class:`~repro.spec.SchemeSpec` (built through the
#: central registry).
SchemeLike = Union[MitigationFactory, SchemeSpec]


@dataclass
class RunResult:
    """One mix under one scheme, with the weighted-speedup inputs."""

    mitigation_name: str
    shared: SystemResult
    alone_cycles: List[int]

    @property
    def weighted_speedup(self) -> float:
        return weighted_speedup(self.alone_cycles,
                                self.shared.thread_finish_cycles)


@dataclass
class ExperimentRunner:
    """Runs (profiles x scheme) pairs with per-profile alone caching."""

    config: SystemConfig = field(default_factory=SystemConfig)
    #: Optional persistent store shared with the experiment engine.
    cache: Optional[ResultCache] = None
    _alone_cache: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: Scheme names memoised per factory so resolving a cache key does
    #: not construct (and discard) a full mitigation -- remapping
    #: tables, trackers -- on every call.
    _factory_names: Dict[MitigationFactory, str] = field(
        default_factory=dict)
    #: Bound ``spec.build`` methods memoised per spec: each attribute
    #: access creates a fresh bound method, which would defeat the
    #: factory-name memo above if not pinned here.
    _spec_factories: Dict[SchemeSpec, MitigationFactory] = field(
        default_factory=dict)

    def _coerce(self, scheme: Optional[SchemeLike]) -> MitigationFactory:
        """Accept a factory callable or a SchemeSpec (or None)."""
        if scheme is None:
            return NoMitigation
        if isinstance(scheme, SchemeSpec):
            factory = self._spec_factories.get(scheme)
            if factory is None:
                factory = scheme.build
                self._spec_factories[scheme] = factory
            return factory
        return scheme

    def _scheme_name(self, make_mitigation: MitigationFactory) -> str:
        name = self._factory_names.get(make_mitigation)
        if name is None:
            name = make_mitigation().name
            self._factory_names[make_mitigation] = name
        return name

    def _alone_spec(self, profile: WorkloadProfile, scheme_name: str):
        """Disk-cache key for one alone run (runner-namespaced)."""
        return {
            "mode": "runner-alone",
            "profile": dataclasses.asdict(profile),
            "scheme": scheme_name,
            "config": dataclasses.asdict(self.config),
        }

    def run_shared(self, profiles: List[WorkloadProfile],
                   make_mitigation: SchemeLike,
                   observer=None) -> SystemResult:
        make_mitigation = self._coerce(make_mitigation)
        system = System(profiles, make_mitigation(), observer=observer,
                        config=self.config)
        return system.run()

    def run_alone(self, profile: WorkloadProfile,
                  make_mitigation: SchemeLike) -> int:
        """Single-thread finish time, cached by (profile, scheme)."""
        make_mitigation = self._coerce(make_mitigation)
        key = (profile.name, self._scheme_name(make_mitigation))
        if key not in self._alone_cache:
            spec = (self._alone_spec(profile, key[1])
                    if self.cache is not None else None)
            cached = self.cache.get(spec) if spec is not None else None
            if cached is not None:
                self._alone_cache[key] = cached["finish_cycles"]
            else:
                system = System([profile], make_mitigation(),
                                config=self.config)
                result = system.run()
                self._alone_cache[key] = result.thread_finish_cycles[0]
                if spec is not None:
                    self.cache.put(
                        spec,
                        {"finish_cycles": self._alone_cache[key]})
        return self._alone_cache[key]

    def run(self, profiles: List[WorkloadProfile],
            make_mitigation: Optional[SchemeLike] = None,
            observer=None) -> RunResult:
        make_mitigation = self._coerce(make_mitigation)
        shared = self.run_shared(profiles, make_mitigation, observer)
        alone = [self.run_alone(p, make_mitigation) for p in profiles]
        return RunResult(
            mitigation_name=shared.mitigation_name,
            shared=shared,
            alone_cycles=alone,
        )

    def relative_performance(self, profiles: List[WorkloadProfile],
                             make_scheme: SchemeLike,
                             make_baseline: Optional[SchemeLike] = None
                             ) -> float:
        """WS(scheme)/WS(baseline): the y-axis of Figures 8-11.

        Both weighted speedups use the *baseline system's* alone times
        as the IPC_alone reference (the conventional normalization);
        using each scheme's own alone times would let a scheme that
        slows solo execution -- throttling hits a hot thread alone too
        -- paradoxically raise its ratio above 1.
        """
        make_scheme = self._coerce(make_scheme)
        make_baseline = self._coerce(make_baseline)
        alone = [self.run_alone(p, make_baseline) for p in profiles]
        shared_scheme = self.run_shared(profiles, make_scheme)
        shared_base = self.run_shared(profiles, make_baseline)
        ws_scheme = weighted_speedup(alone,
                                     shared_scheme.thread_finish_cycles)
        ws_base = weighted_speedup(alone, shared_base.thread_finish_cycles)
        return ws_scheme / ws_base

    def single_thread_relative(self, profile: WorkloadProfile,
                               make_scheme: SchemeLike,
                               make_baseline: Optional[SchemeLike] = None
                               ) -> float:
        """Reciprocal-execution-time ratio for one thread (Fig. 8 left)."""
        make_scheme = self._coerce(make_scheme)
        make_baseline = self._coerce(make_baseline)
        scheme_cycles = self.run_alone(profile, make_scheme)
        base_cycles = self.run_alone(profile, make_baseline)
        return base_cycles / scheme_cycles
