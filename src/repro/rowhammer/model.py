"""Disturbance accumulation and bit-flip detection.

Threat model (paper Section II-D):

1. more than ``H_cnt`` (weighted) activations within the refresh window
   flip bits in the victim row;
2. non-adjacent rows inside the blast radius are also disturbed, with
   the effect halving per wordline of distance;
3. disturbance does not cross subarray boundaries;
4. an activation (or refresh) of a row restores its cells, resetting its
   accumulated disturbance.

The model lives entirely in DA (device address) space: what matters for
charge disturbance is physical adjacency after any remapping, which is
exactly the property SHADOW randomizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dram.device import BankAddress
from repro.dram.subarray import SubarrayLayout


def blast_weight(distance: int) -> float:
    """Disturbance weight of an aggressor at ``distance`` wordlines.

    Adjacent rows (distance 1) receive weight 1; the effect halves per
    additional wordline (paper Section II-D assumption 2).
    """
    if distance < 1:
        raise ValueError("distance must be at least 1")
    return 2.0 ** (1 - distance)


def blast_weight_sum(radius: int) -> float:
    """Total weight an aggressor deposits across both sides: ``W_sum``.

    For the paper's default radius of 3 this is 2*(1 + 1/2 + 1/4) = 3.5,
    matching the ``W_sum = 3.5`` default of Appendix XI.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return 2.0 * sum(blast_weight(d) for d in range(1, radius + 1))


@dataclass(frozen=True)
class HammerConfig:
    """Fault-model parameters."""

    hcnt: int = 4096          # Hammer Count threshold
    blast_radius: int = 3     # paper's baseline radius
    layout: SubarrayLayout = SubarrayLayout()
    #: A targeted (TRR) refresh is physically an activation of the
    #: refreshed row, so it disturbs *that row's* neighbours -- the
    #: mechanism Half-Double [Kogler et al., USENIX Sec'22] abuses to
    #: turn a defense's own mitigations into hammer amplification
    #: (paper Section II-C: "sometimes even abusing [47] any currently
    #: implemented RH protection scheme").  Off by default to keep the
    #: conservative defender-friendly model; the half-double experiments
    #: turn it on.
    refresh_hammers_neighbors: bool = False

    def __post_init__(self) -> None:
        if self.hcnt <= 0:
            raise ValueError("hcnt must be positive")
        if self.blast_radius < 0:
            raise ValueError("blast_radius must be non-negative")


@dataclass(frozen=True)
class BitFlip:
    """A Row Hammer bit-flip event."""

    addr: BankAddress
    da_row: int
    cycle: int
    disturbance: float


#: Neighbour lists and their blast weights depend only on the
#: (immutable, hashable) layout and radius, so they are shared across
#: model instances process-wide.  Short runs touch a few hundred rows in
#: ~1000 ACTs; a per-instance memo would spend half the injector's time
#: rebuilding the same geometry every run.
_NEIGHBORS_CACHE: Dict[Tuple[SubarrayLayout, int],
                       Dict[int, List[Tuple[int, int]]]] = {}
_CHARGES_CACHE: Dict[Tuple[SubarrayLayout, int],
                     Dict[int, List[Tuple[int, float]]]] = {}


class DisturbanceModel:
    """Per-row weighted disturbance counters with reset semantics.

    Implements the observer interface the memory controller calls:
    ``on_activate``, ``on_refresh_range``, ``on_row_refresh``,
    ``on_row_copy``.
    """

    def __init__(self, config: HammerConfig,
                 record_all_flips: bool = False):
        self.config = config
        # Two-level: bank -> {da_row -> disturbance}.  Hashing a frozen
        # BankAddress dataclass costs more than the dict op it keys, so
        # the hot hooks hash it once per call, not once per row.
        self._counters: Dict[BankAddress, Dict[int, float]] = {}
        self.flips: List[BitFlip] = []
        self._flipped: set = set()
        self._record_all = record_all_flips
        self.total_acts = 0
        cache_key = (config.layout, config.blast_radius)
        self._neighbors = _NEIGHBORS_CACHE.setdefault(cache_key, {})
        self._charges = _CHARGES_CACHE.setdefault(cache_key, {})

    def _da_neighbors(self, da_row: int) -> List[Tuple[int, int]]:
        neighbors = self._neighbors.get(da_row)
        if neighbors is None:
            neighbors = self.config.layout.da_neighbors(
                da_row, self.config.blast_radius)
            self._neighbors[da_row] = neighbors
        return neighbors

    def _da_charges(self, da_row: int) -> List[Tuple[int, float]]:
        charges = self._charges.get(da_row)
        if charges is None:
            charges = [(victim, blast_weight(distance))
                       for victim, distance in self._da_neighbors(da_row)]
            self._charges[da_row] = charges
        return charges

    # -- observer interface -------------------------------------------------------

    def on_activate(self, addr: BankAddress, da_row: int, cycle: int) -> None:
        """Charge disturbance to the neighbours; restore the row itself."""
        self.total_acts += 1
        bank = self._counters.get(addr)
        if bank is None:
            bank = self._counters[addr] = {}
        # Activation restores the aggressor's own cells.
        bank.pop(da_row, None)
        hcnt = self.config.hcnt
        for victim, weight in self._da_charges(da_row):
            value = bank.get(victim, 0.0) + weight
            bank[victim] = value
            if value >= hcnt:
                self._record_flip(addr, victim, cycle, value)

    def on_refresh_range(self, addr: BankAddress, lo: int, hi: int,
                         cycle: int) -> None:
        """Auto-refresh of DA rows ``[lo, hi)`` (wrapping modulo the bank)."""
        bank = self._counters.get(addr)
        if not bank:
            return
        rows = self.config.layout.da_rows_per_bank
        for r in range(lo, hi):
            bank.pop(r % rows, None)

    def on_row_refresh(self, addr: BankAddress, da_row: int,
                       cycle: int) -> None:
        """Targeted refresh (TRR victim refresh, incremental refresh).

        With ``refresh_hammers_neighbors`` the refresh additionally
        charges the refreshed row's own neighbours, exactly like the
        activation it physically is (the Half-Double lever).
        """
        bank = self._counters.get(addr)
        if bank is not None:
            bank.pop(da_row, None)
        if self.config.refresh_hammers_neighbors:
            if bank is None:
                bank = self._counters[addr] = {}
            hcnt = self.config.hcnt
            for victim, weight in self._da_charges(da_row):
                value = bank.get(victim, 0.0) + weight
                bank[victim] = value
                if value >= hcnt:
                    self._record_flip(addr, victim, cycle, value)

    def on_row_copy(self, addr: BankAddress, src: int, dst: int,
                    cycle: int) -> None:
        """In-DRAM row copy: both rows end up fully restored.

        The source row's cells are sensed and restored by the copy's
        activation; the destination is written with full charge.  The
        *logical* data moved, but disturbance counters belong to physical
        cells, so both physical rows reset.
        """
        bank = self._counters.get(addr)
        if bank:
            bank.pop(src, None)
            bank.pop(dst, None)

    # -- results --------------------------------------------------------------------

    @property
    def flipped(self) -> bool:
        return bool(self.flips)

    def first_flip(self) -> Optional[BitFlip]:
        return self.flips[0] if self.flips else None

    def disturbance(self, addr: BankAddress, da_row: int) -> float:
        bank = self._counters.get(addr)
        return bank.get(da_row, 0.0) if bank else 0.0

    def max_disturbance(self) -> float:
        return max((value for bank in self._counters.values()
                    for value in bank.values()), default=0.0)

    def reset(self) -> None:
        self._counters.clear()
        self.flips.clear()
        self._flipped.clear()
        self.total_acts = 0

    def _record_flip(self, addr: BankAddress, da_row: int, cycle: int,
                     value: float) -> None:
        key = (addr, da_row)
        if not self._record_all and key in self._flipped:
            return
        self._flipped.add(key)
        self.flips.append(BitFlip(addr, da_row, cycle, value))
