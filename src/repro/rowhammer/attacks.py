"""Classic Row Hammer access-pattern generators.

Each generator returns an :class:`AttackPattern`: a named, repeatable
stream of PA (MC-visible) row numbers to activate within one bank.  The
patterns correspond to the attack taxonomy in paper Sections II-C/II-D:
single-sided, double-sided, many-sided (TRRespass-style), and blast
attacks (Half-Double-style non-adjacent hammering).

Patterns speak *physical addresses*: the attacker controls PAs and knows
the initial static PA-to-DA mapping (threat model assumption 4).  What
DA rows are disturbed depends on the active mitigation's remapping.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class AttackPattern:
    """A repeatable aggressor-row stream."""

    name: str
    aggressor_rows: Sequence[int]
    intended_victims: Sequence[int]

    def __post_init__(self) -> None:
        if not self.aggressor_rows:
            raise ValueError("an attack needs at least one aggressor row")

    def rows(self, total_acts: int) -> Iterator[int]:
        """Yield ``total_acts`` row activations, round-robin."""
        if total_acts < 0:
            raise ValueError("total_acts must be non-negative")
        cycle = itertools.cycle(self.aggressor_rows)
        for _ in range(total_acts):
            yield next(cycle)

    @property
    def distinct_aggressors(self) -> int:
        return len(set(self.aggressor_rows))


def single_sided(target_row: int,
                 partner_row: Optional[int] = None) -> AttackPattern:
    """Hammer one row (plus a far 'dummy' row to defeat the row buffer).

    The partner row forces a row-buffer conflict so every access is an
    ACT; by default it sits far away (no blast interaction).
    """
    if target_row < 0:
        raise ValueError("rows must be non-negative")
    if partner_row is None:
        partner_row = target_row + 64
    return AttackPattern(
        name="single-sided",
        aggressor_rows=(target_row, partner_row),
        intended_victims=(target_row - 1, target_row + 1),
    )


def double_sided(victim_row: int) -> AttackPattern:
    """Hammer both neighbours of the victim (the classic strongest form)."""
    if victim_row < 1:
        raise ValueError("victim must have a row on each side")
    return AttackPattern(
        name="double-sided",
        aggressor_rows=(victim_row - 1, victim_row + 1),
        intended_victims=(victim_row,),
    )


def many_sided(victim_row: int, sides: int = 9) -> AttackPattern:
    """TRRespass-style n-sided pattern: aggressor pairs around decoys.

    Alternating aggressors spaced two apart (victims in between), which
    defeats simple in-DRAM TRR samplers.
    """
    if sides < 2:
        raise ValueError("a many-sided attack needs at least 2 aggressors")
    start = victim_row - sides + (sides % 2)
    if start < 0:
        raise ValueError("victim too close to row 0 for this many sides")
    aggressors: List[int] = [start + 2 * i for i in range(sides)]
    victims = [row + 1 for row in aggressors[:-1]]
    return AttackPattern(
        name=f"{sides}-sided",
        aggressor_rows=tuple(aggressors),
        intended_victims=tuple(victims),
    )


def half_double(victim_row: int) -> AttackPattern:
    """Half-Double (Kogler et al., USENIX Security 2022).

    Hammers the rows at distance 2 from the victim heavily, plus the
    distance-1 rows lightly.  Against a TRR defense, the light near-row
    activity triggers victim... no -- it triggers TRR *of the victim's
    neighbours' neighbours*: each TRR refresh of a distance-1 row is
    itself an activation adjacent to the victim, so the defense supplies
    the final hammer strokes (requires the fault model's
    ``refresh_hammers_neighbors``).
    """
    if victim_row < 2:
        raise ValueError("victim too close to row 0 for half-double")
    return AttackPattern(
        name="half-double",
        # 8:1 far:near duty cycle -- far rows dominate, near rows keep
        # the defense busy refreshing right next to the victim.
        aggressor_rows=(victim_row - 2, victim_row + 2) * 4
        + (victim_row - 1, victim_row + 1),
        intended_victims=(victim_row,),
    )


def blast_attack(victim_row: int, radius: int = 2) -> AttackPattern:
    """Half-Double-style non-adjacent attack.

    Hammers rows at +/- ``radius`` from the victim, flying under defenses
    that only watch immediate neighbours.  Requires ``radius >= 2`` (at
    radius 1 it degenerates to double-sided).
    """
    if radius < 2:
        raise ValueError("a blast attack uses distance >= 2")
    if victim_row < radius:
        raise ValueError("victim too close to row 0 for this radius")
    return AttackPattern(
        name=f"blast-r{radius}",
        aggressor_rows=(victim_row - radius, victim_row + radius),
        intended_victims=(victim_row,),
    )
