"""Memory templating campaigns (paper Sections II-C and III-A).

A real Row Hammer exploit has two phases: *templating* (find PA triples
``(aggr1, victim, aggr2)`` that actually flip, by hammering and
scanning) and *exploitation* (massage the target data onto a templated
victim and re-hammer the recorded aggressors).  The attack only works
if the adjacency discovered during templating still holds at
exploitation time.

Against a static PA-to-DA mapping the template stays valid forever --
that is what makes the classic attacks (privilege escalation via page-
table spraying etc.) practical.  SHADOW's row-shuffle re-randomizes the
mapping continuously, so a template decays: by the time the attacker
exploits it, the recorded aggressors no longer flank the recorded
victim.  This module measures exactly that decay.

The campaign drives the *mechanism level* (translation + disturbance
model + per-RFM shuffle), not the cycle-level MC, so thousands of
hammer rounds run in reasonable time; the cycle-accurate path is
exercised by :mod:`tests/test_integration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.controller import ShadowBankController
from repro.dram.device import BankAddress
from repro.dram.subarray import SubarrayLayout
from repro.rowhammer.model import DisturbanceModel, HammerConfig
from repro.utils.rng import RandomSource, SystemRng

_ADDR = BankAddress(0, 0, 0)


@dataclass(frozen=True)
class Template:
    """One templated flip: hammer these PAs, this PA's data flips."""

    aggressor_pas: Tuple[int, int]
    victim_pa: int


@dataclass
class TemplatingReport:
    """Outcome of a templating + exploitation campaign."""

    templates_found: int
    exploit_attempts: int
    exploit_successes: int
    hammer_rounds: int

    @property
    def reuse_rate(self) -> float:
        """Fraction of templates that still flipped at exploit time."""
        if self.exploit_attempts == 0:
            return 0.0
        return self.exploit_successes / self.exploit_attempts


class _Substrate:
    """Translation + disturbance + optional per-RFM shuffle."""

    def __init__(self, layout: SubarrayLayout, hcnt: int, raaimt: int,
                 blast_radius: int, shadow_rng: Optional[RandomSource]):
        self.layout = layout
        self.raaimt = raaimt
        self.hcnt = hcnt
        self.model = DisturbanceModel(
            HammerConfig(hcnt=hcnt, blast_radius=blast_radius,
                         layout=layout),
            record_all_flips=True)
        self.shadow: Optional[ShadowBankController] = None
        if shadow_rng is not None:
            self.shadow = ShadowBankController(layout, raaimt=raaimt,
                                               rng=shadow_rng)
        self._acts_since_rfm = 0

    def translate(self, pa_row: int) -> int:
        if self.shadow is not None:
            return self.shadow.translate(pa_row)
        return self.layout.identity_da(pa_row)

    def occupant(self, da_row: int) -> Optional[int]:
        """PA currently stored in a DA slot (None for empty slots)."""
        if self.shadow is None:
            sub = self.layout.subarray_of_da(da_row)
            off = self.layout.da_offset(da_row)
            if off >= self.layout.rows_per_subarray:
                return None
            return self.layout.pa_row(sub, off)
        sub = self.layout.subarray_of_da(da_row)
        off = self.layout.da_offset(da_row)
        pa_off = self.shadow.remapping_row(sub).occupant_of(off)
        if pa_off is None:
            return None
        return self.layout.pa_row(sub, pa_off)

    def activate(self, pa_row: int) -> None:
        da = self.translate(pa_row)
        self.model.on_activate(_ADDR, da, cycle=0)
        if self.shadow is not None:
            self.shadow.record_activation(pa_row)
            self._acts_since_rfm += 1
            if self._acts_since_rfm >= self.raaimt:
                self._acts_since_rfm = 0
                refreshed, copies = self.shadow.run_rfm()
                for row in refreshed:
                    self.model.on_row_refresh(_ADDR, row, cycle=0)
                for src, dst in copies:
                    self.model.on_row_copy(_ADDR, src, dst, cycle=0)

    def hammer_round(self, aggressors: Tuple[int, int],
                     acts: int) -> List[int]:
        """Hammer the pair; returns newly flipped *PA* rows."""
        before = len(self.model.flips)
        for i in range(acts):
            self.activate(aggressors[i % 2])
        flipped_pas = []
        for flip in self.model.flips[before:]:
            pa = self.occupant(flip.da_row)
            if pa is not None:
                flipped_pas.append(pa)
        return flipped_pas


@dataclass
class TemplatingCampaign:
    """Template with double-sided pairs, then try to exploit.

    ``shadow=False`` models any static-mapping defenseless device;
    ``shadow=True`` interposes a real SHADOW bank controller.
    """

    layout: SubarrayLayout = field(
        default_factory=lambda: SubarrayLayout(subarrays_per_bank=2,
                                               rows_per_subarray=64))
    hcnt: int = 64
    raaimt: int = 16
    blast_radius: int = 1
    acts_per_round: int = 256
    shadow: bool = False
    seed: int = 1

    def _substrate(self) -> _Substrate:
        rng = SystemRng(self.seed * 7919) if self.shadow else None
        return _Substrate(self.layout, self.hcnt, self.raaimt,
                          self.blast_radius, rng)

    def template_phase(self, substrate: _Substrate,
                       victims: List[int]) -> List[Template]:
        templates = []
        for victim in victims:
            pair = (victim - 1, victim + 1)
            flipped = substrate.hammer_round(pair, self.acts_per_round)
            if victim in flipped:
                templates.append(Template(pair, victim))
        return templates

    def exploit_phase(self, substrate: _Substrate,
                      templates: List[Template]) -> int:
        """Re-hammer each template; count victims that flip again."""
        successes = 0
        for template in templates:
            flipped = substrate.hammer_round(template.aggressor_pas,
                                             self.acts_per_round)
            if template.victim_pa in flipped:
                successes += 1
        return successes

    def run(self) -> TemplatingReport:
        substrate = self._substrate()
        sub = 0
        lo = self.layout.pa_row(sub, 2)
        hi = self.layout.pa_row(sub, self.layout.rows_per_subarray - 3)
        victims = list(range(lo, hi, 4))
        templates = self.template_phase(substrate, victims)
        # The data the attacker cares about gets massaged in *after*
        # templating; the disturbance state resets (fresh refresh
        # window), but SHADOW's accumulated remapping persists.
        substrate.model.reset()
        successes = self.exploit_phase(substrate, templates)
        rounds = len(victims) + len(templates)
        return TemplatingReport(
            templates_found=len(templates),
            exploit_attempts=len(templates),
            exploit_successes=successes,
            hammer_rounds=rounds,
        )
