"""SHADOW-specific adversaries (paper Section VII-A, Appendix XI).

Against a shuffling defense the attacker cannot rely on a fixed
aggressor-victim geometry; the paper analyzes three adaptive scenarios:

* **Scenario I** -- one aggressor per RFM interval, re-chosen (new PA in
  the same subarray) every interval.  Relies on the shuffled row landing
  next to a previously-disturbed victim (birthday-paradox style).
* **Scenario II** -- ``N_aggr`` fixed aggressor PAs inside one subarray,
  hammered round-robin; relies on at least one aggressor evading the
  per-RFM shuffle until a victim accumulates ``H_cnt``.
* **Scenario III** -- like II but the aggressors spread across multiple
  subarrays, diluting each subarray's RFM attention.

The adversaries produce the PA rows to activate during each RFM
interval; :mod:`repro.analysis.montecarlo` wires them against the real
SHADOW mechanism and the disturbance model.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dram.subarray import SubarrayLayout
from repro.utils.rng import RandomSource


class ScenarioIAttacker:
    """One fresh aggressor PA per RFM interval, same subarray."""

    name = "scenario-I"

    def __init__(self, layout: SubarrayLayout, subarray: int,
                 rng: RandomSource):
        self._layout = layout
        self._subarray = subarray
        self._rng = rng

    def interval_rows(self, interval_index: int, acts: int) -> List[int]:
        """PA rows to activate during one RFM interval (``acts`` ACTs)."""
        offset = self._rng.randrange(self._layout.rows_per_subarray)
        row = self._layout.pa_row(self._subarray, offset)
        return [row] * acts


class ScenarioIIAttacker:
    """``n_aggr`` fixed aggressor PAs inside one subarray, round-robin."""

    name = "scenario-II"

    def __init__(self, layout: SubarrayLayout, subarray: int, n_aggr: int,
                 rng: RandomSource):
        if n_aggr <= 0:
            raise ValueError("n_aggr must be positive")
        if n_aggr > layout.rows_per_subarray:
            raise ValueError("more aggressors than rows in the subarray")
        offsets = list(range(layout.rows_per_subarray))
        rng.shuffle(offsets)
        self.rows = [layout.pa_row(subarray, off) for off in offsets[:n_aggr]]
        self.n_aggr = n_aggr

    def interval_rows(self, interval_index: int, acts: int) -> List[int]:
        return [self.rows[i % self.n_aggr] for i in range(acts)]


class ScenarioIIIAttacker:
    """``n_aggr`` fixed aggressor PAs spread across subarrays."""

    name = "scenario-III"

    def __init__(self, layout: SubarrayLayout, n_aggr: int,
                 rng: RandomSource,
                 subarrays: Optional[List[int]] = None):
        if n_aggr <= 0:
            raise ValueError("n_aggr must be positive")
        if subarrays is None:
            subarrays = list(range(layout.subarrays_per_bank))
        if n_aggr > len(subarrays) * layout.rows_per_subarray:
            raise ValueError("more aggressors than available rows")
        self.rows: List[int] = []
        used = set()
        while len(self.rows) < n_aggr:
            sub = subarrays[self._pick(rng, len(subarrays))]
            off = self._pick(rng, layout.rows_per_subarray)
            row = layout.pa_row(sub, off)
            if row not in used:
                used.add(row)
                self.rows.append(row)
        self.n_aggr = n_aggr

    @staticmethod
    def _pick(rng: RandomSource, bound: int) -> int:
        return rng.randrange(bound)

    def interval_rows(self, interval_index: int, acts: int) -> List[int]:
        return [self.rows[i % self.n_aggr] for i in range(acts)]
