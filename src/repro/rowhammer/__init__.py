"""Row Hammer fault model and attack library.

:mod:`repro.rowhammer.model` accumulates activation-induced disturbance
per DA row with the paper's blast-radius weighting (effect halves per
wordline of distance, Section II-D) and reports bit-flips when a victim
crosses ``H_cnt`` within its effective refresh window.

:mod:`repro.rowhammer.attacks` generates the classic access patterns
(single-, double-, many-sided, blast) as physical-address streams, and
:mod:`repro.rowhammer.adversary` implements the three SHADOW-specific
adversarial scenarios of Section VII-A / Appendix XI.
"""

from repro.rowhammer.attacks import (
    AttackPattern,
    blast_attack,
    double_sided,
    half_double,
    many_sided,
    single_sided,
)
from repro.rowhammer.adversary import (
    ScenarioIAttacker,
    ScenarioIIAttacker,
    ScenarioIIIAttacker,
)
from repro.rowhammer.model import (
    BitFlip,
    DisturbanceModel,
    HammerConfig,
    blast_weight,
    blast_weight_sum,
)
from repro.rowhammer.templating import (
    Template,
    TemplatingCampaign,
    TemplatingReport,
)

__all__ = [
    "AttackPattern",
    "BitFlip",
    "DisturbanceModel",
    "HammerConfig",
    "ScenarioIAttacker",
    "ScenarioIIAttacker",
    "ScenarioIIIAttacker",
    "Template",
    "TemplatingCampaign",
    "TemplatingReport",
    "blast_attack",
    "blast_weight",
    "blast_weight_sum",
    "double_sided",
    "half_double",
    "many_sided",
    "single_sided",
]
