"""Profile-driven memory trace generation.

A :class:`WorkloadProfile` captures the memory behaviour of one
application; a :class:`TraceGenerator` turns it into an endless,
deterministic stream of ``(gap_cycles, location, is_write)`` tuples for
one hardware thread.

The generator works in *pages*: a page is the contiguous physical-address
block that maps onto a single (row, bank, rank) across every channel and
column, so streaming within a page produces row-buffer hits and hopping
between pages produces row misses.  Run lengths within a page follow a
geometric distribution whose mean encodes the profile's row-buffer
locality; inter-request gaps derive from MPKI and the CPU-to-DRAM clock
ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.controller.address import AddressMapping, MemoryLocation
from repro.utils.rng import SystemRng


@dataclass(frozen=True)
class WorkloadProfile:
    """Memory behaviour of one application."""

    name: str
    mpki: float                  # last-level-cache misses / kilo-instruction
    row_buffer_locality: float   # P(next access stays in the open row)
    write_fraction: float = 0.25
    footprint_pages: int = 4096  # distinct pages the thread cycles over
    sequential: bool = False     # stream pages in order (NPB-style)
    #: Zipf exponent of page popularity (0 = uniform).  Pointer-chasing
    #: workloads concentrate their misses on hot rows even after caches;
    #: this is the property that makes per-row trackers (RRS,
    #: BlockHammer, Graphene) fire on *normal* applications.
    zipf_alpha: float = 0.0

    def __post_init__(self) -> None:
        if self.mpki <= 0:
            raise ValueError("mpki must be positive")
        if not 0.0 <= self.row_buffer_locality < 1.0:
            raise ValueError("row_buffer_locality must be in [0, 1)")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.footprint_pages <= 0:
            raise ValueError("footprint_pages must be positive")
        if self.zipf_alpha < 0:
            raise ValueError("zipf_alpha must be non-negative")

    @property
    def mean_run_length(self) -> float:
        """Expected consecutive accesses to one page."""
        return 1.0 / (1.0 - self.row_buffer_locality)

    def intensity_class(self) -> str:
        """The paper's grouping: high / med / low memory intensity."""
        if self.mpki >= 15:
            return "high"
        if self.mpki >= 4:
            return "med"
        return "low"


class TraceGenerator:
    """Deterministic per-thread request stream."""

    def __init__(self, profile: WorkloadProfile, mapping: AddressMapping,
                 thread_id: int, seed: int = 1, cpu_ghz: float = 3.1,
                 instructions_per_cycle: float = 2.0):
        self.profile = profile
        self.mapping = mapping
        self.thread_id = thread_id
        self.seed = seed
        geometry = mapping.geometry
        # Gaps are kept in *nanoseconds* internally (the system converts
        # to DRAM cycles), so one trace serves any speed grade.
        self._gap_ns_per_instr = 1.0 / (cpu_ghz * instructions_per_cycle)
        # Page space: every (row, bank, rank) combination, partitioned
        # round-robin between threads so footprints do not overlap.
        self._pages_total = (geometry.rows_per_bank
                             * geometry.banks_per_rank
                             * geometry.ranks_per_channel)
        self._columns = geometry.columns_per_row
        self._channels = geometry.channels

    # -- page <-> location arithmetic -----------------------------------------------

    #: Pages per bank cluster: consecutive page indices share a bank (in
    #: adjacent rows) in groups of this size, the way contiguous hot
    #: allocations co-locate in a bank region.  Without clustering, a
    #: popularity skew spreads its head pages over distinct banks where
    #: each stays open in its row buffer and *never re-activates*; with
    #: it, hot pages conflict and produce the per-row ACT pressure that
    #: row-tracking defenses (RRS, BlockHammer, Graphene) respond to.
    PAGES_PER_CLUSTER = 8

    def _page_location(self, page: int, line: int) -> MemoryLocation:
        """The ``line``-th cache line of ``page`` (one channel pass)."""
        geometry = self.mapping.geometry
        channel = line % self._channels
        column = (line // self._channels) % self._columns
        cluster, sub = divmod(page, self.PAGES_PER_CLUSTER)
        bank = cluster % geometry.banks_per_rank
        rank = (cluster // geometry.banks_per_rank) \
            % geometry.ranks_per_channel
        row_base = cluster // (geometry.banks_per_rank
                               * geometry.ranks_per_channel)
        row = row_base * self.PAGES_PER_CLUSTER + sub
        return MemoryLocation(channel, rank, bank,
                              row % geometry.rows_per_bank, column)

    def _thread_page(self, index: int) -> int:
        """Map a footprint index to a global page, thread-offset so the
        threads of a mix touch (mostly) disjoint memory."""
        base = (self.thread_id * 7919) % self._pages_total
        return (base + index) % self._pages_total

    # -- Zipfian page popularity ------------------------------------------------------

    def _zipf_cdf(self):
        """Cumulative popularity over footprint pages (None if uniform)."""
        profile = self.profile
        if profile.zipf_alpha <= 0 or profile.sequential:
            return None
        ranks = np.arange(1, profile.footprint_pages + 1, dtype=float)
        weights = ranks ** -profile.zipf_alpha
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        return cdf

    @staticmethod
    def _zipf_pick(cdf, rng) -> int:
        u = rng.next_bits(24) / float(1 << 24)
        return int(np.searchsorted(cdf, u, side="right"))

    # -- the stream -------------------------------------------------------------------

    def materialize(self, count: int, tck_ns: Optional[float] = None
                    ) -> List[Tuple[float, MemoryLocation, bool]]:
        """Pregenerate the first ``count`` requests as a plain list.

        The values are produced by the exact same code path as
        :meth:`requests` (same RNG draws, same float arithmetic), so a
        materialized stream is element-identical to the lazy one -- the
        simulator's issue path just becomes an index bump instead of a
        generator resume.  With ``tck_ns`` given, the per-request gap is
        pre-converted from nanoseconds to DRAM cycles using the same
        ``max(1, int(gap_ns / tck_ns))`` the core model applies.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        stream = self.requests()
        if tck_ns is None:
            return [next(stream) for _ in range(count)]
        ops = []
        append = ops.append
        for _ in range(count):
            gap_ns, location, is_write = next(stream)
            gap = int(gap_ns / tck_ns)
            append((gap if gap > 1 else 1, location, is_write))
        return ops

    def requests(self) -> Iterator[Tuple[float, MemoryLocation, bool]]:
        """Yield ``(gap_ns, location, is_write)`` forever."""
        profile = self.profile
        rng = SystemRng(self.seed * 1_000_003 + self.thread_id)
        zipf_cdf = self._zipf_cdf()
        # Hot-loop hoists (this generator feeds every simulated request;
        # the draws and float math are unchanged, only the per-item
        # attribute lookups are lifted out).
        next_bits = rng.next_bits
        randrange = rng.randrange
        sequential = profile.sequential
        footprint = profile.footprint_pages
        locality = profile.row_buffer_locality
        write_fraction = profile.write_fraction
        gap_scale = (1000.0 / profile.mpki) * self._gap_ns_per_instr
        thread_page = self._thread_page
        page_location = self._page_location
        zipf_pick = self._zipf_pick
        page_index = 0
        page = thread_page(0)
        line = 0
        lines_left = 0
        while True:
            if lines_left <= 0:
                # Pick the next page and a geometric run length.
                if sequential:
                    page_index = (page_index + 1) % footprint
                elif zipf_cdf is not None:
                    page_index = zipf_pick(zipf_cdf, rng)
                else:
                    page_index = randrange(footprint)
                page = thread_page(page_index)
                line = 0
                # Geometric with mean 1/(1-locality), via inverse CDF.
                lines_left = 1
                while next_bits(16) / 65536.0 < locality:
                    lines_left += 1
            location = page_location(page, line)
            line += 1
            lines_left -= 1
            is_write = next_bits(16) / 65536.0 < write_fraction
            # Gap: instructions to the next miss, +/-50% jitter.
            jitter = 0.5 + next_bits(16) / 65536.0
            yield gap_scale * jitter, location, is_write
