"""Workload generators standing in for the paper's benchmark suites.

The paper evaluates on SPEC CPU2017, GAPBS (Kronecker 2^26), NPB
class C, and a random-stream adversarial microbenchmark, grouped by
memory intensity (spec-high / spec-med / spec-low, Section VII-C).
Real binaries and traces are unavailable here, so each named
application gets a :class:`~repro.workloads.trace.WorkloadProfile`
capturing exactly the properties that drive every mitigation's
overhead: ACT rate (from MPKI), row-buffer locality, write share, and
footprint.  Mixes reproduce the paper's mix-high / mix-blend /
mix-random constructions by name.
"""

from repro.workloads.gapbs import GAPBS_PROFILES
from repro.workloads.mixes import mix_blend, mix_high, mix_random
from repro.workloads.npb import NPB_PROFILES
from repro.workloads.spec import (
    SPEC_HIGH,
    SPEC_LOW,
    SPEC_MED,
    SPEC_PROFILES,
    spec_group,
)
from repro.workloads.synthetic import (
    pointer_chase_profile,
    random_stream_profile,
    stream_profile,
)
from repro.workloads.trace import TraceGenerator, WorkloadProfile
from repro.workloads.tracefile import (
    FileTrace,
    dump_trace_file,
    load_trace_file,
)

__all__ = [
    "FileTrace",
    "GAPBS_PROFILES",
    "NPB_PROFILES",
    "SPEC_HIGH",
    "SPEC_LOW",
    "SPEC_MED",
    "SPEC_PROFILES",
    "TraceGenerator",
    "WorkloadProfile",
    "dump_trace_file",
    "load_trace_file",
    "mix_blend",
    "mix_high",
    "mix_random",
    "pointer_chase_profile",
    "random_stream_profile",
    "spec_group",
    "stream_profile",
]
