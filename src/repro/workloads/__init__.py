"""Workload generators standing in for the paper's benchmark suites.

The paper evaluates on SPEC CPU2017, GAPBS (Kronecker 2^26), NPB
class C, and a random-stream adversarial microbenchmark, grouped by
memory intensity (spec-high / spec-med / spec-low, Section VII-C).
Real binaries and traces are unavailable here, so each named
application gets a :class:`~repro.workloads.trace.WorkloadProfile`
capturing exactly the properties that drive every mitigation's
overhead: ACT rate (from MPKI), row-buffer locality, write share, and
footprint.  Mixes reproduce the paper's mix-high / mix-blend /
mix-random constructions by name.
"""

from repro.workloads.gapbs import GAPBS_PROFILES
from repro.workloads.mixes import mix_blend, mix_high, mix_random
from repro.workloads.npb import NPB_PROFILES
from repro.workloads.spec import (
    SPEC_HIGH,
    SPEC_LOW,
    SPEC_MED,
    SPEC_PROFILES,
    spec_group,
)
from repro.workloads.synthetic import (
    pointer_chase_profile,
    random_stream_profile,
    stream_profile,
)
from repro.workloads.trace import TraceGenerator, WorkloadProfile
from repro.workloads.tracefile import (
    FileTrace,
    dump_trace_file,
    load_trace_file,
)

# -- spec-registry entries ---------------------------------------------------------
#
# Each factory returns the profile list one ``WorkloadSpec`` resolves
# to, so a workload is nameable from plain data (CLI flags, experiment
# grids, rehydrated JSON jobs).

import difflib as _difflib

from repro.spec.registry import WORKLOADS as _WORKLOADS


def _named_profile(table, table_name, app):
    try:
        return table[app]
    except KeyError:
        hint = ""
        close = _difflib.get_close_matches(app, table, n=1)
        if close:
            hint = f" (did you mean {close[0]!r}?)"
        raise ValueError(f"unknown {table_name} application {app!r}{hint}; "
                         f"choose from {sorted(table)}") from None


@_WORKLOADS.register("spec")
def _spec_app(app: str, threads: int = 1):
    return [_named_profile(SPEC_PROFILES, "SPEC", app)] * threads


@_WORKLOADS.register("spec-group")
def _spec_group(group: str):
    return spec_group(group)


@_WORKLOADS.register("gapbs")
def _gapbs_app(app: str, threads: int = 1):
    return [_named_profile(GAPBS_PROFILES, "GAPBS", app)] * threads


@_WORKLOADS.register("npb")
def _npb_app(app: str, threads: int = 1):
    return [_named_profile(NPB_PROFILES, "NPB", app)] * threads


_WORKLOADS.register("mix-high", mix_high)
_WORKLOADS.register("mix-blend", mix_blend)
_WORKLOADS.register("mix-random", mix_random)


@_WORKLOADS.register("stream")
def _stream(mpki: float = 40.0, threads: int = 1):
    return [stream_profile(mpki)] * threads


@_WORKLOADS.register("random-stream")
def _random_stream(mpki: float = 150.0, threads: int = 1):
    return [random_stream_profile(mpki)] * threads


@_WORKLOADS.register("pointer-chase")
def _pointer_chase(mpki: float = 30.0, threads: int = 1):
    return [pointer_chase_profile(mpki)] * threads


@_WORKLOADS.register("hammer")
def _hammer(attack: str = "double-sided", victim_row: int = 260,
            sides: int = 9, radius: int = 2, threads: int = 1):
    from repro.workloads.hammer import hammer_profile
    return [hammer_profile(attack, victim_row=victim_row,
                           sides=sides, radius=radius)] * threads

__all__ = [
    "FileTrace",
    "GAPBS_PROFILES",
    "NPB_PROFILES",
    "SPEC_HIGH",
    "SPEC_LOW",
    "SPEC_MED",
    "SPEC_PROFILES",
    "TraceGenerator",
    "WorkloadProfile",
    "dump_trace_file",
    "load_trace_file",
    "mix_blend",
    "mix_high",
    "mix_random",
    "pointer_chase_profile",
    "random_stream_profile",
    "spec_group",
    "stream_profile",
]
