"""NAS Parallel Benchmarks (class C) profiles.

Stencil and spectral kernels: streaming access with strong spatial
locality, moderate-to-high intensity, significant write shares.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.trace import WorkloadProfile

NPB_PROFILES: Dict[str, WorkloadProfile] = {
    "bt": WorkloadProfile("bt", mpki=12.0, row_buffer_locality=0.75,
                          write_fraction=0.40, footprint_pages=16384,
                          sequential=True),
    "cg": WorkloadProfile("cg", mpki=20.0, row_buffer_locality=0.35,
                          write_fraction=0.20, footprint_pages=16384,
                          zipf_alpha=0.7),
    "ft": WorkloadProfile("ft", mpki=15.0, row_buffer_locality=0.60,
                          write_fraction=0.35, footprint_pages=16384,
                          sequential=True),
    "lu": WorkloadProfile("lu", mpki=10.0, row_buffer_locality=0.70,
                          write_fraction=0.40, footprint_pages=16384,
                          sequential=True),
    "mg": WorkloadProfile("mg", mpki=18.0, row_buffer_locality=0.65,
                          write_fraction=0.35, footprint_pages=16384,
                          sequential=True),
    "sp": WorkloadProfile("sp", mpki=14.0, row_buffer_locality=0.70,
                          write_fraction=0.40, footprint_pages=16384,
                          sequential=True),
}
