"""Trace file import/export.

Lets downstream users bring their own memory traces (e.g. from a pin
tool or another simulator) instead of the synthetic generators, and
dump the synthetic streams for inspection.  Format: plain text, one
request per line::

    # gap_ns channel rank bank row column kind
    12.5 0 0 3 1047 12 R
    3.0  1 0 3 1047 13 W

``#`` lines and blank lines are ignored.  ``kind`` is ``R`` or ``W``.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, List, TextIO, Tuple, Union

from repro.controller.address import MemoryLocation

TraceEntry = Tuple[float, MemoryLocation, bool]


def dump_trace(entries: Iterable[TraceEntry], stream: TextIO) -> int:
    """Write entries to ``stream``; returns the count written."""
    stream.write("# gap_ns channel rank bank row column kind\n")
    count = 0
    for gap_ns, loc, is_write in entries:
        kind = "W" if is_write else "R"
        stream.write(f"{gap_ns:.3f} {loc.channel} {loc.rank} {loc.bank} "
                     f"{loc.row} {loc.column} {kind}\n")
        count += 1
    return count


def dump_trace_file(entries: Iterable[TraceEntry], path: str) -> int:
    """Write a trace file to ``path``; returns the entry count."""
    with open(path, "w") as handle:
        return dump_trace(entries, handle)


def parse_trace(stream: Union[TextIO, str]) -> Iterator[TraceEntry]:
    """Parse a trace stream lazily; raises ValueError with line numbers
    on malformed input."""
    if isinstance(stream, str):
        stream = io.StringIO(stream)
    for lineno, line in enumerate(stream, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        parts = text.split()
        if len(parts) != 7:
            raise ValueError(
                f"trace line {lineno}: expected 7 fields, got {len(parts)}")
        try:
            gap_ns = float(parts[0])
            channel, rank, bank, row, column = map(int, parts[1:6])
        except ValueError as exc:
            raise ValueError(f"trace line {lineno}: {exc}") from exc
        if gap_ns < 0:
            raise ValueError(f"trace line {lineno}: negative gap")
        kind = parts[6].upper()
        if kind not in ("R", "W"):
            raise ValueError(
                f"trace line {lineno}: kind must be R or W, got {parts[6]}")
        yield (gap_ns, MemoryLocation(channel, rank, bank, row, column),
               kind == "W")


def load_trace_file(path: str) -> List[TraceEntry]:
    """Parse a whole trace file into memory."""
    with open(path) as handle:
        return list(parse_trace(handle))


class FileTrace:
    """Adapter presenting a parsed trace as a thread's request stream.

    ``loop=True`` repeats the trace when the request budget outruns it
    (common when comparing against the endless synthetic generators).
    """

    def __init__(self, entries: List[TraceEntry], loop: bool = True):
        if not entries:
            raise ValueError("trace must contain at least one request")
        self.entries = entries
        self.loop = loop

    @classmethod
    def from_file(cls, path: str, loop: bool = True) -> "FileTrace":
        return cls(load_trace_file(path), loop=loop)

    def requests(self) -> Iterator[TraceEntry]:
        while True:
            for entry in self.entries:
                yield entry
            if not self.loop:
                return
