"""Trace statistics: the quantities that predict mitigation overhead.

Given any request stream (synthetic generator or imported file), this
computes the properties the whole evaluation keys on: request and ACT
rates, row-buffer hit potential, footprint, per-row ACT concentration
(what triggers RRS/BlockHammer/Graphene), and the implied RFM rate for
a given RAAIMT.  Useful for calibrating a :class:`WorkloadProfile`
against a real trace before simulating it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.controller.address import MemoryLocation

TraceEntry = Tuple[float, MemoryLocation, bool]


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one request stream."""

    requests: int
    writes: int
    duration_ns: float
    distinct_rows: int
    distinct_banks: int
    row_transitions: int     # bank-local row changes (ACT lower bound)
    top_row_touches: List[Tuple[int, int]]   # [(touches, ...rank)] desc

    @property
    def write_fraction(self) -> float:
        return self.writes / self.requests if self.requests else 0.0

    @property
    def request_rate_per_us(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.requests / (self.duration_ns / 1000.0)

    @property
    def row_hit_potential(self) -> float:
        """Upper bound on the row-buffer hit rate an open-page policy
        could achieve (1 - transitions/requests)."""
        if self.requests == 0:
            return 0.0
        return 1.0 - self.row_transitions / self.requests

    @property
    def act_rate_per_us(self) -> float:
        """Lower-bound activation rate implied by the row transitions."""
        if self.duration_ns <= 0:
            return 0.0
        return self.row_transitions / (self.duration_ns / 1000.0)

    def hottest_row_acts(self) -> int:
        """ACT-equivalent touches of the single hottest row."""
        return self.top_row_touches[0][0] if self.top_row_touches else 0

    def rfm_rate_per_ms(self, raaimt: int) -> float:
        """RFM commands per millisecond this trace would trigger."""
        if raaimt <= 0:
            raise ValueError("raaimt must be positive")
        if self.duration_ns <= 0:
            return 0.0
        return (self.row_transitions / raaimt) / (self.duration_ns / 1e6)

    def would_trigger(self, threshold: int) -> bool:
        """Would a per-row count threshold (RRS swap, BlockHammer
        blacklist) fire on this trace's hottest row?"""
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        return self.hottest_row_acts() >= threshold


def analyze(entries: Iterable[TraceEntry], top: int = 8) -> TraceStats:
    """Compute :class:`TraceStats` over a finite request stream."""
    if top <= 0:
        raise ValueError("top must be positive")
    requests = 0
    writes = 0
    duration_ns = 0.0
    open_rows: Dict[Tuple[int, int, int], int] = {}
    transitions = 0
    row_touches: Counter = Counter()
    banks = set()
    for gap_ns, loc, is_write in entries:
        requests += 1
        writes += int(is_write)
        duration_ns += gap_ns
        bank_key = (loc.channel, loc.rank, loc.bank)
        banks.add(bank_key)
        row_key = bank_key + (loc.row,)
        if open_rows.get(bank_key) != loc.row:
            transitions += 1
            open_rows[bank_key] = loc.row
            row_touches[row_key] += 1
    return TraceStats(
        requests=requests,
        writes=writes,
        duration_ns=duration_ns,
        distinct_rows=len(row_touches),
        distinct_banks=len(banks),
        row_transitions=transitions,
        top_row_touches=[(count, key)
                         for key, count in row_touches.most_common(top)],
    )


def summarize(stats: TraceStats) -> str:
    """Human-readable one-screen summary."""
    lines = [
        f"requests            : {stats.requests}",
        f"writes              : {stats.writes} "
        f"({stats.write_fraction:.0%})",
        f"duration            : {stats.duration_ns / 1000:.1f} us",
        f"request rate        : {stats.request_rate_per_us:.2f} /us",
        f"ACT rate (lower bd) : {stats.act_rate_per_us:.2f} /us",
        f"row-hit potential   : {stats.row_hit_potential:.0%}",
        f"distinct rows/banks : {stats.distinct_rows} / "
        f"{stats.distinct_banks}",
        f"hottest-row ACTs    : {stats.hottest_row_acts()}",
    ]
    return "\n".join(lines)
