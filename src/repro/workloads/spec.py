"""SPEC CPU2017 application profiles (paper Section VII-C grouping).

The paper categorizes by measured memory-access frequency:

* spec-high: bwaves, fotonik3d, lbm, mcf, wrf
* spec-med:  deepsjeng, gcc, xz
* spec-low:  exchange2, imagick, leela

MPKI and locality values follow the published characterization
literature for these applications (rate runs, ref inputs); exact
figures are not load-bearing -- the groups' *ordering* is what every
figure keys on.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.trace import WorkloadProfile

SPEC_PROFILES: Dict[str, WorkloadProfile] = {
    # -- spec-high ---------------------------------------------------------------
    "bwaves": WorkloadProfile("bwaves", mpki=28.0,
                              row_buffer_locality=0.75,
                              write_fraction=0.30,
                              footprint_pages=8192, sequential=True),
    "fotonik3d": WorkloadProfile("fotonik3d", mpki=25.0,
                                 row_buffer_locality=0.70,
                                 write_fraction=0.30,
                                 footprint_pages=8192, sequential=True),
    "lbm": WorkloadProfile("lbm", mpki=32.0,
                           row_buffer_locality=0.65,
                           write_fraction=0.45,
                           footprint_pages=8192, sequential=True),
    "mcf": WorkloadProfile("mcf", mpki=22.0,
                           row_buffer_locality=0.30,
                           write_fraction=0.20,
                           footprint_pages=16384, zipf_alpha=1.4),
    "wrf": WorkloadProfile("wrf", mpki=18.0,
                           row_buffer_locality=0.60,
                           write_fraction=0.30,
                           footprint_pages=8192, zipf_alpha=0.5),
    # -- spec-med ------------------------------------------------------------------
    "deepsjeng": WorkloadProfile("deepsjeng", mpki=6.0,
                                 row_buffer_locality=0.45,
                                 write_fraction=0.25,
                                 footprint_pages=4096, zipf_alpha=0.9),
    "gcc": WorkloadProfile("gcc", mpki=7.5,
                           row_buffer_locality=0.50,
                           write_fraction=0.30,
                           footprint_pages=4096, zipf_alpha=0.9),
    "xz": WorkloadProfile("xz", mpki=5.0,
                          row_buffer_locality=0.40,
                          write_fraction=0.30,
                          footprint_pages=4096, zipf_alpha=0.8),
    # -- spec-low -------------------------------------------------------------------
    "exchange2": WorkloadProfile("exchange2", mpki=0.6,
                                 row_buffer_locality=0.60,
                                 write_fraction=0.20,
                                 footprint_pages=512, zipf_alpha=0.7),
    "imagick": WorkloadProfile("imagick", mpki=1.2,
                               row_buffer_locality=0.70,
                               write_fraction=0.25,
                               footprint_pages=1024),
    "leela": WorkloadProfile("leela", mpki=1.0,
                             row_buffer_locality=0.55,
                             write_fraction=0.20,
                             footprint_pages=512, zipf_alpha=0.7),
}

SPEC_HIGH: List[str] = ["bwaves", "fotonik3d", "lbm", "mcf", "wrf"]
SPEC_MED: List[str] = ["deepsjeng", "gcc", "xz"]
SPEC_LOW: List[str] = ["exchange2", "imagick", "leela"]


def spec_group(group: str) -> List[WorkloadProfile]:
    """Profiles of one paper group: ``"high"``, ``"med"`` or ``"low"``."""
    names = {"high": SPEC_HIGH, "med": SPEC_MED, "low": SPEC_LOW}
    if group not in names:
        raise ValueError(f"unknown SPEC group {group!r}")
    return [SPEC_PROFILES[name] for name in names[group]]
