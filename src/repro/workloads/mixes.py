"""The paper's multi-programmed workload mixes (Section VII-C).

* **mix-high**: 14 spec-high applications (the five high-intensity apps
  replicated round-robin to 14 hardware threads).
* **mix-blend**: 14 applications drawn uniformly from spec-high,
  spec-med and spec-low.
* **mix-random**: N applications chosen at random from all of SPEC
  CPU2017 (the paper builds 32 of these at 16 threads for Figure 11).
"""

from __future__ import annotations

from typing import List

from repro.utils.rng import SystemRng
from repro.workloads.spec import SPEC_HIGH, SPEC_LOW, SPEC_MED, SPEC_PROFILES
from repro.workloads.trace import WorkloadProfile


def mix_high(threads: int = 14) -> List[WorkloadProfile]:
    """14 spec-high applications (paper's mix-high)."""
    if threads <= 0:
        raise ValueError("threads must be positive")
    return [SPEC_PROFILES[SPEC_HIGH[i % len(SPEC_HIGH)]]
            for i in range(threads)]


def mix_blend(threads: int = 14) -> List[WorkloadProfile]:
    """Uniform blend over the three intensity groups (paper's mix-blend)."""
    if threads <= 0:
        raise ValueError("threads must be positive")
    rotation = SPEC_HIGH + SPEC_MED + SPEC_LOW
    return [SPEC_PROFILES[rotation[i % len(rotation)]]
            for i in range(threads)]


def mix_random(seed: int, threads: int = 16) -> List[WorkloadProfile]:
    """Random selection over all SPEC CPU2017 apps (paper's mix-random)."""
    if threads <= 0:
        raise ValueError("threads must be positive")
    rng = SystemRng(seed)
    names = sorted(SPEC_PROFILES)
    return [SPEC_PROFILES[names[rng.randrange(len(names))]]
            for _ in range(threads)]
