"""Adversarial hammer workloads for the red-team harness.

A :class:`HammerProfile` drives the *timing simulator* with one of the
attack patterns from :mod:`repro.rowhammer.attacks` -- unlike the
statistical :class:`~repro.workloads.trace.WorkloadProfile` streams, the
access sequence here is exactly the aggressor-row rotation a real
attacker issues, aimed at one bank so every access is an activation
(run with ``mlp=1`` so FR-FCFS cannot batch row hits).

The profile is a frozen dataclass like ``WorkloadProfile`` (picklable,
``asdict``-able, carries a ``name``), and plugs into the system through
the ``trace_generator`` hook :class:`~repro.sim.system.System` dispatches
on: any profile exposing ``trace_generator(mapping, thread_id, seed,
cpu_ghz)`` supplies its own generator; plain profiles keep the default
:class:`~repro.workloads.trace.TraceGenerator` path untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.controller.address import AddressMapping, MemoryLocation
from repro.rowhammer.attacks import (
    AttackPattern,
    blast_attack,
    double_sided,
    half_double,
    many_sided,
    single_sided,
)


@dataclass(frozen=True)
class HammerProfile:
    """One attacking thread replaying an adversarial access pattern."""

    name: str = "hammer-double-sided"
    attack: str = "double-sided"
    victim_row: int = 260        # MC row the attacker wants to flip
    sides: int = 9               # width of the many-sided pattern
    radius: int = 2              # distance of the blast-attack aggressors
    channel: int = 0
    rank: int = 0
    bank: int = 0
    #: Back-to-back issue: the attacker is activation-bound, not
    #: compute-bound, so the gap collapses to the 1-cycle minimum.
    gap_ns: float = 1.0

    def __post_init__(self) -> None:
        if self.victim_row < 0:
            raise ValueError("victim_row must be non-negative")
        self.pattern()   # validates the attack name eagerly

    def pattern(self) -> AttackPattern:
        """The aggressor-row pattern this profile replays."""
        if self.attack == "single-sided":
            return single_sided(self.victim_row)
        if self.attack == "double-sided":
            return double_sided(self.victim_row)
        if self.attack == "many-sided":
            return many_sided(self.victim_row, sides=self.sides)
        if self.attack == "half-double":
            return half_double(self.victim_row)
        if self.attack == "blast":
            return blast_attack(self.victim_row, radius=self.radius)
        raise ValueError(
            f"unknown attack {self.attack!r}; choose from "
            "['single-sided', 'double-sided', 'many-sided', "
            "'half-double', 'blast']")

    def trace_generator(self, mapping: AddressMapping, thread_id: int,
                        seed: int, cpu_ghz: float) -> "HammerTraceGenerator":
        """System dispatch hook (same signature intent as
        ``TraceGenerator(profile, mapping, thread_id, seed, cpu_ghz)``)."""
        return HammerTraceGenerator(self, mapping)


class HammerTraceGenerator:
    """Deterministic aggressor-rotation stream (reads, fixed column)."""

    def __init__(self, profile: HammerProfile, mapping: AddressMapping):
        self.profile = profile
        self.mapping = mapping
        geometry = mapping.geometry
        rows = geometry.rows_per_bank
        if profile.victim_row >= rows:
            raise ValueError(
                f"victim_row {profile.victim_row} outside the bank "
                f"({rows} rows)")
        self._rows = [row % rows for row in profile.pattern().aggressor_rows]

    def materialize(self, count: int, tck_ns: Optional[float] = None
                    ) -> List[Tuple[float, MemoryLocation, bool]]:
        """The first ``count`` accesses of the endless rotation."""
        if count < 0:
            raise ValueError("count must be non-negative")
        profile = self.profile
        if tck_ns is None:
            gap = profile.gap_ns
        else:
            gap = max(1, int(profile.gap_ns / tck_ns))
        rows = self._rows
        n = len(rows)
        return [
            (gap,
             MemoryLocation(profile.channel, profile.rank, profile.bank,
                            rows[i % n], 0),
             False)
            for i in range(count)
        ]


def hammer_profile(attack: str = "double-sided", victim_row: int = 260,
                   sides: int = 9, radius: int = 2) -> HammerProfile:
    """Convenience constructor naming the profile after its attack."""
    return HammerProfile(name=f"hammer-{attack}", attack=attack,
                         victim_row=victim_row, sides=sides, radius=radius)


__all__ = ["HammerProfile", "HammerTraceGenerator", "hammer_profile"]
