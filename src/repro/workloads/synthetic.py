"""Synthetic microbenchmarks.

``random_stream_profile`` is the paper's worst-case adversarial
workload (Section VII-C): back-to-back activations with no row-buffer
locality, maximally sensitive to tRCD changes and maximally RFM-
triggering.  ``stream``/``pointer_chase`` are classic calibration
points.
"""

from __future__ import annotations

from repro.workloads.trace import WorkloadProfile


def random_stream_profile(mpki: float = 150.0) -> WorkloadProfile:
    """Every access misses the row buffer; near-zero compute gaps."""
    return WorkloadProfile(
        name="random-stream", mpki=mpki, row_buffer_locality=0.0,
        write_fraction=0.0, footprint_pages=65536)


def stream_profile(mpki: float = 40.0) -> WorkloadProfile:
    """Pure sequential streaming: the row-hit-friendly extreme."""
    return WorkloadProfile(
        name="stream", mpki=mpki, row_buffer_locality=0.9,
        write_fraction=0.33, footprint_pages=16384, sequential=True)


def pointer_chase_profile(mpki: float = 30.0) -> WorkloadProfile:
    """Dependent random loads: no locality, read-only."""
    return WorkloadProfile(
        name="pointer-chase", mpki=mpki, row_buffer_locality=0.0,
        write_fraction=0.0, footprint_pages=32768)
