"""GAP Benchmark Suite profiles (Kronecker graph, 2^26 vertices).

Graph traversals are the paper's memory-intensive multi-threaded
workloads: huge footprints, poor row-buffer locality (pointer-chasing
over adjacency lists), read-dominated.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.trace import WorkloadProfile

GAPBS_PROFILES: Dict[str, WorkloadProfile] = {
    "bfs": WorkloadProfile("bfs", mpki=24.0, row_buffer_locality=0.20,
                           write_fraction=0.15, footprint_pages=32768, zipf_alpha=1.1),
    "pr": WorkloadProfile("pr", mpki=30.0, row_buffer_locality=0.35,
                          write_fraction=0.20, footprint_pages=32768, zipf_alpha=1.1),
    "cc": WorkloadProfile("cc", mpki=26.0, row_buffer_locality=0.25,
                          write_fraction=0.20, footprint_pages=32768, zipf_alpha=1.1),
    "bc": WorkloadProfile("bc", mpki=22.0, row_buffer_locality=0.25,
                          write_fraction=0.15, footprint_pages=32768, zipf_alpha=1.1),
    "sssp": WorkloadProfile("sssp", mpki=28.0, row_buffer_locality=0.20,
                            write_fraction=0.20, footprint_pages=32768, zipf_alpha=1.1),
    "tc": WorkloadProfile("tc", mpki=16.0, row_buffer_locality=0.40,
                          write_fraction=0.05, footprint_pages=32768, zipf_alpha=1.1),
}
