"""SHADOW: the paper's primary contribution.

The pieces map one-to-one onto the paper's architecture (Figure 5):

* :mod:`repro.core.remapping` -- the per-subarray remapping row holding
  the PA-to-DA table, the empty-row pointer and the incremental-refresh
  pointer (Section V-A).
* :mod:`repro.core.shuffle` -- the Row_aggr/Row_rand/Row_empt two-copy
  row-shuffle choreography (Section IV-B).
* :mod:`repro.core.incremental` -- the DA round-robin incremental
  refresh (Section IV-C).
* :mod:`repro.core.pairing` -- subarray-pairing timing: what latency the
  remapping-row read adds to ACT (tRD_RM) and how long the RFM-hosted
  work takes (Sections V-B, VI, VII-B).
* :mod:`repro.core.controller` -- the per-bank SHADOW controller:
  aggressor sampling from recent ACTs, random-number buffering, latches
  (Section V-C).
* :mod:`repro.core.shadow` -- the :class:`repro.mitigations.base.
  Mitigation` implementation wiring everything into the memory
  controller.
"""

from repro.core.config import ShadowConfig
from repro.core.controller import ShadowBankController
from repro.core.factories import (
    make_shadow,
    make_shadow_ablate,
    make_shadow_raw,
    make_shadow_with_trcd,
)
from repro.core.incremental import IncrementalRefresh
from repro.core.pairing import ShadowTimings
from repro.core.remapping import RemappingRow
from repro.core.shadow import Shadow
from repro.core.shuffle import ShuffleResult, plan_shuffle

__all__ = [
    "IncrementalRefresh",
    "RemappingRow",
    "Shadow",
    "ShadowBankController",
    "ShadowConfig",
    "ShadowTimings",
    "ShuffleResult",
    "make_shadow",
    "make_shadow_ablate",
    "make_shadow_raw",
    "make_shadow_with_trcd",
    "plan_shuffle",
]
