"""SHADOW configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pairing import CircuitTimings

#: Secure RAAIMT per H_cnt -- the bold diagonal of paper Table II.
SECURE_RAAIMT = {16384: 256, 8192: 128, 4096: 64, 2048: 32}


def secure_raaimt(hcnt: int) -> int:
    """The largest RAAIMT meeting the 1%/rank-year budget at ``hcnt``."""
    if hcnt <= 0:
        raise ValueError("hcnt must be positive")
    if hcnt in SECURE_RAAIMT:
        return SECURE_RAAIMT[hcnt]
    return max(1, hcnt // 64)


@dataclass(frozen=True)
class ShadowConfig:
    """Everything a SHADOW deployment chooses.

    ``raaimt`` is the RFM threshold (Table II's security analysis picks
    it per ``H_cnt``); ``rng_kind`` selects the per-chip RNG unit
    ("prince" CSPRNG by default, "lfsr" for the low-area option,
    "system" for fast simulation); the three booleans expose the
    microarchitecture ablations.
    """

    raaimt: int = 64
    rng_kind: str = "prince"
    rng_seed: int = 1
    pairing: bool = True
    isolation: bool = True
    incremental_refresh: bool = True
    circuit: CircuitTimings = field(default_factory=CircuitTimings)

    def __post_init__(self) -> None:
        if self.raaimt <= 0:
            raise ValueError("raaimt must be positive")
        if self.rng_kind not in ("prince", "lfsr", "system"):
            raise ValueError(f"unknown rng_kind {self.rng_kind!r}")

    @classmethod
    def for_hcnt(cls, hcnt: int, **overrides) -> "ShadowConfig":
        """The secure configuration for a threshold (Table II)."""
        return cls(raaimt=secure_raaimt(hcnt), **overrides)
