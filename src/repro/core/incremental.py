"""Incremental refresh (paper Section IV-C).

On every RFM, the target subarray additionally refreshes one row, round
robin over *DA* slots, driven by the ``incr_ptr`` stored in the
remapping row.  This bounds the effective attack window of any row in a
frequently-activated subarray to ``N_row`` RFM intervals -- typically
well under a millisecond under attack -- counterbalancing the fact that
SHADOW's shuffling space is a single subarray rather than a whole bank.
"""

from __future__ import annotations

from repro.core.remapping import RemappingRow


class IncrementalRefresh:
    """Round-robin DA refresh pointer of one subarray."""

    def __init__(self, remapping: RemappingRow, enabled: bool = True):
        self.remapping = remapping
        self.enabled = enabled
        self.refreshes = 0

    def step(self) -> int:
        """Refresh one DA slot; returns the slot (or -1 when disabled)."""
        if not self.enabled:
            return -1
        slot = self.remapping.advance_incr_ptr()
        self.refreshes += 1
        return slot

    def window_rfm_intervals(self) -> int:
        """RFM commands needed to sweep the whole subarray once."""
        return self.remapping.slots
