"""Subarray-pairing timing model (paper Sections V-B, VI, VII-B).

Subarray pairing places each subarray's remapping row in its *paired*
subarray so that a target-row ACT and the remapping-row access proceed
in different subarrays concurrently; the remapping row's restore and
precharge hide under the target activation.  The residual cost on every
ACT is ``tRD_RM``: remapping-row decode + isolated-bitline sensing + DA
traversal to the pair's local row decoder (Table III: 4.0 ns).

This module turns the circuit-level nanosecond quantities (Table III,
reproduced analytically by :mod:`repro.analysis.circuit`) into the cycle
charges the simulator uses:

* ``act_extra_cycles`` -- added to every ACT (tRCD' = tRCD + tRD_RM);
* ``rfm_work_cycles`` -- the RFM-hosted work: remapping-row read,
  incremental refresh, two row-copies (the remapping-row *write* is
  fully hidden under the copies, Section VI-B step 4).

Both ablations the paper implies are expressible: ``pairing=False``
serializes the remapping-row restore/precharge with the target ACT, and
``isolation=False`` charges full-bitline sensing for the remapping row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import TimingParams


@dataclass(frozen=True)
class CircuitTimings:
    """Nanosecond-level quantities from the SPICE analysis (Table III)."""

    trd_rm_ns: float = 4.0        # remapping-row read latency
    trcd_rm_ns: float = 2.3       # remapping-row sensing
    twr_rm_ns: float = 9.0        # remapping-row write recovery
    copy_writeback_factor: float = 0.55   # dest write = 0.55 x tRAS
    # Without the isolation transistor the remapping row senses like an
    # ordinary row (baseline tRCD in ns) and its read gains nothing.
    baseline_trcd_ns: float = 13.7
    baseline_taa_ns: float = 13.7


@dataclass(frozen=True)
class ShadowTimings:
    """Cycle-level charges for a given speed grade and option set."""

    timing: TimingParams
    circuit: CircuitTimings = CircuitTimings()
    pairing: bool = True
    isolation: bool = True
    incremental_refresh: bool = True

    def _trd_rm_ns(self) -> float:
        if self.isolation:
            return self.circuit.trd_rm_ns
        # Full-bitline sensing: decode (~0.33 ns) + baseline sensing +
        # the same short DA traversal (~1 ns + margin folded into tAA/3).
        return (self.circuit.trd_rm_ns - self.circuit.trcd_rm_ns
                + self.circuit.baseline_trcd_ns)

    @property
    def act_extra_cycles(self) -> int:
        """Cycles added to every ACT (the tRD_RM charge)."""
        extra_ns = self._trd_rm_ns()
        if not self.pairing:
            # Same-subarray remapping row: the target ACT additionally
            # waits for the remapping row's restore and precharge.
            extra_ns += self.timing.nanoseconds(
                self.timing.tRAS + self.timing.tRP)
        return self.timing.cycles(extra_ns)

    @property
    def trcd_prime_cycles(self) -> int:
        """tRCD' = tRCD + tRD_RM, in cycles."""
        return self.timing.tRCD + self.act_extra_cycles

    @property
    def trcd_prime_ns(self) -> float:
        return self.timing.nanoseconds(self.trcd_prime_cycles)

    @property
    def row_copy_cycles(self) -> int:
        """One row copy with precharge: sense (tRAS) + 0.55 tRAS + tRP."""
        t = self.timing
        sense = t.tRAS
        writeback = int(round(t.tRAS * self.circuit.copy_writeback_factor))
        return sense + writeback + t.tRP

    @property
    def incremental_refresh_cycles(self) -> int:
        if not self.incremental_refresh:
            return 0
        return self.timing.tRAS + self.timing.tRP

    @property
    def remapping_write_cycles(self) -> int:
        """Updating the remapping row in the pair (Section VI-B step 4)."""
        t = self.timing
        trcd_rm = t.cycles(self.circuit.trcd_rm_ns)
        twr_rm = t.cycles(self.circuit.twr_rm_ns)
        return trcd_rm + twr_rm + 3 * t.tCCD_L + t.tRP

    def rfm_work_cycles(self, copies: int = 2) -> int:
        """Total in-DRAM busy time of one SHADOW RFM.

        ``tRD_RM + (tRAS + tRP) + copies x (1.55 tRAS + tRP)``; the
        remapping-row write overlaps the copies when pairing is on, and
        is charged serially otherwise.
        """
        if copies < 0:
            raise ValueError("copies must be non-negative")
        total = self.timing.cycles(self._trd_rm_ns())
        total += self.incremental_refresh_cycles
        total += copies * self.row_copy_cycles
        if not self.pairing:
            total += self.remapping_write_cycles
        return total

    def rfm_work_ns(self, copies: int = 2) -> float:
        return self.timing.nanoseconds(self.rfm_work_cycles(copies))
