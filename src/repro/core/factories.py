"""SHADOW factory functions and their spec-registry entries.

These are the canonical ways to construct a SHADOW instance from plain
keyword parameters; the spec layer's scheme registry points here, so
``SchemeSpec("shadow", ...)`` -- from the CLI, the experiment driver or
a rehydrated JSON job -- always builds through the same code path.

Simulation runs use the fast seeded system RNG inside SHADOW; the
PRINCE CSPRNG is exercised by the security analyses and its own tests
(the choice is statistically irrelevant for performance).
"""

from __future__ import annotations

from repro.core.config import ShadowConfig, secure_raaimt
from repro.core.pairing import CircuitTimings
from repro.core.shadow import Shadow
from repro.spec.registry import SCHEMES


@SCHEMES.register("shadow")
def make_shadow(hcnt: int, seed: int = 1) -> Shadow:
    """SHADOW at the Table II secure RAAIMT for ``hcnt``."""
    return Shadow(ShadowConfig(raaimt=secure_raaimt(hcnt),
                               rng_kind="system", rng_seed=seed))


@SCHEMES.register("shadow-trcd")
def make_shadow_with_trcd(trcd: int, hcnt: int,
                          base_trcd: int = 19,
                          tck_ns: float = 0.75,
                          seed: int = 1) -> Shadow:
    """SHADOW with an overridden tRCD' (Figure 9 sensitivity).

    The circuit model's tRD_RM is adjusted so the charged ACT extra
    lands exactly at ``trcd - base_trcd`` cycles.  ``seed`` pins the
    shuffle RNG exactly as :func:`make_shadow` does, so Figure 9 runs
    are as reproducible as Figure 8's.
    """
    if trcd <= base_trcd:
        raise ValueError("tRCD' must exceed the base tRCD")
    extra_cycles = trcd - base_trcd
    # cycles() rounds up, so aim just inside the target cycle count.
    trd_rm_ns = (extra_cycles - 0.5) * tck_ns
    circuit = CircuitTimings(trd_rm_ns=trd_rm_ns)
    return Shadow(ShadowConfig(raaimt=secure_raaimt(hcnt),
                               rng_kind="system", rng_seed=seed,
                               circuit=circuit))


@SCHEMES.register("shadow-ablate")
def make_shadow_ablate(hcnt: int, rng_kind: str = "system",
                       pairing: bool = True,
                       isolation: bool = True) -> Shadow:
    """SHADOW with individual microarchitecture options toggled off."""
    return Shadow(ShadowConfig(raaimt=secure_raaimt(hcnt),
                               rng_kind=rng_kind, pairing=pairing,
                               isolation=isolation))


@SCHEMES.register("shadow-raw")
def make_shadow_raw(raaimt: int, rng_kind: str = "system",
                    seed: int = 1) -> Shadow:
    """SHADOW at an explicit RAAIMT (bench profiles, ad-hoc runs)."""
    return Shadow(ShadowConfig(raaimt=raaimt, rng_kind=rng_kind,
                               rng_seed=seed))


__all__ = [
    "make_shadow",
    "make_shadow_ablate",
    "make_shadow_raw",
    "make_shadow_with_trcd",
]
