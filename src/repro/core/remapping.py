"""The remapping row: SHADOW's in-DRAM PA-to-DA table (Section V-A).

One extra DRAM row per subarray stores, for each of the subarray's PA
offsets, the DA slot currently holding it, plus the empty-row pointer
and the incremental-refresh pointer.  At 512 rows per subarray this is
513 x 9 bits + 9 bits = under 578 bytes -- comfortably inside a 1 KB
row, as the paper notes.

The row is unreachable by the MC (reached only via the dedicated RRA
signal), so an attacker can never read or contaminate the mapping.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.utils.bits import bit_length_for


class RemappingRow:
    """The PA->DA mapping of one subarray.

    Invariant: ``pa_to_da`` together with ``empty_slot`` is always a
    bijection from {PA offsets} union {empty} onto the subarray's DA
    slots.  :meth:`check_invariants` asserts it; the shuffle choreography
    preserves it by construction.
    """

    def __init__(self, rows_per_subarray: int = 512):
        if rows_per_subarray <= 0:
            raise ValueError("rows_per_subarray must be positive")
        self.rows = rows_per_subarray
        self.slots = rows_per_subarray + 1   # ordinary rows + Row_empt
        # Factory mapping: PA offset i sits in DA slot i; the extra slot
        # is the empty row.
        self.pa_to_da: List[int] = list(range(rows_per_subarray))
        self.empty_slot: int = rows_per_subarray
        self.incr_ptr: int = 0

    # -- translation -------------------------------------------------------------

    def translate(self, pa_offset: int) -> int:
        """DA slot currently holding PA offset ``pa_offset``."""
        if not 0 <= pa_offset < self.rows:
            raise ValueError(f"PA offset {pa_offset} out of range")
        return self.pa_to_da[pa_offset]

    def occupant_of(self, da_slot: int):
        """PA offset stored in DA slot ``da_slot`` (None for the empty)."""
        if not 0 <= da_slot < self.slots:
            raise ValueError(f"DA slot {da_slot} out of range")
        if da_slot == self.empty_slot:
            return None
        return self.pa_to_da.index(da_slot)

    # -- the shuffle update (Section IV-B) ----------------------------------------

    def apply_shuffle(self, aggr_pa: int, rand_pa: int
                      ) -> List[Tuple[int, int]]:
        """Relocate ``aggr_pa`` and ``rand_pa``; returns the row copies.

        Copy 1 moves Row_rand into Row_empt; copy 2 moves Row_aggr into
        Row_rand's old slot, which leaves Row_aggr's old slot as the new
        empty row.  Returns ``[(src_slot, dst_slot), ...]`` in DA-slot
        coordinates for the fault model and the timing charge.

        When the two sampled rows coincide the operation degenerates to
        a single copy (the aggressor still moves, which is what matters
        for protection).
        """
        da_aggr = self.translate(aggr_pa)
        da_rand = self.translate(rand_pa)
        da_empt = self.empty_slot

        if aggr_pa == rand_pa:
            self.pa_to_da[aggr_pa] = da_empt
            self.empty_slot = da_aggr
            return [(da_aggr, da_empt)]

        copies = [(da_rand, da_empt), (da_aggr, da_rand)]
        self.pa_to_da[rand_pa] = da_empt
        self.pa_to_da[aggr_pa] = da_rand
        self.empty_slot = da_aggr
        return copies

    # -- bookkeeping -----------------------------------------------------------------

    def advance_incr_ptr(self) -> int:
        """Return the current incremental-refresh slot and advance it."""
        slot = self.incr_ptr
        self.incr_ptr = (self.incr_ptr + 1) % self.slots
        return slot

    def storage_bits(self) -> int:
        """Bits the remapping row must store (paper: 513 x 9 + 9)."""
        entry_bits = bit_length_for(self.slots)
        return (self.rows + 1) * entry_bits + entry_bits

    def check_invariants(self) -> None:
        """Assert the mapping is a bijection with exactly one empty slot."""
        claimed = set(self.pa_to_da)
        if len(claimed) != self.rows:
            raise AssertionError("two PA rows share one DA slot")
        if self.empty_slot in claimed:
            raise AssertionError("the empty slot is also claimed by a PA row")
        if claimed | {self.empty_slot} != set(range(self.slots)):
            raise AssertionError("mapping does not cover all DA slots")
        if not 0 <= self.incr_ptr < self.slots:
            raise AssertionError("incremental pointer out of range")
