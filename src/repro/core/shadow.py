"""SHADOW as a pluggable mitigation (ties Sections IV-VI together).

On the MC side SHADOW is invisible except for two things: every ACT
takes tRD_RM longer (the remapping-row read), and the standard DDR5
RAA/RFM machinery must be enabled.  Everything else happens inside the
device: per-bank controllers translate PA rows through remapping rows,
sample aggressors, and execute shuffle + incremental refresh inside each
RFM's tRFM window.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import ShadowConfig
from repro.core.controller import ShadowBankController
from repro.core.pairing import ShadowTimings
from repro.dram.device import BankAddress
from repro.mitigations.base import Mitigation, RfmOutcome
from repro.utils.rng import make_rng


class Shadow(Mitigation):
    """The SHADOW in-DRAM row-shuffle mitigation."""

    def __init__(self, config: Optional[ShadowConfig] = None):
        super().__init__()
        self.config = config or ShadowConfig()
        self._controllers: Dict[BankAddress, ShadowBankController] = {}
        self.timings: Optional[ShadowTimings] = None
        # The name doubles as a cache key for alone-run results, so it
        # must encode everything that changes SHADOW's timing behaviour.
        self.name = (f"SHADOW-r{self.config.raaimt}"
                     f"-t{self.config.circuit.trd_rm_ns:g}"
                     f"{'' if self.config.pairing else '-nopair'}"
                     f"{'' if self.config.isolation else '-noiso'}"
                     f"{'' if self.config.incremental_refresh else '-noir'}")

    @classmethod
    def for_hcnt(cls, hcnt: int, **overrides) -> "Shadow":
        """SHADOW at the secure RAAIMT for ``hcnt`` (Table II)."""
        return cls(ShadowConfig.for_hcnt(hcnt, **overrides))

    def bind(self, geometry, timing) -> None:
        super().bind(geometry, timing)
        if not geometry.layout.has_empty_row:
            raise ValueError(
                "SHADOW requires a subarray layout with the empty row"
            )
        self.timings = ShadowTimings(
            timing=timing,
            circuit=self.config.circuit,
            pairing=self.config.pairing,
            isolation=self.config.isolation,
            incremental_refresh=self.config.incremental_refresh,
        )

    # -- controller plumbing ------------------------------------------------------

    def controller(self, addr: BankAddress) -> ShadowBankController:
        ctrl = self._controllers.get(addr)
        if ctrl is None:
            # Each bank's controller consumes its own RNG stream; derive
            # a per-bank seed so streams are independent yet reproducible.
            seed = (self.config.rng_seed * 1_000_003
                    + addr.channel * 4096 + addr.rank * 64 + addr.bank)
            ctrl = ShadowBankController(
                self.geometry.layout,
                raaimt=self.config.raaimt,
                rng=make_rng(self.config.rng_kind, seed=seed),
                incremental_refresh=self.config.incremental_refresh,
            )
            self._controllers[addr] = ctrl
        return ctrl

    # -- Mitigation interface -------------------------------------------------------

    @property
    def act_extra_cycles(self) -> int:
        if self.timings is None:
            raise RuntimeError("SHADOW used before bind()")
        return self.timings.act_extra_cycles

    @property
    def uses_rfm(self) -> bool:
        return True

    @property
    def raaimt(self) -> int:
        return self.config.raaimt

    def translate(self, addr: BankAddress, pa_row: int) -> int:
        self._require_bound()
        return self.controller(addr).translate(pa_row)

    def translation_generation(self, addr: BankAddress) -> int:
        ctrl = self._controllers.get(addr)
        return ctrl.generation if ctrl is not None else 0

    def on_activate(self, addr: BankAddress, pa_row: int, da_row: int,
                    cycle: int):
        self.controller(addr).record_activation(pa_row)
        return None

    def on_rfm(self, addr: BankAddress, cycle: int) -> RfmOutcome:
        self._require_bound()
        refreshed, copies = self.controller(addr).run_rfm()
        # run_rfm bumps the bank's translation generation on every call
        # (a shuffle always executes), so always invalidate.
        self.notify_translation_changed(addr)
        if self._event_listeners:
            self.emit_event("shuffle", addr, cycle, {
                "copies": [[src, dst] for src, dst in copies],
                "refreshed_rows": list(refreshed),
            })
        duration = self.timings.rfm_work_cycles(copies=len(copies))
        return RfmOutcome(duration=duration, refreshed_rows=refreshed,
                          copies=copies)

    # -- reporting ---------------------------------------------------------------------

    def total_shuffles(self) -> int:
        return sum(c.shuffles for c in self._controllers.values())

    def total_incremental_refreshes(self) -> int:
        return sum(c.incremental_refreshes
                   for c in self._controllers.values())

    def check_invariants(self) -> None:
        for ctrl in self._controllers.values():
            ctrl.check_invariants()
