"""Row-shuffle planning: choosing Row_aggr and Row_rand (Section IV-B).

``Row_aggr`` is sampled uniformly from the rows activated since the
previous RFM (at most RAAIMT of them -- the SHADOW controller's history
buffer).  ``Row_rand`` is a uniformly random row of the same subarray.
No SRAM/CAM tracking table exists: randomness is the whole mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class ShuffleResult:
    """One planned shuffle: which subarray, which PA offsets."""

    subarray: int
    aggr_pa_offset: int
    rand_pa_offset: int


def plan_shuffle(recent_activations: Sequence[Tuple[int, int]],
                 rows_per_subarray: int,
                 subarrays_per_bank: int,
                 rng: RandomSource) -> Optional[ShuffleResult]:
    """Pick the shuffle targets for one RFM command.

    ``recent_activations`` holds ``(subarray, pa_offset)`` pairs for the
    ACTs since the last RFM.  If the bank saw no activations (an RFM can
    still arrive after a REF credited the counters), SHADOW shuffles a
    random row of a random subarray -- keeping the mapping churning is
    free protection.
    """
    if rows_per_subarray <= 0 or subarrays_per_bank <= 0:
        raise ValueError("geometry must be positive")
    if recent_activations:
        subarray, aggr = recent_activations[
            rng.randrange(len(recent_activations))]
    else:
        subarray = rng.randrange(subarrays_per_bank)
        aggr = rng.randrange(rows_per_subarray)
    rand = rng.randrange(rows_per_subarray)
    return ShuffleResult(subarray=subarray, aggr_pa_offset=aggr,
                         rand_pa_offset=rand)
