"""The per-bank SHADOW controller (paper Section V-C).

Per bank, the controller:

* tracks the rows activated since the last RFM (at most RAAIMT of them;
  the hardware needs only the history ring the MC-side RAA counter
  already bounds);
* buffers random numbers from the per-chip RNG unit so the shuffle never
  waits on generation latency;
* owns each subarray's remapping row (physically stored in the *paired*
  subarray, but logically per-subarray state);
* on RFM: plans and applies the shuffle, steps the incremental refresh,
  and reports every physical row touch.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.incremental import IncrementalRefresh
from repro.core.remapping import RemappingRow
from repro.core.shuffle import plan_shuffle
from repro.dram.subarray import SubarrayLayout
from repro.utils.rng import BufferedRng, RandomSource


class ShadowBankController:
    """SHADOW state and logic for one DRAM bank."""

    def __init__(self, layout: SubarrayLayout, raaimt: int,
                 rng: RandomSource, incremental_refresh: bool = True):
        if raaimt <= 0:
            raise ValueError("raaimt must be positive")
        if not layout.has_empty_row:
            raise ValueError("SHADOW requires the per-subarray empty row")
        self.layout = layout
        self.raaimt = raaimt
        # The controller pre-buffers random words (Section V-C).
        self.rng = BufferedRng(rng, word_width=32, depth=8)
        self._remapping: Dict[int, RemappingRow] = {}
        self._incremental: Dict[int, IncrementalRefresh] = {}
        self._incremental_enabled = incremental_refresh
        self._recent: List[Tuple[int, int]] = []   # (subarray, pa_offset)
        self.shuffles = 0
        self.incremental_refreshes = 0
        #: Bumped on every shuffle; lets the MC cache translations.
        self.generation = 0
        self._rows = layout.rows_per_subarray
        self._slots = layout.slots_per_subarray

    # -- per-subarray state ------------------------------------------------------

    def remapping_row(self, subarray: int) -> RemappingRow:
        row = self._remapping.get(subarray)
        if row is None:
            row = RemappingRow(self.layout.rows_per_subarray)
            self._remapping[subarray] = row
            self._incremental[subarray] = IncrementalRefresh(
                row, enabled=self._incremental_enabled)
        return row

    # -- the ACT path ---------------------------------------------------------------

    def translate(self, pa_row: int) -> int:
        """PA row -> bank-wide DA row via the remapping row."""
        subarray, offset = divmod(pa_row, self._rows)
        remap = self._remapping.get(subarray)
        if remap is None:
            remap = self.remapping_row(subarray)
        return subarray * self._slots + remap.pa_to_da[offset]

    def record_activation(self, pa_row: int) -> None:
        """Feed the aggressor-sampling history (bounded by RAAIMT)."""
        subarray = self.layout.subarray_of_pa(pa_row)
        offset = self.layout.pa_offset(pa_row)
        self._recent.append((subarray, offset))
        if len(self._recent) > self.raaimt:
            del self._recent[0]

    # -- the RFM path -----------------------------------------------------------------

    def run_rfm(self) -> Tuple[List[int], List[Tuple[int, int]]]:
        """Execute one RFM's worth of SHADOW work.

        Returns ``(refreshed_da_rows, copies)`` in bank-wide DA row
        coordinates; the history buffer is drained (a new RFM interval
        begins).
        """
        plan = plan_shuffle(
            self._recent,
            rows_per_subarray=self.layout.rows_per_subarray,
            subarrays_per_bank=self.layout.subarrays_per_bank,
            rng=self.rng,
        )
        self._recent.clear()

        subarray = plan.subarray
        remap = self.remapping_row(subarray)

        refreshed: List[int] = []
        slot = self._incremental[subarray].step()
        if slot >= 0:
            refreshed.append(self.layout.da_row(subarray, slot))
            self.incremental_refreshes += 1

        slot_copies = remap.apply_shuffle(plan.aggr_pa_offset,
                                          plan.rand_pa_offset)
        copies = [
            (self.layout.da_row(subarray, src),
             self.layout.da_row(subarray, dst))
            for src, dst in slot_copies
        ]
        self.shuffles += 1
        self.generation += 1
        return refreshed, copies

    # -- invariants ----------------------------------------------------------------------

    def check_invariants(self) -> None:
        for remap in self._remapping.values():
            remap.check_invariants()
