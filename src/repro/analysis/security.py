"""Closed-form RH bit-flip probability of SHADOW (Appendix XI).

The paper bounds SHADOW's failure probability with three adversarial
scenarios; each yields a per-attack-window probability which is then
expanded to a DDR5 rank (32 banks) over one year.  Table II reports the
maximum of the three per (RAAIMT, H_cnt).

All heavy arithmetic runs in log space (``math.lgamma``) so the 1e-43
tail of Table II is representable; probabilities below the float floor
are reported as 0, exactly as the paper prints them.

Scenario definitions (Section VII-A):

* **I** -- one aggressor per RFM interval, re-picked every interval.
  Buckets-and-balls: ``N_row`` balls (intervals, bounded by the
  incremental-refresh window) into ``N_row`` buckets (rows); a bucket
  needs ``M1 = ceil(hcnt / (RAAIMT * w))`` hits, each trial succeeding
  with ``p = W_sum / N_row``.  Equation 2.
* **II** -- ``N_aggr`` fixed aggressors in one subarray.  Recurrence
  (Equation 3) over the probability that some aggressor dodges the
  per-RFM shuffle ``M2`` times in a row before the incremental refresh
  sweeps the subarray (n runs to ``N_row``).
* **III** -- like II but across subarrays: no incremental-refresh bound;
  n runs to the number of RFM intervals in tREFW.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.dram.timing import DDR5_4800, TimingParams
from repro.rowhammer.model import blast_weight_sum

SECONDS_PER_YEAR = 365.25 * 24 * 3600

#: log(p) floor below which we report exactly 0, as Table II does.
_LOG10_FLOOR = -300.0


def _log_binomial(n: int, k: int) -> float:
    """ln C(n, k)."""
    if k < 0 or k > n:
        return -math.inf
    return (math.lgamma(n + 1) - math.lgamma(k + 1)
            - math.lgamma(n - k + 1))


def _expand(prob_single: float, trials: float) -> float:
    """1 - (1 - p)^trials, stable for tiny p and huge trial counts."""
    if prob_single <= 0.0:
        return 0.0
    if prob_single >= 1.0:
        return 1.0
    # log1p for accuracy; falls back to p * trials when p is tiny.
    log_keep = trials * math.log1p(-prob_single)
    if log_keep < -700:
        return 1.0
    return -math.expm1(log_keep)


@dataclass(frozen=True)
class SecurityParams:
    """Parameters of the Appendix XI analysis."""

    hcnt: int
    raaimt: int
    n_row: int = 512              # rows per subarray
    w_sum: float = 3.5            # Appendix XI default (blast radius 3)
    banks_per_rank: int = 32      # DDR5 rank
    timing: TimingParams = DDR5_4800
    years: float = 1.0

    def __post_init__(self) -> None:
        if self.hcnt <= 0 or self.raaimt <= 0 or self.n_row <= 0:
            raise ValueError("hcnt, raaimt and n_row must be positive")
        if self.w_sum <= 0:
            raise ValueError("w_sum must be positive")

    @classmethod
    def for_blast_radius(cls, hcnt: int, raaimt: int, radius: int,
                         **kw) -> "SecurityParams":
        return cls(hcnt=hcnt, raaimt=raaimt,
                   w_sum=blast_weight_sum(radius), **kw)

    # -- derived attack-rate quantities -----------------------------------------

    @property
    def act_interval_seconds(self) -> float:
        """Fastest legal ACT-to-ACT time for one bank (tRC)."""
        return self.timing.nanoseconds(self.timing.tRC) * 1e-9

    @property
    def rfm_interval_seconds(self) -> float:
        """Wall-clock length of one RFM interval under full-rate attack."""
        return self.raaimt * self.act_interval_seconds

    @property
    def incremental_window_seconds(self) -> float:
        """One incremental-refresh sweep: N_row RFM intervals."""
        return self.n_row * self.rfm_interval_seconds

    @property
    def trefw_seconds(self) -> float:
        return self.timing.nanoseconds(self.timing.tREFW) * 1e-9


class SecurityAnalysis:
    """Evaluates the three scenarios and the rank-year expansion."""

    def __init__(self, params: SecurityParams):
        self.params = params

    # -- Scenario I (Equation 2) ---------------------------------------------------

    def scenario1_single_window(self) -> float:
        """P1: bit-flip probability within one incremental window."""
        p = self.params
        m1 = math.ceil(p.hcnt / p.raaimt)
        if m1 > p.n_row:
            return 0.0   # cannot accumulate enough hits inside the window
        succ = p.w_sum / p.n_row
        if succ >= 1.0:
            return 1.0
        log_p1 = (math.log(p.n_row)
                  + _log_binomial(p.n_row, m1)
                  + m1 * math.log(succ)
                  + (p.n_row - m1) * math.log1p(-succ))
        if log_p1 / math.log(10) < _LOG10_FLOOR:
            return 0.0
        return min(1.0, math.exp(log_p1))

    # -- Scenarios II / III (Equation 3) ----------------------------------------------

    def _evasion_recurrence(self, n_aggr: int, m_required: int,
                            intervals: int) -> float:
        """P[n]: some fixed aggressor evades the shuffle m times in a row.

        ``P[n] = P[n-1] + (1 - P[n - m - 1]) * (1/N) * (1 - 1/N)^m``:
        a new success run can start at interval ``n - m`` only if the
        attack had not already succeeded before it.
        """
        if m_required <= 0:
            return 1.0
        if intervals < m_required:
            return 0.0
        q = 1.0 / n_aggr
        run = (1.0 - q) ** m_required * q if n_aggr > 1 else 0.0
        if n_aggr == 1:
            # The lone aggressor is shuffled at every RFM: it can never
            # evade even once (the history holds only that row).
            return 0.0
        history = [0.0] * (intervals + 1)
        for n in range(m_required, intervals + 1):
            prev_idx = n - m_required - 1
            prev = history[prev_idx] if prev_idx >= 0 else 0.0
            history[n] = history[n - 1] + (1.0 - prev) * run
        return min(1.0, history[intervals])

    def scenario2_single_window(self, n_aggr: Optional[int] = None) -> float:
        """P2: within one incremental window, maximized over N_aggr."""
        p = self.params
        if n_aggr is not None:
            return self._scenario2_for(n_aggr)
        best = 0.0
        n = 2
        while n <= p.raaimt:
            best = max(best, self._scenario2_for(n))
            n *= 2
        return best

    def _scenario2_for(self, n_aggr: int) -> float:
        p = self.params
        m = p.raaimt / n_aggr          # ACTs per aggressor per interval
        if m < 1:
            return 0.0
        # Appendix XI: M2 = Hcnt / m (the paper credits the attacker no
        # blast amplification here -- one of its stated simplifications).
        m2 = math.ceil(p.hcnt / m)
        # Incremental-refresh constraint: a victim must reach hcnt before
        # the sweep returns, i.e. within N_row intervals.
        if m2 > p.n_row:
            return 0.0
        prob = self._evasion_recurrence(n_aggr, m2, p.n_row)
        return min(1.0, n_aggr * prob)

    def scenario3_single_window(self, n_aggr: Optional[int] = None) -> float:
        """P3: within one tREFW, maximized over N_aggr (no incr. bound)."""
        p = self.params
        intervals = max(1, int(p.trefw_seconds / p.rfm_interval_seconds))
        if n_aggr is not None:
            return self._scenario3_for(n_aggr, intervals)
        best = 0.0
        n = 2
        while n <= p.raaimt:
            best = max(best, self._scenario3_for(n, intervals))
            n *= 2
        return best

    def _scenario3_for(self, n_aggr: int, intervals: int) -> float:
        p = self.params
        m = p.raaimt / n_aggr
        if m < 1:
            return 0.0
        m3 = math.ceil(p.hcnt / m)    # Appendix XI: M3 = Hcnt / m
        prob = self._evasion_recurrence(n_aggr, m3, intervals)
        return min(1.0, n_aggr * prob)

    # -- rank-year expansion -------------------------------------------------------------

    def _trials_per_rank_year(self, window_seconds: float) -> float:
        p = self.params
        seconds = SECONDS_PER_YEAR * p.years
        return seconds / window_seconds * p.banks_per_rank

    def rank_year(self) -> Dict[str, float]:
        """Per-scenario and overall bit-flip probability, rank-year scale."""
        p = self.params
        p1 = _expand(self.scenario1_single_window(),
                     self._trials_per_rank_year(p.incremental_window_seconds))
        p2 = _expand(self.scenario2_single_window(),
                     self._trials_per_rank_year(p.incremental_window_seconds))
        p3 = _expand(self.scenario3_single_window(),
                     self._trials_per_rank_year(p.trefw_seconds))
        return {
            "scenario1": p1,
            "scenario2": p2,
            "scenario3": p3,
            "overall": max(p1, p2, p3),
        }


def bit_flip_probability(hcnt: int, raaimt: int, **kw) -> float:
    """Table II entry: SHADOW's rank-year bit-flip probability."""
    analysis = SecurityAnalysis(SecurityParams(hcnt=hcnt, raaimt=raaimt, **kw))
    return analysis.rank_year()["overall"]


def is_secure(hcnt: int, raaimt: int, budget: float = 0.01, **kw) -> bool:
    """The paper's near-complete-protection criterion: <1% per rank-year."""
    return bit_flip_probability(hcnt, raaimt, **kw) < budget


# -- per-scheme security models ------------------------------------------------------
#
# One registry entry per analyzable scheme so the CLI (``security
# --scheme``), tests and sweeps evaluate any scheme's protection bound
# by name, with zero driver-level special cases.  Every model is a
# callable ``(hcnt, raaimt=None, **kw) -> dict`` whose result carries at
# least ``"overall"``: the rank-year bit-flip probability (for the
# paper's <1%/rank-year criterion).  ``raaimt=None`` derives the
# scheme's own secure default for ``hcnt``.

from repro.spec.registry import Registry  # noqa: E402  (registry is import-light)

SECURITY_MODELS = Registry("security-model",
                           providers=("repro.analysis.security",))


def sampled_trr_rank_year(hcnt: int, raaimt: int,
                          banks_per_rank: int = 32,
                          timing: TimingParams = DDR5_4800,
                          years: float = 1.0) -> Dict[str, float]:
    """Evasion bound for uniform-sampling RFM TRR (PARFM, MINT).

    Each RFM refreshes the neighbourhood of one row drawn uniformly from
    the window's RAAIMT activations, so an attacker devoting ``m`` of
    those to the aggressor is mitigated with probability ``m/RAAIMT``
    per window and needs ``ceil(hcnt/m)`` consecutive evasions (a single
    TRR resets the victim's accumulated charge, restarting the
    campaign; like Appendix XI's scenarios II/III the attacker is
    credited no blast amplification).  The bound maximizes the expanded
    rank-year probability over ``m``, since slower campaigns also get
    fewer rank-year trials.
    """
    if hcnt <= 0 or raaimt <= 0:
        raise ValueError("hcnt and raaimt must be positive")
    act_seconds = timing.nanoseconds(timing.tRC) * 1e-9
    best = {"overall": 0.0, "evasion_per_campaign": 0.0,
            "aggressor_acts_per_window": 1.0}
    for m in range(1, raaimt):
        windows = math.ceil(hcnt / m)
        log_single = windows * math.log1p(-m / raaimt)
        if log_single / math.log(10) < _LOG10_FLOOR:
            continue
        single = math.exp(log_single)
        campaign_seconds = windows * raaimt * act_seconds
        trials = (SECONDS_PER_YEAR * years / campaign_seconds
                  * banks_per_rank)
        expanded = _expand(single, trials)
        if expanded > best["overall"]:
            best = {"overall": expanded, "evasion_per_campaign": single,
                    "aggressor_acts_per_window": float(m)}
    return best


def resilient_trr_rank_year(hcnt: int, raaimt: int, entries: int,
                            w_sum: float = 3.5,
                            timing: TimingParams = DDR5_4800
                            ) -> Dict[str, float]:
    """Deterministic bound for DAPPER-style resilient hottest-first TRR.

    The tracker thresholds on the Misra-Gries lower bound, so its
    guarantee is deterministic, not probabilistic: over a refresh window
    of ``A = tREFW/tRC`` worst-case activations the spill (and with it
    the gap between any row's true count and its provable count) is at
    most ``A/entries``, and a row that becomes the provable hottest
    waits at most one RFM interval (RAAIMT activations) for its TRR.
    A victim's unmitigated weighted disturbance therefore never exceeds
    ``(A/entries + RAAIMT) * w_sum/2`` -- if that stays below ``hcnt``
    the flip probability is exactly 0, otherwise the bound offers no
    protection claim and we report 1 (the conservative Table II print).
    """
    if hcnt <= 0 or raaimt <= 0 or entries <= 0:
        raise ValueError("hcnt, raaimt and entries must be positive")
    acts_per_window = timing.tREFW // timing.tRC
    spill_bound = acts_per_window // entries
    unmitigated = spill_bound + raaimt
    effective_hcnt = hcnt / (w_sum / 2.0)
    margin = effective_hcnt - unmitigated
    return {
        "overall": 0.0 if margin > 0 else 1.0,
        "unmitigated_act_bound": float(unmitigated),
        "spill_bound": float(spill_bound),
        "effective_hcnt": float(effective_hcnt),
        "margin_acts": float(margin),
    }


@SECURITY_MODELS.register("shadow")
def shadow_security_model(hcnt: int, raaimt: Optional[int] = None,
                          **kw) -> Dict[str, float]:
    """Appendix XI (Table II): the three-scenario SHADOW analysis."""
    if raaimt is None:
        from repro.mitigations.parfm import shadow_raaimt
        raaimt = shadow_raaimt(hcnt)
    analysis = SecurityAnalysis(
        SecurityParams(hcnt=hcnt, raaimt=raaimt, **kw))
    return dict(analysis.rank_year(), raaimt=float(raaimt))


@SECURITY_MODELS.register("parfm")
def parfm_security_model(hcnt: int, raaimt: Optional[int] = None,
                         radius: int = 1, **kw) -> Dict[str, float]:
    """PARFM: uniform sampling from a RAAIMT-deep history."""
    if raaimt is None:
        from repro.mitigations.parfm import parfm_raaimt
        raaimt = parfm_raaimt(hcnt, radius)
    return dict(sampled_trr_rank_year(hcnt, raaimt, **kw),
                raaimt=float(raaimt))


@SECURITY_MODELS.register("mint")
def mint_security_model(hcnt: int, raaimt: Optional[int] = None,
                        radius: int = 1, **kw) -> Dict[str, float]:
    """MINT: identical per-window selection distribution to PARFM (a
    pre-committed uniform slot), hence the same evasion bound."""
    if raaimt is None:
        from repro.mitigations.mint import mint_raaimt
        raaimt = mint_raaimt(hcnt, radius)
    return dict(sampled_trr_rank_year(hcnt, raaimt, **kw),
                raaimt=float(raaimt))


@SECURITY_MODELS.register("dapper")
def dapper_security_model(hcnt: int, raaimt: Optional[int] = None,
                          entries: Optional[int] = None,
                          radius: int = 1, **kw) -> Dict[str, float]:
    """DAPPER: deterministic resilient-tracker bound."""
    from repro.mitigations.dapper import dapper_entries, dapper_raaimt
    if raaimt is None:
        raaimt = dapper_raaimt(hcnt, radius)
    if entries is None:
        entries = dapper_entries(hcnt)
    return dict(resilient_trr_rank_year(hcnt, raaimt, entries, **kw),
                raaimt=float(raaimt), entries=float(entries))
