"""Area and capacity overhead model (paper Section VII-D).

The paper synthesizes SHADOW's logic at 40 nm ASIC and derates by 10x
for the DRAM process (inferior drive current, fewer metal layers),
landing at 0.35 mm^2 per chip = 0.47% of a 16 Gb DDR5 die, plus 0.6%
capacity for the extra rows.

We rebuild that estimate from a component inventory: gate counts per
block x a 40 nm gate footprint, the (40/22)^2 shrink, the 10x DRAM
derate, and the row arithmetic for capacity.  The same machinery prices
the baselines' SRAM/CAM tables for the comparison the paper's
Section III-B makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: 16 Gb DDR5 die area, mm^2 (Kim et al., ISSCC 2019 [42]).
DDR5_DIE_MM2 = 74.5

#: NAND2-equivalent gate footprint at 40 nm, um^2 (std-cell datasheets).
GATE_UM2_40NM = 1.0

#: Process shrink factor from 40 nm ASIC to the 22 nm node.
SHRINK_40_TO_22 = (22.0 / 40.0) ** 2

#: DRAM process density penalty vs ASIC (paper: 10x less dense).
DRAM_DENSITY_PENALTY = 10.0

#: Gates per bit of storage structure (latch ~ 6, SRAM cell ~ 1.5 with
#: periphery amortized, CAM cell ~ 2.5).
GATES_PER_LATCH_BIT = 6.0
GATES_PER_SRAM_BIT = 1.5
GATES_PER_CAM_BIT = 2.5


@dataclass(frozen=True)
class AreaReport:
    """Per-component and total area of one configuration."""

    name: str
    components_mm2: Dict[str, float]

    @property
    def total_mm2(self) -> float:
        return sum(self.components_mm2.values())

    @property
    def fraction_of_die(self) -> float:
        return self.total_mm2 / DDR5_DIE_MM2


def _gates_to_mm2(gates: float) -> float:
    um2 = gates * GATE_UM2_40NM * SHRINK_40_TO_22 * DRAM_DENSITY_PENALTY
    return um2 * 1e-6


@dataclass
class AreaModel:
    """SHADOW's silicon cost for a given chip organisation."""

    banks_per_chip: int = 32
    subarrays_per_bank: int = 16
    rows_per_subarray: int = 512
    open_bitline: bool = True     # two remapping rows per subarray

    # Per-bank SHADOW controller inventory (paper Section VII-D).
    latch_bits_per_bank: int = 6 * 9 + 7        # six 9b row latches + 7b subarray index
    act_counter_bits: int = 10
    control_logic_gates: float = 900.0
    column_mux_gates: float = 200.0

    # Per-subarray inventory: one MUX + one DEMUX on the LIO path.
    per_subarray_gates: float = 110.0

    # Per-chip PRINCE RNG unit (round-unrolled datapath + buffers).
    rng_gates: float = 10000.0

    def controller_area_mm2(self) -> float:
        bits = self.latch_bits_per_bank + self.act_counter_bits
        gates = (bits * GATES_PER_LATCH_BIT + self.control_logic_gates
                 + self.column_mux_gates)
        return _gates_to_mm2(gates) * self.banks_per_chip

    def subarray_logic_area_mm2(self) -> float:
        count = self.banks_per_chip * self.subarrays_per_bank
        return _gates_to_mm2(self.per_subarray_gates) * count

    def rng_area_mm2(self) -> float:
        return _gates_to_mm2(self.rng_gates)

    def isolation_area_mm2(self) -> float:
        """Isolation transistors + support: ~0.8% of the array area is
        the figure the paper cites [61]; the array is ~55% of the die,
        and only the remapping rows' segment needs it (1/513 of rows),
        amortized across the supporting circuitry rows."""
        array_mm2 = DDR5_DIE_MM2 * 0.55
        return array_mm2 * 0.008 * (2.0 / self.rows_per_subarray) * 16

    def shadow_report(self) -> AreaReport:
        return AreaReport(
            name="SHADOW",
            components_mm2={
                "per-bank controllers": self.controller_area_mm2(),
                "per-subarray mux/demux": self.subarray_logic_area_mm2(),
                "PRINCE RNG unit": self.rng_area_mm2(),
                "isolation transistors": self.isolation_area_mm2(),
            },
        )

    # -- capacity ------------------------------------------------------------------

    def capacity_overhead(self) -> float:
        """Fraction of rows added: empty row + remapping row(s).

        Open-bitline subarrays need a remapping row on both sides
        (paper Section V-A), giving 3 extra rows per 512 = 0.59%,
        matching the paper's 0.6%.
        """
        extra = 1 + (2 if self.open_bitline else 1)
        return extra / self.rows_per_subarray

    # -- baseline comparisons ------------------------------------------------------------

    def sram_table_mm2(self, kilobytes: float, cam: bool = False) -> float:
        bits = kilobytes * 1024 * 8
        per_bit = GATES_PER_CAM_BIT if cam else GATES_PER_SRAM_BIT
        return _gates_to_mm2(bits * per_bit)

    def comparison(self, hcnt: int = 2048) -> Dict[str, float]:
        """Chip-level area (mm^2) of SHADOW vs tracker tables at ``hcnt``.

        Mithril-perf: 10 KB CAM/bank; Mithril-area: ~5 KB at 2K (paper);
        RRS: 43 KB SRAM/bank at the MC (paper Section III-B) -- charged
        here per-bank for a like-for-like silicon comparison.
        """
        per_bank = {
            "Mithril-perf": self.sram_table_mm2(10.0, cam=True),
            "Mithril-area": self.sram_table_mm2(
                min(5.0, 10.0 * hcnt / 4096), cam=True),
            "RRS (MC-side)": self.sram_table_mm2(43.0, cam=False),
        }
        out = {name: mm2 * self.banks_per_chip
               for name, mm2 in per_bank.items()}
        out["SHADOW"] = self.shadow_report().total_mm2
        return out
