"""Monte Carlo adversarial-pattern analysis (paper Section VII-A).

Runs the real SHADOW mechanism (remapping rows, per-RFM shuffle,
incremental refresh) against the Section VII-A adversaries and observes
the disturbance model directly -- no closed-form approximations.  This
validates the *shape* of the Appendix XI math (which conservatively
over-estimates flips) and supports scaled-down parameters so empirical
flip rates are measurable in reasonable time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.controller import ShadowBankController
from repro.dram.device import BankAddress
from repro.dram.subarray import SubarrayLayout
from repro.rowhammer.model import DisturbanceModel, HammerConfig
from repro.utils.rng import RandomSource, SystemRng

_ADDR = BankAddress(0, 0, 0)


@dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of one simulated attack campaign."""

    flipped: bool
    intervals_run: int
    total_acts: int
    first_flip_interval: Optional[int]
    max_disturbance: float


def simulate_attack(attacker, layout: SubarrayLayout, hcnt: int,
                    raaimt: int, intervals: int,
                    blast_radius: int = 3,
                    shadow_rng: Optional[RandomSource] = None,
                    incremental_refresh: bool = True,
                    shuffle: bool = True) -> MonteCarloResult:
    """Run ``intervals`` RFM intervals of an attack against SHADOW.

    ``attacker`` provides ``interval_rows(i, acts)`` (the Section VII-A
    adversaries).  ``shuffle=False`` and ``incremental_refresh=False``
    expose the ablations: a pure-RFM defence and shuffle-only SHADOW.
    """
    if intervals <= 0:
        raise ValueError("intervals must be positive")
    ctrl = ShadowBankController(
        layout, raaimt=raaimt, rng=shadow_rng or SystemRng(0xC0FFEE),
        incremental_refresh=incremental_refresh)
    model = DisturbanceModel(
        HammerConfig(hcnt=hcnt, blast_radius=blast_radius, layout=layout))

    first_flip = None
    for interval in range(intervals):
        for pa_row in attacker.interval_rows(interval, raaimt):
            da = ctrl.translate(pa_row)
            model.on_activate(_ADDR, da, cycle=interval)
            ctrl.record_activation(pa_row)
        if model.flipped and first_flip is None:
            first_flip = interval
            break
        if shuffle:
            refreshed, copies = ctrl.run_rfm()
            for row in refreshed:
                model.on_row_refresh(_ADDR, row, cycle=interval)
            for src, dst in copies:
                model.on_row_copy(_ADDR, src, dst, cycle=interval)
        ctrl.check_invariants()

    return MonteCarloResult(
        flipped=model.flipped,
        intervals_run=interval + 1,
        total_acts=model.total_acts,
        first_flip_interval=first_flip,
        max_disturbance=model.max_disturbance(),
    )


def simulate_tracker_defense(attacker, layout: SubarrayLayout,
                             mitigation, hcnt: int, intervals: int,
                             blast_radius: int = 3,
                             acts_per_interval: Optional[int] = None,
                             ref_every: Optional[int] = None
                             ) -> MonteCarloResult:
    """Run an attack campaign against a tracker-based mitigation.

    The MC-side counterpart of :func:`simulate_attack`: instead of
    SHADOW's in-DRAM shuffle, the defense is any
    :class:`~repro.mitigations.base.Mitigation` (typically a
    tracker x policy x scope composition) whose TRRs, swaps and
    RFM-hosted refreshes are applied to the same
    :class:`~repro.rowhammer.model.DisturbanceModel`.  Cycle time is
    abstracted to interval indices -- disturbance accounting only needs
    ordering, not wall-clock -- and ``ref_every`` (in intervals)
    emulates the tREFW boundary for ref-window-reset schemes.

    Two fidelity caveats follow from that abstraction: throttle-based
    schemes (BlockHammer) defend by *stretching wall-clock time* so
    ``H_cnt`` cannot be reached within tREFW, which an interval-indexed
    model cannot express -- evaluate those through the full controller;
    and the model's ``blast_radius`` should match the mitigation's TRR
    radius, else distance>radius victims accumulate disturbance no TRR
    clears.
    """
    if intervals <= 0:
        raise ValueError("intervals must be positive")
    from repro.dram.device import DramGeometry
    from repro.dram.timing import DDR5_4800

    geometry = DramGeometry(channels=1, ranks_per_channel=1,
                            banks_per_rank=1, layout=layout)
    mitigation.bind(geometry, DDR5_4800)
    model = DisturbanceModel(
        HammerConfig(hcnt=hcnt, blast_radius=blast_radius, layout=layout))

    acts = acts_per_interval
    if acts is None:
        acts = mitigation.raaimt if mitigation.uses_rfm else 64

    def _refresh(rows, cycle: int) -> None:
        for row in rows:
            model.on_row_refresh(_ADDR, row, cycle=cycle)

    first_flip = None
    for interval in range(intervals):
        for pa_row in attacker.interval_rows(interval, acts):
            da = mitigation.translate(_ADDR, pa_row)
            model.on_activate(_ADDR, da, cycle=interval)
            out = mitigation.on_activate(_ADDR, pa_row, da, interval)
            if out is not None:
                _refresh(out.trr_rows, interval)
                _refresh(out.restored_rows, interval)
        if model.flipped and first_flip is None:
            first_flip = interval
            break
        if mitigation.uses_rfm:
            rfm = mitigation.on_rfm(_ADDR, interval)
            _refresh(rfm.refreshed_rows, interval)
            for src, dst in rfm.copies:
                model.on_row_copy(_ADDR, src, dst, cycle=interval)
        if ref_every and (interval + 1) % ref_every == 0:
            model.on_refresh_range(_ADDR, 0, layout.mc_rows_per_bank - 1,
                                   cycle=interval)
            mitigation.on_ref(_ADDR, 0, layout.mc_rows_per_bank - 1,
                              interval)

    return MonteCarloResult(
        flipped=model.flipped,
        intervals_run=interval + 1,
        total_acts=model.total_acts,
        first_flip_interval=first_flip,
        max_disturbance=model.max_disturbance(),
    )


def flip_rate(make_attacker: Callable[[int], object],
              layout: SubarrayLayout, hcnt: int, raaimt: int,
              intervals: int, trials: int,
              blast_radius: int = 3, seed: int = 1,
              **kw) -> float:
    """Fraction of ``trials`` campaigns that produced a bit-flip."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    flips = 0
    for t in range(trials):
        attacker = make_attacker(seed * 7919 + t)
        result = simulate_attack(
            attacker, layout, hcnt, raaimt, intervals,
            blast_radius=blast_radius,
            shadow_rng=SystemRng(seed * 104729 + t), **kw)
        flips += int(result.flipped)
    return flips / trials
