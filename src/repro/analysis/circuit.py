"""Analytical circuit-timing model reproducing Table III.

The paper derives its timing numbers from SPICE simulation of a 55 nm
Rambus subarray scaled to 22 nm.  Every row of Table III follows from
three physical mechanisms, which this model captures analytically:

1. **Charge-sharing sensing.**  Sensing time grows with the total
   capacitance on the sensing node.  A cell sharing charge with a full
   bitline (C_bl ~ 85 fF for 512 cells) produces a small swing and a
   long amplify time; the isolation transistor leaves only a stub of
   bitline (>100x less capacitance), so the remapping row senses in a
   fraction of the time.  We use the first-order linear model
   ``t_sense = (C_cell + C_bl_effective) / g_eff`` with ``g_eff``
   calibrated so the baseline matches the published 13.7 ns tRCD.
2. **Wire RC for the DA traversal.**  The remapping data crosses half
   the bank (height + width halves, per the paper's conservative
   Samsung-DDR4 floorplan assumption); Elmore delay with datasheet
   wire parasitics gives ~1 ns.
3. **Write recovery split.**  tWR is part cell-limited (access
   transistor x cell cap) and part bitline-limited; only the bitline
   share shrinks with isolation, giving the paper's modest -24%.

The row-copy number additionally uses the paper's SPICE observation
that writing a fully-driven row buffer into a destination row takes
0.55x the restore time (small destination capacitance).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CircuitParams:
    """Physical quantities (22 nm-scaled DRAM, literature values)."""

    vdd: float = 1.1                     # DDR5 core voltage
    c_cell_ff: float = 20.0              # storage cell capacitance
    c_bitline_ff: float = 85.0           # full bitline (512 cells)
    isolation_cap_ratio: float = 110.0   # C_bl reduction (paper: >100x)

    # Decode path.
    t_global_decode_ns: float = 1.0
    t_local_decode_ns: float = 0.7
    t_rra_decode_ns: float = 0.33        # paper: RRA wordline raise

    # Published baselines the model calibrates against.
    baseline_trcd_ns: float = 13.7
    baseline_twr_ns: float = 11.8
    baseline_taa_ns: float = 13.7

    # Wire parasitics for the remapping-data traversal.
    wire_r_ohm_per_mm: float = 800.0
    wire_c_ff_per_mm: float = 200.0
    half_bank_mm: float = 3.0            # half height + half width
    repeater_overhead_ns: float = 0.35

    # Write recovery: share of tWR limited by the bitline RC.
    twr_bitline_share: float = 0.25

    # SPICE-level restore/precharge of the Rambus subarray (these are
    # circuit times, slightly longer than the JEDEC datasheet values the
    # simulator uses, because the datasheet adds no margin here).
    spice_restore_ns: float = 38.0
    spice_precharge_ns: float = 15.0
    copy_writeback_factor: float = 0.55  # destination write vs restore

    # Output MUX / latch margin on the remapping read path.
    t_mux_margin_ns: float = 0.3


@dataclass(frozen=True)
class TableIII:
    """The reproduced Table III (nanoseconds)."""

    trcd_prime_ns: float
    trcd_baseline_ns: float
    row_copy_ns: float
    trcd_rm_ns: float
    twr_rm_ns: float
    twr_baseline_ns: float
    trd_rm_ns: float

    @property
    def trcd_ratio(self) -> float:
        """tRCD' vs baseline (paper: +29%)."""
        return self.trcd_prime_ns / self.trcd_baseline_ns - 1.0

    @property
    def trcd_rm_ratio(self) -> float:
        """Remapping-row sensing vs baseline tRCD (paper: -83%)."""
        return self.trcd_rm_ns / self.trcd_baseline_ns - 1.0

    @property
    def twr_rm_ratio(self) -> float:
        """Remapping-row write recovery vs baseline tWR (paper: -24%)."""
        return self.twr_rm_ns / self.twr_baseline_ns - 1.0

    @property
    def trd_rm_ratio(self) -> float:
        """Remapping-row read vs baseline tRCD (paper: -71%)."""
        return self.trd_rm_ns / self.trcd_baseline_ns - 1.0

    def rows(self):
        """(definition, abbreviation, timing, baseline, ratio) tuples,
        mirroring the paper's table layout."""
        return [
            ("Row activation in SHADOW", "tRCD'", self.trcd_prime_ns,
             self.trcd_baseline_ns, self.trcd_ratio),
            ("Row copy w/ precharge", "-", self.row_copy_ns, None, None),
            ("Remapping-row sensing", "tRCD_RM", self.trcd_rm_ns,
             self.trcd_baseline_ns, self.trcd_rm_ratio),
            ("Remapping-row write recovery", "tWR_RM", self.twr_rm_ns,
             self.twr_baseline_ns, self.twr_rm_ratio),
            ("Remapping-row read latency", "tRD_RM", self.trd_rm_ns,
             self.trcd_baseline_ns, self.trd_rm_ratio),
        ]


class CircuitModel:
    """Derives every Table III row from :class:`CircuitParams`."""

    def __init__(self, params: CircuitParams = CircuitParams()):
        self.params = params
        p = params
        # Calibrate the sensing conductance so a full-bitline activation
        # reproduces the published baseline tRCD.
        sense_budget = (p.baseline_trcd_ns - p.t_global_decode_ns
                        - p.t_local_decode_ns)
        if sense_budget <= 0:
            raise ValueError("decode times exceed the baseline tRCD")
        self._g_eff = (p.c_cell_ff + p.c_bitline_ff) / sense_budget

    # -- sensing ------------------------------------------------------------------

    def sense_time_ns(self, isolated: bool) -> float:
        """Charge-sharing + amplification time for one activation."""
        p = self.params
        c_bl = p.c_bitline_ff / (p.isolation_cap_ratio if isolated else 1.0)
        return (p.c_cell_ff + c_bl) / self._g_eff

    def charge_sharing_swing_mv(self, isolated: bool) -> float:
        """The initial bitline swing dV = Vdd/2 * C_cell/(C_cell + C_bl)."""
        p = self.params
        c_bl = p.c_bitline_ff / (p.isolation_cap_ratio if isolated else 1.0)
        return 1000.0 * (p.vdd / 2.0) * p.c_cell_ff / (p.c_cell_ff + c_bl)

    # -- wires --------------------------------------------------------------------

    def da_traversal_ns(self) -> float:
        """Elmore delay of the remapping-data wire to the paired subarray."""
        p = self.params
        r_total = p.wire_r_ohm_per_mm * p.half_bank_mm
        c_total = p.wire_c_ff_per_mm * 1e-15 * p.half_bank_mm
        elmore_s = 0.5 * r_total * c_total
        return elmore_s * 1e9 + p.repeater_overhead_ns

    # -- Table III rows ---------------------------------------------------------------

    def trcd_rm_ns(self) -> float:
        """Remapping-row sensing: decode via RRA + isolated sensing."""
        return self.params.t_rra_decode_ns + self.sense_time_ns(isolated=True)

    def trd_rm_ns(self) -> float:
        """Full remapping-row read: sensing + DA traversal + mux."""
        return (self.trcd_rm_ns() + self.da_traversal_ns()
                + self.params.t_mux_margin_ns)

    def twr_rm_ns(self) -> float:
        """Write recovery: only the bitline-limited share shrinks."""
        p = self.params
        cell_part = p.baseline_twr_ns * (1.0 - p.twr_bitline_share)
        bl_part = (p.baseline_twr_ns * p.twr_bitline_share
                   / p.isolation_cap_ratio)
        return cell_part + bl_part

    def trcd_prime_ns(self) -> float:
        return self.params.baseline_trcd_ns + self.trd_rm_ns()

    def row_copy_ns(self) -> float:
        """Sense + restore the source, write the destination, precharge."""
        p = self.params
        return (p.spice_restore_ns * (1.0 + p.copy_writeback_factor)
                + p.spice_precharge_ns)

    def table3(self) -> TableIII:
        p = self.params
        return TableIII(
            trcd_prime_ns=round(self.trcd_prime_ns(), 1),
            trcd_baseline_ns=p.baseline_trcd_ns,
            row_copy_ns=round(self.row_copy_ns(), 1),
            trcd_rm_ns=round(self.trcd_rm_ns(), 1),
            twr_rm_ns=round(self.twr_rm_ns(), 1),
            twr_baseline_ns=p.baseline_twr_ns,
            trd_rm_ns=round(self.trd_rm_ns(), 1),
        )

    def shuffle_total_ns(self, tras_ns: float, trp_ns: float) -> float:
        """Section VII-B revised total: tRD_RM + tRAS + tRP + 3.1 tRAS
        + 2 tRP for a given speed grade."""
        f = self.params.copy_writeback_factor
        return (self.trd_rm_ns() + tras_ns + trp_ns
                + 2 * (1 + f) * tras_ns + 2 * trp_ns)
