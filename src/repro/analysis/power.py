"""IDD-based DRAM power model + system-level roll-up (Figure 12).

Follows the Micron DDR4 system-power-calculator methodology [56]: each
command class contributes ``V x I x t`` energy above background, scaled
by measured command counts.  SHADOW adds two terms:

* a remapping-row access on *every* ACT -- tiny per event (the isolated
  bitline has ~1% of the switched capacitance) but, as the paper notes,
  it dominates SHADOW's power because it scales with all traffic;
* RFM work: 3.1 activate-equivalents of row copies plus one
  incremental-refresh ACT/PRE pair.

The system roll-up adds the CPU at TDP (the paper's i9-7940X, 165 W)
so the relative numbers land on the same scale as Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dram.timing import DDR4_2666, TimingParams


@dataclass(frozen=True)
class IddValues:
    """Datasheet current values for one device (mA)."""

    vdd: float = 1.2
    idd0: float = 55.0     # one-bank ACT-PRE
    idd2n: float = 35.0    # precharge standby (background)
    idd3n: float = 45.0    # active standby
    idd4r: float = 150.0   # read burst
    idd4w: float = 140.0   # write burst
    idd5b: float = 190.0   # burst refresh


#: Fraction of a full activation's energy that one remapping-row access
#: costs.  The isolation transistor shrinks the *bitline* switching by
#: >100x, but the wordline drive, the sense amplifier bias and the DA
#: transfer across half the bank remain, leaving roughly a tenth of an
#: ordinary activation.
REMAP_ACCESS_ENERGY_FRACTION = 0.10

#: Activate-equivalents of one SHADOW RFM's row-shuffle work: two row
#: copies at 1.55x tRAS each, normalized to ACT-PRE energy.
SHUFFLE_ACT_EQUIVALENTS = 3.1


@dataclass
class CommandCounts:
    """What a workload did during ``elapsed_cycles``."""

    acts: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0          # per-rank REF commands (counted per device)
    rfms: int = 0
    elapsed_cycles: int = 0

    @classmethod
    def from_stats(cls, stats, refs: int, elapsed_cycles: int
                   ) -> "CommandCounts":
        """Build from a :class:`repro.dram.bank.BankStats` aggregate."""
        return cls(acts=stats.acts, reads=stats.reads, writes=stats.writes,
                   refreshes=refs, rfms=stats.rfms,
                   elapsed_cycles=elapsed_cycles)


@dataclass(frozen=True)
class PowerReport:
    """Per-component device power (watts)."""

    background_w: float
    activate_w: float
    read_w: float
    write_w: float
    refresh_w: float
    rfm_w: float
    remap_access_w: float

    @property
    def total_w(self) -> float:
        return (self.background_w + self.activate_w + self.read_w
                + self.write_w + self.refresh_w + self.rfm_w
                + self.remap_access_w)

    def breakdown(self) -> Dict[str, float]:
        return {
            "background": self.background_w,
            "activate": self.activate_w,
            "read": self.read_w,
            "write": self.write_w,
            "refresh": self.refresh_w,
            "rfm": self.rfm_w,
            "remap-access": self.remap_access_w,
        }


class PowerModel:
    """Device-level power from command counts."""

    def __init__(self, timing: TimingParams = DDR4_2666,
                 idd: IddValues = IddValues(),
                 shadow: bool = False,
                 rfm_act_equivalents: float = SHUFFLE_ACT_EQUIVALENTS):
        self.timing = timing
        self.idd = idd
        self.shadow = shadow
        self.rfm_act_equivalents = rfm_act_equivalents

    # -- per-event energies (joules) ----------------------------------------------

    def energy_act_j(self) -> float:
        t = self.timing.nanoseconds(self.timing.tRC) * 1e-9
        return self.idd.vdd * (self.idd.idd0 - self.idd.idd2n) * 1e-3 * t

    def energy_rd_j(self) -> float:
        t = self.timing.nanoseconds(self.timing.tBL) * 1e-9
        return self.idd.vdd * (self.idd.idd4r - self.idd.idd3n) * 1e-3 * t

    def energy_wr_j(self) -> float:
        t = self.timing.nanoseconds(self.timing.tBL) * 1e-9
        return self.idd.vdd * (self.idd.idd4w - self.idd.idd3n) * 1e-3 * t

    def energy_ref_j(self) -> float:
        t = self.timing.nanoseconds(self.timing.tRFC) * 1e-9
        return self.idd.vdd * (self.idd.idd5b - self.idd.idd2n) * 1e-3 * t

    def energy_rfm_j(self) -> float:
        """Row-shuffle copies + incremental refresh (SHADOW) or the
        TRR refreshes of an RFM-hosted baseline (~2 ACT equivalents)."""
        eq = self.rfm_act_equivalents if self.shadow else 2.0
        extra_ir = 1.0 if self.shadow else 0.0
        return (eq + extra_ir) * self.energy_act_j()

    def energy_remap_access_j(self) -> float:
        return REMAP_ACCESS_ENERGY_FRACTION * self.energy_act_j()

    # -- roll-up ---------------------------------------------------------------------

    def report(self, counts: CommandCounts) -> PowerReport:
        if counts.elapsed_cycles <= 0:
            raise ValueError("elapsed_cycles must be positive")
        seconds = self.timing.nanoseconds(counts.elapsed_cycles) * 1e-9
        background = self.idd.vdd * self.idd.idd2n * 1e-3

        def rate(events: int, energy: float) -> float:
            return events * energy / seconds

        remap_w = 0.0
        if self.shadow:
            remap_w = rate(counts.acts, self.energy_remap_access_j())
        return PowerReport(
            background_w=background,
            activate_w=rate(counts.acts, self.energy_act_j()),
            read_w=rate(counts.reads, self.energy_rd_j()),
            write_w=rate(counts.writes, self.energy_wr_j()),
            refresh_w=rate(counts.refreshes, self.energy_ref_j()),
            rfm_w=rate(counts.rfms, self.energy_rfm_j()),
            remap_access_w=remap_w,
        )


class SystemPowerModel:
    """CPU TDP + all DRAM devices: the Figure 12 denominator.

    ``counts`` are system-wide command totals: background power is per
    device (times the device count), while each command's dynamic
    energy is charged exactly once.
    """

    def __init__(self, cpu_tdp_w: float = 165.0, devices: int = 32,
                 timing: TimingParams = DDR4_2666):
        if cpu_tdp_w <= 0 or devices <= 0:
            raise ValueError("cpu_tdp_w and devices must be positive")
        self.cpu_tdp_w = cpu_tdp_w
        self.devices = devices
        self.timing = timing

    def system_power_w(self, counts: CommandCounts,
                       shadow: bool = False) -> float:
        model = PowerModel(self.timing, shadow=shadow)
        report = model.report(counts)
        dynamic = report.total_w - report.background_w
        return (self.cpu_tdp_w + self.devices * report.background_w
                + dynamic)

    def relative_power(self, counts_mitigated: CommandCounts,
                       counts_baseline: CommandCounts,
                       shadow: bool = True) -> float:
        """Figure 12's y-axis: mitigated system power / baseline's."""
        return (self.system_power_w(counts_mitigated, shadow=shadow)
                / self.system_power_w(counts_baseline, shadow=False))
