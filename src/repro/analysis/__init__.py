"""Analytical models: security (Table II), circuit timing (Table III),
area and power (Section VII-D, Figure 12), plus the Monte Carlo
adversarial-pattern harness validating the closed forms.
"""

from repro.analysis.area import AreaModel, AreaReport
from repro.analysis.circuit import CircuitModel, TableIII
from repro.analysis.montecarlo import MonteCarloResult, simulate_attack
from repro.analysis.power import PowerModel, PowerReport, SystemPowerModel
from repro.analysis.security import (
    SecurityAnalysis,
    SecurityParams,
    bit_flip_probability,
)

__all__ = [
    "AreaModel",
    "AreaReport",
    "CircuitModel",
    "MonteCarloResult",
    "PowerModel",
    "PowerReport",
    "SecurityAnalysis",
    "SecurityParams",
    "SystemPowerModel",
    "TableIII",
    "bit_flip_probability",
    "simulate_attack",
]
