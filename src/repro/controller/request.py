"""Memory request objects flowing from cores to the controller."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.controller.address import MemoryLocation

_ids = itertools.count()


@dataclass(slots=True)
class MemoryRequest:
    """One cache-line memory request.

    Lifecycle: created by a core model at ``arrival`` -> enqueued at the MC
    -> column command issued (``issued``) -> data burst done (``completed``).
    Writes are posted: the issuing thread does not wait on them, but the
    request still occupies DRAM resources.
    """

    location: MemoryLocation
    is_write: bool
    thread_id: int
    arrival: int
    request_id: int = field(default_factory=lambda: next(_ids))
    issued: Optional[int] = None
    completed: Optional[int] = None
    #: Cached PA-to-DA translation, valid while the mitigation's
    #: translation generation for this bank equals ``da_generation``
    #: (shuffles/swaps bump the generation and invalidate the cache).
    da_row: Optional[int] = None
    da_generation: int = -1

    @property
    def is_read(self) -> bool:
        return not self.is_write

    @property
    def latency(self) -> Optional[int]:
        if self.completed is None:
            return None
        return self.completed - self.arrival

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "WR" if self.is_write else "RD"
        return (f"<{kind} #{self.request_id} t{self.thread_id} "
                f"{self.location} @{self.arrival}>")
