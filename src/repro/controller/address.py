"""Physical-address to DRAM-coordinate mapping.

The MC splits the physical address into a (channel, rank, bank, row,
column) tuple (paper Section II-B).  The default bit order interleaves
channels and banks below the row bits -- the standard layout that spreads
a streaming access pattern across banks for parallelism:

    |  row  |  rank  |  bank  |  column  |  channel  |  line offset |
      high                                                      low

An optional XOR fold of row bits into the bank index models the
bank-hashing many controllers apply.  The mapping is bijective and
exactly invertible, which the tests verify property-style.

Note the distinction the paper leans on: this PA-side mapping is *static*
and reverse-engineerable by an attacker (Section II-B); SHADOW's PA-to-DA
remapping inside the device is what changes dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.device import BankAddress, DramGeometry
from repro.utils.bits import bit_length_for


@dataclass(frozen=True, order=True)
class MemoryLocation:
    """A fully-decoded memory coordinate."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    @property
    def bank_address(self) -> BankAddress:
        return BankAddress(self.channel, self.rank, self.bank)


class AddressMapping:
    """Bijective PA <-> (channel, rank, bank, row, column) mapping."""

    LINE_BYTES = 64

    def __init__(self, geometry: DramGeometry, xor_bank_hash: bool = True):
        self.geometry = geometry
        self.xor_bank_hash = xor_bank_hash
        self._col_bits = bit_length_for(geometry.columns_per_row)
        self._ch_bits = bit_length_for(geometry.channels)
        self._bank_bits = bit_length_for(geometry.banks_per_rank)
        self._rank_bits = bit_length_for(geometry.ranks_per_channel)
        self._row_bits = bit_length_for(geometry.rows_per_bank)
        self._offset_bits = bit_length_for(self.LINE_BYTES)
        for name, count in (
            ("columns_per_row", geometry.columns_per_row),
            ("channels", geometry.channels),
            ("banks_per_rank", geometry.banks_per_rank),
            ("ranks_per_channel", geometry.ranks_per_channel),
            ("rows_per_bank", geometry.rows_per_bank),
        ):
            if count & (count - 1):
                raise ValueError(
                    f"{name} must be a power of two for bit-sliced mapping "
                    f"(got {count})"
                )

    @property
    def address_bits(self) -> int:
        """Total physical-address bits covered by the mapping."""
        return (self._offset_bits + self._col_bits + self._ch_bits
                + self._bank_bits + self._rank_bits + self._row_bits)

    @property
    def capacity_bytes(self) -> int:
        return 1 << self.address_bits

    def _bank_hash(self, bank: int, row: int) -> int:
        """XOR-fold the low row bits into the bank index (involutive)."""
        if not self.xor_bank_hash or self._bank_bits == 0:
            return bank
        return bank ^ (row & ((1 << self._bank_bits) - 1))

    def decode(self, physical_address: int) -> MemoryLocation:
        """Split a byte-granular physical address into DRAM coordinates."""
        if not 0 <= physical_address < self.capacity_bytes:
            raise ValueError(
                f"physical address {physical_address:#x} outside the "
                f"{self.capacity_bytes:#x}-byte mapped range"
            )
        value = physical_address >> self._offset_bits
        channel = value & ((1 << self._ch_bits) - 1)
        value >>= self._ch_bits
        column = value & ((1 << self._col_bits) - 1)
        value >>= self._col_bits
        bank = value & ((1 << self._bank_bits) - 1)
        value >>= self._bank_bits
        rank = value & ((1 << self._rank_bits) - 1)
        value >>= self._rank_bits
        row = value
        bank = self._bank_hash(bank, row)
        return MemoryLocation(channel, rank, bank, row, column)

    def encode(self, location: MemoryLocation) -> int:
        """Inverse of :meth:`decode` (returns a line-aligned address)."""
        g = self.geometry
        if not (0 <= location.channel < g.channels
                and 0 <= location.rank < g.ranks_per_channel
                and 0 <= location.bank < g.banks_per_rank
                and 0 <= location.row < g.rows_per_bank
                and 0 <= location.column < g.columns_per_row):
            raise ValueError(f"location {location} outside geometry")
        bank = self._bank_hash(location.bank, location.row)  # involutive
        value = location.row
        value = (value << self._rank_bits) | location.rank
        value = (value << self._bank_bits) | bank
        value = (value << self._col_bits) | location.column
        value = (value << self._ch_bits) | location.channel
        return value << self._offset_bits

    def row_address(self, channel: int, rank: int, bank: int, row: int,
                    column: int = 0) -> int:
        """Convenience: encode a coordinate given as scalars."""
        return self.encode(MemoryLocation(channel, rank, bank, row, column))
