"""RAA counters for the DDR5 RFM interface (paper Table I, Section II-A).

A small per-bank activation counter (the RAA count) lives at the MC.
When it reaches RAAIMT the MC owes the device an RFM command; issuing
the RFM subtracts RAAIMT, and an all-bank REF also credits the counter
(the device gets mitigation slack during tRFC anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.dram.device import BankAddress


@dataclass
class RaaCounterBank:
    """The full set of per-bank RAA counters.

    ``due_count`` tracks how many banks currently sit at or above RAAIMT
    so the scheduler can skip the per-bank scan entirely in the common
    no-RFM-owed case (:meth:`banks_needing_rfm` is only called when
    ``due_count`` is non-zero).  Iteration order of the scan is the
    counters dict's insertion order, which the scheduler's tie-breaking
    depends on -- do not replace the dict with a set of due banks.
    """

    raaimt: int
    ref_credit: int = None  # decrement applied per REF; defaults to RAAIMT
    counters: Dict[BankAddress, int] = field(default_factory=dict)
    rfms_issued: int = 0
    due_count: int = 0

    def __post_init__(self) -> None:
        if self.raaimt <= 0:
            raise ValueError("RAAIMT must be positive")
        if self.ref_credit is None:
            self.ref_credit = self.raaimt
        if self.ref_credit < 0:
            raise ValueError("ref_credit must be non-negative")
        self.due_count = sum(1 for c in self.counters.values()
                             if c >= self.raaimt)

    def count(self, addr: BankAddress) -> int:
        return self.counters.get(addr, 0)

    def on_activate(self, addr: BankAddress) -> bool:
        """Count one ACT; returns True when this ACT crossed RAAIMT
        (the bank just became RFM-due -- security telemetry hooks on
        exactly these crossings)."""
        value = self.counters.get(addr, 0) + 1
        self.counters[addr] = value
        if value == self.raaimt:
            self.due_count += 1
            return True
        return False

    def rfm_needed(self, addr: BankAddress) -> bool:
        return self.count(addr) >= self.raaimt

    def banks_needing_rfm(self):
        return [a for a, c in self.counters.items() if c >= self.raaimt]

    def on_rfm(self, addr: BankAddress) -> None:
        if not self.rfm_needed(addr):
            raise RuntimeError(
                "RFM issued to a bank whose RAA count is below RAAIMT"
            )
        value = self.counters[addr] - self.raaimt
        self.counters[addr] = value
        if value < self.raaimt:
            self.due_count -= 1
        self.rfms_issued += 1

    def on_ref(self, addr: BankAddress) -> None:
        old = self.counters.get(addr, 0)
        new = max(0, old - self.ref_credit)
        self.counters[addr] = new
        if old >= self.raaimt > new:
            self.due_count -= 1
