"""RAA counters for the DDR5 RFM interface (paper Table I, Section II-A).

A small per-bank activation counter (the RAA count) lives at the MC.
When it reaches RAAIMT the MC owes the device an RFM command; issuing
the RFM subtracts RAAIMT, and an all-bank REF also credits the counter
(the device gets mitigation slack during tRFC anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.dram.device import BankAddress


@dataclass
class RaaCounterBank:
    """The full set of per-bank RAA counters."""

    raaimt: int
    ref_credit: int = None  # decrement applied per REF; defaults to RAAIMT
    counters: Dict[BankAddress, int] = field(default_factory=dict)
    rfms_issued: int = 0

    def __post_init__(self) -> None:
        if self.raaimt <= 0:
            raise ValueError("RAAIMT must be positive")
        if self.ref_credit is None:
            self.ref_credit = self.raaimt
        if self.ref_credit < 0:
            raise ValueError("ref_credit must be non-negative")

    def count(self, addr: BankAddress) -> int:
        return self.counters.get(addr, 0)

    def on_activate(self, addr: BankAddress) -> None:
        self.counters[addr] = self.count(addr) + 1

    def rfm_needed(self, addr: BankAddress) -> bool:
        return self.count(addr) >= self.raaimt

    def banks_needing_rfm(self):
        return [a for a, c in self.counters.items() if c >= self.raaimt]

    def on_rfm(self, addr: BankAddress) -> None:
        if not self.rfm_needed(addr):
            raise RuntimeError(
                "RFM issued to a bank whose RAA count is below RAAIMT"
            )
        self.counters[addr] = self.count(addr) - self.raaimt
        self.rfms_issued += 1

    def on_ref(self, addr: BankAddress) -> None:
        self.counters[addr] = max(0, self.count(addr) - self.ref_credit)
