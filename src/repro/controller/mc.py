"""The memory controller: FR-FCFS scheduling, refresh, and RFM issue.

The controller drives the :class:`~repro.dram.device.DramDevice` at
command granularity.  Scheduling policy:

* open-page row policy with FR-FCFS: ready column commands (row hits)
  beat row commands; ties break by request age;
* auto-refresh: once a rank's REF is due, demand to that rank is
  suspended, open banks are drained with PREs, and REF issues (tRFC);
* RFM: when a bank's RAA counter reaches RAAIMT (and the active
  mitigation uses the RFM interface), new ACTs to that bank are
  suspended, the bank is precharged, and an RFM command issues; the
  mitigation performs its in-DRAM work inside the tRFM window;
* mitigation effects (extra ACT latency, throttling delays, TRR
  refreshes, channel-blocking swaps, PA-to-DA translation) are applied
  exactly where the hardware would apply them.

The controller reports every row-touching action (ACT in DA space,
refresh ranges, TRR refreshes, row copies) to an optional Row Hammer
observer so security and performance experiments share one source of
truth.

Implementation note: this is the simulator's hottest code, and it is
*incremental*.  Each :class:`_BankCtx` caches the bank-local part of its
best scheduling candidate (which op, which request, the earliest cycle
the bank itself allows) plus a ``{da_row -> requests}`` hit index, and a
dirty bit; executing a command on a bank, enqueueing to it, an
all-bank REF, or a mitigation translation-generation bump (reported via
:meth:`~repro.mitigations.base.Mitigation.register_translation_listener`)
invalidates only the affected contexts.  Candidate selection then
reduces over cached entries, applying only the shared-resource
constraints (rank ACT/column spacing, command/data bus floors,
throttling) that legitimately change between any two commands.  The
command stream this produces is cycle-identical to a full per-iteration
recompute -- ``tests/test_scheduler_equivalence.py`` pins that against
recorded seed-controller golden runs.

Requests carry a cached DA translation tagged with the mitigation's
per-bank *translation generation*; the hit index is re-keyed in one
batch when a generation bump is observed, so the (potentially dynamic)
PA-to-DA mapping is re-evaluated once per shuffle/swap rather than once
per scan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.controller.request import MemoryRequest
from repro.controller.rfm import RaaCounterBank
from repro.dram.commands import CommandType
from repro.dram.device import BankAddress, DramDevice
from repro.dram.rank import _FAR_PAST
from repro.dram.refresh import RefreshTracker
from repro.mitigations.base import Mitigation

_PRIO_REFRESH = 0
_PRIO_RFM = 1
_PRIO_HIT = 2
_PRIO_DEMAND = 3

# Candidate opcodes.
_OP_PRE = 0
_OP_ACT = 1
_OP_COL = 2
_OP_REF = 3
_OP_RFM = 4


@dataclass
class McConfig:
    """Controller policy knobs."""

    enable_refresh: bool = True
    #: Count an RFM's internal work beyond tRFM (mitigations whose work
    #: exceeds the provisioned window extend the blocking time).
    strict_rfm_window: bool = False


class _BankCtx:
    """Pre-resolved per-bank scheduling state (hot-path bundle).

    ``cand`` holds the cached *bank-local* candidate core
    ``(bank_earliest, prio, age, op, payload, data_lead)`` -- everything
    that only changes when this bank's own state changes.  ``dirty``
    forces a recompute; it is set by enqueue, by every command executed
    on the bank (including rank-wide REF), and by translation-generation
    bumps.  ``hit_index`` maps each DA row to the FIFO of queued
    requests targeting it, valid for translation generation
    ``index_gen``; retired requests leave the index eagerly and the
    ``queue`` deque lazily.
    """

    __slots__ = ("addr", "bank", "queue", "rank", "rank_key", "rank_index",
                 "group", "pending", "in_active", "dirty", "cand",
                 "hit_index", "index_gen", "track", "chan", "channel")

    def __init__(self, addr: BankAddress, bank, rank, rank_key, group):
        self.addr = addr
        self.channel = addr.channel
        self.chan = None  # ChannelTiming, attached by the controller
        self.bank = bank
        self.queue: Deque[MemoryRequest] = deque()
        self.rank = rank
        self.rank_key = rank_key
        self.rank_index = addr.rank
        self.group = group
        self.pending = 0
        self.in_active = False
        self.dirty = True
        self.cand = None
        self.hit_index: Dict[int, Deque[MemoryRequest]] = {}
        self.index_gen = 0
        self.track = 0  # trace lane id (assigned by the controller)


class MemoryController:
    """One controller managing every channel of a :class:`DramDevice`."""

    def __init__(self, device: DramDevice, mitigation: Mitigation,
                 observer=None, config: Optional[McConfig] = None,
                 obs=None):
        self.device = device
        self.mitigation = mitigation
        self.observer = observer
        self.config = config or McConfig()
        self.obs = obs

        geometry = device.geometry
        mitigation.bind(geometry, device.timing)

        self._timing = device.timing
        self._tCL = device.timing.tCL
        self._tCWL = device.timing.tCWL
        self._tBL = device.timing.tBL
        # Rank-spacing constants, hoisted for the candidate reduce loop.
        self._tRRD_L = device.timing.tRRD_L
        self._tRRD_S = device.timing.tRRD_S
        self._tCCD_L = device.timing.tCCD_L
        self._tCCD_S = device.timing.tCCD_S
        self._tFAW = device.timing.tFAW
        self._act_extra = mitigation.act_extra_cycles
        self._chans = device.channels
        #: Only pay the per-candidate ``before_activate`` call when the
        #: mitigation actually overrides it (the base hook is identity).
        self._throttles = (type(mitigation).before_activate
                           is not Mitigation.before_activate)
        #: Skip the per-bank ``on_ref`` fan-out when the mitigation does
        #: not override the base no-op hook.
        self._observes_ref = (type(mitigation).on_ref
                              is not Mitigation.on_ref)
        #: Static schemes keep the factory PA-to-DA mapping and a
        #: constant generation, so ``enqueue`` may serve translations
        #: from a shared per-row cache instead of re-deriving the
        #: identity layout arithmetic per request.
        self._static_translate = (
            type(mitigation).translate is Mitigation.translate
            and type(mitigation).translation_generation
            is Mitigation.translation_generation)
        self._ident_rows: Dict[int, int] = {}
        #: Pay the per-ACT ``on_activate`` call (and outcome handling)
        #: only when the mitigation overrides the base no-op.
        self._acts_hook = (type(mitigation).on_activate
                           is not Mitigation.on_activate)
        #: Same zero-overhead gate for the fault-injection observer: the
        #: per-ACT notification is a pre-bound method (or None), so runs
        #: without an observer pay one ``is not None`` test and nothing
        #: else -- the golden command streams stay byte-identical.
        self._observer_activate = (
            self.observer.on_activate if self.observer is not None else None)

        scale = mitigation.refresh_interval_scale
        trefi = max(1, int(device.timing.tREFI * scale))
        refresh_timing = device.timing.with_refresh_interval(trefi)
        self.refresh: Dict[Tuple[int, int], RefreshTracker] = {}
        if self.config.enable_refresh:
            self.refresh = {
                (ch, rk): RefreshTracker(
                    refresh_timing, geometry.layout.da_rows_per_bank)
                for ch in range(geometry.channels)
                for rk in range(geometry.ranks_per_channel)
            }
        self._chan_refresh: Dict[int, List[Tuple[int, RefreshTracker]]] = {
            ch: [] for ch in range(geometry.channels)}
        for (ch, rk), tracker in self.refresh.items():
            self._chan_refresh[ch].append((rk, tracker))

        self.raa: Optional[RaaCounterBank] = None
        if mitigation.uses_rfm:
            self.raa = RaaCounterBank(mitigation.raaimt)

        # Per-bank contexts, grouped per channel and per rank.
        self._ctx: Dict[BankAddress, _BankCtx] = {}
        self._rank_banks: Dict[Tuple[int, int], List[_BankCtx]] = {}
        for addr in geometry.bank_addresses():
            rank_key = (addr.channel, addr.rank)
            ctx = _BankCtx(addr, device.banks[addr],
                           device.ranks[rank_key], rank_key,
                           geometry.bank_group_of(addr.bank))
            ctx.chan = device.channels[addr.channel]
            self._ctx[addr] = ctx
            self._rank_banks.setdefault(rank_key, []).append(ctx)
        # Flat dense index for the enqueue hot path: avoids building a
        # BankAddress and hashing it per request.
        self._nranks = geometry.ranks_per_channel
        self._nbanks = geometry.banks_per_rank
        self._ctx_flat: List[Optional[_BankCtx]] = \
            [None] * (geometry.channels * self._nranks * self._nbanks)
        for addr, ctx in self._ctx.items():
            self._ctx_flat[(addr.channel * self._nranks + addr.rank)
                           * self._nbanks + addr.bank] = ctx
        self._active: Dict[int, List[_BankCtx]] = {
            ch: [] for ch in range(geometry.channels)}
        self._pending_chan: List[int] = [0] * geometry.channels
        self._pending_total = 0

        # Cross-drain candidate memo.  When a drain ends because its
        # best candidate lies beyond ``until``, the candidate is saved
        # per channel together with the channel's *refresh horizon* (the
        # earliest not-yet-due REF tick observed while computing it).
        # The next drain of the channel may reuse the saved candidate
        # verbatim iff (a) nothing was enqueued to the channel since
        # (enqueue clears the slot), (b) no translation generation on
        # the channel bumped (the listener clears the slot), and (c) its
        # new ``until`` still precedes the refresh horizon, so no REF
        # obligation entered the candidate set.  All other scheduler
        # state a candidate depends on only changes while the channel
        # itself executes commands, which always ends in a fresh
        # recompute.  Throttling mitigations are excluded wholesale:
        # ``before_activate`` is stateful per *evaluation* (BlockHammer
        # counts throttle probes), so skipping a re-evaluation would
        # change mitigation-visible counters.
        self._cand_reuse = not self._throttles
        self._saved_cand: List = [None] * geometry.channels
        self._saved_horizon: List[Optional[int]] = \
            [None] * geometry.channels
        self._scan_horizon: List[Optional[int]] = \
            [None] * geometry.channels

        mitigation.register_translation_listener(self._translation_changed)

        self.enqueued = 0
        self.retired = 0

        # Scheduler-health counters.  The rare-path ones (recomputes,
        # invalidations, reindexes, RAA crossings) are plain ints
        # maintained unconditionally, like ``enqueued``/``retired``; the
        # per-scan ones (evals/hits) are only accumulated when metrics
        # are enabled, so the candidate reduce loop pays at most one
        # pre-hoisted bool check per bank when observability is off.
        self.cand_evals = 0
        self.cand_hits = 0
        self.cand_recomputes = 0
        self.translation_invalidations = 0
        self.reindexes = 0
        self.raa_crossings = 0

        # Observability wiring.  ``_trace``/``_metrics`` stay None when
        # observability is off; every emission site below gates on that.
        # ``_tbuf`` is the sink's shared tuple buffer: the per-command
        # sites append to it directly (no bound-method call per event).
        self._metrics = None
        self._trace = None
        self._tbuf = None
        self._count = False
        self._lat_hist = None
        self._rank_tracks: Dict[Tuple[int, int], int] = {}
        if obs is not None:
            self._metrics = obs.metrics
            self._trace = obs.sink
            if self._trace is not None:
                self._tbuf = self._trace.raw_buffer
            self._count = self._metrics is not None
            if self._count:
                self._lat_hist = self._metrics.histogram(
                    "request.latency_cycles")
            mitigation.register_event_listener(self._mitigation_event)
        # Trace lane layout: pid = channel; tid 1.. for banks in
        # (rank, bank) order, then one lane per rank for REF spans.
        bpr = geometry.banks_per_rank
        rank_base = 1 + geometry.ranks_per_channel * bpr
        for addr, ctx in self._ctx.items():
            ctx.track = 1 + addr.rank * bpr + addr.bank
        for ch in range(geometry.channels):
            for rk in range(geometry.ranks_per_channel):
                self._rank_tracks[(ch, rk)] = rank_base + rk
        trace = self._trace
        if trace is not None:
            for ch in range(geometry.channels):
                trace.declare_process(ch, f"channel {ch}")
                for rk in range(geometry.ranks_per_channel):
                    trace.declare_track(ch, self._rank_tracks[(ch, rk)],
                                        f"rk{rk} REF")
            for addr, ctx in self._ctx.items():
                trace.declare_track(addr.channel, ctx.track,
                                    f"rk{addr.rank}.bk{addr.bank}")
        # Span durations for trace events, hoisted once.
        timing = self._timing
        self._dur_act = timing.tRCD + self._act_extra
        self._dur_rd = timing.tCL + timing.tBL
        self._dur_wr = timing.tCWL + timing.tBL
        self._dur_pre = timing.tRP
        self._dur_ref = timing.tRFC

    # -- request intake ----------------------------------------------------------

    @property
    def queues(self) -> Dict[BankAddress, Deque[MemoryRequest]]:
        """Per-bank queues (read-only view for tests/tools)."""
        result = {}
        for addr, ctx in self._ctx.items():
            if ctx.pending:
                result[addr] = deque(r for r in ctx.queue
                                     if r.completed is None)
        return result

    def enqueue(self, request: MemoryRequest) -> None:
        location = request.location
        channel = location.channel
        rank = location.rank
        bank = location.bank
        ctx = None
        if 0 <= channel and 0 <= rank < self._nranks \
                and 0 <= bank < self._nbanks:
            try:
                ctx = self._ctx_flat[(channel * self._nranks + rank)
                                     * self._nbanks + bank]
            except IndexError:
                ctx = None
        if ctx is None:
            raise ValueError(
                f"bank address {location.bank_address} outside geometry")
        if not ctx.in_active:
            self._active[channel].append(ctx)
            ctx.in_active = True
        row = location.row
        if self._static_translate:
            # Identity mapping, constant generation 0: cache per PA row.
            generation = 0
            da_row = self._ident_rows.get(row)
            if da_row is None:
                self._ident_rows[row] = da_row = \
                    self.mitigation.translate(ctx.addr, row)
        else:
            mitigation = self.mitigation
            addr = ctx.addr
            generation = mitigation.translation_generation(addr)
            if generation != ctx.index_gen:
                self._reindex(ctx, generation)
            da_row = mitigation.translate(addr, row)
        request.da_row = da_row
        request.da_generation = generation
        ctx.queue.append(request)
        rows = ctx.hit_index.get(da_row)
        if rows is None:
            ctx.hit_index[da_row] = rows = deque()
        rows.append(request)
        ctx.pending += 1
        ctx.dirty = True
        self._saved_cand[channel] = None
        self._pending_chan[channel] += 1
        self._pending_total += 1
        self.enqueued += 1

    def pending_requests(self, channel: Optional[int] = None) -> int:
        """Outstanding request count, O(1) via maintained counters."""
        if channel is None:
            return self._pending_total
        return self._pending_chan[channel]

    # -- main scheduling entry point ------------------------------------------------

    def drain(self, channel: int, until: int
              ) -> Tuple[List[Tuple[MemoryRequest, int]], Optional[int]]:
        """Issue every command on ``channel`` whose time is <= ``until``.

        Returns the requests whose data completed (with completion
        cycles) and the next cycle the channel should be re-examined
        (``None`` if it is fully idle with no future obligations).
        """
        completions: List[Tuple[MemoryRequest, int]] = []
        best_candidate = self._best_candidate
        # Reuse the candidate memoized by the previous drain of this
        # channel when it is still valid (see the memo's field comment);
        # otherwise fall through to a fresh scan.
        best = self._saved_cand[channel]
        if best is not None:
            self._saved_cand[channel] = None
            horizon = self._saved_horizon[channel]
            if horizon is not None and until >= horizon:
                best = None
        if best is None:
            best = best_candidate(channel, until)
        while True:
            if best is None:
                # A None scan means no due REF either, so the channel's
                # next obligation is exactly the refresh horizon the
                # scan just recorded (``_idle_wake`` recomputes the
                # same value; kept as the documented spec).
                return completions, self._scan_horizon[channel]
            earliest = best[0]
            if earliest > until:
                if self._cand_reuse:
                    self._saved_cand[channel] = best
                    self._saved_horizon[channel] = \
                        self._scan_horizon[channel]
                return completions, earliest
            # _execute inlined: dispatch once per issued command.
            cycle, _prio, _age, op, target, payload = best
            if op == _OP_PRE:
                chan = target.chan
                if cycle < chan._cmd_free_at or \
                        cycle < chan._blocked_until:
                    raise RuntimeError("DRAM protocol violation: "
                                       "command bus busy at issue time")
                chan._cmd_free_at = cycle + 1
                chan.commands_issued += 1
                target.bank.issue_pre(cycle)
                target.dirty = True
                if payload == "conflict":
                    target.bank.stats.row_conflicts += 1
                if self._tbuf is not None:
                    self._tbuf.append(("X", target.channel, target.track,
                                       "PRE", "cmd", cycle, self._dur_pre,
                                       None))
            elif op == _OP_COL:
                completions.append(self._do_column(cycle, target, payload))
                self.retired += 1
            elif op == _OP_ACT:
                self._do_act(cycle, target, payload)
            elif op == _OP_REF:
                self._do_ref(cycle, target)
            else:
                self._do_rfm(cycle, target)
            best = best_candidate(channel, until)

    # -- candidate generation ---------------------------------------------------------

    def _best_candidate(self, channel: int, until: int):
        """Find the (earliest, prio, age, op, target, payload) candidate.

        Refresh and RFM obligations are derived fresh (they are rare and
        depend on ``until``); demand candidates reduce over the per-bank
        caches, applying only the shared rank/channel constraints here.
        Iteration order (refresh ranks, RAA-counter insertion order,
        active-bank insertion order) matches the original full-recompute
        scheduler exactly so tie-breaks are preserved.
        """
        if not self._pending_chan[channel]:
            raa = self.raa
            if raa is None or not raa.due_count:
                # Idle channel: demand candidates need a pending request
                # and RFM needs a due counter, so only REF work remains.
                # If no tracker is due either, the scan result is known
                # (None) and only the horizon needs recording -- this is
                # the tail scan of every drain that empties a channel.
                horizon = None
                for _rank_index, tracker in self._chan_refresh[channel]:
                    due = tracker.next_due
                    if due <= until:
                        break
                    if horizon is None or due < horizon:
                        horizon = due
                else:
                    self._scan_horizon[channel] = horizon
                    return None

        chan = None
        best_e = best_p = best_a = -1
        best_op = best_target = best_payload = None
        have_best = False

        refresh_draining_ranks = None
        horizon = None
        for rank_index, tracker in self._chan_refresh[channel]:
            due = tracker.next_due
            if due > until:
                # Earliest not-yet-due REF tick: the validity horizon
                # for reusing this scan's winner across drains.
                if horizon is None or due < horizon:
                    horizon = due
                continue
            if refresh_draining_ranks is None:
                refresh_draining_ranks = set()
                chan = self._chans[channel]
            refresh_draining_ranks.add(rank_index)
            cand = self._refresh_candidate(channel, rank_index, tracker,
                                           chan)
            if cand is None:
                continue
            e, p, a = cand[0], cand[1], cand[2]
            if (not have_best) or (e, p, a) < (best_e, best_p, best_a):
                have_best = True
                best_e, best_p, best_a = e, p, a
                best_op, best_target, best_payload = cand[3], cand[4], cand[5]
        self._scan_horizon[channel] = horizon

        rfm_banks = None
        raa = self.raa
        if raa is not None and raa.due_count:
            if chan is None:
                chan = self._chans[channel]
            for addr in raa.banks_needing_rfm():
                if addr.channel != channel:
                    continue
                if refresh_draining_ranks and \
                        addr.rank in refresh_draining_ranks:
                    continue  # refresh first; REF also credits RAA
                ctx = self._ctx[addr]
                if rfm_banks is None:
                    rfm_banks = set()
                rfm_banks.add(addr)
                cand = self._rfm_candidate(ctx, chan)
                e, p, a = cand[0], cand[1], cand[2]
                if (not have_best) or (e, p, a) < (best_e, best_p, best_a):
                    have_best = True
                    best_e, best_p, best_a = e, p, a
                    best_op, best_target, best_payload = \
                        cand[3], cand[4], cand[5]

        active = self._active[channel]
        if active:
            # Per-candidate constants, hoisted only when there is a
            # candidate loop to run (idle scans skip all of this).
            if chan is None:
                chan = self._chans[channel]
            cmd_floor, data_floor = chan.floors()
            throttles = self._throttles
            mitigation = self.mitigation
            tRRD_L, tRRD_S = self._tRRD_L, self._tRRD_S
            tCCD_L, tCCD_S = self._tCCD_L, self._tCCD_S
            tFAW = self._tFAW
            removals = False
            count = self._count
            # evals/hits are derived after the loop: evals = len(active)
            # - skipped, hits = evals - recomputes the loop triggered.
            # The skip paths are rare, so the hot per-candidate path
            # carries no counting instructions at all.
            skipped = 0
            pre_recomputes = self.cand_recomputes if count else 0
            for ctx in active:
                if not ctx.pending:
                    removals = True
                    ctx.in_active = False
                    skipped += 1
                    continue
                if refresh_draining_ranks is not None and \
                        ctx.rank_index in refresh_draining_ranks:
                    skipped += 1
                    continue
                if rfm_banks is not None and ctx.addr in rfm_banks:
                    skipped += 1
                    continue
                cand = self._recompute(ctx) if ctx.dirty else ctx.cand
                e, prio, age, op, payload, lead = cand
                # The rank spacing checks below are
                # RankTiming.earliest_act / .earliest_column inlined --
                # this loop runs once per active bank per scheduling
                # decision.
                rank = ctx.rank
                group = ctx.group
                if op == _OP_COL:
                    spacing = tCCD_L if group == rank._last_col_group \
                        else tCCD_S
                    floor = rank._last_col + spacing
                    if e < floor:
                        e = floor
                    if e < cmd_floor:
                        e = cmd_floor
                    data_start = data_floor - lead
                    if e < data_start:
                        e = data_start
                elif op == _OP_ACT:
                    spacing = tRRD_L if group == rank._last_act_group \
                        else tRRD_S
                    floor = rank._last_act + spacing
                    if e < floor:
                        e = floor
                    floor = rank._group_last_act.get(group, _FAR_PAST) \
                        + tRRD_L
                    if e < floor:
                        e = floor
                    act_times = rank._act_times
                    if len(act_times) == 4:
                        floor = act_times[0] + tFAW
                        if e < floor:
                            e = floor
                    if e < cmd_floor:
                        e = cmd_floor
                    if throttles:
                        e = mitigation.before_activate(
                            ctx.addr, payload.location.row, e)
                else:  # _OP_PRE (row conflict)
                    if e < cmd_floor:
                        e = cmd_floor
                if (not have_best) or e < best_e or (
                        e == best_e and (prio < best_p or
                                         (prio == best_p
                                          and age < best_a))):
                    have_best = True
                    best_e, best_p, best_a = e, prio, age
                    best_op, best_target, best_payload = op, ctx, payload
            if count:
                evals = len(active) - skipped
                self.cand_evals += evals
                self.cand_hits += \
                    evals - (self.cand_recomputes - pre_recomputes)
            if removals:
                self._active[channel] = [c for c in active if c.pending]
        if not have_best:
            return None
        return (best_e, best_p, best_a, best_op, best_target, best_payload)

    def _recompute(self, ctx: _BankCtx):
        """Rebuild a bank's cached candidate core after invalidation."""
        # Bank earliest-issue times are inlined as field maxes (see
        # Bank.earliest_issue) -- this is the single hottest helper.
        self.cand_recomputes += 1
        bank = ctx.bank
        open_row = bank.open_row
        busy = bank.busy_until
        if open_row is not None:
            if not self._static_translate:
                generation = self.mitigation.translation_generation(ctx.addr)
                if generation != ctx.index_gen:
                    self._reindex(ctx, generation)
            rows = ctx.hit_index.get(open_row)
            if rows:
                hit = rows[0]
                if hit.is_write:
                    e = bank.next_wr
                    cand = (e if e > busy else busy, _PRIO_HIT,
                            hit.arrival, _OP_COL, hit, self._tCWL)
                else:
                    e = bank.next_rd
                    cand = (e if e > busy else busy, _PRIO_HIT,
                            hit.arrival, _OP_COL, hit, self._tCL)
            else:
                queue = ctx.queue
                while queue[0].completed is not None:
                    queue.popleft()
                e = bank.next_pre
                cand = (e if e > busy else busy, _PRIO_DEMAND,
                        queue[0].arrival, _OP_PRE, "conflict", 0)
        else:
            queue = ctx.queue
            while queue[0].completed is not None:
                queue.popleft()
            head = queue[0]
            e = bank.next_act
            cand = (e if e > busy else busy, _PRIO_DEMAND,
                    head.arrival, _OP_ACT, head, 0)
        ctx.cand = cand
        ctx.dirty = False
        return cand

    def _reindex(self, ctx: _BankCtx, generation: int) -> None:
        """Re-translate every live queued request in one batch.

        Runs once per observed translation-generation bump (instead of
        once per candidate scan); also compacts lazily-retired requests
        out of the queue.
        """
        self.reindexes += 1
        addr = ctx.addr
        translate = self.mitigation.translate
        live: Deque[MemoryRequest] = deque()
        index: Dict[int, Deque[MemoryRequest]] = {}
        for request in ctx.queue:
            if request.completed is not None:
                continue
            da_row = translate(addr, request.location.row)
            request.da_row = da_row
            request.da_generation = generation
            rows = index.get(da_row)
            if rows is None:
                index[da_row] = rows = deque()
            rows.append(request)
            live.append(request)
        ctx.queue = live
        ctx.hit_index = index
        ctx.index_gen = generation

    def _translation_changed(self, addr: BankAddress) -> None:
        """Mitigation hook: a bank's PA-to-DA mapping changed."""
        self.translation_invalidations += 1
        ctx = self._ctx.get(addr)
        if ctx is not None:
            ctx.dirty = True
            self._saved_cand[addr.channel] = None

    def _mitigation_event(self, kind: str, addr: BankAddress, cycle: int,
                          payload: Dict) -> None:
        """Mitigation event hook (shuffles, swaps, throttles).

        Registered only when observability is on, so mitigations with no
        listeners never build event payloads.
        """
        metrics = self._metrics
        if metrics is not None:
            metrics.counter(f"mitigation.{kind}").inc()
        trace = self._trace
        if trace is not None:
            ctx = self._ctx.get(addr)
            track = ctx.track if ctx is not None else 0
            trace.instant(addr.channel, track, kind, "mitigation",
                          cycle, payload)

    def _refresh_candidate(self, channel: int, rank_index: int,
                           tracker: RefreshTracker, chan):
        # One pass over the rank's banks: if any bank is open, the best
        # (earliest, first-in-bank-order) PRE drains it; otherwise the
        # REF issues once every bank is REF-ready and the tracker is
        # due.  Bank earliest-issue is inlined (max of the exposed
        # next_*/busy_until fields) -- this runs for every candidate
        # scan of a refresh-draining rank.
        banks = self._rank_banks[(channel, rank_index)]
        best = None
        ref_earliest = tracker.next_due
        # chan.earliest_command(e) == max(e, cmd_floor), hoisted.
        cmd_floor = chan._cmd_free_at
        if cmd_floor < chan._blocked_until:
            cmd_floor = chan._blocked_until
        for ctx in banks:
            bank = ctx.bank
            if bank.open_row is not None:
                e = bank.next_pre
                if e < bank.busy_until:
                    e = bank.busy_until
                if e < cmd_floor:
                    e = cmd_floor
                if best is None or e < best[0]:
                    best = (e, _PRIO_REFRESH, 0, _OP_PRE, ctx, None)
            else:
                e = bank.next_act  # REF needs the bank precharged
                if e < bank.busy_until:
                    e = bank.busy_until
                if e > ref_earliest:
                    ref_earliest = e
        if best is not None:
            return best
        earliest = ref_earliest if ref_earliest > cmd_floor else cmd_floor
        return (earliest, _PRIO_REFRESH, 0, _OP_REF,
                (channel, rank_index, tracker, banks, chan), None)

    def _rfm_candidate(self, ctx: _BankCtx, chan):
        bank = ctx.bank
        if bank.open_row is not None:
            earliest = chan.earliest_command(
                bank.earliest_issue(CommandType.PRE, 0))
            return (earliest, _PRIO_RFM, 0, _OP_PRE, ctx, None)
        earliest = chan.earliest_command(
            bank.earliest_issue(CommandType.RFM, 0))
        return (earliest, _PRIO_RFM, 0, _OP_RFM, ctx, None)

    # -- candidate execution ------------------------------------------------------------
    # Dispatch itself lives inline in ``drain`` (one branch per issued
    # command); the _do_* methods below are the per-op bodies.

    def _do_act(self, cycle: int, ctx: _BankCtx,
                request: MemoryRequest) -> None:
        addr = ctx.addr
        bank = ctx.bank
        da_row = request.da_row
        if self._static_translate:
            if da_row is None:
                request.da_row = da_row = \
                    self.mitigation.translate(addr, request.location.row)
        else:
            mitigation = self.mitigation
            generation = mitigation.translation_generation(addr)
            if request.da_generation != generation or da_row is None:
                request.da_row = da_row = \
                    mitigation.translate(addr, request.location.row)
                request.da_generation = generation
        chan = ctx.chan
        # ChannelTiming.record_command inlined (hot per-ACT path).
        if cycle < chan._cmd_free_at or cycle < chan._blocked_until:
            raise RuntimeError(
                "DRAM protocol violation: command bus busy at issue time")
        chan._cmd_free_at = cycle + 1
        chan.commands_issued += 1
        ctx.rank.record_act(cycle, ctx.group)
        bank.issue_act(da_row, cycle, extra_latency=self._act_extra)
        bank.stats.row_misses += 1
        if self.raa is not None:
            if self.raa.on_activate(addr):
                self.raa_crossings += 1
                if self._tbuf is not None:
                    self._tbuf.append(("i", ctx.channel, ctx.track,
                                       "raa-cross", "rfm", cycle, None,
                                       None))
        if self._tbuf is not None:
            self._tbuf.append(("X", ctx.channel, ctx.track, "ACT",
                               "cmd", cycle, self._dur_act,
                               {"row": da_row}))
        observer_activate = self._observer_activate
        if observer_activate is not None:
            observer_activate(addr, da_row, cycle)
        if self._acts_hook:
            outcome = self.mitigation.on_activate(
                addr, request.location.row, da_row, cycle)
            if outcome is not None:
                if outcome.trr_rows:
                    bank.add_act_penalty(
                        self._timing.tRC * len(outcome.trr_rows))
                    if self.observer is not None:
                        for row in outcome.trr_rows:
                            self.observer.on_row_refresh(addr, row, cycle)
                if outcome.channel_block_cycles:
                    ctx.chan.block(cycle + 1, outcome.channel_block_cycles)
                if outcome.restored_rows and self.observer is not None:
                    for row in outcome.restored_rows:
                        self.observer.on_row_refresh(addr, row, cycle)
        ctx.dirty = True
        return None

    def _do_column(self, cycle: int, ctx: _BankCtx,
                   request: MemoryRequest) -> Tuple[MemoryRequest, int]:
        bank = ctx.bank
        chan = ctx.chan
        is_write = request.is_write
        # ChannelTiming.record_command / record_data and
        # RankTiming.record_column inlined (hot per-column path).
        if cycle < chan._cmd_free_at or cycle < chan._blocked_until:
            raise RuntimeError(
                "DRAM protocol violation: command bus busy at issue time")
        chan._cmd_free_at = cycle + 1
        chan.commands_issued += 1
        rank = ctx.rank
        group = ctx.group
        spacing = self._tCCD_L if group == rank._last_col_group \
            else self._tCCD_S
        if cycle < rank._last_col + spacing:
            raise RuntimeError(
                "DRAM protocol violation: column command before tCCD allows")
        rank._last_col = cycle
        rank._last_col_group = group
        tBL = self._tBL
        if is_write:
            done = bank.issue_wr(cycle)
            start = cycle + self._tCWL
        else:
            done = bank.issue_rd(cycle)
            start = cycle + self._tCL
        if start < chan._data_free_at or start < chan._blocked_until:
            raise RuntimeError(
                "DRAM protocol violation: data bus busy at burst start")
        chan._data_free_at = start + tBL
        chan.data_busy_cycles += tBL
        bank.stats.row_hits += 1  # column commands served from the open row
        if self._tbuf is not None:
            if is_write:
                self._tbuf.append(("X", ctx.channel, ctx.track, "WR",
                                   "cmd", cycle, self._dur_wr, None))
            else:
                self._tbuf.append(("X", ctx.channel, ctx.track, "RD",
                                   "cmd", cycle, self._dur_rd, None))
        if self._count:
            self._lat_hist.observe(done - request.arrival)
        # O(1) retirement: the hit is by construction the head of its
        # row's FIFO in the hit index; the queue deque drops it lazily.
        rows = ctx.hit_index.get(request.da_row)
        if rows is not None:
            if rows and rows[0] is request:
                rows.popleft()
            else:  # stale index entry; fall back to a linear remove
                try:
                    rows.remove(request)
                except ValueError:
                    pass
            if not rows:
                del ctx.hit_index[request.da_row]
        request.issued = cycle
        request.completed = done
        ctx.pending -= 1
        ctx.dirty = True
        self._pending_chan[ctx.channel] -= 1
        self._pending_total -= 1
        return request, done

    def _do_ref(self, cycle: int, target) -> None:
        channel, rank_index, tracker, banks, chan = target
        chan.record_command(cycle)
        lo, hi = tracker.record_ref(cycle)
        if self._tbuf is not None:
            self._tbuf.append(("X", channel, self._rank_tracks[
                (channel, rank_index)], "REF", "cmd", cycle,
                self._dur_ref, {"lo": lo, "hi": hi}))
        # The per-hook fan-outs run as separate per-bank loops (bank
        # order preserved within each hook) so a REF with no RAA
        # counters, a non-observing mitigation, or no observer pays
        # nothing per bank for the absent hook.
        for ctx in banks:
            ctx.bank.issue_ref(cycle)
            ctx.dirty = True
        raa = self.raa
        if raa is not None:
            on_ref = raa.on_ref
            for ctx in banks:
                on_ref(ctx.addr)
        if self._observes_ref:
            on_ref = self.mitigation.on_ref
            for ctx in banks:
                on_ref(ctx.addr, lo, hi, cycle)
        observer = self.observer
        if observer is not None:
            on_range = observer.on_refresh_range
            for ctx in banks:
                # Observers wrap [lo, hi) modulo the bank's row count.
                on_range(ctx.addr, lo, hi, cycle)
        return None

    def _do_rfm(self, cycle: int, ctx: _BankCtx) -> None:
        addr = ctx.addr
        chan = self._chans[addr.channel]
        chan.record_command(cycle)
        outcome = self.mitigation.on_rfm(addr, cycle)
        duration = self._timing.tRFM
        if self.config.strict_rfm_window:
            duration = max(duration, outcome.duration)
        ctx.bank.issue_rfm(cycle, duration)
        ctx.dirty = True
        self.raa.on_rfm(addr)
        if self._tbuf is not None:
            self._tbuf.append(("X", addr.channel, ctx.track, "RFM",
                               "rfm", cycle, duration,
                               {"refreshed": len(outcome.refreshed_rows),
                                "copies": len(outcome.copies)}))
        if self.observer is not None:
            for row in outcome.refreshed_rows:
                self.observer.on_row_refresh(addr, row, cycle)
            for src, dst in outcome.copies:
                self.observer.on_row_copy(addr, src, dst, cycle)
        return None

    # -- idle bookkeeping ---------------------------------------------------------------

    def _idle_wake(self, channel: int, until: int) -> Optional[int]:
        """Next obligation on an otherwise idle channel.

        A tracker whose horizon has already passed (``next_due <=
        until``) normally produced a refresh candidate this drain; if it
        did not (defensively: a future scheduling path that suppresses
        the REF), report a wake immediately after ``until`` rather than
        dropping the obligation -- a due refresh must never starve.
        """
        wake = None
        for _rank_index, tracker in self._chan_refresh[channel]:
            due = tracker.next_due
            if due <= until:
                due = until + 1
            if wake is None or due < wake:
                wake = due
        return wake
