"""The memory controller: FR-FCFS scheduling, refresh, and RFM issue.

The controller drives the :class:`~repro.dram.device.DramDevice` at
command granularity.  Scheduling policy:

* open-page row policy with FR-FCFS: ready column commands (row hits)
  beat row commands; ties break by request age;
* auto-refresh: once a rank's REF is due, demand to that rank is
  suspended, open banks are drained with PREs, and REF issues (tRFC);
* RFM: when a bank's RAA counter reaches RAAIMT (and the active
  mitigation uses the RFM interface), new ACTs to that bank are
  suspended, the bank is precharged, and an RFM command issues; the
  mitigation performs its in-DRAM work inside the tRFM window;
* mitigation effects (extra ACT latency, throttling delays, TRR
  refreshes, channel-blocking swaps, PA-to-DA translation) are applied
  exactly where the hardware would apply them.

The controller reports every row-touching action (ACT in DA space,
refresh ranges, TRR refreshes, row copies) to an optional Row Hammer
observer so security and performance experiments share one source of
truth.

Implementation note: this is the simulator's hottest code.  Requests
carry a cached DA translation tagged with the mitigation's per-bank
*translation generation* so the (potentially dynamic) PA-to-DA mapping
is only re-evaluated after a shuffle/swap actually changed it, and
scheduling candidates are plain tuples dispatched by opcode rather than
closures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.controller.request import MemoryRequest
from repro.controller.rfm import RaaCounterBank
from repro.dram.commands import CommandType
from repro.dram.device import BankAddress, DramDevice
from repro.dram.refresh import RefreshTracker
from repro.mitigations.base import Mitigation

_PRIO_REFRESH = 0
_PRIO_RFM = 1
_PRIO_HIT = 2
_PRIO_DEMAND = 3

# Candidate opcodes.
_OP_PRE = 0
_OP_ACT = 1
_OP_COL = 2
_OP_REF = 3
_OP_RFM = 4


@dataclass
class McConfig:
    """Controller policy knobs."""

    enable_refresh: bool = True
    #: Count an RFM's internal work beyond tRFM (mitigations whose work
    #: exceeds the provisioned window extend the blocking time).
    strict_rfm_window: bool = False


class _BankCtx:
    """Pre-resolved per-bank scheduling state (hot-path bundle)."""

    __slots__ = ("addr", "bank", "queue", "rank_key", "group")

    def __init__(self, addr: BankAddress, bank, rank_key, group):
        self.addr = addr
        self.bank = bank
        self.queue: Deque[MemoryRequest] = deque()
        self.rank_key = rank_key
        self.group = group


class MemoryController:
    """One controller managing every channel of a :class:`DramDevice`."""

    def __init__(self, device: DramDevice, mitigation: Mitigation,
                 observer=None, config: Optional[McConfig] = None):
        self.device = device
        self.mitigation = mitigation
        self.observer = observer
        self.config = config or McConfig()

        geometry = device.geometry
        mitigation.bind(geometry, device.timing)

        self._timing = device.timing
        self._act_extra = mitigation.act_extra_cycles

        scale = mitigation.refresh_interval_scale
        trefi = max(1, int(device.timing.tREFI * scale))
        refresh_timing = device.timing.with_refresh_interval(trefi)
        self.refresh: Dict[Tuple[int, int], RefreshTracker] = {}
        if self.config.enable_refresh:
            self.refresh = {
                (ch, rk): RefreshTracker(
                    refresh_timing, geometry.layout.da_rows_per_bank)
                for ch in range(geometry.channels)
                for rk in range(geometry.ranks_per_channel)
            }

        self.raa: Optional[RaaCounterBank] = None
        if mitigation.uses_rfm:
            self.raa = RaaCounterBank(mitigation.raaimt)

        # Per-bank contexts, grouped per channel and per rank.
        self._ctx: Dict[BankAddress, _BankCtx] = {}
        self._rank_banks: Dict[Tuple[int, int], List[_BankCtx]] = {}
        for addr in geometry.bank_addresses():
            ctx = _BankCtx(addr, device.banks[addr],
                           (addr.channel, addr.rank),
                           geometry.bank_group_of(addr.bank))
            self._ctx[addr] = ctx
            self._rank_banks.setdefault(ctx.rank_key, []).append(ctx)
        self._active: Dict[int, List[_BankCtx]] = {
            ch: [] for ch in range(geometry.channels)}

        self.enqueued = 0
        self.retired = 0

    # -- request intake ----------------------------------------------------------

    @property
    def queues(self) -> Dict[BankAddress, Deque[MemoryRequest]]:
        """Per-bank queues (read-only view for tests/tools)."""
        return {addr: ctx.queue for addr, ctx in self._ctx.items()
                if ctx.queue}

    def enqueue(self, request: MemoryRequest) -> None:
        addr = request.location.bank_address
        ctx = self._ctx.get(addr)
        if ctx is None:
            raise ValueError(f"bank address {addr} outside geometry")
        if not ctx.queue:
            self._active[addr.channel].append(ctx)
        ctx.queue.append(request)
        self.enqueued += 1

    def pending_requests(self, channel: Optional[int] = None) -> int:
        if channel is None:
            return sum(len(c.queue) for cs in self._active.values()
                       for c in cs)
        return sum(len(c.queue) for c in self._active[channel])

    # -- main scheduling entry point ------------------------------------------------

    def drain(self, channel: int, until: int
              ) -> Tuple[List[Tuple[MemoryRequest, int]], Optional[int]]:
        """Issue every command on ``channel`` whose time is <= ``until``.

        Returns the requests whose data completed (with completion
        cycles) and the next cycle the channel should be re-examined
        (``None`` if it is fully idle with no future obligations).
        """
        completions: List[Tuple[MemoryRequest, int]] = []
        while True:
            best = self._best_candidate(channel, until)
            if best is None:
                return completions, self._idle_wake(channel, until)
            earliest = best[0]
            if earliest > until:
                return completions, earliest
            done = self._execute(best)
            if done is not None:
                completions.append(done)
                self.retired += 1

    # -- candidate generation ---------------------------------------------------------

    def _best_candidate(self, channel: int, until: int):
        """Find the (earliest, prio, age, op, ctx, request) candidate."""
        chan = self.device.channels[channel]
        timing = self._timing
        mitigation = self.mitigation
        best = None

        refresh_draining_ranks = None
        for rank_index in range(self.device.geometry.ranks_per_channel):
            tracker = self.refresh.get((channel, rank_index))
            if tracker is None or tracker.next_due > until:
                continue
            if refresh_draining_ranks is None:
                refresh_draining_ranks = set()
            refresh_draining_ranks.add(rank_index)
            cand = self._refresh_candidate(channel, rank_index, tracker,
                                           chan)
            if cand is not None and (best is None or cand[:3] < best[:3]):
                best = cand

        rfm_banks = None
        if self.raa is not None:
            for addr in self.raa.banks_needing_rfm():
                if addr.channel != channel:
                    continue
                if refresh_draining_ranks and \
                        addr.rank in refresh_draining_ranks:
                    continue  # refresh first; REF also credits RAA
                ctx = self._ctx[addr]
                if rfm_banks is None:
                    rfm_banks = set()
                rfm_banks.add(addr)
                cand = self._rfm_candidate(ctx, chan)
                if best is None or cand[:3] < best[:3]:
                    best = cand

        active = self._active[channel]
        removals = False
        for ctx in active:
            if not ctx.queue:
                removals = True
                continue
            if refresh_draining_ranks and \
                    ctx.addr.rank in refresh_draining_ranks:
                continue
            if rfm_banks and ctx.addr in rfm_banks:
                continue
            cand = self._demand_candidate(ctx, chan, timing, mitigation)
            if best is None or cand[:3] < best[:3]:
                best = cand
        if removals:
            self._active[channel] = [c for c in active if c.queue]
        return best

    def _refresh_candidate(self, channel: int, rank_index: int,
                           tracker: RefreshTracker, chan):
        banks = self._rank_banks[(channel, rank_index)]
        open_ctxs = [c for c in banks if c.bank.open_row is not None]
        if open_ctxs:
            best = None
            for ctx in open_ctxs:
                earliest = chan.earliest_command(
                    ctx.bank.earliest_issue(CommandType.PRE, 0))
                cand = (earliest, _PRIO_REFRESH, 0, _OP_PRE, ctx, None)
                if best is None or cand[:3] < best[:3]:
                    best = cand
            return best
        earliest = max(c.bank.earliest_issue(CommandType.REF, 0)
                       for c in banks)
        earliest = max(earliest, tracker.next_due)
        earliest = chan.earliest_command(earliest)
        return (earliest, _PRIO_REFRESH, 0, _OP_REF,
                (channel, rank_index, tracker, banks, chan), None)

    def _rfm_candidate(self, ctx: _BankCtx, chan):
        bank = ctx.bank
        if bank.open_row is not None:
            earliest = chan.earliest_command(
                bank.earliest_issue(CommandType.PRE, 0))
            return (earliest, _PRIO_RFM, 0, _OP_PRE, ctx, None)
        earliest = chan.earliest_command(
            bank.earliest_issue(CommandType.RFM, 0))
        return (earliest, _PRIO_RFM, 0, _OP_RFM, ctx, None)

    def _demand_candidate(self, ctx: _BankCtx, chan, timing, mitigation):
        bank = ctx.bank
        queue = ctx.queue
        open_row = bank.open_row
        if open_row is not None:
            generation = mitigation.translation_generation(ctx.addr)
            hit = None
            for req in queue:
                if req.da_generation != generation:
                    req.da_row = mitigation.translate(ctx.addr,
                                                      req.location.row)
                    req.da_generation = generation
                if req.da_row == open_row:
                    hit = req
                    break
            if hit is not None:
                if hit.is_write:
                    earliest = bank.earliest_issue(CommandType.WR, 0)
                    data_lead = timing.tCWL
                else:
                    earliest = bank.earliest_issue(CommandType.RD, 0)
                    data_lead = timing.tCL
                rank = self.device.ranks[ctx.rank_key]
                earliest = rank.earliest_column(earliest, ctx.group)
                earliest = chan.earliest_command(earliest)
                earliest = max(
                    earliest,
                    chan.earliest_data(earliest + data_lead) - data_lead)
                return (earliest, _PRIO_HIT, hit.arrival, _OP_COL, ctx, hit)
            earliest = chan.earliest_command(
                bank.earliest_issue(CommandType.PRE, 0))
            return (earliest, _PRIO_DEMAND, queue[0].arrival, _OP_PRE,
                    ctx, "conflict")
        req = queue[0]
        rank = self.device.ranks[ctx.rank_key]
        earliest = bank.earliest_issue(CommandType.ACT, 0)
        earliest = rank.earliest_act(earliest, ctx.group)
        earliest = chan.earliest_command(earliest)
        earliest = mitigation.before_activate(ctx.addr, req.location.row,
                                              earliest)
        return (earliest, _PRIO_DEMAND, req.arrival, _OP_ACT, ctx, req)

    # -- candidate execution ------------------------------------------------------------

    def _execute(self, cand) -> Optional[Tuple[MemoryRequest, int]]:
        cycle, _prio, _age, op, target, payload = cand
        if op == _OP_PRE:
            ctx = target
            self.device.channels[ctx.addr.channel].record_command(cycle)
            ctx.bank.issue_pre(cycle)
            if payload == "conflict":
                ctx.bank.stats.row_conflicts += 1
            return None
        if op == _OP_ACT:
            return self._do_act(cycle, target, payload)
        if op == _OP_COL:
            return self._do_column(cycle, target, payload)
        if op == _OP_REF:
            return self._do_ref(cycle, target)
        if op == _OP_RFM:
            return self._do_rfm(cycle, target)
        raise AssertionError(f"unknown candidate op {op}")

    def _do_act(self, cycle: int, ctx: _BankCtx,
                request: MemoryRequest) -> None:
        addr = ctx.addr
        bank = ctx.bank
        chan = self.device.channels[addr.channel]
        mitigation = self.mitigation
        generation = mitigation.translation_generation(addr)
        if request.da_generation != generation or request.da_row is None:
            request.da_row = mitigation.translate(addr, request.location.row)
            request.da_generation = generation
        da_row = request.da_row
        chan.record_command(cycle)
        self.device.ranks[ctx.rank_key].record_act(cycle, ctx.group)
        bank.issue_act(da_row, cycle, extra_latency=self._act_extra)
        bank.stats.row_misses += 1
        if self.raa is not None:
            self.raa.on_activate(addr)
        if self.observer is not None:
            self.observer.on_activate(addr, da_row, cycle)
        outcome = mitigation.on_activate(addr, request.location.row,
                                         da_row, cycle)
        if outcome is not None:
            if outcome.trr_rows:
                bank.add_act_penalty(self._timing.tRC * len(outcome.trr_rows))
                if self.observer is not None:
                    for row in outcome.trr_rows:
                        self.observer.on_row_refresh(addr, row, cycle)
            if outcome.channel_block_cycles:
                chan.block(cycle + 1, outcome.channel_block_cycles)
            if outcome.restored_rows and self.observer is not None:
                for row in outcome.restored_rows:
                    self.observer.on_row_refresh(addr, row, cycle)
        return None

    def _do_column(self, cycle: int, ctx: _BankCtx,
                   request: MemoryRequest) -> Tuple[MemoryRequest, int]:
        bank = ctx.bank
        chan = self.device.channels[ctx.addr.channel]
        timing = self._timing
        chan.record_command(cycle)
        self.device.ranks[ctx.rank_key].record_column(cycle, ctx.group)
        if request.is_write:
            done = bank.issue_wr(cycle)
            chan.record_data(cycle + timing.tCWL, timing.tBL)
        else:
            done = bank.issue_rd(cycle)
            chan.record_data(cycle + timing.tCL, timing.tBL)
        bank.stats.row_hits += 1  # column commands served from the open row
        ctx.queue.remove(request)
        request.issued = cycle
        request.completed = done
        return request, done

    def _do_ref(self, cycle: int, target) -> None:
        channel, rank_index, tracker, banks, chan = target
        chan.record_command(cycle)
        lo, hi = tracker.record_ref(cycle)
        for ctx in banks:
            ctx.bank.issue_ref(cycle)
            if self.raa is not None:
                self.raa.on_ref(ctx.addr)
            self.mitigation.on_ref(ctx.addr, lo, hi, cycle)
            if self.observer is not None:
                # Observers wrap [lo, hi) modulo the bank's row count.
                self.observer.on_refresh_range(ctx.addr, lo, hi, cycle)
        return None

    def _do_rfm(self, cycle: int, ctx: _BankCtx) -> None:
        addr = ctx.addr
        chan = self.device.channels[addr.channel]
        chan.record_command(cycle)
        outcome = self.mitigation.on_rfm(addr, cycle)
        duration = self._timing.tRFM
        if self.config.strict_rfm_window:
            duration = max(duration, outcome.duration)
        ctx.bank.issue_rfm(cycle, duration)
        self.raa.on_rfm(addr)
        if self.observer is not None:
            for row in outcome.refreshed_rows:
                self.observer.on_row_refresh(addr, row, cycle)
            for src, dst in outcome.copies:
                self.observer.on_row_copy(addr, src, dst, cycle)
        return None

    # -- idle bookkeeping ---------------------------------------------------------------

    def _idle_wake(self, channel: int, until: int) -> Optional[int]:
        wakes = []
        for (ch, _rk), tracker in self.refresh.items():
            if ch == channel and tracker.next_due > until:
                wakes.append(tracker.next_due)
        return min(wakes) if wakes else None
