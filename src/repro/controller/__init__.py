"""Memory controller substrate.

Implements the MC side of the paper's system model (Sections II-A/II-B):
physical-address decoding into channel/rank/bank/row/column tuples,
per-bank request queues with FR-FCFS scheduling, auto-refresh issue, and
the DDR5 RFM interface (per-bank RAA activation counters, RAAIMT
threshold, RFM commands granting tRFM to the device).
"""

from repro.controller.address import AddressMapping, MemoryLocation
from repro.controller.mc import MemoryController, McConfig
from repro.controller.request import MemoryRequest
from repro.controller.rfm import RaaCounterBank

__all__ = [
    "AddressMapping",
    "McConfig",
    "MemoryController",
    "MemoryLocation",
    "MemoryRequest",
    "RaaCounterBank",
]
