"""shadow-repro: reproduction of SHADOW (HPCA 2023).

SHADOW (Shuffling Aggressor DRAM Rows) is an in-DRAM Row Hammer mitigation
that dynamically randomizes the physical-address-to-DRAM-address mapping by
shuffling rows inside each subarray upon every JEDEC RFM command.

The package is organised bottom-up:

* :mod:`repro.utils` -- PRINCE CSPRNG, LFSR, bit helpers.
* :mod:`repro.dram` -- DRAM device substrate (subarray/bank/rank/channel
  timing state machines, JEDEC parameter sets).
* :mod:`repro.controller` -- memory controller (address mapping, FR-FCFS
  scheduling, RAA counters and the RFM interface).
* :mod:`repro.rowhammer` -- disturbance fault model and attack library.
* :mod:`repro.mitigations` -- baselines (PARFM, Mithril, BlockHammer, RRS,
  Graphene, DRR, ...).
* :mod:`repro.core` -- SHADOW itself (remapping row, row-shuffle,
  incremental refresh, subarray pairing, controller).
* :mod:`repro.analysis` -- closed-form security analysis, circuit timing,
  area and power models.
* :mod:`repro.workloads` -- synthetic workload/trace generators and the
  paper's multi-programmed mixes.
* :mod:`repro.sim` -- the full-system simulation harness and metrics.
* :mod:`repro.experiments` -- one driver per paper table/figure.
"""

from repro.version import __version__

# Headline API re-exports: the objects a downstream user reaches for
# first.  Subsystem access still goes through the subpackages.
from repro.core import Shadow, ShadowConfig
from repro.dram import DDR4_2666, DDR5_4800, DramGeometry
from repro.rowhammer import DisturbanceModel, HammerConfig
from repro.sim import ExperimentRunner, System, SystemConfig

__all__ = [
    "DDR4_2666",
    "DDR5_4800",
    "DisturbanceModel",
    "DramGeometry",
    "ExperimentRunner",
    "HammerConfig",
    "Shadow",
    "ShadowConfig",
    "System",
    "SystemConfig",
    "__version__",
]
