"""Figure 10: blast-radius sensitivity.

Sweeps the blast radius from 1 to 5 at a fixed 2K threshold.  SHADOW's
mitigating action is radius-independent (the shuffle relocates the
aggressor); PARFM and Mithril must refresh ``2 x radius`` victims per
RFM and derate their RAAIMT by the blast weight, so their overhead
grows with the radius and SHADOW overtakes them past radius 2.

One declarative :class:`~repro.spec.ExperimentSpec`; note that SHADOW's
points expand to literally identical jobs across radii, so the engine
simulates them once.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.configs import fidelity_config
from repro.experiments.driver import run_spec
from repro.experiments.engine import Engine
from repro.experiments.report import (
    driver_arg_parser,
    engine_from_args,
    format_table,
    report_failures,
    save_results,
)
from repro.spec import ExperimentSpec, PointSpec, scheme_spec, workload_spec

RADII = (1, 2, 3, 4, 5)
FIXED_HCNT = 2048


def spec(fidelity: str = "smoke", hcnt: int = FIXED_HCNT) -> ExperimentSpec:
    """The figure as data: one point per (mix, scheme, radius) cell."""
    fc = fidelity_config(fidelity)
    sim = fc.sim_spec(requests=fc.tracker_requests)
    radii = RADII if fidelity == "full" else (1, 3, 5)
    mixes = (("mix-high", "mix-blend") if fidelity == "full"
             else ("mix-high",))
    points = []
    for mix in mixes:
        workload = workload_spec(mix, threads=fc.tracker_threads)
        for radius in radii:
            schemes = {
                "SHADOW": scheme_spec("shadow", hcnt=hcnt),
                "PARFM": scheme_spec("parfm", hcnt=hcnt, radius=radius),
                "Mithril": scheme_spec("mithril-area", hcnt=hcnt,
                                       radius=radius),
            }
            for name, scheme in schemes.items():
                points.append(PointSpec(
                    "ws-relative",
                    ("series", f"{mix}/{name}", str(radius)),
                    workload=workload, scheme=scheme, sim=sim))
    return ExperimentSpec("fig10", fidelity, points,
                          meta={"hcnt": hcnt, "radii": list(radii)})


def run(fidelity: str = "smoke", hcnt: int = FIXED_HCNT,
        jobs: int = 1, engine: Optional[Engine] = None) -> Dict:
    """Run the experiment; returns the figure's series as a dict."""
    return run_spec(spec(fidelity, hcnt), engine=engine, jobs=jobs)


def main() -> None:
    """Console entry point: print the regenerated figure series."""
    args = driver_arg_parser("fig10").parse_args()
    engine = engine_from_args(args)
    results = run(args.fidelity, jobs=args.jobs, engine=engine)
    if not report_failures(engine):
        radii = results["radii"]
        rows = [[key] + [vals[str(r)] for r in radii]
                for key, vals in results["series"].items()]
        print(format_table(
            ["series"] + [f"radius={r}" for r in radii], rows,
            title=f"Figure 10: blast-radius sensitivity, weighted "
                  f"speedup relative to baseline (Hcnt={results['hcnt']}, "
                  f"{args.fidelity})"))
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"fig10_{args.fidelity}", results))
    if engine.failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
