"""Figure 10: blast-radius sensitivity.

Sweeps the blast radius from 1 to 5 at a fixed 2K threshold.  SHADOW's
mitigating action is radius-independent (the shuffle relocates the
aggressor); PARFM and Mithril must refresh ``2 x radius`` victims per
RFM and derate their RAAIMT by the blast weight, so their overhead
grows with the radius and SHADOW overtakes them past radius 2.

Runs on the experiment engine; note that SHADOW's jobs are literally
identical across radii, so the engine simulates them once.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.configs import fidelity_config
from repro.experiments.engine import Engine, WsRelativePlan, scheme_spec
from repro.experiments.report import (
    driver_arg_parser,
    format_table,
    save_results,
)
from repro.workloads import mix_blend, mix_high

RADII = (1, 2, 3, 4, 5)
FIXED_HCNT = 2048


def run(fidelity: str = "smoke", hcnt: int = FIXED_HCNT,
        jobs: int = 1, engine: Optional[Engine] = None) -> Dict:
    """Run the experiment; returns the figure's series as a dict."""
    fc = fidelity_config(fidelity)
    engine = engine or Engine(jobs=jobs)
    plan = WsRelativePlan(
        fc.system_config(requests=fc.tracker_requests))
    threads = fc.tracker_threads
    radii = RADII if fidelity == "full" else (1, 3, 5)
    mixes = (("mix-high", mix_high(threads)),
             ("mix-blend", mix_blend(threads)))
    if fidelity != "full":
        mixes = mixes[:1]
    for mix_name, profiles in mixes:
        for radius in radii:
            schemes = {
                "SHADOW": scheme_spec("shadow", hcnt=hcnt),
                "PARFM": scheme_spec("parfm", hcnt=hcnt, radius=radius),
                "Mithril": scheme_spec("mithril-area", hcnt=hcnt,
                                       radius=radius),
            }
            for name, spec in schemes.items():
                plan.add((mix_name, name, radius), profiles, spec)
    res = engine.run(plan.jobs)
    series: Dict[str, Dict[str, float]] = {}
    for mix_name, _profiles in mixes:
        for radius in radii:
            for name in ("SHADOW", "PARFM", "Mithril"):
                series.setdefault(f"{mix_name}/{name}", {})[str(radius)] = \
                    plan.value((mix_name, name, radius), res)
    return {"experiment": "fig10", "fidelity": fidelity, "hcnt": hcnt,
            "series": series, "radii": list(radii)}


def main() -> None:
    """Console entry point: print the regenerated figure series."""
    args = driver_arg_parser("fig10").parse_args()
    engine = Engine(jobs=args.jobs, use_cache=not args.no_cache)
    results = run(args.fidelity, jobs=args.jobs, engine=engine)
    radii = results["radii"]
    rows = [[key] + [vals[str(r)] for r in radii]
            for key, vals in results["series"].items()]
    print(format_table(
        ["series"] + [f"radius={r}" for r in radii], rows,
        title=f"Figure 10: blast-radius sensitivity, weighted speedup "
              f"relative to baseline (Hcnt={results['hcnt']}, "
              f"{args.fidelity})"))
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"fig10_{args.fidelity}", results))


if __name__ == "__main__":
    main()
