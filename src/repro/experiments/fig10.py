"""Figure 10: blast-radius sensitivity.

Sweeps the blast radius from 1 to 5 at a fixed 2K threshold.  SHADOW's
mitigating action is radius-independent (the shuffle relocates the
aggressor); PARFM and Mithril must refresh ``2 x radius`` victims per
RFM and derate their RAAIMT by the blast weight, so their overhead
grows with the radius and SHADOW overtakes them past radius 2.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.configs import fidelity_config
from repro.experiments.report import format_table, save_results
from repro.experiments.schemes import make_shadow
from repro.mitigations import Parfm, mithril_area
from repro.sim.runner import ExperimentRunner
from repro.workloads import mix_blend, mix_high

RADII = (1, 2, 3, 4, 5)
FIXED_HCNT = 2048


def run(fidelity: str = "smoke", hcnt: int = FIXED_HCNT) -> Dict:
    """Run the experiment; returns the figure's series as a dict."""
    fc = fidelity_config(fidelity)
    runner = ExperimentRunner(
        config=fc.system_config(requests=fc.tracker_requests))
    threads = fc.tracker_threads
    radii = RADII if fidelity == "full" else (1, 3, 5)
    mixes = (("mix-high", mix_high(threads)),
             ("mix-blend", mix_blend(threads)))
    if fidelity != "full":
        mixes = mixes[:1]
    series: Dict[str, Dict[str, float]] = {}
    for mix_name, profiles in mixes:
        for radius in radii:
            schemes = {
                "SHADOW": lambda: make_shadow(hcnt),
                "PARFM": lambda: Parfm.for_hcnt(hcnt, radius),
                "Mithril": lambda: mithril_area(hcnt, radius),
            }
            for name, factory in schemes.items():
                series.setdefault(f"{mix_name}/{name}", {})[str(radius)] = \
                    runner.relative_performance(profiles, factory)
    return {"experiment": "fig10", "fidelity": fidelity, "hcnt": hcnt,
            "series": series, "radii": list(radii)}


def main() -> None:
    """Console entry point: print the regenerated figure series."""
    import sys
    fidelity = sys.argv[1] if len(sys.argv) > 1 else "full"
    results = run(fidelity)
    radii = results["radii"]
    rows = [[key] + [vals[str(r)] for r in radii]
            for key, vals in results["series"].items()]
    print(format_table(
        ["series"] + [f"radius={r}" for r in radii], rows,
        title=f"Figure 10: blast-radius sensitivity, weighted speedup "
              f"relative to baseline (Hcnt={results['hcnt']}, {fidelity})"))
    print("saved:", save_results(f"fig10_{fidelity}", results))


if __name__ == "__main__":
    main()
