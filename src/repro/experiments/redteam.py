"""Red-team harness: adversary suite x mitigation zoo, end to end.

Every attack pattern from :mod:`repro.rowhammer.attacks` replays through
the full timing simulator (FR-FCFS, refresh, RFM, the scheme's actual
command stream) with an in-loop :class:`~repro.faults.FaultInjector` on
the controller's observer seam, against every registered mitigation the
registry can build from ``hcnt``.  Where the analytic security models
bound failure probabilities, this measures outcomes: time to first bit
flip, ECC-corrected vs detected-uncorrectable vs silent counts, and the
degradation events (sPPR retires, retries, panics) each scheme's
survivors trigger.

Smoke fidelity is the CI discrimination check: the same adversarial
trace and seed must produce at least one detected-uncorrectable flip
under ``none`` and zero flips under ``shadow``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.engine import Engine, Job, JobResult
from repro.experiments.matrix import matrix_schemes
from repro.experiments.report import (
    driver_arg_parser,
    engine_from_args,
    format_table,
    report_failures,
    save_results,
)
from repro.sim.system import SystemConfig
from repro.spec import FaultSpec, scheme_spec
from repro.spec.registry import FAULT_POLICIES, SCHEMES
from repro.workloads.hammer import hammer_profile

#: Attack patterns the harness replays (names of ``HammerProfile.attack``).
SMOKE_ATTACKS: Tuple[str, ...] = ("double-sided",)
FULL_ATTACKS: Tuple[str, ...] = ("double-sided", "many-sided",
                                 "half-double", "blast")

#: MC row the attacker aims at: mid-subarray so every pattern's
#: aggressors stay inside one subarray at the default layout.
VICTIM_ROW = 260

_FIDELITY_HCNT = {"smoke": 1024, "full": 4096}

#: Victim disturbance weight one activation of the pattern deposits on
#: average (blast_weight over the rotation): sizes the request budget so
#: an undefended victim crosses ``hcnt`` with headroom to spare.
_ATTACK_EFFICIENCY = {
    "single-sided": 0.5,
    "double-sided": 1.0,
    # The many-sided victims are the decoy rows *between* aggressor
    # pairs: each is double-sided-hammered once per 9-act rotation.
    "many-sided": 2.0 / 9.0,
    "half-double": 0.5,
    "blast": 0.5,
}


def redteam_schemes(fidelity: str) -> List[str]:
    """Schemes under attack: the full registry zoo, or the CI pair."""
    if fidelity == "smoke":
        return ["none", "shadow"]
    return ["none"] + matrix_schemes()


def _fault_spec(hcnt: int, policy: str, seed: int,
                attack: str) -> FaultSpec:
    # Half-Double's far aggressors only matter when the defender's own
    # targeted refreshes hammer their neighbours.
    return FaultSpec(hcnt=hcnt, policy=policy, seed=seed,
                     refresh_hammers_neighbors=(attack == "half-double"))


def jobs(fidelity: str = "smoke", hcnt: Optional[int] = None,
         policy: str = "retire", seed: int = 1,
         schemes: Optional[Sequence[str]] = None,
         attacks: Optional[Sequence[str]] = None
         ) -> Dict[Tuple[str, str], Job]:
    """One job per (scheme, attack) cell, all sharing trace and seed."""
    hcnt = hcnt if hcnt is not None else _FIDELITY_HCNT[fidelity]
    schemes = list(schemes) if schemes else redteam_schemes(fidelity)
    attacks = tuple(attacks) if attacks \
        else (SMOKE_ATTACKS if fidelity == "smoke" else FULL_ATTACKS)
    grid: Dict[Tuple[str, str], Job] = {}
    for name in schemes:
        spec = scheme_spec(
            name, **SCHEMES.buildable_params(name, {"hcnt": hcnt}))
        for attack in attacks:
            # Enough activations for the undefended victim to cross hcnt
            # at the pattern's deposit rate, plus headroom for the
            # birthday collision that turns corrected flips into an
            # uncorrectable one.
            efficiency = _ATTACK_EFFICIENCY.get(attack, 1.0)
            requests = int(hcnt / efficiency) + max(512, hcnt // 2)
            # mlp=1 so FR-FCFS cannot batch the rotation into row hits
            # -- every access is the activation a real hammer loop
            # produces.
            config = SystemConfig(requests_per_thread=requests, mlp=1,
                                  seed=seed)
            grid[(name, attack)] = Job(
                profiles=(hammer_profile(attack, victim_row=VICTIM_ROW),),
                scheme=spec,
                config=config,
                faults=_fault_spec(hcnt, policy, seed, attack))
    return grid


def _entry(result: JobResult) -> Dict:
    faults = result.faults or {}
    counts = faults.get("counts", {})
    first = faults.get("first_flip_cycle")
    return {
        "cycles": result.cycles,
        "acts": result.acts,
        "time_to_first_flip_ns": (
            first * result.tck_ns if first is not None else None),
        "bits_injected": counts.get("bits_injected", 0),
        "corrected": counts.get("corrected", 0),
        "uncorrectable": counts.get("uncorrectable", 0),
        "silent": counts.get("silent", 0),
        "rows_flipped": faults.get("rows_flipped", 0),
        "repairs": counts.get("repairs", 0),
        "retries": counts.get("retries", 0),
        "panics": counts.get("panics", 0),
        "degradation_events": faults.get("degradation_events_total", 0),
        "panicked": faults.get("panicked", False),
    }


def run(fidelity: str = "smoke", jobs_n: int = 1,
        engine: Optional[Engine] = None, hcnt: Optional[int] = None,
        policy: str = "retire", seed: int = 1,
        schemes: Optional[Sequence[str]] = None,
        attacks: Optional[Sequence[str]] = None) -> Dict:
    """Run the grid; returns the JSON-able report."""
    engine = engine if engine is not None else Engine(jobs=jobs_n)
    hcnt = hcnt if hcnt is not None else _FIDELITY_HCNT[fidelity]
    grid = jobs(fidelity, hcnt=hcnt, policy=policy, seed=seed,
                schemes=schemes, attacks=attacks)
    results = engine.run(list(grid.values()))
    table: Dict[str, Dict[str, Dict]] = {}
    for (scheme, attack), job in grid.items():
        result = results.get(job)
        if result is not None:
            table.setdefault(scheme, {})[attack] = _entry(result)
    report = {
        "fidelity": fidelity,
        "hcnt": hcnt,
        "policy": policy,
        "seed": seed,
        "victim_row": VICTIM_ROW,
        "attacks": sorted({attack for _, attack in grid}),
        "schemes": table,
    }
    if engine.failures:
        report["failures"] = engine.failure_report()
    return report


def render(report: Dict) -> str:
    """The per-(scheme, attack) outcome table."""
    rows = []
    for scheme in sorted(report["schemes"]):
        for attack, entry in sorted(report["schemes"][scheme].items()):
            ttff = entry["time_to_first_flip_ns"]
            rows.append([
                scheme, attack,
                f"{ttff / 1000.0:.1f}us" if ttff is not None else "-",
                entry["bits_injected"], entry["corrected"],
                entry["uncorrectable"], entry["silent"],
                entry["repairs"], entry["panics"],
                entry["degradation_events"],
            ])
    return format_table(
        ["scheme", "attack", "first-flip", "bits", "corr", "uncorr",
         "silent", "repairs", "panics", "events"],
        rows,
        title=(f"Red team: Hcnt={report['hcnt']}, "
               f"policy={report['policy']}, seed={report['seed']} "
               f"({report['fidelity']})"))


def main() -> None:
    """Console entry point: attack every scheme, print the outcomes."""
    parser = driver_arg_parser("redteam")
    parser.add_argument("--hcnt", type=int, default=None,
                        help="hammer-count threshold "
                             "(default: 1024 smoke / 4096 full)")
    parser.add_argument("--policy", default="retire",
                        choices=FAULT_POLICIES.names(),
                        help="degradation policy on detected-"
                             "uncorrectable errors (default: retire)")
    parser.add_argument("--seed", type=int, default=1,
                        help="trace and injection seed (default: 1)")
    parser.add_argument("--schemes", nargs="*", default=None,
                        metavar="SCHEME",
                        help="restrict to these schemes "
                             "(default: smoke pair / full zoo)")
    parser.add_argument("--attacks", nargs="*", default=None,
                        choices=FULL_ATTACKS, metavar="ATTACK",
                        help=f"restrict to these attacks "
                             f"(choices: {', '.join(FULL_ATTACKS)})")
    args = parser.parse_args()
    engine = engine_from_args(args)
    report = run(args.fidelity, engine=engine, hcnt=args.hcnt,
                 policy=args.policy, seed=args.seed,
                 schemes=args.schemes, attacks=args.attacks)
    report_failures(engine)
    print(render(report))
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"redteam_{args.fidelity}", report))
    if engine.failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
