"""Scheme factories shared by the figure experiments.

The canonical factory functions live in :mod:`repro.core.factories`
(registered in the central scheme registry, :data:`repro.spec.SCHEMES`);
this module re-exports them for the experiment layer and keeps the
experiment-level calibration constants plus the legacy factory-dict
helpers some callers still use.

Each factory returns a *fresh* mitigation instance (mitigations carry
per-run state).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.factories import make_shadow, make_shadow_with_trcd
from repro.mitigations import (
    BlockHammer,
    DoubleRefreshRate,
    Mitigation,
    NoMitigation,
    Parfm,
    RandomizedRowSwap,
    mithril_area,
    mithril_perf,
)

SchemeFactory = Callable[[], Mitigation]


def rfm_scheme_factories(hcnt: int,
                         blast_radius: int = 1) -> Dict[str, SchemeFactory]:
    """The Figure 8/10 comparison set (RFM-compatible schemes + DRR)."""
    return {
        "SHADOW": lambda: make_shadow(hcnt),
        "PARFM": lambda: Parfm.for_hcnt(hcnt, blast_radius),
        "Mithril-perf": lambda: mithril_perf(hcnt, blast_radius),
        "Mithril-area": lambda: mithril_area(hcnt, blast_radius),
        "DRR": DoubleRefreshRate,
    }


#: Steady-state correction for BlockHammer's epoch-length blacklist
#: counters: our runs cover roughly 1% of a CBF epoch (see
#: BlockHammerConfig.history_scale).
BLOCKHAMMER_HISTORY_SCALE = 100.0

#: Trace-rate normalization for BlockHammer's throttle (see
#: BlockHammerConfig.rate_scale): the synthetic hot rows run about an
#: order of magnitude hotter than the benign applications they model.
BLOCKHAMMER_RATE_SCALE = 10.0


def archsim_scheme_factories(hcnt: int) -> Dict[str, SchemeFactory]:
    """The Figure 11 comparison set."""
    return {
        "SHADOW": lambda: make_shadow(hcnt),
        "BlockHammer": lambda: BlockHammer.for_hcnt(
            hcnt, history_scale=BLOCKHAMMER_HISTORY_SCALE,
            rate_scale=BLOCKHAMMER_RATE_SCALE),
        "RRS": lambda: RandomizedRowSwap.for_hcnt(hcnt),
    }


__all__ = [
    "BLOCKHAMMER_HISTORY_SCALE",
    "BLOCKHAMMER_RATE_SCALE",
    "NoMitigation",
    "SchemeFactory",
    "archsim_scheme_factories",
    "make_shadow",
    "make_shadow_with_trcd",
    "rfm_scheme_factories",
]
