"""Scheme factories shared by the figure experiments.

The canonical factory functions live in :mod:`repro.core.factories`
(registered in the central scheme registry, :data:`repro.spec.SCHEMES`);
this module re-exports them for the experiment layer and keeps the
experiment-level calibration constants plus the legacy factory-dict
helpers some callers still use.

Each factory returns a *fresh* mitigation instance (mitigations carry
per-run state).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.factories import make_shadow, make_shadow_with_trcd
from repro.mitigations import Mitigation, NoMitigation
from repro.spec.registry import SCHEMES

SchemeFactory = Callable[[], Mitigation]


def _from_registry(name: str, **params) -> SchemeFactory:
    """A fresh-instance factory that builds through the scheme registry
    (the same construction path as the CLI and cached jobs)."""
    return lambda: SCHEMES.build(name, **params)


def rfm_scheme_factories(hcnt: int,
                         blast_radius: int = 1) -> Dict[str, SchemeFactory]:
    """The Figure 8/10 comparison set (RFM-compatible schemes + DRR)."""
    return {
        "SHADOW": _from_registry("shadow", hcnt=hcnt),
        "PARFM": _from_registry("parfm", hcnt=hcnt, radius=blast_radius),
        "Mithril-perf": _from_registry("mithril-perf", hcnt=hcnt,
                                       radius=blast_radius),
        "Mithril-area": _from_registry("mithril-area", hcnt=hcnt,
                                       radius=blast_radius),
        "DRR": _from_registry("drr"),
    }


#: Steady-state correction for BlockHammer's epoch-length blacklist
#: counters: our runs cover roughly 1% of a CBF epoch (see
#: BlockHammerConfig.history_scale).
BLOCKHAMMER_HISTORY_SCALE = 100.0

#: Trace-rate normalization for BlockHammer's throttle (see
#: BlockHammerConfig.rate_scale): the synthetic hot rows run about an
#: order of magnitude hotter than the benign applications they model.
BLOCKHAMMER_RATE_SCALE = 10.0


def archsim_scheme_factories(hcnt: int) -> Dict[str, SchemeFactory]:
    """The Figure 11 comparison set."""
    return {
        "SHADOW": _from_registry("shadow", hcnt=hcnt),
        "BlockHammer": _from_registry(
            "blockhammer", hcnt=hcnt,
            history_scale=BLOCKHAMMER_HISTORY_SCALE,
            rate_scale=BLOCKHAMMER_RATE_SCALE),
        "RRS": _from_registry("rrs", hcnt=hcnt),
    }


__all__ = [
    "BLOCKHAMMER_HISTORY_SCALE",
    "BLOCKHAMMER_RATE_SCALE",
    "NoMitigation",
    "SchemeFactory",
    "archsim_scheme_factories",
    "make_shadow",
    "make_shadow_with_trcd",
    "rfm_scheme_factories",
]
