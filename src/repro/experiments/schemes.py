"""Scheme factories shared by the figure experiments.

Each entry returns a *fresh* mitigation instance (mitigations carry
per-run state).  Simulation runs use the fast seeded system RNG inside
SHADOW; the PRINCE CSPRNG is exercised by the security analyses and its
own tests (the choice is statistically irrelevant for performance).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core import Shadow, ShadowConfig
from repro.core.config import secure_raaimt
from repro.core.pairing import CircuitTimings
from repro.mitigations import (
    BlockHammer,
    DoubleRefreshRate,
    Mitigation,
    NoMitigation,
    Parfm,
    RandomizedRowSwap,
    mithril_area,
    mithril_perf,
)

SchemeFactory = Callable[[], Mitigation]


def make_shadow(hcnt: int, seed: int = 1) -> Shadow:
    """SHADOW at the Table II secure RAAIMT for ``hcnt``."""
    return Shadow(ShadowConfig(raaimt=secure_raaimt(hcnt),
                               rng_kind="system", rng_seed=seed))


def make_shadow_with_trcd(trcd_prime_cycles: int, hcnt: int,
                          base_trcd: int = 19,
                          tck_ns: float = 0.75) -> Shadow:
    """SHADOW with an overridden tRCD' (Figure 9 sensitivity).

    The circuit model's tRD_RM is adjusted so the charged ACT extra
    lands exactly at ``trcd_prime_cycles - base_trcd`` cycles.
    """
    if trcd_prime_cycles <= base_trcd:
        raise ValueError("tRCD' must exceed the base tRCD")
    extra_cycles = trcd_prime_cycles - base_trcd
    # cycles() rounds up, so aim just inside the target cycle count.
    trd_rm_ns = (extra_cycles - 0.5) * tck_ns
    circuit = CircuitTimings(trd_rm_ns=trd_rm_ns)
    return Shadow(ShadowConfig(raaimt=secure_raaimt(hcnt),
                               rng_kind="system", circuit=circuit))


def rfm_scheme_factories(hcnt: int,
                         blast_radius: int = 1) -> Dict[str, SchemeFactory]:
    """The Figure 8/10 comparison set (RFM-compatible schemes + DRR)."""
    return {
        "SHADOW": lambda: make_shadow(hcnt),
        "PARFM": lambda: Parfm.for_hcnt(hcnt, blast_radius),
        "Mithril-perf": lambda: mithril_perf(hcnt, blast_radius),
        "Mithril-area": lambda: mithril_area(hcnt, blast_radius),
        "DRR": DoubleRefreshRate,
    }


#: Steady-state correction for BlockHammer's epoch-length blacklist
#: counters: our runs cover roughly 1% of a CBF epoch (see
#: BlockHammerConfig.history_scale).
BLOCKHAMMER_HISTORY_SCALE = 100.0

#: Trace-rate normalization for BlockHammer's throttle (see
#: BlockHammerConfig.rate_scale): the synthetic hot rows run about an
#: order of magnitude hotter than the benign applications they model.
BLOCKHAMMER_RATE_SCALE = 10.0


def archsim_scheme_factories(hcnt: int) -> Dict[str, SchemeFactory]:
    """The Figure 11 comparison set."""
    return {
        "SHADOW": lambda: make_shadow(hcnt),
        "BlockHammer": lambda: BlockHammer.for_hcnt(
            hcnt, history_scale=BLOCKHAMMER_HISTORY_SCALE,
            rate_scale=BLOCKHAMMER_RATE_SCALE),
        "RRS": lambda: RandomizedRowSwap.for_hcnt(hcnt),
    }


__all__ = [
    "NoMitigation",
    "SchemeFactory",
    "archsim_scheme_factories",
    "make_shadow",
    "make_shadow_with_trcd",
    "rfm_scheme_factories",
]
