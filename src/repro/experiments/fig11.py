"""Figure 11: architectural comparison vs BlockHammer and RRS.

Sweeps H_cnt from 16K to 2K on mix-high, mix-blend and a set of
mix-random mixes (DDR5-4800 in the paper; the timing grade is
selectable).  The expected shape: SHADOW stays within a few percent
everywhere; RRS collapses at low thresholds (channel-blocking swaps);
BlockHammer collapses at low thresholds (throttle delays + blacklist
misidentification).

One declarative :class:`~repro.spec.ExperimentSpec`; the mix-random
variants are separate points sharing one output path, which the generic
driver averages in order.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.configs import HCNT_SWEEP, fidelity_config
from repro.experiments.driver import run_spec
from repro.experiments.engine import Engine, archsim_scheme_specs
from repro.experiments.report import (
    driver_arg_parser,
    engine_from_args,
    format_table,
    report_failures,
    save_results,
)
from repro.spec import ExperimentSpec, PointSpec, workload_spec


def spec(fidelity: str = "smoke") -> ExperimentSpec:
    """The figure as data: one point per (mix variant, H_cnt, scheme)."""
    fc = fidelity_config(fidelity)
    sim = fc.sim_spec(requests=fc.tracker_requests)
    threads = fc.tracker_threads
    mixes = {
        "mix-high": [workload_spec("mix-high", threads=threads)],
        "mix-blend": [workload_spec("mix-blend", threads=threads)],
    }
    if fidelity == "full":
        mixes["mix-random"] = [
            workload_spec("mix-random", seed=seed, threads=threads)
            for seed in range(1, fc.mix_random_count + 1)]
    sweep = HCNT_SWEEP if fidelity == "full" else (16384, 4096, 2048)
    points = []
    for mix, variants in mixes.items():
        for hcnt in sweep:
            for name, scheme in archsim_scheme_specs(hcnt).items():
                for workload in variants:
                    points.append(PointSpec(
                        "ws-relative",
                        ("series", f"{mix}/{name}", str(hcnt)),
                        workload=workload, scheme=scheme, sim=sim))
    return ExperimentSpec("fig11", fidelity, points,
                          meta={"hcnt_sweep": list(sweep)})


def run(fidelity: str = "smoke", jobs: int = 1,
        engine: Optional[Engine] = None) -> Dict:
    """Run the experiment; returns the figure's series as a dict."""
    return run_spec(spec(fidelity), engine=engine, jobs=jobs)


def main() -> None:
    """Console entry point: print the regenerated figure series."""
    args = driver_arg_parser("fig11").parse_args()
    engine = engine_from_args(args)
    results = run(args.fidelity, jobs=args.jobs, engine=engine)
    if not report_failures(engine):
        hcnts = [str(h) for h in results["hcnt_sweep"]]
        rows = [[key] + [vals[h] for h in hcnts]
                for key, vals in results["series"].items()]
        print(format_table(
            ["series"] + [f"Hcnt={h}" for h in hcnts], rows,
            title=f"Figure 11: SHADOW vs BlockHammer vs RRS, weighted "
                  f"speedup relative to baseline ({args.fidelity})"))
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"fig11_{args.fidelity}", results))
    if engine.failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
