"""Figure 11: architectural comparison vs BlockHammer and RRS.

Sweeps H_cnt from 16K to 2K on mix-high, mix-blend and a set of
mix-random mixes (DDR5-4800 in the paper; the timing grade is
selectable).  The expected shape: SHADOW stays within a few percent
everywhere; RRS collapses at low thresholds (channel-blocking swaps);
BlockHammer collapses at low thresholds (throttle delays + blacklist
misidentification).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.configs import HCNT_SWEEP, fidelity_config
from repro.experiments.report import format_table, save_results
from repro.experiments.schemes import archsim_scheme_factories
from repro.sim.runner import ExperimentRunner
from repro.workloads import mix_blend, mix_high, mix_random


def run(fidelity: str = "smoke") -> Dict:
    """Run the experiment; returns the figure's series as a dict."""
    fc = fidelity_config(fidelity)
    runner = ExperimentRunner(
        config=fc.system_config(requests=fc.tracker_requests))
    threads = fc.tracker_threads
    mixes = {
        "mix-high": [mix_high(threads)],
        "mix-blend": [mix_blend(threads)],
    }
    if fidelity == "full":
        mixes["mix-random"] = [mix_random(seed, threads)
                               for seed in range(1, fc.mix_random_count + 1)]
    sweep = HCNT_SWEEP if fidelity == "full" else (16384, 4096, 2048)
    series: Dict[str, Dict[str, float]] = {}
    for mix_name, variants in mixes.items():
        for hcnt in sweep:
            for name, factory in archsim_scheme_factories(hcnt).items():
                rels = [runner.relative_performance(profiles, factory)
                        for profiles in variants]
                series.setdefault(f"{mix_name}/{name}", {})[str(hcnt)] = \
                    sum(rels) / len(rels)
    return {"experiment": "fig11", "fidelity": fidelity, "series": series,
            "hcnt_sweep": list(sweep)}


def main() -> None:
    """Console entry point: print the regenerated figure series."""
    import sys
    fidelity = sys.argv[1] if len(sys.argv) > 1 else "full"
    results = run(fidelity)
    hcnts = [str(h) for h in results["hcnt_sweep"]]
    rows = [[key] + [vals[h] for h in hcnts]
            for key, vals in results["series"].items()]
    print(format_table(
        ["series"] + [f"Hcnt={h}" for h in hcnts], rows,
        title=f"Figure 11: SHADOW vs BlockHammer vs RRS, weighted "
              f"speedup relative to baseline ({fidelity})"))
    print("saved:", save_results(f"fig11_{fidelity}", results))


if __name__ == "__main__":
    main()
