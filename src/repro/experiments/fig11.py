"""Figure 11: architectural comparison vs BlockHammer and RRS.

Sweeps H_cnt from 16K to 2K on mix-high, mix-blend and a set of
mix-random mixes (DDR5-4800 in the paper; the timing grade is
selectable).  The expected shape: SHADOW stays within a few percent
everywhere; RRS collapses at low thresholds (channel-blocking swaps);
BlockHammer collapses at low thresholds (throttle delays + blacklist
misidentification).

Runs on the experiment engine (deduplicated jobs, persistent cache,
``--jobs`` workers).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.configs import HCNT_SWEEP, fidelity_config
from repro.experiments.engine import (
    Engine,
    WsRelativePlan,
    archsim_scheme_specs,
)
from repro.experiments.report import (
    driver_arg_parser,
    format_table,
    save_results,
)
from repro.workloads import mix_blend, mix_high, mix_random


def run(fidelity: str = "smoke", jobs: int = 1,
        engine: Optional[Engine] = None) -> Dict:
    """Run the experiment; returns the figure's series as a dict."""
    fc = fidelity_config(fidelity)
    engine = engine or Engine(jobs=jobs)
    plan = WsRelativePlan(
        fc.system_config(requests=fc.tracker_requests))
    threads = fc.tracker_threads
    mixes = {
        "mix-high": [mix_high(threads)],
        "mix-blend": [mix_blend(threads)],
    }
    if fidelity == "full":
        mixes["mix-random"] = [mix_random(seed, threads)
                               for seed in range(1, fc.mix_random_count + 1)]
    sweep = HCNT_SWEEP if fidelity == "full" else (16384, 4096, 2048)
    for mix_name, variants in mixes.items():
        for hcnt in sweep:
            for name, spec in archsim_scheme_specs(hcnt).items():
                for i, profiles in enumerate(variants):
                    plan.add((mix_name, hcnt, name, i), profiles, spec)
    res = engine.run(plan.jobs)
    series: Dict[str, Dict[str, float]] = {}
    for mix_name, variants in mixes.items():
        for hcnt in sweep:
            for name in archsim_scheme_specs(hcnt):
                rels = [plan.value((mix_name, hcnt, name, i), res)
                        for i in range(len(variants))]
                series.setdefault(f"{mix_name}/{name}", {})[str(hcnt)] = \
                    sum(rels) / len(rels)
    return {"experiment": "fig11", "fidelity": fidelity, "series": series,
            "hcnt_sweep": list(sweep)}


def main() -> None:
    """Console entry point: print the regenerated figure series."""
    args = driver_arg_parser("fig11").parse_args()
    engine = Engine(jobs=args.jobs, use_cache=not args.no_cache)
    results = run(args.fidelity, jobs=args.jobs, engine=engine)
    hcnts = [str(h) for h in results["hcnt_sweep"]]
    rows = [[key] + [vals[h] for h in hcnts]
            for key, vals in results["series"].items()]
    print(format_table(
        ["series"] + [f"Hcnt={h}" for h in hcnts], rows,
        title=f"Figure 11: SHADOW vs BlockHammer vs RRS, weighted "
              f"speedup relative to baseline ({args.fidelity})"))
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"fig11_{args.fidelity}", results))


if __name__ == "__main__":
    main()
