"""Parallel, cached execution engine for the experiment drivers.

Every figure sweep decomposes into independent full-system simulations:
run ``System(profiles, scheme, config)`` and record the outcome.  The
engine expresses each such simulation as a declarative :class:`Job`
(profiles + a named :class:`SchemeSpec` + a ``SystemConfig``), then

* **deduplicates** -- a baseline run shared by five schemes is
  simulated once;
* **caches** -- each job's result is content-addressed on disk under
  ``results/.cache`` keyed by a stable hash of the job spec plus a
  schema version, so re-running a sweep is near-instant and an
  interrupted run resumes instead of restarting;
* **parallelises** -- cache misses fan out across worker processes
  (``--jobs N``); with ``jobs=1`` everything runs inline.

Scheme factories are lambdas and cannot cross a process boundary, so a
job carries a :class:`~repro.spec.SchemeSpec` -- a central-registry name
plus keyword parameters (:mod:`repro.spec.registry`) -- and each worker
rebuilds the mitigation from the registry.  The spec doubles as the
scheme half of the cache key.

Determinism is the invariant: ``System.run()`` is a pure function of the
job spec (seeds included), so results with ``jobs=8`` are value-identical
to ``jobs=1`` and to the pre-engine serial drivers.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.schemes import (
    BLOCKHAMMER_HISTORY_SCALE,
    BLOCKHAMMER_RATE_SCALE,
)
from repro.sim.metrics import relative_weighted_speedup
from repro.sim.system import System, SystemConfig, SystemResult
from repro.spec import SchemeSpec, scheme_spec
from repro.utils.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.workloads.trace import WorkloadProfile

#: The unprotected baseline every figure normalises against.
BASELINE = scheme_spec("none")


def rfm_scheme_specs(hcnt: int,
                     blast_radius: int = 1) -> Dict[str, SchemeSpec]:
    """Spec form of the Figure 8/10 comparison set."""
    return {
        "SHADOW": scheme_spec("shadow", hcnt=hcnt),
        "PARFM": scheme_spec("parfm", hcnt=hcnt, radius=blast_radius),
        "Mithril-perf": scheme_spec("mithril-perf", hcnt=hcnt,
                                    radius=blast_radius),
        "Mithril-area": scheme_spec("mithril-area", hcnt=hcnt,
                                    radius=blast_radius),
        "DRR": scheme_spec("drr"),
    }


def archsim_scheme_specs(hcnt: int) -> Dict[str, SchemeSpec]:
    """Spec form of the Figure 11 comparison set."""
    return {
        "SHADOW": scheme_spec("shadow", hcnt=hcnt),
        "BlockHammer": scheme_spec(
            "blockhammer", hcnt=hcnt,
            history_scale=BLOCKHAMMER_HISTORY_SCALE,
            rate_scale=BLOCKHAMMER_RATE_SCALE),
        "RRS": scheme_spec("rrs", hcnt=hcnt),
    }


# -- jobs and results --------------------------------------------------------------

@dataclass(frozen=True, eq=False)
class Job:
    """One independent simulation: profiles x scheme x configuration."""

    profiles: Tuple[WorkloadProfile, ...]
    scheme: SchemeSpec
    config: SystemConfig

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ValueError("a job needs at least one workload profile")

    @cached_property
    def spec(self) -> Dict:
        """The JSON-able cache key (identity) of this job."""
        return {
            "profiles": [dataclasses.asdict(p) for p in self.profiles],
            "scheme": self.scheme.payload(),
            "config": dataclasses.asdict(self.config),
        }

    @cached_property
    def _identity(self) -> str:
        from repro.utils.cache import canonical_json
        return canonical_json(self.spec)

    def __hash__(self) -> int:
        return hash(self._identity)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Job) and self._identity == other._identity


def alone_job(profile: WorkloadProfile, scheme: SchemeSpec,
              config: SystemConfig) -> Job:
    """A single-thread run (the alone time of weighted speedup)."""
    return Job((profile,), scheme, config)


def shared_job(profiles: Sequence[WorkloadProfile], scheme: SchemeSpec,
               config: SystemConfig) -> Job:
    """A multi-thread shared run."""
    return Job(tuple(profiles), scheme, config)


@dataclass
class JobResult:
    """The JSON-serialisable slice of a run the figures consume."""

    cycles: int
    thread_finish_cycles: List[int]
    reads_completed: int
    requests_issued: int
    refreshes: int
    rfms: int
    mitigation_name: str
    tck_ns: float
    acts: int
    precharges: int
    reads: int
    writes: int
    row_hits: int
    row_misses: int
    row_conflicts: int
    extra_act_cycles: int
    #: Observability summary captured at run time (``collect_summary``).
    #: Defaults to ``None`` so cache entries written before this field
    #: existed still deserialise.
    metrics: Optional[Dict] = None

    @property
    def finish_ns(self) -> List[float]:
        return [c * self.tck_ns for c in self.thread_finish_cycles]

    @classmethod
    def from_system_result(cls, result: SystemResult,
                           metrics: Optional[Dict] = None) -> "JobResult":
        stats = result.stats
        return cls(
            cycles=result.cycles,
            thread_finish_cycles=list(result.thread_finish_cycles),
            reads_completed=result.reads_completed,
            requests_issued=result.requests_issued,
            refreshes=result.refreshes,
            rfms=result.rfms,
            mitigation_name=result.mitigation_name,
            tck_ns=result.tck_ns,
            acts=stats.acts,
            precharges=stats.precharges,
            reads=stats.reads,
            writes=stats.writes,
            row_hits=stats.row_hits,
            row_misses=stats.row_misses,
            row_conflicts=stats.row_conflicts,
            extra_act_cycles=stats.extra_act_cycles,
            metrics=metrics,
        )

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "JobResult":
        return cls(**payload)


def _execute(job: Job) -> Dict:
    """Worker entry point: simulate one job (module-level for pickling).

    Runs with the metric registry on (no tracing, no sampling) so every
    cached result carries its observability summary; the registry costs
    one attribute add per counted event and never perturbs timing.
    """
    from repro.obs import Observability
    obs = Observability(metrics=True)
    system = System(list(job.profiles), job.scheme.build(),
                    config=job.config, obs=obs)
    result = system.run()
    return JobResult.from_system_result(result, metrics=obs.summary).to_dict()


# -- the engine --------------------------------------------------------------------

@dataclass
class EngineStats:
    """What one engine did, for the drivers' summary line."""

    submitted: int = 0       # jobs requested (before dedup)
    unique: int = 0          # distinct simulations needed
    cache_hits: int = 0      # served from the on-disk store
    executed: int = 0        # actually simulated this run

    def summary(self) -> str:
        return (f"{self.submitted} jobs ({self.unique} unique): "
                f"{self.cache_hits} cache hits, {self.executed} executed")


class Engine:
    """Runs jobs with deduplication, persistent caching and workers."""

    def __init__(self, jobs: int = 1,
                 cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
                 use_cache: bool = True):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.max_workers = jobs
        self.cache = (ResultCache(cache_dir)
                      if use_cache and cache_dir else None)
        self.stats = EngineStats()

    def run(self, jobs: Iterable[Job]) -> Dict[Job, JobResult]:
        """Execute every job; returns ``{job: result}``.

        Input order is irrelevant to the values (each job is an
        independent deterministic simulation), so any worker count
        produces identical results.
        """
        ordered: List[Job] = []
        seen = set()
        submitted = 0
        for job in jobs:
            submitted += 1
            if job not in seen:
                seen.add(job)
                ordered.append(job)
        self.stats.submitted += submitted
        self.stats.unique += len(ordered)

        results: Dict[Job, JobResult] = {}
        pending: List[Job] = []
        for job in ordered:
            cached = self.cache.get(job.spec) if self.cache else None
            if cached is not None:
                results[job] = JobResult.from_dict(cached)
                self.stats.cache_hits += 1
            else:
                pending.append(job)

        if pending:
            if self.max_workers == 1 or len(pending) == 1:
                payloads = map(_execute, pending)
            else:
                workers = min(self.max_workers, len(pending))
                pool = ProcessPoolExecutor(max_workers=workers)
                payloads = pool.map(_execute, pending)
            try:
                for job, payload in zip(pending, payloads):
                    results[job] = JobResult.from_dict(payload)
                    if self.cache:
                        self.cache.put(job.spec, payload)
                    self.stats.executed += 1
            finally:
                if self.max_workers > 1 and len(pending) > 1:
                    pool.shutdown()
        return results


# -- metric plans ------------------------------------------------------------------

class WsRelativePlan:
    """Bookkeeping for WS(scheme)/WS(baseline) ratios (Figures 8-11).

    ``add`` registers a labelled (profiles, scheme) pair and derives the
    three job groups the ratio needs -- per-profile alone runs under the
    baseline, the shared scheme run, the shared baseline run.  ``jobs``
    is the deduplicated union, ready for :meth:`Engine.run`; ``value``
    assembles each label's ratio from the results.

    Both weighted speedups use the *baseline system's* alone times as
    the IPC_alone reference (the conventional normalisation); using each
    scheme's own alone times would let a scheme that slows solo
    execution paradoxically raise its ratio above 1.
    """

    def __init__(self, config: SystemConfig,
                 baseline: SchemeSpec = BASELINE):
        self.config = config
        self.baseline = baseline
        self._entries: Dict[Any, Tuple[Tuple[Job, ...], Job, Job]] = {}
        self._jobs: Dict[Job, None] = {}

    def _register(self, job: Job) -> Job:
        self._jobs.setdefault(job, None)
        return job

    def add(self, label: Any, profiles: Sequence[WorkloadProfile],
            scheme: SchemeSpec) -> None:
        profiles = tuple(profiles)
        alone = tuple(
            self._register(alone_job(p, self.baseline, self.config))
            for p in profiles)
        shared_scheme = self._register(
            shared_job(profiles, scheme, self.config))
        shared_base = self._register(
            shared_job(profiles, self.baseline, self.config))
        self._entries[label] = (alone, shared_scheme, shared_base)

    @property
    def jobs(self) -> List[Job]:
        return list(self._jobs)

    def value(self, label: Any, results: Dict[Job, JobResult]) -> float:
        alone, shared_scheme, shared_base = self._entries[label]
        alone_cycles = [results[j].thread_finish_cycles[0] for j in alone]
        return relative_weighted_speedup(
            alone_cycles,
            results[shared_scheme].thread_finish_cycles,
            results[shared_base].thread_finish_cycles)


__all__ = [
    "BASELINE",
    "Engine",
    "EngineStats",
    "Job",
    "JobResult",
    "SchemeSpec",
    "WsRelativePlan",
    "alone_job",
    "archsim_scheme_specs",
    "rfm_scheme_specs",
    "scheme_spec",
    "shared_job",
]
