"""Parallel, cached execution engine for the experiment drivers.

Every figure sweep decomposes into independent full-system simulations:
run ``System(profiles, scheme, config)`` and record the outcome.  The
engine expresses each such simulation as a declarative :class:`Job`
(profiles + a named :class:`SchemeSpec` + a ``SystemConfig``), then

* **deduplicates** -- a baseline run shared by five schemes is
  simulated once;
* **caches** -- each job's result is content-addressed on disk under
  ``results/.cache`` keyed by a stable hash of the job spec plus a
  schema version, so re-running a sweep is near-instant and an
  interrupted run resumes instead of restarting;
* **parallelises** -- cache misses fan out across worker processes
  (``--jobs N``); with ``jobs=1`` everything runs inline;
* **survives failures** -- every pending job is its own future, drained
  as it completes and written to the cache *the moment it lands*, so a
  crash, OOM-killed worker or Ctrl-C at any point loses at most the
  jobs that were in flight.  A rerun of the same sweep serves everything
  already completed from the cache and simulates only the remainder.

Failure model (see DESIGN.md for the full contract):

* a job that raises is retried up to ``retries`` times with exponential
  backoff (``backoff_s * 2**k``); a retry re-runs the same pure
  function, so retried results are value-identical to first-try ones;
* a dead worker (``BrokenProcessPool``) poisons every in-flight future;
  the engine rebuilds the pool and resubmits the survivors, charging
  one attempt to each in-flight job because the culprit is
  indistinguishable from the victims;
* ``job_timeout`` (seconds, workers only -- inline runs cannot be
  interrupted) kills the pool, fails or retries the overrunning jobs,
  and resubmits the innocent in-flight ones without charging them an
  attempt;
* a job that exhausts its attempts becomes a :class:`JobFailure`
  (exception type, message, traceback, attempts, wall time).  The
  default is fail-fast: :class:`JobFailedError` aborts the sweep (after
  caching every already-completed result).  With ``keep_going=True``
  the engine records the failure, finishes everything else, and returns
  the partial result dict; drivers read ``Engine.failures`` /
  :meth:`Engine.failure_report`.

Retry/timeout/crash counters are mirrored into a
:class:`~repro.obs.MetricRegistry` (``engine.*`` names) so failures are
visible wherever observability summaries are surfaced.

Scheme factories are lambdas and cannot cross a process boundary, so a
job carries a :class:`~repro.spec.SchemeSpec` -- a central-registry name
plus keyword parameters (:mod:`repro.spec.registry`) -- and each worker
rebuilds the mitigation from the registry.  The spec doubles as the
scheme half of the cache key.

Determinism is the invariant: ``System.run()`` is a pure function of the
job spec (seeds included), so results with ``jobs=8`` are value-identical
to ``jobs=1`` and to the pre-engine serial drivers.
"""

from __future__ import annotations

import dataclasses
import os
import time
import traceback as _tb
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import cached_property
from typing import (
    Any, Callable, Deque, Dict, Iterable, List, Optional, Sequence, Tuple,
)

from repro.experiments.schemes import (
    BLOCKHAMMER_HISTORY_SCALE,
    BLOCKHAMMER_RATE_SCALE,
)
from repro.obs import MetricRegistry
from repro.sim.metrics import relative_weighted_speedup
from repro.sim.system import System, SystemConfig, SystemResult
from repro.spec import FaultSpec, SchemeSpec, scheme_spec
from repro.utils.cache import DEFAULT_CACHE_DIR, ResultCache, spec_digest
from repro.workloads.trace import WorkloadProfile

#: The unprotected baseline every figure normalises against.
BASELINE = scheme_spec("none")


def rfm_scheme_specs(hcnt: int,
                     blast_radius: int = 1) -> Dict[str, SchemeSpec]:
    """Spec form of the Figure 8/10 comparison set."""
    return {
        "SHADOW": scheme_spec("shadow", hcnt=hcnt),
        "PARFM": scheme_spec("parfm", hcnt=hcnt, radius=blast_radius),
        "Mithril-perf": scheme_spec("mithril-perf", hcnt=hcnt,
                                    radius=blast_radius),
        "Mithril-area": scheme_spec("mithril-area", hcnt=hcnt,
                                    radius=blast_radius),
        "DRR": scheme_spec("drr"),
    }


def archsim_scheme_specs(hcnt: int) -> Dict[str, SchemeSpec]:
    """Spec form of the Figure 11 comparison set."""
    return {
        "SHADOW": scheme_spec("shadow", hcnt=hcnt),
        "BlockHammer": scheme_spec(
            "blockhammer", hcnt=hcnt,
            history_scale=BLOCKHAMMER_HISTORY_SCALE,
            rate_scale=BLOCKHAMMER_RATE_SCALE),
        "RRS": scheme_spec("rrs", hcnt=hcnt),
    }


# -- jobs and results --------------------------------------------------------------

@dataclass(frozen=True, eq=False)
class Job:
    """One independent simulation: profiles x scheme x configuration.

    ``faults`` optionally attaches a fault-injection observer
    (:class:`~repro.spec.FaultSpec`) to the run.  The observer is
    passive -- it never perturbs timing -- but its report becomes part
    of the result, so it participates in the cache key.
    """

    profiles: Tuple[WorkloadProfile, ...]
    scheme: SchemeSpec
    config: SystemConfig
    faults: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ValueError("a job needs at least one workload profile")

    @cached_property
    def spec(self) -> Dict:
        """The JSON-able cache key (identity) of this job."""
        spec = {
            "profiles": [dataclasses.asdict(p) for p in self.profiles],
            "scheme": self.scheme.payload(),
            "config": dataclasses.asdict(self.config),
        }
        # Only fault-injection jobs carry the key, so every job written
        # before the field existed keeps its historical cache identity.
        if self.faults is not None:
            spec["faults"] = self.faults.to_dict()
        return spec

    @cached_property
    def _identity(self) -> str:
        from repro.utils.cache import canonical_json
        return canonical_json(self.spec)

    def __hash__(self) -> int:
        return hash(self._identity)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Job) and self._identity == other._identity


def alone_job(profile: WorkloadProfile, scheme: SchemeSpec,
              config: SystemConfig) -> Job:
    """A single-thread run (the alone time of weighted speedup)."""
    return Job((profile,), scheme, config)


def shared_job(profiles: Sequence[WorkloadProfile], scheme: SchemeSpec,
               config: SystemConfig) -> Job:
    """A multi-thread shared run."""
    return Job(tuple(profiles), scheme, config)


@dataclass
class JobResult:
    """The JSON-serialisable slice of a run the figures consume."""

    cycles: int
    thread_finish_cycles: List[int]
    reads_completed: int
    requests_issued: int
    refreshes: int
    rfms: int
    mitigation_name: str
    tck_ns: float
    acts: int
    precharges: int
    reads: int
    writes: int
    row_hits: int
    row_misses: int
    row_conflicts: int
    extra_act_cycles: int
    #: Observability summary captured at run time (``collect_summary``).
    #: Defaults to ``None`` so cache entries written before this field
    #: existed still deserialise.
    metrics: Optional[Dict] = None
    #: Fault-injection report (``FaultInjector.report()``) when the job
    #: carried a ``FaultSpec``; ``None`` (and absent from old cache
    #: entries) otherwise.
    faults: Optional[Dict] = None

    @property
    def finish_ns(self) -> List[float]:
        return [c * self.tck_ns for c in self.thread_finish_cycles]

    @classmethod
    def from_system_result(cls, result: SystemResult,
                           metrics: Optional[Dict] = None,
                           faults: Optional[Dict] = None) -> "JobResult":
        stats = result.stats
        return cls(
            cycles=result.cycles,
            thread_finish_cycles=list(result.thread_finish_cycles),
            reads_completed=result.reads_completed,
            requests_issued=result.requests_issued,
            refreshes=result.refreshes,
            rfms=result.rfms,
            mitigation_name=result.mitigation_name,
            tck_ns=result.tck_ns,
            acts=stats.acts,
            precharges=stats.precharges,
            reads=stats.reads,
            writes=stats.writes,
            row_hits=stats.row_hits,
            row_misses=stats.row_misses,
            row_conflicts=stats.row_conflicts,
            extra_act_cycles=stats.extra_act_cycles,
            metrics=metrics,
            faults=faults,
        )

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "JobResult":
        return cls(**payload)


def _maybe_inject_fault(job: Job) -> None:
    """CI/test fault hook: ``REPRO_FAULT_INJECT=tok[,tok...]`` makes any
    job whose scheme kind or any profile name contains a token raise.

    Lets the fault-injection smoke job (and manual experiments) exercise
    the retry/keep-going machinery end to end without patching code.
    """
    tokens = os.environ.get("REPRO_FAULT_INJECT")
    if not tokens:
        return
    names = [job.scheme.kind] + [p.name for p in job.profiles]
    for token in tokens.split(","):
        token = token.strip()
        if token and any(token in name for name in names):
            raise RuntimeError(
                f"injected worker fault (REPRO_FAULT_INJECT={token!r})")


def _execute(job: Job) -> Dict:
    """Worker entry point: simulate one job (module-level for pickling).

    Runs with the metric registry on (no tracing, no sampling) so every
    cached result carries its observability summary; the registry costs
    one attribute add per counted event and never perturbs timing.
    """
    from repro.obs import Observability
    _maybe_inject_fault(job)
    obs = Observability(metrics=True)
    observer = job.faults.build() if job.faults is not None else None
    if observer is not None:
        observer.attach_obs(obs)
    system = System(list(job.profiles), job.scheme.build(),
                    observer=observer, config=job.config, obs=obs)
    result = system.run()
    faults = observer.report() if observer is not None else None
    return JobResult.from_system_result(
        result, metrics=obs.summary, faults=faults).to_dict()


# -- failures ----------------------------------------------------------------------

@dataclass
class JobFailure:
    """One job's permanent failure, after all retries were spent.

    Self-describing (digest + scheme + workload names travel with the
    exception details) so :meth:`Engine.failure_report` is a JSON-able
    record a driver can persist next to partial results.
    """

    job_digest: str
    scheme: str
    workloads: Tuple[str, ...]
    exc_type: str
    message: str
    traceback: str
    attempts: int
    duration_s: float
    timed_out: bool = False

    @classmethod
    def from_exception(cls, job: Job, exc: BaseException, attempts: int,
                       duration_s: float,
                       timed_out: bool = False) -> "JobFailure":
        trace = "".join(_tb.format_exception(
            type(exc), exc, exc.__traceback__)).rstrip()
        return cls(
            job_digest=spec_digest(job.spec),
            scheme=job.scheme.kind,
            workloads=tuple(p.name for p in job.profiles),
            exc_type=type(exc).__name__,
            message=str(exc),
            traceback=trace,
            attempts=attempts,
            duration_s=round(duration_s, 4),
            timed_out=timed_out,
        )

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    def describe(self) -> str:
        what = "timed out" if self.timed_out else "failed"
        return (f"{self.scheme} x {'+'.join(self.workloads)} {what} after "
                f"{self.attempts} attempt(s): {self.exc_type}: "
                f"{self.message}")


class JobFailedError(RuntimeError):
    """Raised in fail-fast mode when a job exhausts its attempts.

    Everything that completed before the failure is already in the
    cache, so rerunning the sweep resumes rather than restarts.
    """

    def __init__(self, job: Job, failure: JobFailure):
        self.job = job
        self.failure = failure
        message = f"job {failure.describe()}"
        if failure.traceback:
            message += f"\n{failure.traceback}"
        super().__init__(message)


class _JobTimeout(Exception):
    """Internal marker for a job that overran ``job_timeout``."""


class _Attempt:
    """Mutable per-job retry bookkeeping inside one ``Engine.run``."""

    __slots__ = ("job", "attempts", "started", "spent")

    def __init__(self, job: Job):
        self.job = job
        self.attempts = 0          # times this job was started
        self.started = 0.0         # monotonic start of the live attempt
        self.spent = 0.0           # wall seconds across finished attempts


# -- the engine --------------------------------------------------------------------

@dataclass
class EngineStats:
    """What one engine did, for the drivers' summary line."""

    submitted: int = 0       # jobs requested (before dedup)
    unique: int = 0          # distinct simulations needed
    cache_hits: int = 0      # served from the on-disk store
    executed: int = 0        # simulated AND cached/recorded this run
    failed: int = 0          # permanent failures (retries exhausted)
    retried: int = 0         # resubmissions after a transient failure
    timeouts: int = 0        # attempts killed by --job-timeout
    pool_crashes: int = 0    # BrokenProcessPool events (pool rebuilt)

    def summary(self) -> str:
        line = (f"{self.submitted} jobs ({self.unique} unique): "
                f"{self.cache_hits} cache hits, {self.executed} executed, "
                f"{self.failed} failed, {self.retried} retried")
        if self.timeouts:
            line += f", {self.timeouts} timed out"
        if self.pool_crashes:
            line += f", {self.pool_crashes} pool crashes"
        return line


#: How long the drain loop waits for the next completion before it
#: checks backoff parking and job deadlines.
_POLL_S = 0.25


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcefully tear a pool down, terminating its worker processes.

    ``shutdown`` alone would wait for (or leak) a runaway job; the only
    way to reclaim a worker stuck past its deadline is to kill it.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


class Engine:
    """Runs jobs with dedup, persistent caching, workers and retries.

    ``retries``/``backoff_s`` bound per-job re-execution of transient
    failures; ``job_timeout`` (seconds) kills attempts that overrun
    (worker pools only); ``keep_going`` turns the default fail-fast
    :class:`JobFailedError` into a recorded :class:`JobFailure` plus
    partial results.  ``worker`` is the picklable per-job callable
    (tests inject deterministic faults through it); ``metrics`` is an
    optional shared :class:`~repro.obs.MetricRegistry` for the
    ``engine.*`` counters.
    """

    def __init__(self, jobs: int = 1,
                 cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
                 use_cache: bool = True,
                 retries: int = 0,
                 backoff_s: float = 0.5,
                 job_timeout: Optional[float] = None,
                 keep_going: bool = False,
                 worker: Optional[Callable[[Job], Dict]] = None,
                 metrics: Optional[MetricRegistry] = None):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive")
        self.max_workers = jobs
        self.cache = (ResultCache(cache_dir)
                      if use_cache and cache_dir else None)
        if self.cache is not None:
            self.cache.clean_stale_tmps()
        self.retries = retries
        self.backoff_s = backoff_s
        self.job_timeout = job_timeout
        self.keep_going = keep_going
        self.worker = worker if worker is not None else _execute
        self.stats = EngineStats()
        self.failures: Dict[Job, JobFailure] = {}
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._c_cache_hits = self.metrics.counter("engine.cache_hits")
        self._c_executed = self.metrics.counter("engine.executed")
        self._c_retries = self.metrics.counter("engine.retries")
        self._c_timeouts = self.metrics.counter("engine.timeouts")
        self._c_pool_crashes = self.metrics.counter("engine.pool_crashes")
        self._c_failures = self.metrics.counter("engine.failures")

    def failure_report(self) -> List[Dict]:
        """JSON-able record of every permanent failure, in the order
        they became permanent."""
        return [failure.to_dict() for failure in self.failures.values()]

    def run(self, jobs: Iterable[Job]) -> Dict[Job, JobResult]:
        """Execute every job; returns ``{job: result}``.

        Input order is irrelevant to the values (each job is an
        independent deterministic simulation), so any worker count --
        and any completion/retry order -- produces identical results.
        Each result is cached the moment it lands, so an interruption
        loses at most the in-flight jobs.  In keep-going mode jobs that
        failed permanently are absent from the dict and recorded in
        :attr:`failures`; otherwise the first permanent failure raises
        :class:`JobFailedError`.
        """
        ordered: List[Job] = []
        seen = set()
        submitted = 0
        for job in jobs:
            submitted += 1
            if job not in seen:
                seen.add(job)
                ordered.append(job)
        self.stats.submitted += submitted
        self.stats.unique += len(ordered)

        results: Dict[Job, JobResult] = {}
        pending: List[Job] = []
        for job in ordered:
            cached = self.cache.get(job.spec) if self.cache else None
            if cached is not None:
                results[job] = JobResult.from_dict(cached)
                self.stats.cache_hits += 1
                self._c_cache_hits.inc()
            else:
                pending.append(job)

        if pending:
            inline = (self.max_workers == 1
                      or (len(pending) == 1 and self.job_timeout is None))
            if inline:
                self._run_inline(pending, results)
            else:
                self._run_pool(pending, results)
        return results

    # -- shared bookkeeping ------------------------------------------------------

    def _record(self, job: Job, payload: Dict,
                results: Dict[Job, JobResult]) -> None:
        """One completed job: cache first, then count it as executed."""
        if self.cache:
            self.cache.put(job.spec, payload)
        results[job] = JobResult.from_dict(payload)
        self.stats.executed += 1
        self._c_executed.inc()

    def _fail(self, job: Job, failure: JobFailure) -> None:
        self.failures[job] = failure
        self.stats.failed += 1
        self._c_failures.inc()
        if not self.keep_going:
            raise JobFailedError(job, failure)

    def _note_retry(self, n: int = 1) -> None:
        self.stats.retried += n
        self._c_retries.inc(n)

    def _backoff_delay(self, attempts: int) -> float:
        """Exponential backoff before attempt ``attempts + 1``."""
        return self.backoff_s * (2 ** max(0, attempts - 1))

    # -- inline execution (jobs=1) -----------------------------------------------

    def _run_inline(self, pending: Sequence[Job],
                    results: Dict[Job, JobResult]) -> None:
        for job in pending:
            attempt = _Attempt(job)
            while True:
                attempt.attempts += 1
                start = time.perf_counter()
                try:
                    payload = self.worker(job)
                except Exception as exc:
                    attempt.spent += time.perf_counter() - start
                    if attempt.attempts > self.retries:
                        self._fail(job, JobFailure.from_exception(
                            job, exc, attempt.attempts, attempt.spent))
                        break
                    self._note_retry()
                    delay = self._backoff_delay(attempt.attempts)
                    if delay:
                        time.sleep(delay)
                else:
                    attempt.spent += time.perf_counter() - start
                    self._record(job, payload, results)
                    break

    # -- pool execution (jobs>1) -------------------------------------------------

    def _run_pool(self, pending: Sequence[Job],
                  results: Dict[Job, JobResult]) -> None:
        """Submit each job as its own future and drain as completed.

        The in-flight window is bounded by the worker count, so a
        ``BrokenProcessPool`` or deadline kill only ever has to reason
        about (and resubmit) at most ``workers`` attempts, and a
        ``job_timeout`` measured from submission is a faithful per-job
        deadline (a submitted job starts immediately).
        """
        workers = min(self.max_workers, len(pending))
        queue: Deque[_Attempt] = deque(_Attempt(job) for job in pending)
        parked: List[Tuple[float, _Attempt]] = []   # backoff waiting room
        inflight: Dict[Any, _Attempt] = {}
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            while queue or inflight or parked:
                now = time.monotonic()
                if parked:
                    still_parked = []
                    for ready_at, attempt in parked:
                        if ready_at <= now:
                            queue.append(attempt)
                        else:
                            still_parked.append((ready_at, attempt))
                    parked = still_parked
                crashed_at_submit = False
                while queue and len(inflight) < workers:
                    attempt = queue.popleft()
                    attempt.attempts += 1
                    attempt.started = time.monotonic()
                    try:
                        future = pool.submit(self.worker, attempt.job)
                    except BrokenProcessPool:
                        # A worker died between drain iterations and the
                        # crash surfaced at submit time.  This attempt
                        # never ran, so it resubmits for free; the
                        # charge lands on the futures that were actually
                        # in flight (judged by ``_rebuild_pool``).
                        crashed_at_submit = True
                        attempt.attempts -= 1
                        queue.appendleft(attempt)
                        break
                    inflight[future] = attempt
                if crashed_at_submit:
                    pool = self._rebuild_pool(pool, workers, inflight,
                                              parked)
                    continue
                if not inflight:
                    # Everything is parked on backoff; sleep to the
                    # earliest release.
                    wake = min(ready_at for ready_at, _ in parked)
                    time.sleep(max(0.0, min(wake - now, _POLL_S)) or 0.001)
                    continue
                if self.job_timeout is not None:
                    tick = min(_POLL_S, max(0.01, self.job_timeout / 8))
                elif parked:
                    tick = 0.05
                else:
                    tick = _POLL_S
                done, _ = wait(list(inflight), timeout=tick,
                               return_when=FIRST_COMPLETED)
                # Record successes before acting on failures so a
                # fail-fast abort preserves every completed result.
                broken = False
                for future in sorted(done,
                                     key=lambda f: f.exception() is not None):
                    attempt = inflight.pop(future)
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        broken = True
                        self._after_crash(attempt, parked)
                    except Exception as exc:
                        attempt.spent += time.monotonic() - attempt.started
                        if attempt.attempts > self.retries:
                            self._fail(attempt.job, JobFailure.from_exception(
                                attempt.job, exc, attempt.attempts,
                                attempt.spent))
                        else:
                            self._note_retry()
                            self._park(attempt, parked)
                    else:
                        attempt.spent += time.monotonic() - attempt.started
                        self._record(attempt.job, payload, results)
                if broken:
                    pool = self._rebuild_pool(pool, workers, inflight,
                                              parked)
                    continue
                if self.job_timeout is not None and inflight:
                    now = time.monotonic()
                    expired = {f: a for f, a in inflight.items()
                               if now - a.started > self.job_timeout}
                    if expired:
                        pool = self._expire(pool, workers, inflight,
                                            expired, queue, parked, now)
        except BaseException:
            # Abort path (fail-fast, Ctrl-C): don't wait for in-flight
            # jobs to drain -- cancel the queue and leave immediately.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            # Clean path: everything is drained, so joining is instant
            # and leaves no half-shut management thread for the
            # interpreter-exit hook to race against (EBADF noise).
            pool.shutdown(wait=True, cancel_futures=True)

    def _park(self, attempt: _Attempt,
              parked: List[Tuple[float, _Attempt]]) -> None:
        """Queue a retry after its exponential-backoff delay."""
        delay = self._backoff_delay(attempt.attempts)
        parked.append((time.monotonic() + delay, attempt))

    def _rebuild_pool(self, pool: ProcessPoolExecutor, workers: int,
                      inflight: Dict[Any, _Attempt],
                      parked: List[Tuple[float, _Attempt]],
                      ) -> ProcessPoolExecutor:
        """Replace a broken pool: judge the in-flight jobs, restart.

        Every in-flight future of a crashed pool is poisoned; each
        attempt is retried or failed (``_after_crash``) and the
        survivors re-enter the queue against a fresh pool.
        """
        self.stats.pool_crashes += 1
        self._c_pool_crashes.inc()
        try:
            for attempt in inflight.values():
                self._after_crash(attempt, parked)
        finally:
            # Even if fail-fast aborts mid-judgement, the broken pool
            # must not linger (the outer teardown re-shuts the old
            # handle, which is idempotent).
            inflight.clear()
            pool.shutdown(wait=False, cancel_futures=True)
        return ProcessPoolExecutor(max_workers=workers)

    def _after_crash(self, attempt: _Attempt,
                     parked: List[Tuple[float, _Attempt]]) -> None:
        """One in-flight job of a crashed pool: retry or fail it.

        The culprit is indistinguishable from the victims, so every
        in-flight job is charged one attempt; innocent ones simply
        succeed on resubmission.
        """
        attempt.spent += time.monotonic() - attempt.started
        if attempt.attempts > self.retries:
            self._fail(attempt.job, JobFailure(
                job_digest=spec_digest(attempt.job.spec),
                scheme=attempt.job.scheme.kind,
                workloads=tuple(p.name for p in attempt.job.profiles),
                exc_type="BrokenProcessPool",
                message="worker process died (crash or OOM kill)",
                traceback="",
                attempts=attempt.attempts,
                duration_s=round(attempt.spent, 4)))
        else:
            self._note_retry()
            self._park(attempt, parked)

    def _expire(self, pool: ProcessPoolExecutor, workers: int,
                inflight: Dict[Any, _Attempt],
                expired: Dict[Any, _Attempt],
                queue: Deque[_Attempt],
                parked: List[Tuple[float, _Attempt]],
                now: float) -> ProcessPoolExecutor:
        """Kill the pool to reclaim workers stuck past ``job_timeout``.

        Expired attempts are failed or retried; the innocent in-flight
        jobs the kill also took down are resubmitted without being
        charged an attempt.
        """
        self.stats.timeouts += len(expired)
        self._c_timeouts.inc(len(expired))
        survivors = [a for f, a in inflight.items() if f not in expired]
        inflight.clear()
        _kill_pool(pool)
        # Judge the expired attempts before building the replacement
        # pool: a fail-fast abort here must not leak fresh workers.
        for attempt in expired.values():
            attempt.spent += now - attempt.started
            if attempt.attempts > self.retries:
                self._fail(attempt.job, JobFailure(
                    job_digest=spec_digest(attempt.job.spec),
                    scheme=attempt.job.scheme.kind,
                    workloads=tuple(p.name for p in attempt.job.profiles),
                    exc_type=_JobTimeout.__name__,
                    message=(f"job exceeded --job-timeout "
                             f"{self.job_timeout}s"),
                    traceback="",
                    attempts=attempt.attempts,
                    duration_s=round(attempt.spent, 4),
                    timed_out=True))
            else:
                self._note_retry()
                self._park(attempt, parked)
        pool = ProcessPoolExecutor(max_workers=workers)
        for attempt in survivors:
            attempt.attempts -= 1      # not their fault; free resubmit
            queue.append(attempt)
        return pool


# -- metric plans ------------------------------------------------------------------

class WsRelativePlan:
    """Bookkeeping for WS(scheme)/WS(baseline) ratios (Figures 8-11).

    ``add`` registers a labelled (profiles, scheme) pair and derives the
    three job groups the ratio needs -- per-profile alone runs under the
    baseline, the shared scheme run, the shared baseline run.  ``jobs``
    is the deduplicated union, ready for :meth:`Engine.run`; ``value``
    assembles each label's ratio from the results.

    Both weighted speedups use the *baseline system's* alone times as
    the IPC_alone reference (the conventional normalisation); using each
    scheme's own alone times would let a scheme that slows solo
    execution paradoxically raise its ratio above 1.
    """

    def __init__(self, config: SystemConfig,
                 baseline: SchemeSpec = BASELINE):
        self.config = config
        self.baseline = baseline
        self._entries: Dict[Any, Tuple[Tuple[Job, ...], Job, Job]] = {}
        self._jobs: Dict[Job, None] = {}

    def _register(self, job: Job) -> Job:
        self._jobs.setdefault(job, None)
        return job

    def add(self, label: Any, profiles: Sequence[WorkloadProfile],
            scheme: SchemeSpec) -> None:
        profiles = tuple(profiles)
        alone = tuple(
            self._register(alone_job(p, self.baseline, self.config))
            for p in profiles)
        shared_scheme = self._register(
            shared_job(profiles, scheme, self.config))
        shared_base = self._register(
            shared_job(profiles, self.baseline, self.config))
        self._entries[label] = (alone, shared_scheme, shared_base)

    @property
    def jobs(self) -> List[Job]:
        return list(self._jobs)

    def value(self, label: Any, results: Dict[Job, JobResult]) -> float:
        alone, shared_scheme, shared_base = self._entries[label]
        alone_cycles = [results[j].thread_finish_cycles[0] for j in alone]
        return relative_weighted_speedup(
            alone_cycles,
            results[shared_scheme].thread_finish_cycles,
            results[shared_base].thread_finish_cycles)


__all__ = [
    "BASELINE",
    "Engine",
    "EngineStats",
    "Job",
    "JobFailedError",
    "JobFailure",
    "JobResult",
    "SchemeSpec",
    "WsRelativePlan",
    "alone_job",
    "archsim_scheme_specs",
    "rfm_scheme_specs",
    "scheme_spec",
    "shared_job",
]
