"""The generic, spec-interpreting experiment driver.

Every figure and table is *data*: an
:class:`~repro.spec.ExperimentSpec` -- a grid of
:class:`~repro.spec.PointSpec` cells, each naming a **metric** (how the
cell's value is computed), an output **group** (where the value lands in
the result dict) and, for simulation metrics, workload/scheme/sim specs.
This module interprets that data:

1. each point's metric *plans* the engine jobs it needs (none, for
   analytic metrics such as the Table II security bounds);
2. the union of all jobs runs once through the
   :class:`~repro.experiments.engine.Engine` (deduplicated, cached,
   parallel);
3. each metric assembles its point's value from the results, and values
   are placed at their group paths -- several points sharing a path are
   averaged in insertion order (e.g. Figure 8's per-app ratios within a
   SPEC group, Figure 11's mix-random variants).

Metrics live in a registry of their own (:data:`METRICS`): the
simulation ratios are defined here, the closed-form analytic metrics
register from the modules that own their models (``table2``, ``table3``,
``ablations``).  Because specs are plain data, ``run_spec`` accepts a
spec rehydrated from JSON just as happily as one built in code --
``python -m repro.experiments.driver grid.json`` runs a serialized
experiment end to end.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.engine import (
    BASELINE,
    Engine,
    Job,
    JobResult,
    alone_job,
    shared_job,
)
from repro.sim.metrics import relative_weighted_speedup
from repro.spec import ExperimentSpec
from repro.spec.base import thaw_params
from repro.spec.registry import Registry

#: How a point's value is computed.  The analytic metrics register from
#: the modules that own the underlying models (imported lazily on first
#: lookup, like every registry provider).
METRICS = Registry("metric", providers=(
    "repro.experiments.table2",
    "repro.experiments.table3",
    "repro.experiments.ablations",
))


@dataclass
class ResolvedPoint:
    """One grid cell with its specs resolved to simulator objects."""

    point: Any                       # the PointSpec
    profiles: Optional[Tuple]        # WorkloadProfile tuple, if any
    config: Optional[Any]            # SystemConfig, if any
    params: Dict[str, Any]           # thawed point parameters


class AnalyticMetric:
    """Base for closed-form metrics: no jobs, value from params alone."""

    def plan(self, rp: ResolvedPoint) -> Dict[str, Any]:
        return {}

    def value(self, rp: ResolvedPoint, plan: Dict[str, Any],
              results: Dict[Job, JobResult]) -> Any:
        raise NotImplementedError


# -- simulation metrics ------------------------------------------------------------

class _WsRelative:
    """WS(scheme)/WS(baseline) of a multi-programmed mix (Figs 8-11).

    Both weighted speedups use the *baseline system's* alone times as
    the IPC_alone reference (the conventional normalisation); using each
    scheme's own alone times would let a scheme that slows solo
    execution paradoxically raise its ratio above 1.
    """

    def plan(self, rp):
        return {
            "alone": tuple(alone_job(p, BASELINE, rp.config)
                           for p in rp.profiles),
            "scheme": shared_job(rp.profiles, rp.point.scheme, rp.config),
            "base": shared_job(rp.profiles, BASELINE, rp.config),
        }

    def value(self, rp, plan, results):
        alone_cycles = [results[j].thread_finish_cycles[0]
                        for j in plan["alone"]]
        return relative_weighted_speedup(
            alone_cycles,
            results[plan["scheme"]].thread_finish_cycles,
            results[plan["base"]].thread_finish_cycles)


class _StRelative:
    """Reciprocal execution time of an alone run, scheme vs baseline."""

    def plan(self, rp):
        (profile,) = rp.profiles
        return {"scheme": alone_job(profile, rp.point.scheme, rp.config),
                "base": alone_job(profile, BASELINE, rp.config)}

    def value(self, rp, plan, results):
        return (results[plan["base"]].thread_finish_cycles[0]
                / results[plan["scheme"]].thread_finish_cycles[0])


class _MtRelative:
    """Reciprocal execution time (slowest thread) of a homogeneous
    shared run, scheme vs baseline (Fig. 8's GAPBS/NPB columns)."""

    def plan(self, rp):
        return {"scheme": shared_job(rp.profiles, rp.point.scheme,
                                     rp.config),
                "base": shared_job(rp.profiles, BASELINE, rp.config)}

    def value(self, rp, plan, results):
        return (max(results[plan["base"]].thread_finish_cycles)
                / max(results[plan["scheme"]].thread_finish_cycles))


def command_counts(result: JobResult):
    """The power model's view of one run's command stream."""
    from repro.analysis.power import CommandCounts
    return CommandCounts(
        acts=result.acts, reads=result.reads,
        writes=result.writes, refreshes=result.refreshes,
        rfms=result.rfms, elapsed_cycles=max(1, result.cycles))


class _RelativePower:
    """System power relative to baseline via the IDD model (Fig. 12)."""

    def plan(self, rp):
        return {"scheme": shared_job(rp.profiles, rp.point.scheme,
                                     rp.config),
                "base": shared_job(rp.profiles, BASELINE, rp.config)}

    def value(self, rp, plan, results):
        from repro.analysis.power import SystemPowerModel
        power = SystemPowerModel(
            cpu_tdp_w=rp.params.get("cpu_tdp_w", 165.0),
            devices=rp.params.get("devices", 32),
            timing=rp.config.timing)
        return power.relative_power(
            command_counts(results[plan["scheme"]]),
            command_counts(results[plan["base"]]),
            shadow=rp.params.get("shadow", True))


class _RfmPerRef:
    """RFM commands normalised to refreshes in one run (Fig. 12)."""

    def plan(self, rp):
        return {"scheme": shared_job(rp.profiles, rp.point.scheme,
                                     rp.config)}

    def value(self, rp, plan, results):
        counts = command_counts(results[plan["scheme"]])
        return counts.rfms / max(1, counts.refreshes)


METRICS.register("ws-relative", _WsRelative())
METRICS.register("st-relative", _StRelative())
METRICS.register("mt-relative", _MtRelative())
METRICS.register("relative-power", _RelativePower())
METRICS.register("rfm-per-ref", _RfmPerRef())


# -- the interpreter ---------------------------------------------------------------

def _plan_jobs(plan: Dict[str, Any]) -> List[Job]:
    jobs: List[Job] = []
    for entry in plan.values():
        if isinstance(entry, Job):
            jobs.append(entry)
        else:
            jobs.extend(entry)
    return jobs


def _insert(output: Dict[str, Any], path: Tuple[str, ...],
            value: Any) -> None:
    node = output
    for key in path[:-1]:
        node = node.setdefault(key, {})
    node[path[-1]] = value


def run_spec(spec: ExperimentSpec, engine: Optional[Engine] = None,
             jobs: int = 1) -> Dict:
    """Interpret one experiment spec; returns the figure's result dict.

    The result starts from ``{"experiment": name, "fidelity": fidelity}``
    plus the spec's ``meta`` entries, then every point's value lands at
    its group path.  Points sharing a path are averaged in insertion
    order, reproducing the per-group means of the pre-spec drivers
    float-for-float.

    With a keep-going engine, jobs that failed permanently are missing
    from the result dict: points that depend on them are skipped (they
    simply don't contribute to their group's average) and the output
    gains a ``"failures"`` section -- the engine's failure report plus
    the skipped group paths -- so a driver gets partial results and a
    structured report instead of a mid-sweep traceback.
    """
    engine = engine or Engine(jobs=jobs)

    # Resolve specs to simulator objects once per distinct spec: the
    # grids reuse a handful of workloads/configs across hundreds of
    # points, and profile construction is not free.
    profile_cache: Dict[Any, Tuple] = {}
    config_cache: Dict[Any, Any] = {}
    resolved: List[ResolvedPoint] = []
    plans: List[Dict[str, Any]] = []
    all_jobs: List[Job] = []
    for point in spec.points:
        metric = METRICS.resolve(point.metric)
        profiles = None
        if point.workload is not None:
            profiles = profile_cache.get(point.workload)
            if profiles is None:
                profiles = point.workload.build()
                profile_cache[point.workload] = profiles
        config = None
        if point.sim is not None:
            config = config_cache.get(point.sim)
            if config is None:
                config = point.sim.to_system_config()
                config_cache[point.sim] = config
        rp = ResolvedPoint(point, profiles, config,
                           thaw_params(point.params))
        plan = metric.plan(rp)
        all_jobs.extend(_plan_jobs(plan))
        resolved.append(rp)
        plans.append(plan)

    results = engine.run(all_jobs) if all_jobs else {}

    output: Dict[str, Any] = {"experiment": spec.name,
                              "fidelity": spec.fidelity}
    output.update(thaw_params(spec.meta))
    groups: Dict[Tuple[str, ...], List[Any]] = {}
    order: List[Tuple[str, ...]] = []
    skipped: List[str] = []
    for rp, plan in zip(resolved, plans):
        metric = METRICS.resolve(rp.point.metric)
        try:
            value = metric.value(rp, plan, results)
        except KeyError:
            # A job this point needs failed permanently (keep-going
            # engines return partial results); anything else is a bug
            # and must not be swallowed.
            if not engine.failures:
                raise
            skipped.append("/".join(rp.point.group))
            continue
        path = rp.point.group
        if path not in groups:
            groups[path] = []
            order.append(path)
        groups[path].append(value)
    for path in order:
        values = groups[path]
        cell = values[0] if len(values) == 1 else sum(values) / len(values)
        _insert(output, path, cell)
    if engine.failures:
        output["failures"] = {
            "jobs": engine.failure_report(),
            "skipped_points": skipped,
        }
    return output


def main(argv: Optional[List[str]] = None) -> None:
    """Run a serialized experiment spec: ``driver SPEC.json``."""
    import argparse
    from repro.experiments.report import report_failures, save_results
    parser = argparse.ArgumentParser(
        prog="driver", description="run a serialized experiment spec")
    parser.add_argument("spec", help="path to an ExperimentSpec JSON file")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default: 1, run inline)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write results/.cache")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry each failing job up to N times with "
                             "exponential backoff (default: 0)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill any single job running longer than "
                             "this (worker pools only; default: none)")
    parser.add_argument("--keep-going", action="store_true",
                        help="record failed jobs and finish with partial "
                             "results instead of aborting")
    args = parser.parse_args(argv)
    with open(args.spec) as handle:
        spec = ExperimentSpec.from_dict(json.load(handle))
    engine = Engine(jobs=args.jobs, use_cache=not args.no_cache,
                    retries=args.retries, job_timeout=args.job_timeout,
                    keep_going=args.keep_going)
    results = run_spec(spec, engine=engine)
    report_failures(engine)
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"{spec.name}_{spec.fidelity}", results))


__all__ = [
    "AnalyticMetric",
    "METRICS",
    "ResolvedPoint",
    "command_counts",
    "main",
    "run_spec",
]


if __name__ == "__main__":
    main()
