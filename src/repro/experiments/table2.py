"""Table II: RH-induced bit-flip probability per rank-year.

Sweeps RAAIMT in {128, 64, 32} against H_cnt in {8K, 4K, 2K} through the
Appendix XI analysis (:mod:`repro.analysis.security`) and prints the
same grid the paper does, marking secure (<1%/rank-year) entries.

The grid is one declarative :class:`~repro.spec.ExperimentSpec` of
analytic ``security-rank-year`` points (closed-form -- the generic
driver plans no simulation jobs for them).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.security import SecurityAnalysis, SecurityParams
from repro.experiments.driver import METRICS, AnalyticMetric, run_spec
from repro.experiments.report import format_table, save_results, scientific
from repro.spec import ExperimentSpec, PointSpec

RAAIMT_VALUES = (128, 64, 32)
HCNT_VALUES = (8192, 4096, 2048)

#: Paper values, for the side-by-side comparison column.
PAPER = {
    (128, 8192): "2E-15", (128, 4096): "4E-01", (128, 2048): "1",
    (64, 8192): "2E-43", (64, 4096): "1E-14", (64, 2048): "5E-01",
    (32, 8192): "0", (32, 4096): "1E-43", (32, 2048): "9E-15",
}


class _SecurityRankYear(AnalyticMetric):
    """One Table II cell: closed-form flip probability per rank-year."""

    def value(self, rp, plan, results):
        analysis = SecurityAnalysis(
            SecurityParams(hcnt=rp.params["hcnt"],
                           raaimt=rp.params["raaimt"]))
        result = analysis.rank_year()
        return {
            "probability": result["overall"],
            "scenario1": result["scenario1"],
            "scenario2": result["scenario2"],
            "scenario3": result["scenario3"],
            "secure": result["overall"] < 0.01,
            "paper": rp.params["paper"],
        }


METRICS.register("security-rank-year", _SecurityRankYear())


def spec(fidelity: str = "full") -> ExperimentSpec:
    """The table as data: one analytic point per (RAAIMT, H_cnt) cell."""
    points = []
    for raaimt in RAAIMT_VALUES:
        for hcnt in HCNT_VALUES:
            points.append(PointSpec(
                "security-rank-year",
                ("cells", f"{raaimt},{hcnt}"),
                params={"raaimt": raaimt, "hcnt": hcnt,
                        "paper": PAPER[(raaimt, hcnt)]}))
    return ExperimentSpec("table2", fidelity, points)


def run(fidelity: str = "full") -> Dict:
    """Compute the grid; ``fidelity`` is accepted for interface parity
    (the analysis is closed-form and always runs at full accuracy)."""
    return run_spec(spec(fidelity))


def main() -> None:
    """Console entry point: print the regenerated Table II."""
    results = run()
    rows = []
    for raaimt in RAAIMT_VALUES:
        row = [raaimt]
        for hcnt in HCNT_VALUES:
            cell = results["cells"][f"{raaimt},{hcnt}"]
            mark = "*" if cell["secure"] else " "
            row.append(f"{scientific(cell['probability'])}{mark} "
                       f"(paper {cell['paper']})")
        rows.append(row)
    print(format_table(
        ["RAAIMT", "Hcnt=8K", "Hcnt=4K", "Hcnt=2K"], rows,
        title="Table II: SHADOW bit-flip probability per DDR5 rank-year "
              "(* = secure, <1%)"))
    print("saved:", save_results("table2", results))


if __name__ == "__main__":
    main()
