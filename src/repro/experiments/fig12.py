"""Figure 12: relative system power and RFM-to-REF ratio.

Runs SHADOW and the baseline on mix-high / mix-blend across the H_cnt
sweep, feeds the measured command counts into the IDD power model, and
reports (a) system power relative to baseline and (b) the number of
RFMs normalized to the number of refreshes.

One declarative :class:`~repro.spec.ExperimentSpec`: each (mix, H_cnt)
cell contributes a ``relative-power`` and an ``rfm-per-ref`` point; the
underlying simulations (one baseline plus one SHADOW run per mix and
threshold) are deduplicated and cached by the engine, the power model
is evaluated inline on their command counts.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.configs import HCNT_SWEEP, fidelity_config
from repro.experiments.driver import run_spec
from repro.experiments.engine import Engine
from repro.experiments.report import (
    driver_arg_parser,
    engine_from_args,
    format_table,
    report_failures,
    save_results,
)
from repro.spec import ExperimentSpec, PointSpec, scheme_spec, workload_spec


def spec(fidelity: str = "smoke") -> ExperimentSpec:
    """The figure as data: two points (power, RFM ratio) per cell."""
    fc = fidelity_config(fidelity)
    sim = fc.sim_spec()
    points = []
    for mix in ("mix-high", "mix-blend"):
        workload = workload_spec(mix, threads=fc.threads)
        for hcnt in HCNT_SWEEP:
            scheme = scheme_spec("shadow", hcnt=hcnt)
            points.append(PointSpec(
                "relative-power",
                ("series", f"{mix}/relative-power", str(hcnt)),
                workload=workload, scheme=scheme, sim=sim,
                params={"cpu_tdp_w": 165.0, "devices": 32,
                        "shadow": True}))
            points.append(PointSpec(
                "rfm-per-ref",
                ("series", f"{mix}/rfm-per-ref", str(hcnt)),
                workload=workload, scheme=scheme, sim=sim))
    return ExperimentSpec("fig12", fidelity, points)


def run(fidelity: str = "smoke", jobs: int = 1,
        engine: Optional[Engine] = None) -> Dict:
    """Run the experiment; returns the figure's series as a dict."""
    return run_spec(spec(fidelity), engine=engine, jobs=jobs)


def main() -> None:
    """Console entry point: print the regenerated figure series."""
    args = driver_arg_parser("fig12").parse_args()
    engine = engine_from_args(args)
    results = run(args.fidelity, jobs=args.jobs, engine=engine)
    if not report_failures(engine):
        hcnts = [str(h) for h in HCNT_SWEEP]
        rows = [[key] + [f"{vals[h]:.5f}" for h in hcnts]
                for key, vals in results["series"].items()]
        print(format_table(
            ["series"] + [f"Hcnt={h}" for h in hcnts], rows,
            title=f"Figure 12: SHADOW relative system power and RFM/REF "
                  f"ratio ({args.fidelity})"))
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"fig12_{args.fidelity}", results))
    if engine.failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
