"""Figure 12: relative system power and RFM-to-REF ratio.

Runs SHADOW and the baseline on mix-high / mix-blend across the H_cnt
sweep, feeds the measured command counts into the IDD power model, and
reports (a) system power relative to baseline and (b) the number of
RFMs normalized to the number of refreshes.

Runs on the experiment engine; the simulations (one baseline plus one
SHADOW run per mix and threshold) are cached and fanned out, the power
model is evaluated inline on their command counts.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.power import CommandCounts, SystemPowerModel
from repro.experiments.configs import HCNT_SWEEP, fidelity_config
from repro.experiments.engine import (
    BASELINE,
    Engine,
    JobResult,
    scheme_spec,
    shared_job,
)
from repro.experiments.report import (
    driver_arg_parser,
    format_table,
    save_results,
)
from repro.workloads import mix_blend, mix_high


def _counts(result: JobResult) -> CommandCounts:
    return CommandCounts(
        acts=result.acts, reads=result.reads,
        writes=result.writes, refreshes=result.refreshes,
        rfms=result.rfms, elapsed_cycles=max(1, result.cycles))


def run(fidelity: str = "smoke", jobs: int = 1,
        engine: Optional[Engine] = None) -> Dict:
    """Run the experiment; returns the figure's series as a dict."""
    fc = fidelity_config(fidelity)
    engine = engine or Engine(jobs=jobs)
    config = fc.system_config()
    power = SystemPowerModel(cpu_tdp_w=165.0, devices=32,
                             timing=config.timing)
    mixes = (("mix-high", mix_high(fc.threads)),
             ("mix-blend", mix_blend(fc.threads)))
    grid = {}
    for mix_name, profiles in mixes:
        grid[mix_name, "base"] = shared_job(profiles, BASELINE, config)
        for hcnt in HCNT_SWEEP:
            grid[mix_name, hcnt] = shared_job(
                profiles, scheme_spec("shadow", hcnt=hcnt), config)
    res = engine.run(grid.values())
    series: Dict[str, Dict[str, float]] = {}
    for mix_name, _profiles in mixes:
        base_counts = _counts(res[grid[mix_name, "base"]])
        for hcnt in HCNT_SWEEP:
            counts = _counts(res[grid[mix_name, hcnt]])
            rel = power.relative_power(counts, base_counts, shadow=True)
            ratio = counts.rfms / max(1, counts.refreshes)
            series.setdefault(f"{mix_name}/relative-power", {})[
                str(hcnt)] = rel
            series.setdefault(f"{mix_name}/rfm-per-ref", {})[
                str(hcnt)] = ratio
    return {"experiment": "fig12", "fidelity": fidelity, "series": series}


def main() -> None:
    """Console entry point: print the regenerated figure series."""
    args = driver_arg_parser("fig12").parse_args()
    engine = Engine(jobs=args.jobs, use_cache=not args.no_cache)
    results = run(args.fidelity, jobs=args.jobs, engine=engine)
    hcnts = [str(h) for h in HCNT_SWEEP]
    rows = [[key] + [f"{vals[h]:.5f}" for h in hcnts]
            for key, vals in results["series"].items()]
    print(format_table(
        ["series"] + [f"Hcnt={h}" for h in hcnts], rows,
        title=f"Figure 12: SHADOW relative system power and RFM/REF "
              f"ratio ({args.fidelity})"))
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"fig12_{args.fidelity}", results))


if __name__ == "__main__":
    main()
