"""Figure 12: relative system power and RFM-to-REF ratio.

Runs SHADOW and the baseline on mix-high / mix-blend across the H_cnt
sweep, feeds the measured command counts into the IDD power model, and
reports (a) system power relative to baseline and (b) the number of
RFMs normalized to the number of refreshes.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.power import CommandCounts, SystemPowerModel
from repro.experiments.configs import HCNT_SWEEP, fidelity_config
from repro.experiments.report import format_table, save_results
from repro.experiments.schemes import NoMitigation, make_shadow
from repro.sim.system import System
from repro.workloads import mix_blend, mix_high


def _counts(result) -> CommandCounts:
    return CommandCounts(
        acts=result.stats.acts, reads=result.stats.reads,
        writes=result.stats.writes, refreshes=result.refreshes,
        rfms=result.rfms, elapsed_cycles=max(1, result.cycles))


def run(fidelity: str = "smoke") -> Dict:
    """Run the experiment; returns the figure's series as a dict."""
    fc = fidelity_config(fidelity)
    config = fc.system_config()
    power = SystemPowerModel(cpu_tdp_w=165.0, devices=32,
                             timing=config.timing)
    series: Dict[str, Dict[str, float]] = {}
    for mix_name, profiles in (("mix-high", mix_high(fc.threads)),
                               ("mix-blend", mix_blend(fc.threads))):
        base = System(profiles, NoMitigation(), config=config).run()
        base_counts = _counts(base)
        for hcnt in HCNT_SWEEP:
            shadow = System(profiles, make_shadow(hcnt),
                            config=config).run()
            counts = _counts(shadow)
            rel = power.relative_power(counts, base_counts, shadow=True)
            ratio = counts.rfms / max(1, counts.refreshes)
            series.setdefault(f"{mix_name}/relative-power", {})[
                str(hcnt)] = rel
            series.setdefault(f"{mix_name}/rfm-per-ref", {})[
                str(hcnt)] = ratio
    return {"experiment": "fig12", "fidelity": fidelity, "series": series}


def main() -> None:
    """Console entry point: print the regenerated figure series."""
    import sys
    fidelity = sys.argv[1] if len(sys.argv) > 1 else "full"
    results = run(fidelity)
    hcnts = [str(h) for h in HCNT_SWEEP]
    rows = [[key] + [f"{vals[h]:.5f}" for h in hcnts]
            for key, vals in results["series"].items()]
    print(format_table(
        ["series"] + [f"Hcnt={h}" for h in hcnts], rows,
        title=f"Figure 12: SHADOW relative system power and RFM/REF "
              f"ratio ({fidelity})"))
    print("saved:", save_results(f"fig12_{fidelity}", results))


if __name__ == "__main__":
    main()
