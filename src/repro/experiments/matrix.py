"""Scheme matrix: one short engine point per registered scheme.

A coverage sweep, not a paper figure: every scheme the central registry
can build from ``hcnt`` alone (the CLI criterion -- so MINT, DAPPER and
any future registration are included automatically) runs one short
fig12-style ``mt-relative`` cell on mix-blend.  CI drives it under
``--keep-going`` as the ``tracker-matrix`` job: a scheme whose
construction or simulation breaks turns into an engine failure and a
nonzero exit instead of silently falling out of the comparison set.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.configs import DEFAULT_HCNT, fidelity_config
from repro.experiments.driver import run_spec
from repro.experiments.engine import Engine
from repro.experiments.report import (
    driver_arg_parser,
    engine_from_args,
    format_table,
    report_failures,
    save_results,
)
from repro.spec import ExperimentSpec, PointSpec, scheme_spec, workload_spec
from repro.spec.registry import SCHEMES

#: Registry entries with no matrix row: ``none`` is the baseline every
#: ratio divides by, ``shadow-ablate`` duplicates ``shadow`` at its
#: default toggles.
_SKIP = frozenset({"none", "shadow-ablate"})


def matrix_schemes() -> List[str]:
    """Every scheme name the matrix covers, in registry order."""
    return [name for name in SCHEMES.names()
            if name not in _SKIP and SCHEMES.accepts(name, "hcnt")]


def spec(fidelity: str = "smoke",
         hcnt: int = DEFAULT_HCNT) -> ExperimentSpec:
    """The sweep as data: one relative-performance cell per scheme."""
    fc = fidelity_config(fidelity)
    sim = fc.sim_spec()
    workload = workload_spec("mix-blend", threads=fc.threads)
    points = [
        PointSpec("mt-relative", ("schemes", name),
                  workload=workload,
                  scheme=scheme_spec(
                      name, **SCHEMES.buildable_params(
                          name, {"hcnt": hcnt})),
                  sim=sim)
        for name in matrix_schemes()
    ]
    return ExperimentSpec("scheme-matrix", fidelity, points)


def run(fidelity: str = "smoke", jobs: int = 1,
        engine: Optional[Engine] = None) -> Dict:
    """Run the matrix; returns ``{"schemes": {name: rel perf}}``."""
    return run_spec(spec(fidelity), engine=engine, jobs=jobs)


def main() -> None:
    """Console entry point: print the per-scheme matrix."""
    args = driver_arg_parser("scheme-matrix").parse_args()
    engine = engine_from_args(args)
    results = run(args.fidelity, jobs=args.jobs, engine=engine)
    if not report_failures(engine):
        rows = [[name, f"{value:.4f}"]
                for name, value in sorted(results["schemes"].items())]
        print(format_table(
            ["scheme", "rel. perf"], rows,
            title=f"Scheme matrix on mix-blend "
                  f"(Hcnt={DEFAULT_HCNT}, {args.fidelity})"))
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"scheme_matrix_{args.fidelity}", results))
    if engine.failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
