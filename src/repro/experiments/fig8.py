"""Figure 8: relative performance of SHADOW vs RFM baselines and DRR.

Single-threaded SPEC groups (HIGH/MED/LOW, reciprocal execution time),
multi-threaded GAPBS and NPB, and the mix-high/mix-blend multi-
programmed mixes (weighted speedup), all normalized to the unprotected
baseline at the paper's default H_cnt of 4K.

Runs on the experiment engine: the whole grid is enumerated as
independent jobs up front, deduplicated, served from the persistent
result cache where possible, and fanned out across ``--jobs`` worker
processes otherwise.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.configs import DEFAULT_HCNT, fidelity_config
from repro.experiments.engine import (
    BASELINE,
    Engine,
    WsRelativePlan,
    alone_job,
    rfm_scheme_specs,
    shared_job,
)
from repro.experiments.report import (
    driver_arg_parser,
    format_table,
    save_results,
)
from repro.workloads import (
    GAPBS_PROFILES,
    NPB_PROFILES,
    mix_blend,
    mix_high,
    spec_group,
)


def run(fidelity: str = "smoke", hcnt: int = DEFAULT_HCNT,
        jobs: int = 1, engine: Optional[Engine] = None) -> Dict:
    """Run the experiment; returns the figure's series as a dict."""
    fc = fidelity_config(fidelity)
    engine = engine or Engine(jobs=jobs)
    schemes = rfm_scheme_specs(hcnt)

    # ---- enumerate the grid as jobs ----------------------------------------------
    all_jobs = []

    # Single-threaded SPEC groups: reciprocal execution time of alone
    # runs, scheme vs baseline.
    st_config = fc.system_config(requests=fc.single_thread_requests)
    st_cells = {}   # (scheme, group) -> [(scheme_job, base_job), ...]
    for group in ("high", "med", "low"):
        profiles = spec_group(group)
        for name, spec in schemes.items():
            st_cells[name, group] = [
                (alone_job(p, spec, st_config),
                 alone_job(p, BASELINE, st_config))
                for p in profiles]
    all_jobs += [j for pairs in st_cells.values()
                 for pair in pairs for j in pair]

    # Multi-threaded suites: reciprocal execution time of homogeneous
    # shared runs (slowest thread), scheme vs baseline.
    mt_config = fc.system_config()
    mt_cells = {}   # (scheme, suite) -> [(scheme_job, base_job), ...]
    for suite_name, suite in (("gapbs", GAPBS_PROFILES),
                              ("npb", NPB_PROFILES)):
        apps = sorted(suite)[:fc.apps_per_suite]
        for name, spec in schemes.items():
            mt_cells[name, suite_name] = [
                (shared_job([suite[a]] * fc.mt_threads, spec, mt_config),
                 shared_job([suite[a]] * fc.mt_threads, BASELINE,
                            mt_config))
                for a in apps]
    all_jobs += [j for pairs in mt_cells.values()
                 for pair in pairs for j in pair]

    # Multi-programmed mixes: weighted speedup relative to baseline.
    mix_plan = WsRelativePlan(fc.system_config())
    for mix_name, profiles in (("mix-high", mix_high(fc.threads)),
                               ("mix-blend", mix_blend(fc.threads))):
        for name, spec in schemes.items():
            mix_plan.add((name, mix_name), profiles, spec)
    all_jobs += mix_plan.jobs

    # ---- execute and assemble ----------------------------------------------------
    res = engine.run(all_jobs)
    results: Dict[str, Dict[str, float]] = {name: {} for name in schemes}
    for (name, group), pairs in st_cells.items():
        rels = [res[base].thread_finish_cycles[0]
                / res[scheme].thread_finish_cycles[0]
                for scheme, base in pairs]
        results[name][f"spec-{group}"] = sum(rels) / len(rels)
    for (name, suite_name), pairs in mt_cells.items():
        rels = [max(res[base].thread_finish_cycles)
                / max(res[scheme].thread_finish_cycles)
                for scheme, base in pairs]
        results[name][suite_name] = sum(rels) / len(rels)
    for name in schemes:
        for mix_name in ("mix-high", "mix-blend"):
            results[name][mix_name] = mix_plan.value((name, mix_name), res)

    # Column order matches the paper (and the pre-engine driver).
    order = ["spec-high", "spec-med", "spec-low", "gapbs", "npb",
             "mix-high", "mix-blend"]
    results = {name: {w: results[name][w] for w in order}
               for name in results}
    return {"experiment": "fig8", "fidelity": fidelity, "hcnt": hcnt,
            "relative_performance": results}


def main() -> None:
    """Console entry point: print the regenerated figure series."""
    args = driver_arg_parser("fig8").parse_args()
    engine = Engine(jobs=args.jobs, use_cache=not args.no_cache)
    results = run(args.fidelity, jobs=args.jobs, engine=engine)
    series = results["relative_performance"]
    workloads = list(next(iter(series.values())))
    rows = [[name] + [series[name][w] for w in workloads]
            for name in series]
    print(format_table(
        ["scheme"] + workloads, rows,
        title=f"Figure 8: performance relative to no-mitigation "
              f"(Hcnt={results['hcnt']}, {args.fidelity})"))
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"fig8_{args.fidelity}", results))


if __name__ == "__main__":
    main()
