"""Figure 8: relative performance of SHADOW vs RFM baselines and DRR.

Single-threaded SPEC groups (HIGH/MED/LOW, reciprocal execution time),
multi-threaded GAPBS and NPB, and the mix-high/mix-blend multi-
programmed mixes (weighted speedup), all normalized to the unprotected
baseline at the paper's default H_cnt of 4K.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.configs import DEFAULT_HCNT, fidelity_config
from repro.experiments.report import format_table, save_results
from repro.experiments.schemes import NoMitigation, rfm_scheme_factories
from repro.sim.runner import ExperimentRunner
from repro.sim.system import System
from repro.workloads import (
    GAPBS_PROFILES,
    NPB_PROFILES,
    mix_blend,
    mix_high,
    spec_group,
)


def _multithread_relative(profile, threads, make_scheme, config) -> float:
    """Reciprocal execution time of a homogeneous multi-threaded run."""
    base = System([profile] * threads, NoMitigation(), config=config).run()
    scheme = System([profile] * threads, make_scheme(), config=config).run()
    return max(base.thread_finish_cycles) / max(scheme.thread_finish_cycles)


def run(fidelity: str = "smoke", hcnt: int = DEFAULT_HCNT) -> Dict:
    """Run the experiment; returns the figure's series as a dict."""
    fc = fidelity_config(fidelity)
    schemes = rfm_scheme_factories(hcnt)
    results: Dict[str, Dict[str, float]] = {name: {} for name in schemes}

    # Single-threaded SPEC groups.
    st_runner = ExperimentRunner(
        config=fc.system_config(requests=fc.single_thread_requests))
    for group in ("high", "med", "low"):
        profiles = spec_group(group)
        for name, factory in schemes.items():
            rels = [st_runner.single_thread_relative(p, factory)
                    for p in profiles]
            results[name][f"spec-{group}"] = sum(rels) / len(rels)

    # Multi-threaded suites.
    mt_config = fc.system_config()
    for suite_name, suite in (("gapbs", GAPBS_PROFILES),
                              ("npb", NPB_PROFILES)):
        apps = sorted(suite)[:fc.apps_per_suite]
        for name, factory in schemes.items():
            rels = [_multithread_relative(suite[a], fc.mt_threads,
                                          factory, mt_config)
                    for a in apps]
            results[name][suite_name] = sum(rels) / len(rels)

    # Multi-programmed mixes (weighted speedup).
    mix_runner = ExperimentRunner(config=fc.system_config())
    for mix_name, profiles in (("mix-high", mix_high(fc.threads)),
                               ("mix-blend", mix_blend(fc.threads))):
        for name, factory in schemes.items():
            results[name][mix_name] = mix_runner.relative_performance(
                profiles, factory)

    return {"experiment": "fig8", "fidelity": fidelity, "hcnt": hcnt,
            "relative_performance": results}


def main() -> None:
    """Console entry point: print the regenerated figure series."""
    import sys
    fidelity = sys.argv[1] if len(sys.argv) > 1 else "full"
    results = run(fidelity)
    series = results["relative_performance"]
    workloads = list(next(iter(series.values())))
    rows = [[name] + [series[name][w] for w in workloads]
            for name in series]
    print(format_table(
        ["scheme"] + workloads, rows,
        title=f"Figure 8: performance relative to no-mitigation "
              f"(Hcnt={results['hcnt']}, {fidelity})"))
    print("saved:", save_results(f"fig8_{fidelity}", results))


if __name__ == "__main__":
    main()
