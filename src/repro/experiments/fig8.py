"""Figure 8: relative performance of SHADOW vs RFM baselines and DRR.

Single-threaded SPEC groups (HIGH/MED/LOW, reciprocal execution time),
multi-threaded GAPBS and NPB, and the mix-high/mix-blend multi-
programmed mixes (weighted speedup), all normalized to the unprotected
baseline at the paper's default H_cnt of 4K.

The whole figure is one declarative :class:`~repro.spec.ExperimentSpec`
(:func:`spec`): per-app single-thread cells, per-suite multi-thread
cells and the mix weighted-speedup cells, each a ``PointSpec`` naming
its metric and output path.  The generic driver enumerates the jobs,
deduplicates them, serves cache hits and fans the rest out across
``--jobs`` workers.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.configs import DEFAULT_HCNT, fidelity_config
from repro.experiments.driver import run_spec
from repro.experiments.engine import Engine, rfm_scheme_specs
from repro.experiments.report import (
    driver_arg_parser,
    engine_from_args,
    format_table,
    report_failures,
    save_results,
)
from repro.spec import ExperimentSpec, PointSpec, workload_spec
from repro.workloads import (
    GAPBS_PROFILES,
    NPB_PROFILES,
    SPEC_HIGH,
    SPEC_LOW,
    SPEC_MED,
)


def spec(fidelity: str = "smoke",
         hcnt: int = DEFAULT_HCNT) -> ExperimentSpec:
    """The figure as data: one point per cell of the paper's grid."""
    fc = fidelity_config(fidelity)
    schemes = rfm_scheme_specs(hcnt)
    st_sim = fc.sim_spec(requests=fc.single_thread_requests)
    mt_sim = fc.sim_spec()
    points = []
    for name, scheme in schemes.items():
        # Single-threaded SPEC groups: per-app reciprocal execution
        # time of alone runs, averaged within the group.
        for group, apps in (("high", SPEC_HIGH), ("med", SPEC_MED),
                            ("low", SPEC_LOW)):
            for app in apps:
                points.append(PointSpec(
                    "st-relative",
                    ("relative_performance", name, f"spec-{group}"),
                    workload=workload_spec("spec", app=app),
                    scheme=scheme, sim=st_sim))
        # Multi-threaded suites: homogeneous shared runs, slowest
        # thread, averaged over the suite's apps.
        for suite_name, suite in (("gapbs", GAPBS_PROFILES),
                                  ("npb", NPB_PROFILES)):
            for app in sorted(suite)[:fc.apps_per_suite]:
                points.append(PointSpec(
                    "mt-relative",
                    ("relative_performance", name, suite_name),
                    workload=workload_spec(suite_name, app=app,
                                           threads=fc.mt_threads),
                    scheme=scheme, sim=mt_sim))
        # Multi-programmed mixes: weighted speedup vs baseline.
        for mix in ("mix-high", "mix-blend"):
            points.append(PointSpec(
                "ws-relative",
                ("relative_performance", name, mix),
                workload=workload_spec(mix, threads=fc.threads),
                scheme=scheme, sim=mt_sim))
    return ExperimentSpec("fig8", fidelity, points, meta={"hcnt": hcnt})


def run(fidelity: str = "smoke", hcnt: int = DEFAULT_HCNT,
        jobs: int = 1, engine: Optional[Engine] = None) -> Dict:
    """Run the experiment; returns the figure's series as a dict."""
    return run_spec(spec(fidelity, hcnt), engine=engine, jobs=jobs)


def main() -> None:
    """Console entry point: print the regenerated figure series."""
    args = driver_arg_parser("fig8").parse_args()
    engine = engine_from_args(args)
    results = run(args.fidelity, jobs=args.jobs, engine=engine)
    if not report_failures(engine):
        series = results["relative_performance"]
        workloads = list(next(iter(series.values())))
        rows = [[name] + [series[name][w] for w in workloads]
                for name in series]
        print(format_table(
            ["scheme"] + workloads, rows,
            title=f"Figure 8: performance relative to no-mitigation "
                  f"(Hcnt={results['hcnt']}, {args.fidelity})"))
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"fig8_{args.fidelity}", results))
    if engine.failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
