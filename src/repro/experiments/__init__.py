"""Experiment drivers: one module per paper table/figure.

Every module exposes ``spec(fidelity)`` returning the figure as a
declarative :class:`~repro.spec.ExperimentSpec`, ``run(fidelity)``
executing it through the generic driver (:func:`run_spec`) into a plain
dict of the rows/series the paper reports, and a ``main()`` console
entry point (wired in ``pyproject.toml`` as ``shadow-table2`` ...
``shadow-fig12``).

``fidelity`` selects the run scale:

* ``"smoke"`` -- minutes-scale runs used by the benchmark suite; same
  mechanisms, trimmed workload sets and request budgets.
* ``"full"`` -- the paper-scale configuration (all applications, 14-16
  threads, larger budgets); used to produce EXPERIMENTS.md.
"""

from repro.experiments.configs import FidelityConfig, fidelity_config
from repro.experiments.driver import METRICS, run_spec
from repro.experiments.engine import (
    Engine,
    EngineStats,
    Job,
    JobResult,
    SchemeSpec,
    scheme_spec,
)

__all__ = [
    "Engine",
    "EngineStats",
    "FidelityConfig",
    "Job",
    "JobResult",
    "METRICS",
    "SchemeSpec",
    "fidelity_config",
    "run_spec",
    "scheme_spec",
]
