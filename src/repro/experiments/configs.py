"""Shared run-scale configuration for the experiment drivers.

The geometry always matches the paper's system (Table IV: 4 channels,
2 ranks, 16 banks -- 128 banks total) because RFM blocking amortizes
over banks and shrinking the bank count would inflate every RFM-based
scheme's overhead.  Fidelity levels only trim thread counts, request
budgets and workload subsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.device import DramGeometry
from repro.dram.timing import DDR4_2666, DDR5_4800, TimingParams
from repro.sim.system import SystemConfig
from repro.spec import SimSpec, TimingSpec


@dataclass(frozen=True)
class FidelityConfig:
    """Run-scale knobs shared by the figure experiments."""

    name: str
    threads: int                 # multi-programmed mix width
    mt_threads: int              # GAPBS/NPB thread count
    requests_per_thread: int
    single_thread_requests: int
    apps_per_suite: int          # GAPBS/NPB apps to run (smoke trims)
    mix_random_count: int        # paper: 32 mixes for Figure 11
    #: Figures 10/11 need enough per-row heat for count-threshold
    #: trackers (RRS, BlockHammer) to trigger, so they run with their
    #: own, larger budget even at smoke fidelity.
    tracker_threads: int = 8
    tracker_requests: int = 3000

    def system_config(self, timing: TimingParams = DDR4_2666,
                      requests: Optional[int] = None,
                      seed: int = 3) -> SystemConfig:
        # `is not None` (not truthiness): an explicit ``requests=0`` must
        # reach SystemConfig.__post_init__ and be rejected there, not be
        # silently replaced by the fidelity default.
        return SystemConfig(
            geometry=DramGeometry(),     # paper Table IV organisation
            timing=timing,
            requests_per_thread=(requests if requests is not None
                                 else self.requests_per_thread),
            seed=seed,
        )

    def sim_spec(self, grade: str = "DDR4-2666",
                 requests: Optional[int] = None, seed: int = 3) -> SimSpec:
        """The declarative form of :meth:`system_config`.

        ``SimSpec.to_system_config()`` of the returned spec is equal to
        the ``SystemConfig`` built directly, so spec-driven jobs hash to
        the same cache keys as the pre-spec drivers' jobs.
        """
        return SimSpec(
            timing=TimingSpec(grade),
            requests=(requests if requests is not None
                      else self.requests_per_thread),
            seed=seed,
        )


_SMOKE = FidelityConfig(
    name="smoke", threads=6, mt_threads=4,
    requests_per_thread=1200, single_thread_requests=800,
    apps_per_suite=2, mix_random_count=1,
    tracker_threads=8, tracker_requests=6000,
)

_FULL = FidelityConfig(
    name="full", threads=10, mt_threads=10,
    requests_per_thread=3000, single_thread_requests=2000,
    apps_per_suite=3, mix_random_count=2,
    tracker_threads=10, tracker_requests=10000,
)


def fidelity_config(fidelity: str) -> FidelityConfig:
    """Look up a fidelity level ("smoke" or "full")."""
    if fidelity == "smoke":
        return _SMOKE
    if fidelity == "full":
        return _FULL
    raise ValueError(f"unknown fidelity {fidelity!r}")


#: The paper's H_cnt sweep (Figures 9, 11, 12).
HCNT_SWEEP = (16384, 8192, 4096, 2048)

#: Default H_cnt when a figure holds it fixed (Figure 8).
DEFAULT_HCNT = 4096

__all__ = [
    "DDR4_2666",
    "DDR5_4800",
    "DEFAULT_HCNT",
    "FidelityConfig",
    "HCNT_SWEEP",
    "fidelity_config",
]
