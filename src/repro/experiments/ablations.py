"""Ablations of SHADOW's design choices (DESIGN.md Section 6).

Not figures from the paper, but direct tests of the microarchitecture
decisions it motivates:

* **subarray pairing off** -- the remapping-row restore/precharge
  serializes with the target ACT and the remapping-row write is no
  longer hidden (Sections V-B, VI);
* **isolation transistor off** -- the remapping row senses like an
  ordinary row (Section V-A);
* **incremental refresh off** -- protection drops (Monte Carlo flip
  rate under the scenario-II adversary, Section IV-C);
* **LFSR vs PRINCE RNG** -- performance equivalence of the cheap RNG
  option (Section VIII).

All three studies ride one declarative
:class:`~repro.spec.ExperimentSpec`: the timing and protection studies
are analytic points (``timing-ablation`` / ``protection-ablation``
metrics, no engine jobs), the performance study is a set of
weighted-speedup points over the ``shadow-ablate`` scheme variants.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.montecarlo import flip_rate
from repro.core.pairing import ShadowTimings
from repro.dram.subarray import SubarrayLayout
from repro.dram.timing import DDR4_2666
from repro.experiments.configs import DEFAULT_HCNT, fidelity_config
from repro.experiments.driver import METRICS, AnalyticMetric, run_spec
from repro.experiments.engine import Engine
from repro.experiments.report import (
    driver_arg_parser,
    engine_from_args,
    format_table,
    report_failures,
    save_results,
)
from repro.rowhammer.adversary import ScenarioIIAttacker
from repro.spec import ExperimentSpec, PointSpec, scheme_spec, workload_spec
from repro.utils.rng import SystemRng


def timing_ablation() -> Dict[str, Dict[str, float]]:
    """Cycle charges of each microarchitecture variant (DDR4-2666)."""
    variants = {
        "full SHADOW": ShadowTimings(DDR4_2666),
        "no pairing": ShadowTimings(DDR4_2666, pairing=False),
        "no isolation": ShadowTimings(DDR4_2666, isolation=False),
        "no incr. refresh": ShadowTimings(DDR4_2666,
                                          incremental_refresh=False),
    }
    return {
        name: {
            "act_extra_cycles": t.act_extra_cycles,
            "trcd_prime_ns": t.trcd_prime_ns,
            "rfm_work_ns": t.rfm_work_ns(),
        }
        for name, t in variants.items()
    }


def protection_ablation(trials: int = 40) -> Dict[str, float]:
    """Scenario-II flip rate with and without the incremental refresh.

    Scaled-down subarray (32 rows) so empirical rates are measurable.
    """
    layout = SubarrayLayout(subarrays_per_bank=2, rows_per_subarray=32)

    def make(seed: int):
        return ScenarioIIAttacker(layout, subarray=0, n_aggr=4,
                                  rng=SystemRng(seed))

    common = dict(layout=layout, hcnt=160, raaimt=16, intervals=120,
                  trials=trials, seed=11)
    return {
        "with incremental refresh": flip_rate(make, **common),
        "without incremental refresh": flip_rate(
            make, incremental_refresh=False, **common),
        "no shuffle (RFM only)": flip_rate(
            make, shuffle=False, incremental_refresh=False, **common),
    }


class _TimingAblation(AnalyticMetric):
    def value(self, rp, plan, results):
        return timing_ablation()


class _ProtectionAblation(AnalyticMetric):
    def value(self, rp, plan, results):
        return protection_ablation(trials=rp.params["trials"])


METRICS.register("timing-ablation", _TimingAblation())
METRICS.register("protection-ablation", _ProtectionAblation())


def spec(fidelity: str = "smoke") -> ExperimentSpec:
    """All three ablation studies as one declarative grid."""
    fc = fidelity_config(fidelity)
    sim = fc.sim_spec()
    workload = workload_spec("mix-high", threads=fc.threads)
    points = [
        PointSpec("timing-ablation", ("timing",)),
        PointSpec("protection-ablation", ("protection",),
                  params={"trials": 40 if fidelity == "smoke" else 200}),
    ]
    variants = {
        "full SHADOW": scheme_spec("shadow-ablate", hcnt=DEFAULT_HCNT),
        "no pairing": scheme_spec("shadow-ablate", hcnt=DEFAULT_HCNT,
                                  pairing=False),
        "no isolation": scheme_spec("shadow-ablate", hcnt=DEFAULT_HCNT,
                                    isolation=False),
        "LFSR RNG": scheme_spec("shadow-ablate", hcnt=DEFAULT_HCNT,
                                rng_kind="lfsr"),
    }
    for name, scheme in variants.items():
        points.append(PointSpec(
            "ws-relative", ("performance", name),
            workload=workload, scheme=scheme, sim=sim))
    return ExperimentSpec("ablations", fidelity, points)


def run(fidelity: str = "smoke", jobs: int = 1,
        engine: Optional[Engine] = None) -> Dict:
    """Run all three ablation studies; returns the result dict."""
    return run_spec(spec(fidelity), engine=engine, jobs=jobs)


def main() -> None:
    """Console entry point: print the ablation tables."""
    args = driver_arg_parser("ablations").parse_args()
    engine = engine_from_args(args)
    results = run(args.fidelity, jobs=args.jobs, engine=engine)
    if not report_failures(engine):
        rows = [[name, v["act_extra_cycles"], v["trcd_prime_ns"],
                 v["rfm_work_ns"]]
                for name, v in results["timing"].items()]
        print(format_table(
            ["variant", "ACT extra (cyc)", "tRCD' (ns)", "RFM work (ns)"],
            rows, title="Ablation: timing charges"))
        print()
        rows = [[k, v] for k, v in results["protection"].items()]
        print(format_table(["variant", "flip rate"], rows,
                           title="Ablation: scenario-II Monte Carlo flips"))
        print()
        rows = [[k, v] for k, v in results["performance"].items()]
        print(format_table(["variant", "rel. weighted speedup"], rows,
                           title="Ablation: performance (mix-high)"))
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"ablations_{args.fidelity}", results))
    if engine.failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
