"""Table III: SPICE-derived timing values of SHADOW.

Regenerates each row (tRCD', row copy, tRCD_RM, tWR_RM, tRD_RM) from
the analytical circuit model plus the Section VII-B shuffle totals for
both speed grades.

One declarative :class:`~repro.spec.ExperimentSpec` of analytic points:
``circuit-table3`` produces the row grid, one ``shuffle-total`` point
per speed grade produces the Section VII-B totals.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.circuit import CircuitModel
from repro.experiments.driver import METRICS, AnalyticMetric, run_spec
from repro.experiments.report import format_table, save_results
from repro.spec import ExperimentSpec, PointSpec

#: The published table for the comparison column.
PAPER = {
    "tRCD'": (17.7, "+29%"),
    "row-copy": (73.9, "-"),
    "tRCD_RM": (2.3, "-83%"),
    "tWR_RM": (9.0, "-24%"),
    "tRD_RM": (4.0, "-71%"),
}


class _CircuitTable3(AnalyticMetric):
    """Every Table III row from the analytical circuit model."""

    def value(self, rp, plan, results):
        rows = {}
        for definition, abbrev, timing, baseline, ratio in \
                CircuitModel().table3().rows():
            key = abbrev if abbrev != "-" else "row-copy"
            rows[key] = {
                "definition": definition,
                "timing_ns": timing,
                "baseline_ns": baseline,
                "ratio": ratio,
            }
        return rows


class _ShuffleTotal(AnalyticMetric):
    """The Section VII-B end-to-end shuffle total for one speed grade."""

    def value(self, rp, plan, results):
        return CircuitModel().shuffle_total_ns(rp.params["tras_ns"],
                                               rp.params["trp_ns"])


METRICS.register("circuit-table3", _CircuitTable3())
METRICS.register("shuffle-total", _ShuffleTotal())


def spec(fidelity: str = "full") -> ExperimentSpec:
    """The table as data: the row grid plus the two shuffle totals."""
    return ExperimentSpec("table3", fidelity, (
        PointSpec("circuit-table3", ("rows",)),
        PointSpec("shuffle-total", ("shuffle_total_ns", "DDR4-2666"),
                  params={"tras_ns": 32.25, "trp_ns": 14.25}),
        PointSpec("shuffle-total", ("shuffle_total_ns", "DDR5-4800"),
                  params={"tras_ns": 32.0, "trp_ns": 16.25}),
    ))


def run(fidelity: str = "full") -> Dict:
    """Compute every Table III row; returns the result dict."""
    return run_spec(spec(fidelity))


def main() -> None:
    """Console entry point: print the regenerated Table III."""
    results = run()
    display = []
    for key, row in results["rows"].items():
        paper_t, paper_r = PAPER[key]
        ratio = f"{row['ratio']:+.0%}" if row["ratio"] is not None else "-"
        display.append([
            row["definition"], key, f"{row['timing_ns']:.1f}ns",
            f"{row['baseline_ns']:.1f}ns" if row["baseline_ns"] else "-",
            ratio, f"{paper_t}ns / {paper_r}",
        ])
    print(format_table(
        ["Definition", "Abbrev", "Timing", "Baseline", "Ratio", "Paper"],
        display, title="Table III: SHADOW timing values (analytical "
                       "circuit model)"))
    for grade, ns in results["shuffle_total_ns"].items():
        print(f"row-shuffle total @ {grade}: {ns:.0f} ns "
              f"(paper: {178 if 'DDR4' in grade else 186} ns)")
    print("saved:", save_results("table3", results))


if __name__ == "__main__":
    main()
