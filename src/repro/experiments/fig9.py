"""Figure 9: tRCD sensitivity of SHADOW.

Sweeps SHADOW's effective tRCD' over {23, 25, 27} tCK (the default is
25) against the no-mitigation baseline at 19 tCK, across H_cnt from 16K
to 2K on mix-high and mix-blend.  Runs on the experiment engine
(deduplicated jobs, persistent cache, ``--jobs`` workers).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.configs import HCNT_SWEEP, fidelity_config
from repro.experiments.engine import Engine, WsRelativePlan, scheme_spec
from repro.experiments.report import (
    driver_arg_parser,
    format_table,
    save_results,
)
from repro.workloads import mix_blend, mix_high

TRCD_VALUES = (23, 25, 27)


def run(fidelity: str = "smoke", jobs: int = 1,
        engine: Optional[Engine] = None) -> Dict:
    """Run the experiment; returns the figure's series as a dict."""
    fc = fidelity_config(fidelity)
    engine = engine or Engine(jobs=jobs)
    plan = WsRelativePlan(fc.system_config())
    for mix_name, profiles in (("mix-high", mix_high(fc.threads)),
                               ("mix-blend", mix_blend(fc.threads))):
        for trcd in TRCD_VALUES:
            for hcnt in HCNT_SWEEP:
                plan.add((mix_name, trcd, hcnt), profiles,
                         scheme_spec("shadow-trcd", trcd=trcd, hcnt=hcnt))
    res = engine.run(plan.jobs)
    series: Dict[str, Dict[str, float]] = {}
    for mix_name in ("mix-high", "mix-blend"):
        for trcd in TRCD_VALUES:
            key = f"{mix_name}/tRCD{trcd}"
            series[key] = {
                str(hcnt): plan.value((mix_name, trcd, hcnt), res)
                for hcnt in HCNT_SWEEP}
    return {"experiment": "fig9", "fidelity": fidelity, "series": series}


def main() -> None:
    """Console entry point: print the regenerated figure series."""
    args = driver_arg_parser("fig9").parse_args()
    engine = Engine(jobs=args.jobs, use_cache=not args.no_cache)
    results = run(args.fidelity, jobs=args.jobs, engine=engine)
    hcnts = [str(h) for h in HCNT_SWEEP]
    rows = [[key] + [vals[h] for h in hcnts]
            for key, vals in results["series"].items()]
    print(format_table(
        ["series"] + [f"Hcnt={h}" for h in hcnts], rows,
        title=f"Figure 9: SHADOW tRCD sensitivity, weighted speedup "
              f"relative to tRCD19 baseline ({args.fidelity})"))
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"fig9_{args.fidelity}", results))


if __name__ == "__main__":
    main()
