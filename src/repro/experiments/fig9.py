"""Figure 9: tRCD sensitivity of SHADOW.

Sweeps SHADOW's effective tRCD' over {23, 25, 27} tCK (the default is
25) against the no-mitigation baseline at 19 tCK, across H_cnt from 16K
to 2K on mix-high and mix-blend.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.configs import HCNT_SWEEP, fidelity_config
from repro.experiments.report import format_table, save_results
from repro.experiments.schemes import make_shadow_with_trcd
from repro.sim.runner import ExperimentRunner
from repro.workloads import mix_blend, mix_high

TRCD_VALUES = (23, 25, 27)


def run(fidelity: str = "smoke") -> Dict:
    """Run the experiment; returns the figure's series as a dict."""
    fc = fidelity_config(fidelity)
    runner = ExperimentRunner(config=fc.system_config())
    series: Dict[str, Dict[str, float]] = {}
    for mix_name, profiles in (("mix-high", mix_high(fc.threads)),
                               ("mix-blend", mix_blend(fc.threads))):
        for trcd in TRCD_VALUES:
            key = f"{mix_name}/tRCD{trcd}"
            series[key] = {}
            for hcnt in HCNT_SWEEP:
                rel = runner.relative_performance(
                    profiles,
                    lambda: make_shadow_with_trcd(trcd, hcnt))
                series[key][str(hcnt)] = rel
    return {"experiment": "fig9", "fidelity": fidelity, "series": series}


def main() -> None:
    """Console entry point: print the regenerated figure series."""
    import sys
    fidelity = sys.argv[1] if len(sys.argv) > 1 else "full"
    results = run(fidelity)
    hcnts = [str(h) for h in HCNT_SWEEP]
    rows = [[key] + [vals[h] for h in hcnts]
            for key, vals in results["series"].items()]
    print(format_table(
        ["series"] + [f"Hcnt={h}" for h in hcnts], rows,
        title=f"Figure 9: SHADOW tRCD sensitivity, weighted speedup "
              f"relative to tRCD19 baseline ({fidelity})"))
    print("saved:", save_results(f"fig9_{fidelity}", results))


if __name__ == "__main__":
    main()
