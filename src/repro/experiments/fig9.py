"""Figure 9: tRCD sensitivity of SHADOW.

Sweeps SHADOW's effective tRCD' over {23, 25, 27} tCK (the default is
25) against the no-mitigation baseline at 19 tCK, across H_cnt from 16K
to 2K on mix-high and mix-blend.  One declarative
:class:`~repro.spec.ExperimentSpec` of weighted-speedup points, run by
the generic driver (deduplicated jobs, persistent cache, ``--jobs``
workers).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.configs import HCNT_SWEEP, fidelity_config
from repro.experiments.driver import run_spec
from repro.experiments.engine import Engine
from repro.experiments.report import (
    driver_arg_parser,
    engine_from_args,
    format_table,
    report_failures,
    save_results,
)
from repro.spec import ExperimentSpec, PointSpec, scheme_spec, workload_spec

TRCD_VALUES = (23, 25, 27)


def spec(fidelity: str = "smoke") -> ExperimentSpec:
    """The figure as data: one point per (mix, tRCD', H_cnt) cell."""
    fc = fidelity_config(fidelity)
    sim = fc.sim_spec()
    points = []
    for mix in ("mix-high", "mix-blend"):
        workload = workload_spec(mix, threads=fc.threads)
        for trcd in TRCD_VALUES:
            for hcnt in HCNT_SWEEP:
                points.append(PointSpec(
                    "ws-relative",
                    ("series", f"{mix}/tRCD{trcd}", str(hcnt)),
                    workload=workload,
                    scheme=scheme_spec("shadow-trcd", trcd=trcd,
                                       hcnt=hcnt),
                    sim=sim))
    return ExperimentSpec("fig9", fidelity, points)


def run(fidelity: str = "smoke", jobs: int = 1,
        engine: Optional[Engine] = None) -> Dict:
    """Run the experiment; returns the figure's series as a dict."""
    return run_spec(spec(fidelity), engine=engine, jobs=jobs)


def main() -> None:
    """Console entry point: print the regenerated figure series."""
    args = driver_arg_parser("fig9").parse_args()
    engine = engine_from_args(args)
    results = run(args.fidelity, jobs=args.jobs, engine=engine)
    if not report_failures(engine):
        hcnts = [str(h) for h in HCNT_SWEEP]
        rows = [[key] + [vals[h] for h in hcnts]
                for key, vals in results["series"].items()]
        print(format_table(
            ["series"] + [f"Hcnt={h}" for h in hcnts], rows,
            title=f"Figure 9: SHADOW tRCD sensitivity, weighted speedup "
                  f"relative to tRCD19 baseline ({args.fidelity})"))
    print("engine:", engine.stats.summary())
    print("saved:", save_results(f"fig9_{args.fidelity}", results))
    if engine.failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
