"""Uniform result printing, persistence and CLI plumbing for the
experiment drivers."""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import tempfile
from typing import Dict, List, Optional, Sequence


def driver_arg_parser(name: str) -> argparse.ArgumentParser:
    """The shared command line of the engine-backed figure drivers."""
    parser = argparse.ArgumentParser(
        prog=name, description=f"regenerate the {name} series")
    parser.add_argument("fidelity", nargs="?", default="full",
                        choices=("smoke", "full"),
                        help="run scale (default: full)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the simulation grid "
                             "(default: 1, run inline)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write results/.cache")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry each failing job up to N times with "
                             "exponential backoff (default: 0)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill any single job running longer than "
                             "this (worker pools only; default: none)")
    parser.add_argument("--keep-going", action="store_true",
                        help="on a permanently failed job, record it and "
                             "finish the sweep with partial results "
                             "instead of aborting (default: fail fast)")
    return parser


def engine_from_args(args):
    """Build the experiment :class:`~repro.experiments.engine.Engine`
    from a :func:`driver_arg_parser` namespace."""
    from repro.experiments.engine import Engine
    return Engine(jobs=args.jobs, use_cache=not args.no_cache,
                  retries=args.retries, job_timeout=args.job_timeout,
                  keep_going=args.keep_going)


def report_failures(engine) -> bool:
    """Print the engine's failure report; True if anything failed.

    Drivers call this before rendering their tables: a keep-going run
    with failures has holes in its series, so the table is skipped and
    the failures are listed instead (the partial results are still
    saved, and the failure report rides inside them).
    """
    failed = bool(engine.failures)
    for entry in engine.failure_report():
        what = "timed out" if entry["timed_out"] else "failed"
        print(f"FAILED: {entry['scheme']} x {'+'.join(entry['workloads'])} "
              f"{what} after {entry['attempts']} attempt(s): "
              f"{entry['exc_type']}: {entry['message']}")
    if failed:
        print("partial results only; rerun to resume from the cache "
              "(completed jobs are cache hits)")
    return failed


def format_table(headers: Sequence[str], rows: List[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table (the experiments' stdout format)."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.4g}" if isinstance(v, float) else str(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def save_results(name: str, payload: Dict, directory: str = "results") -> str:
    """Persist an experiment's dict as JSON; returns the path.

    The write is atomic (temp file + ``os.replace``): a crash or a
    concurrent reader never observes a truncated JSON file, and two
    drivers writing the same name leave one intact winner.
    """
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}.json"
    fd, tmp = tempfile.mkstemp(dir=out_dir, prefix=f".{name}.",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return str(path)


def scientific(value: float) -> str:
    """Table II's notation: '2E-15', '0', '1'."""
    if value <= 0:
        return "0"
    if value >= 0.95:
        return "1"
    mantissa, exponent = f"{value:.0e}".split("e")
    return f"{mantissa}E{int(exponent)}"
