"""Extended comparison: every implemented scheme on one mix.

Beyond the paper's figure sets: adds Graphene, stand-alone PARA, and
the Section VIII filtered-RFM variant of SHADOW to the comparison, all
at one threshold on mix-blend.  Used to sanity-check that the whole
mitigation zoo behaves sensibly side by side, and to quantify how many
RFMs the hazard filter saves on benign traffic.
"""

from __future__ import annotations

from typing import Dict

from repro.core import Shadow, ShadowConfig
from repro.core.config import secure_raaimt
from repro.experiments.configs import DEFAULT_HCNT, fidelity_config
from repro.experiments.report import format_table, save_results
from repro.mitigations import (
    BlockHammer,
    DoubleRefreshRate,
    FilteredRfm,
    Graphene,
    Para,
    Parfm,
    RandomizedRowSwap,
    mithril_area,
    mithril_perf,
)
from repro.mitigations.para import para_probability
from repro.sim.runner import ExperimentRunner
from repro.workloads import mix_blend


def scheme_factories(hcnt: int) -> Dict[str, callable]:
    """Fresh-instance factories for every implemented scheme."""
    raaimt = secure_raaimt(hcnt)

    def shadow():
        return Shadow(ShadowConfig(raaimt=raaimt, rng_kind="system"))

    def filtered_shadow():
        return FilteredRfm(shadow(), hazard_threshold=max(8, raaimt // 4))

    return {
        "SHADOW": shadow,
        "SHADOW+filter": filtered_shadow,
        "PARFM": lambda: Parfm.for_hcnt(hcnt),
        "PARA": lambda: Para(para_probability(hcnt)),
        "Mithril-perf": lambda: mithril_perf(hcnt),
        "Mithril-area": lambda: mithril_area(hcnt),
        "Graphene": lambda: Graphene(hcnt),
        "BlockHammer": lambda: BlockHammer.for_hcnt(hcnt),
        "RRS": lambda: RandomizedRowSwap.for_hcnt(hcnt),
        "DRR": DoubleRefreshRate,
    }


def run(fidelity: str = "smoke", hcnt: int = DEFAULT_HCNT) -> Dict:
    """Run the all-schemes comparison; returns the result dict."""
    fc = fidelity_config(fidelity)
    runner = ExperimentRunner(config=fc.system_config())
    profiles = mix_blend(fc.threads)
    rows: Dict[str, Dict[str, float]] = {}
    for name, factory in scheme_factories(hcnt).items():
        instance = factory()
        rel = runner.relative_performance(profiles, factory)
        shared = runner.run_shared(profiles, lambda: instance)
        rows[name] = {
            "relative_performance": rel,
            "rfms": shared.rfms,
            "rfms_filtered": getattr(instance, "rfms_filtered", 0),
        }
    return {"experiment": "extended", "fidelity": fidelity,
            "hcnt": hcnt, "schemes": rows}


def main() -> None:
    """Console entry point: print the comparison table."""
    import sys
    fidelity = sys.argv[1] if len(sys.argv) > 1 else "full"
    results = run(fidelity)
    table = [[name, vals["relative_performance"], vals["rfms"],
              vals["rfms_filtered"]]
             for name, vals in results["schemes"].items()]
    print(format_table(
        ["scheme", "rel. perf", "RFMs", "RFMs filtered"], table,
        title=f"Extended comparison on mix-blend "
              f"(Hcnt={results['hcnt']}, {fidelity})"))
    print("saved:", save_results(f"extended_{fidelity}", results))


if __name__ == "__main__":
    main()
