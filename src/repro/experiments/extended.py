"""Extended comparison: every registered scheme on one mix.

Beyond the paper's figure sets: the comparison set is drawn from the
central scheme registry (:data:`repro.spec.SCHEMES`), so it includes
Graphene, stand-alone PARA, the post-paper MINT and DAPPER trackers,
and every future scheme that registers an ``hcnt``-buildable factory --
no table here to keep in sync.  The Section VIII filtered-RFM variant
of SHADOW is the one composite added by hand (it wraps another scheme,
so it has no stand-alone registry entry).  Used to sanity-check that
the whole mitigation zoo behaves sensibly side by side, and to quantify
how many RFMs the hazard filter saves on benign traffic.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import secure_raaimt
from repro.experiments.configs import DEFAULT_HCNT, fidelity_config
from repro.experiments.report import format_table, save_results
from repro.mitigations import FilteredRfm
from repro.sim.runner import ExperimentRunner
from repro.spec.registry import SCHEMES
from repro.workloads import mix_blend

#: Registry name -> table label.  Names absent from this map print as
#: registered; names mapped to ``None`` are excluded from the sweep.
_DISPLAY = {
    "none": None,           # the normalization baseline, not a scheme row
    "shadow-ablate": None,  # identical to "shadow" at default toggles
    "shadow": "SHADOW",
    "parfm": "PARFM",
    "para": "PARA",
    "mithril-perf": "Mithril-perf",
    "mithril-area": "Mithril-area",
    "graphene": "Graphene",
    "blockhammer": "BlockHammer",
    "rrs": "RRS",
    "drr": "DRR",
    "mint": "MINT",
    "dapper": "DAPPER",
}


def scheme_factories(hcnt: int) -> Dict[str, callable]:
    """Fresh-instance factories for every ``hcnt``-buildable scheme.

    Driven by the scheme registry: anything constructible from ``hcnt``
    alone (the same criterion the CLI uses) gets a row, built exactly
    as the CLI and cached experiment jobs build it.
    """
    factories: Dict[str, callable] = {}
    for name in SCHEMES.names():
        label = _DISPLAY.get(name, name)
        if label is None or not SCHEMES.accepts(name, "hcnt"):
            continue
        params = SCHEMES.buildable_params(name, {"hcnt": hcnt})
        factories[label] = lambda n=name, p=params: SCHEMES.build(n, **p)

    raaimt = secure_raaimt(hcnt)
    factories["SHADOW+filter"] = lambda: FilteredRfm(
        factories["SHADOW"](), hazard_threshold=max(8, raaimt // 4))
    return factories


def run(fidelity: str = "smoke", hcnt: int = DEFAULT_HCNT) -> Dict:
    """Run the all-schemes comparison; returns the result dict."""
    fc = fidelity_config(fidelity)
    runner = ExperimentRunner(config=fc.system_config())
    profiles = mix_blend(fc.threads)
    rows: Dict[str, Dict[str, float]] = {}
    for name, factory in scheme_factories(hcnt).items():
        instance = factory()
        rel = runner.relative_performance(profiles, factory)
        shared = runner.run_shared(profiles, lambda: instance)
        rows[name] = {
            "relative_performance": rel,
            "rfms": shared.rfms,
            "rfms_filtered": getattr(instance, "rfms_filtered", 0),
        }
    return {"experiment": "extended", "fidelity": fidelity,
            "hcnt": hcnt, "schemes": rows}


def main() -> None:
    """Console entry point: print the comparison table."""
    import sys
    fidelity = sys.argv[1] if len(sys.argv) > 1 else "full"
    results = run(fidelity)
    table = [[name, vals["relative_performance"], vals["rfms"],
              vals["rfms_filtered"]]
             for name, vals in results["schemes"].items()]
    print(format_table(
        ["scheme", "rel. perf", "RFMs", "RFMs filtered"], table,
        title=f"Extended comparison on mix-blend "
              f"(Hcnt={results['hcnt']}, {fidelity})"))
    print("saved:", save_results(f"extended_{fidelity}", results))


if __name__ == "__main__":
    main()
