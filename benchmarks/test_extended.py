"""Benchmark: the extended all-schemes comparison (+ RFM filtering)."""

from repro.experiments import extended


def test_extended(once):
    results = once(extended.run, "smoke")
    schemes = results["schemes"]
    for name, vals in schemes.items():
        print(name.ljust(14),
              f"rel={vals['relative_performance']:.3f} "
              f"rfms={vals['rfms']} filtered={vals['rfms_filtered']}")

    # Everyone stays within sane bounds on mix-blend at 4K.
    for name, vals in schemes.items():
        assert 0.5 < vals["relative_performance"] <= 1.02, name

    # The hazard filter removes some RFM work on benign traffic without
    # costing performance (paper Section VIII's pitch).
    plain = schemes["SHADOW"]["relative_performance"]
    filtered = schemes["SHADOW+filter"]
    assert filtered["rfms_filtered"] > 0
    assert filtered["relative_performance"] >= plain - 0.02

    # RFM-based schemes actually issued RFMs.
    for name in ("SHADOW", "PARFM", "Mithril-area"):
        assert schemes[name]["rfms"] > 0, name
