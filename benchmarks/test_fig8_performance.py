"""Benchmark: regenerate Figure 8 (relative performance of the schemes).

Smoke fidelity; the shape assertions mirror the paper's claims:
single-threaded overhead is negligible for every scheme; SHADOW stays
within a few percent on the memory-intensive mixes; DRR's blunt extra
refreshes make it the costly yardstick on refresh-sensitive workloads.
"""

from repro.experiments import fig8


def test_fig8(once):
    results = once(fig8.run, "smoke")
    series = results["relative_performance"]
    workloads = list(next(iter(series.values())))
    for name, vals in series.items():
        print(name.ljust(14),
              "  ".join(f"{w}={vals[w]:.3f}" for w in workloads))

    # Single-threaded applications barely notice any scheme (paper:
    # "rarely increase the execution time", <2% even on spec-high).
    for name, vals in series.items():
        for group in ("spec-high", "spec-med", "spec-low"):
            assert vals[group] > 0.93, (name, group)

    # SHADOW on the mixes: low single-digit overhead (paper: <3%).
    assert series["SHADOW"]["mix-high"] > 0.93
    assert series["SHADOW"]["mix-blend"] > 0.95

    # Mithril-perf (10 KB CAM per bank) never loses to SHADOW by much:
    # its large table buys rare RFMs (paper Section VII-C).
    assert series["Mithril-perf"]["mix-high"] >= \
        series["SHADOW"]["mix-high"] - 0.03

    # Nothing beats the unprotected baseline.
    for name, vals in series.items():
        for workload, rel in vals.items():
            assert rel <= 1.02, (name, workload)
