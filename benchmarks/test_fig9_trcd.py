"""Benchmark: regenerate Figure 9 (tRCD sensitivity of SHADOW)."""

from repro.experiments import fig9
from repro.experiments.configs import HCNT_SWEEP


def test_fig9(once):
    results = once(fig9.run, "smoke")
    series = results["series"]
    for key, vals in series.items():
        print(key.ljust(20),
              "  ".join(f"{h}={vals[str(h)]:.3f}" for h in HCNT_SWEEP))

    # Paper: overhead always below ~4-5% across the sweep.
    for key, vals in series.items():
        for hcnt, rel in vals.items():
            assert rel > 0.93, (key, hcnt)

    # Paper: at high Hcnt (rare RFMs) the tRCD value is what matters, so
    # a larger tRCD' never helps.
    for mix in ("mix-high", "mix-blend"):
        r23 = series[f"{mix}/tRCD23"]["16384"]
        r27 = series[f"{mix}/tRCD27"]["16384"]
        assert r27 <= r23 + 0.01, mix
