"""Shared benchmark plumbing.

Every figure/table benchmark runs its experiment exactly once through
``pytest-benchmark`` (``pedantic`` with one round -- these are minutes-
scale simulations, not microseconds-scale kernels), prints the
regenerated rows/series, and asserts the paper's qualitative shape.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run ``fn`` a single time under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
