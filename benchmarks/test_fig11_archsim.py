"""Benchmark: regenerate Figure 11 (SHADOW vs BlockHammer vs RRS)."""

from repro.experiments import fig11


def test_fig11(once):
    results = once(fig11.run, "smoke")
    series = results["series"]
    sweep = [str(h) for h in results["hcnt_sweep"]]
    hi, lo = sweep[0], sweep[-1]   # 16K ... 2K
    for key, vals in series.items():
        print(key.ljust(24),
              "  ".join(f"{h}={vals[h]:.3f}" for h in sweep))

    for mix in {key.split("/")[0] for key in series}:
        shadow = series[f"{mix}/SHADOW"]
        blockhammer = series[f"{mix}/BlockHammer"]
        rrs = series[f"{mix}/RRS"]

        # SHADOW is robust across the whole sweep (paper: best scheme
        # below 4K, always within a few percent).
        for h in sweep:
            assert shadow[h] > 0.9, (mix, h)

        # BlockHammer collapses as the threshold drops (throttle delays
        # grow as tREFW/hcnt and misidentification rises).
        assert blockhammer[lo] < blockhammer[hi], mix
        # SHADOW beats BlockHammer at the lowest threshold.
        assert shadow[lo] > blockhammer[lo], mix

        # RRS never beats SHADOW at the lowest threshold (channel-
        # blocking swaps fire ever more often).
        assert shadow[lo] >= rrs[lo] - 0.03, mix
