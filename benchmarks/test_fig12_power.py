"""Benchmark: regenerate Figure 12 (relative power, RFM/REF ratio)."""

from repro.experiments import fig12
from repro.experiments.configs import HCNT_SWEEP


def test_fig12(once):
    results = once(fig12.run, "smoke")
    series = results["series"]
    for key, vals in series.items():
        print(key.ljust(26),
              "  ".join(f"{h}={vals[str(h)]:.4f}" for h in HCNT_SWEEP))

    for mix in ("mix-high", "mix-blend"):
        power = series[f"{mix}/relative-power"]
        ratio = series[f"{mix}/rfm-per-ref"]

        # Paper: system-level power cost below 0.63% even at 2K, and
        # never below baseline (SHADOW only ever adds energy).
        for h in HCNT_SWEEP:
            assert 1.0 <= power[str(h)] < 1.0063, (mix, h)

        # The RFM count grows as Hcnt shrinks (RAAIMT drops)...
        assert ratio["2048"] >= ratio["16384"], mix
        # ...while the power stays nearly flat (dominated by the
        # per-ACT remapping-row accesses, not the shuffles).
        spread = max(power[str(h)] for h in HCNT_SWEEP) \
            - min(power[str(h)] for h in HCNT_SWEEP)
        assert spread < 0.005, mix
