"""Benchmark: ablations of SHADOW's design choices (DESIGN.md Sec. 6)."""

from repro.experiments import ablations


def test_ablations(once):
    results = once(ablations.run, "smoke")

    timing = results["timing"]
    for name, vals in timing.items():
        print(name.ljust(18), vals)

    # Subarray pairing hides the remapping-row restore/precharge: without
    # it both the ACT path and the RFM work get much slower.
    assert timing["no pairing"]["act_extra_cycles"] > \
        3 * timing["full SHADOW"]["act_extra_cycles"]
    assert timing["no pairing"]["rfm_work_ns"] > \
        timing["full SHADOW"]["rfm_work_ns"]

    # The isolation transistor is what makes the remapping read cheap.
    assert timing["no isolation"]["act_extra_cycles"] > \
        timing["full SHADOW"]["act_extra_cycles"]

    # Dropping the incremental refresh saves (tRAS + tRP) per RFM.
    assert timing["no incr. refresh"]["rfm_work_ns"] < \
        timing["full SHADOW"]["rfm_work_ns"]

    protection = results["protection"]
    print(protection)
    # Protection ordering: full SHADOW <= no-incremental <= undefended.
    assert protection["with incremental refresh"] <= \
        protection["without incremental refresh"] + 0.05
    assert protection["no shuffle (RFM only)"] > 0.8
    assert protection["with incremental refresh"] < \
        protection["no shuffle (RFM only)"]

    performance = results["performance"]
    print(performance)
    # The LFSR RNG option performs the same as PRINCE (Section VIII).
    assert abs(performance["LFSR RNG"]
               - performance["full SHADOW"]) < 0.03
    # The un-paired variant pays for its longer tRCD'.
    assert performance["no pairing"] <= performance["full SHADOW"] + 0.01
