"""Benchmark: regenerate Table III (analytical circuit timings)."""

import pytest

from repro.experiments import table3


def test_table3(once):
    results = once(table3.run)
    rows = results["rows"]
    for key, row in rows.items():
        print(f"{key:10s} {row['timing_ns']:.1f} ns "
              f"(ratio {row['ratio'] if row['ratio'] is not None else '-'})")

    # Every row of the table within tight absolute tolerance.
    assert rows["tRCD'"]["timing_ns"] == pytest.approx(17.7, abs=0.5)
    assert rows["row-copy"]["timing_ns"] == pytest.approx(73.9, abs=1.0)
    assert rows["tRCD_RM"]["timing_ns"] == pytest.approx(2.3, abs=0.5)
    assert rows["tWR_RM"]["timing_ns"] == pytest.approx(9.0, abs=0.5)
    assert rows["tRD_RM"]["timing_ns"] == pytest.approx(4.0, abs=0.5)

    # Ratios against the baseline column.
    assert rows["tRCD'"]["ratio"] == pytest.approx(0.29, abs=0.03)
    assert rows["tRCD_RM"]["ratio"] == pytest.approx(-0.83, abs=0.05)
    assert rows["tWR_RM"]["ratio"] == pytest.approx(-0.24, abs=0.03)
    assert rows["tRD_RM"]["ratio"] == pytest.approx(-0.71, abs=0.05)

    # Section VII-B row-shuffle totals: 178 ns DDR4, 186 ns DDR5.
    totals = results["shuffle_total_ns"]
    assert totals["DDR4-2666"] == pytest.approx(178, abs=4)
    assert totals["DDR5-4800"] == pytest.approx(186, abs=5)
