"""Microbenchmarks of the hot paths (conventional pytest-benchmark use).

These quantify the engine itself: PRINCE throughput (the paper budgets
126 Mbit/s per chip), SHADOW's translation lookup, the shuffle
operation, and raw simulator request throughput.
"""

from repro.core.controller import ShadowBankController
from repro.dram.subarray import SubarrayLayout
from repro.sim import System, SystemConfig
from repro.utils.prince import PrinceCipher
from repro.utils.rng import PrinceRng, SystemRng
from repro.workloads import SPEC_PROFILES

LAYOUT = SubarrayLayout()


def test_prince_block_throughput(benchmark):
    cipher = PrinceCipher(0x0123456789ABCDEF_FEDCBA9876543210)

    def encrypt_batch():
        for i in range(100):
            cipher.encrypt(i)

    benchmark(encrypt_batch)


def test_prince_rng_bits(benchmark):
    rng = PrinceRng(key=42)
    benchmark(lambda: rng.next_bits(32))


def test_shadow_translate(benchmark):
    ctrl = ShadowBankController(LAYOUT, raaimt=64, rng=SystemRng(1))
    for _ in range(64):     # churn the mapping first
        ctrl.record_activation(7)
        ctrl.run_rfm()

    def translate_many():
        for pa in range(0, 8192, 64):
            ctrl.translate(pa)

    benchmark(translate_many)


def test_shadow_shuffle_op(benchmark):
    ctrl = ShadowBankController(LAYOUT, raaimt=64, rng=SystemRng(2))

    def one_rfm():
        ctrl.record_activation(123)
        ctrl.run_rfm()

    benchmark(one_rfm)


def test_simulator_throughput(benchmark):
    """End-to-end requests simulated per benchmark round."""
    config = SystemConfig(requests_per_thread=400, seed=1)

    def run_small_system():
        return System([SPEC_PROFILES["gcc"]], config=config).run()

    result = benchmark.pedantic(run_small_system, rounds=3, iterations=1)
    assert result.requests_issued == 400
