"""Benchmark: regenerate Table II (closed-form security analysis)."""

import math

from repro.experiments import table2


def test_table2(once):
    results = once(table2.run)
    cells = results["cells"]

    rows = []
    for raaimt in table2.RAAIMT_VALUES:
        vals = [cells[f"{raaimt},{h}"]["probability"]
                for h in table2.HCNT_VALUES]
        rows.append((raaimt, vals))
        print(f"RAAIMT={raaimt}: " + "  ".join(f"{v:.1e}" for v in vals))

    # Shape 1: the secure set matches the paper's bold entries exactly
    # (anything below the 1%/rank-year budget counts as secure).
    for raaimt in table2.RAAIMT_VALUES:
        for hcnt in table2.HCNT_VALUES:
            cell = cells[f"{raaimt},{hcnt}"]
            paper_value = {"1": 1.0, "0": 0.0}.get(
                cell["paper"], float(cell["paper"].replace("E", "e")))
            assert cell["secure"] == (paper_value < 0.01), (raaimt, hcnt)

    # Shape 2: halving RAAIMT collapses the probability super-linearly.
    for hcnt in table2.HCNT_VALUES:
        p128 = cells[f"128,{hcnt}"]["probability"]
        p64 = cells[f"64,{hcnt}"]["probability"]
        p32 = cells[f"32,{hcnt}"]["probability"]
        assert p32 <= p64 <= p128

    # Shape 3: diagonal structure (equal hcnt/raaimt ~ equal regime).
    diag = [cells["128,8192"], cells["64,4096"], cells["32,2048"]]
    logs = [math.log10(max(c["probability"], 1e-300)) for c in diag]
    assert max(logs) - min(logs) < 2.5


def test_every_paper_cell_within_two_decades(once):
    results = once(table2.run)
    for key, cell in results["cells"].items():
        paper = {"1": 1.0, "0": 0.0}.get(
            cell["paper"], float(cell["paper"].replace("E", "e")))
        ours = cell["probability"]
        if paper == 0.0:
            assert ours < 1e-80, key
        elif paper >= 0.4:
            assert ours > 1e-2, key
        else:
            assert abs(math.log10(ours) - math.log10(paper)) < 2.0, key
