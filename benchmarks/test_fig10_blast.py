"""Benchmark: regenerate Figure 10 (blast-radius sensitivity)."""

from repro.experiments import fig10


def test_fig10(once):
    results = once(fig10.run, "smoke")
    series = results["series"]
    radii = results["radii"]
    for key, vals in series.items():
        print(key.ljust(18),
              "  ".join(f"r{r}={vals[str(r)]:.3f}" for r in radii))

    lo, hi = str(radii[0]), str(radii[-1])
    for mix in {key.split("/")[0] for key in series}:
        shadow = series[f"{mix}/SHADOW"]
        parfm = series[f"{mix}/PARFM"]
        mithril = series[f"{mix}/Mithril"]

        # SHADOW's mitigating action is radius-independent: its curve is
        # flat (the paper's central Figure 10 claim).
        values = [shadow[str(r)] for r in radii]
        assert max(values) - min(values) < 0.04, mix

        # TRR-based schemes degrade as the radius widens...
        assert parfm[hi] <= parfm[lo] + 0.01, mix
        # ...and SHADOW wins at the widest radius (paper: radius > 2).
        assert shadow[hi] >= parfm[hi] - 0.005, mix
        assert shadow[hi] >= mithril[hi] - 0.005, mix
