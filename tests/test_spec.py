"""The declarative spec layer: round-trips, hashing, registries.

Property-based guarantees (hypothesis): every spec type satisfies
``from_dict(to_dict(s)) == s`` -- including through an actual JSON
encode/decode -- and its canonical digest is a stable identity
independent of parameter ordering.  Plus the registry error contract
(did-you-mean suggestions listing the registered keys) and the
``shadow-trcd`` seed-plumbing regression.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.factories import make_shadow, make_shadow_with_trcd
from repro.experiments.configs import fidelity_config
from repro.spec import (
    ExperimentSpec,
    PointSpec,
    SchemeSpec,
    SimSpec,
    TimingSpec,
    WorkloadSpec,
    scheme_spec,
    workload_spec,
)
from repro.spec.registry import SCHEMES, TIMINGS, WORKLOADS, UnknownNameError

# -- strategies --------------------------------------------------------------------

KEYS = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1,
               max_size=10)
SCALARS = st.one_of(
    st.integers(-10**9, 10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.text(max_size=20),
)
VALUES = st.one_of(
    SCALARS,
    st.lists(SCALARS, max_size=4),
    st.dictionaries(KEYS, SCALARS, max_size=3),
)
PARAM_BAGS = st.dictionaries(KEYS, VALUES, max_size=5)

scheme_specs = st.builds(
    SchemeSpec, st.sampled_from(sorted(SCHEMES.names())), PARAM_BAGS)
workload_specs = st.builds(
    WorkloadSpec, st.sampled_from(sorted(WORKLOADS.names())), PARAM_BAGS)
timing_specs = st.builds(
    TimingSpec, st.sampled_from(sorted(TIMINGS.names())), PARAM_BAGS)
sim_specs = st.builds(
    SimSpec,
    timing=timing_specs,
    requests=st.integers(1, 10**6),
    seed=st.integers(0, 2**31),
    mlp=st.integers(1, 64),
    cpu_ghz=st.floats(0.5, 6.0),
    enable_refresh=st.booleans(),
    max_cycles=st.integers(1, 10**12),
)
point_specs = st.builds(
    PointSpec,
    metric=KEYS,
    group=st.lists(st.text(min_size=1, max_size=12), min_size=1,
                   max_size=3).map(tuple),
    workload=st.none() | workload_specs,
    scheme=st.none() | scheme_specs,
    sim=st.none() | sim_specs,
    params=PARAM_BAGS,
)
experiment_specs = st.builds(
    ExperimentSpec,
    name=KEYS,
    fidelity=st.sampled_from(["smoke", "full"]),
    points=st.lists(point_specs, max_size=4).map(tuple),
    meta=PARAM_BAGS,
)


def roundtrip(spec):
    """from_dict(to_dict(s)) == s, also through real JSON text."""
    cls = type(spec)
    assert cls.from_dict(spec.to_dict()) == spec
    rehydrated = cls.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rehydrated == spec
    assert rehydrated.digest() == spec.digest()


class TestRoundTrips:
    @settings(max_examples=50, deadline=None)
    @given(scheme_specs)
    def test_scheme_spec(self, spec):
        roundtrip(spec)

    @settings(max_examples=50, deadline=None)
    @given(workload_specs)
    def test_workload_spec(self, spec):
        roundtrip(spec)

    @settings(max_examples=50, deadline=None)
    @given(timing_specs)
    def test_timing_spec(self, spec):
        roundtrip(spec)

    @settings(max_examples=50, deadline=None)
    @given(sim_specs)
    def test_sim_spec(self, spec):
        roundtrip(spec)

    @settings(max_examples=30, deadline=None)
    @given(point_specs)
    def test_point_spec(self, spec):
        roundtrip(spec)

    @settings(max_examples=20, deadline=None)
    @given(experiment_specs)
    def test_experiment_spec(self, spec):
        roundtrip(spec)


class TestCanonicalHash:
    @settings(max_examples=50, deadline=None)
    @given(st.sampled_from(sorted(SCHEMES.names())), PARAM_BAGS)
    def test_param_order_is_irrelevant(self, kind, params):
        forward = SchemeSpec(kind, params)
        reversed_bag = dict(reversed(list(params.items())))
        backward = SchemeSpec(kind, reversed_bag)
        assert forward == backward
        assert hash(forward) == hash(backward)
        assert forward.digest() == backward.digest()

    def test_digest_is_data_defined(self):
        # A pinned digest: changing the canonical encoding (and thereby
        # every on-disk cache key derived from spec hashes) must be a
        # deliberate, versioned decision -- not an accident.
        spec = scheme_spec("shadow", hcnt=4096)
        assert spec.to_dict() == {"kind": "shadow",
                                  "params": {"hcnt": 4096}}
        assert spec.canonical_json() == \
            '{"kind":"shadow","params":{"hcnt":4096}}'

    def test_payload_matches_to_dict(self):
        # The engine's cache keys are built from ``payload()``; it must
        # stay the exact dict shape ``to_dict`` produces.
        spec = scheme_spec("parfm", hcnt=2048, radius=2)
        assert spec.payload() == spec.to_dict()


class TestRegistryErrors:
    def test_scheme_did_you_mean(self):
        with pytest.raises(UnknownNameError, match=r"did you mean 'shadow'"):
            SCHEMES.resolve("shdow")

    def test_unknown_lists_registered_keys(self):
        with pytest.raises(UnknownNameError, match="registered"):
            WORKLOADS.resolve("nonesuch")

    def test_spec_construction_validates_kind(self):
        with pytest.raises(UnknownNameError):
            SchemeSpec("not-a-scheme")
        with pytest.raises(UnknownNameError):
            WorkloadSpec("not-a-workload")
        with pytest.raises(UnknownNameError):
            TimingSpec("DDR9-0000")

    def test_registries_are_populated(self):
        assert {"none", "shadow", "shadow-trcd", "parfm", "drr",
                "blockhammer", "rrs"} <= set(SCHEMES.names())
        assert {"spec", "mix-high", "mix-blend",
                "mix-random"} <= set(WORKLOADS.names())
        assert {"DDR4-2666", "DDR5-4800"} <= set(TIMINGS.names())

    def test_reregistration_with_different_factory_fails(self):
        with pytest.raises(ValueError, match="already registered"):
            SCHEMES.register("shadow", lambda: None)

    def test_reregistration_same_source_is_tolerated(self):
        # A provider run as ``python -m ...`` registers from __main__,
        # then the driver's lazy provider import registers the same
        # source again under the canonical module name.  The first
        # registration must win, silently.
        from repro.spec.registry import Registry

        class Thing:
            def __call__(self):
                return 1

        registry = Registry("thing")
        first, reimported = Thing(), Thing()
        registry.register("t", first)
        registry.register("t", reimported)
        assert registry.resolve("t") is first
        with pytest.raises(ValueError, match="already registered"):
            registry.register("t", lambda: 2)


class TestBuild:
    def test_scheme_spec_builds_fresh_instances(self):
        spec = scheme_spec("shadow", hcnt=4096)
        assert spec.build() is not spec.build()

    def test_workload_spec_builds_profiles(self):
        profiles = workload_spec("mix-high", threads=4).build()
        assert len(profiles) == 4

    def test_timing_spec_overrides(self):
        timing = TimingSpec("DDR4-2666", {"tRCD": 23}).build()
        assert timing.tRCD == 23

    def test_sim_spec_matches_fidelity_system_config(self):
        # Cache-key compatibility: the declarative path must produce the
        # exact SystemConfig the pre-spec drivers built.
        fc = fidelity_config("smoke")
        assert (fc.sim_spec().to_system_config()
                == fc.system_config())
        assert (fc.sim_spec(requests=fc.single_thread_requests)
                .to_system_config()
                == fc.system_config(requests=fc.single_thread_requests))


class TestShadowTrcdSeed:
    """Regression: ``make_shadow_with_trcd`` used to drop the RNG seed."""

    def test_seed_reaches_config(self):
        shadow = make_shadow_with_trcd(23, hcnt=4096, seed=7)
        assert shadow.config.rng_seed == 7

    def test_matches_make_shadow_seeding(self):
        a = make_shadow(4096, seed=11)
        b = make_shadow_with_trcd(25, hcnt=4096, seed=11)
        assert a.config.rng_seed == b.config.rng_seed == 11

    def test_same_seed_same_config(self):
        a = make_shadow_with_trcd(23, hcnt=4096, seed=5)
        b = make_shadow_with_trcd(23, hcnt=4096, seed=5)
        assert a.config == b.config

    def test_spec_plumbs_seed(self):
        spec = scheme_spec("shadow-trcd", trcd=23, hcnt=4096, seed=9)
        assert spec.build().config.rng_seed == 9
