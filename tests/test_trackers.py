"""Tracker data structures: Misra-Gries, CbS, CMS, D-CBF."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mitigations.trackers import (
    CountMinSketch,
    CounterSummary,
    DualCountingBloomFilter,
    MisraGries,
)


class TestMisraGries:
    def test_tracks_heavy_hitter_exactly_when_room(self):
        mg = MisraGries(capacity=4)
        for _ in range(10):
            mg.observe(1)
        assert mg.estimate(1) == 10

    def test_never_underestimates_by_more_than_spill(self):
        mg = MisraGries(capacity=2)
        truth = {}
        keys = [1, 2, 3, 4, 1, 1, 2, 5, 1, 1, 6, 1]
        for k in keys:
            truth[k] = truth.get(k, 0) + 1
            mg.observe(k)
        for k, count in truth.items():
            assert mg.estimate(k) >= count - mg.spill

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=200))
    @settings(max_examples=40)
    def test_overestimate_bounded_by_spill_property(self, keys):
        mg = MisraGries(capacity=3)
        truth = {}
        for k in keys:
            truth[k] = truth.get(k, 0) + 1
            mg.observe(k)
        for k in truth:
            assert truth[k] <= mg.estimate(k) + mg.spill
            assert mg.estimate(k) <= truth[k] + mg.spill

    def test_reset_key(self):
        mg = MisraGries(capacity=2)
        for _ in range(5):
            mg.observe(7)
        mg.reset_key(7)
        assert mg.estimate(7) == mg.spill

    def test_max_entry_and_clear(self):
        mg = MisraGries(capacity=4)
        for _ in range(3):
            mg.observe(1)
        mg.observe(2)
        assert mg.max_entry() == (1, 3)
        mg.clear()
        assert mg.max_entry() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            MisraGries(0)


class TestCounterSummary:
    def test_hottest_tracks_heavy_hitter(self):
        cbs = CounterSummary(entries=4)
        for _ in range(20):
            cbs.observe(42)
        for k in range(100, 110):
            cbs.observe(k)
        key, count = cbs.hottest()
        assert key == 42
        assert count >= 20

    def test_min_inheritance_never_undercounts(self):
        cbs = CounterSummary(entries=2)
        truth = {}
        for k in [1, 2, 3, 3, 4, 3, 5, 3]:
            truth[k] = truth.get(k, 0) + 1
            cbs.observe(k)
        # The CbS invariant: a tracked key's count >= its true count.
        for k, c in cbs.counts.items():
            assert c >= truth[k]

    def test_settle(self):
        cbs = CounterSummary(entries=4)
        for _ in range(10):
            cbs.observe(1)
        cbs.observe(2)
        cbs.settle(1)
        assert cbs.counts[1] == cbs.floor()

    def test_empty(self):
        cbs = CounterSummary(entries=2)
        assert cbs.hottest() is None
        assert cbs.floor() == 0


class TestCountMinSketch:
    def test_never_underestimates(self):
        cms = CountMinSketch(width=32, depth=4)
        truth = {}
        for k in range(200):
            key = k % 17
            truth[key] = truth.get(key, 0) + 1
            cms.add(key)
        for key, count in truth.items():
            assert cms.estimate(key) >= count

    def test_exact_when_sparse(self):
        cms = CountMinSketch(width=1024, depth=4)
        cms.add(5, amount=7)
        assert cms.estimate(5) == 7
        assert cms.estimate(6) == 0

    def test_clear(self):
        cms = CountMinSketch(width=16, depth=2)
        cms.add(1)
        cms.clear()
        assert cms.estimate(1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch(width=8, depth=99)


class TestDualCbf:
    def test_counts_within_epoch(self):
        dcbf = DualCountingBloomFilter(width=256, epoch_cycles=1000)
        for i in range(10):
            dcbf.observe(5, cycle=i)
        assert dcbf.estimate(5, cycle=10) >= 10

    def test_estimate_survives_one_rotation(self):
        dcbf = DualCountingBloomFilter(width=256, epoch_cycles=1000)
        for i in range(10):
            dcbf.observe(5, cycle=i)
        # After one rotation the retired filter still holds the counts.
        assert dcbf.estimate(5, cycle=1500) >= 10
        assert dcbf.rotations == 1

    def test_counts_expire_after_two_epochs(self):
        dcbf = DualCountingBloomFilter(width=256, epoch_cycles=1000)
        for i in range(10):
            dcbf.observe(5, cycle=i)
        assert dcbf.estimate(5, cycle=2500) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DualCountingBloomFilter(width=8, epoch_cycles=0)
