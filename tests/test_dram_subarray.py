"""Subarray layout arithmetic and occupancy permutation invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.subarray import Subarray, SubarrayLayout

LAYOUT = SubarrayLayout(subarrays_per_bank=16, rows_per_subarray=512)


class TestLayout:
    def test_slot_counts(self):
        assert LAYOUT.slots_per_subarray == 513
        assert LAYOUT.mc_rows_per_bank == 16 * 512
        assert LAYOUT.da_rows_per_bank == 16 * 513

    def test_no_empty_row_variant(self):
        plain = SubarrayLayout(has_empty_row=False)
        assert plain.slots_per_subarray == plain.rows_per_subarray

    @given(st.integers(min_value=0, max_value=LAYOUT.mc_rows_per_bank - 1))
    @settings(max_examples=50)
    def test_pa_roundtrip(self, pa_row):
        sub = LAYOUT.subarray_of_pa(pa_row)
        off = LAYOUT.pa_offset(pa_row)
        assert LAYOUT.pa_row(sub, off) == pa_row

    @given(st.integers(min_value=0, max_value=LAYOUT.da_rows_per_bank - 1))
    @settings(max_examples=50)
    def test_da_roundtrip(self, da_row):
        sub = LAYOUT.subarray_of_da(da_row)
        off = LAYOUT.da_offset(da_row)
        assert LAYOUT.da_row(sub, off) == da_row

    def test_identity_da_lands_in_same_subarray(self):
        for pa in (0, 511, 512, 8191):
            da = LAYOUT.identity_da(pa)
            assert LAYOUT.subarray_of_da(da) == LAYOUT.subarray_of_pa(pa)
            assert LAYOUT.da_offset(da) == LAYOUT.pa_offset(pa)

    def test_da_range(self):
        lo, hi = LAYOUT.da_range(3)
        assert hi - lo == 513
        assert LAYOUT.subarray_of_da(lo) == 3
        assert LAYOUT.subarray_of_da(hi - 1) == 3

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LAYOUT.subarray_of_pa(LAYOUT.mc_rows_per_bank)
        with pytest.raises(ValueError):
            LAYOUT.subarray_of_da(-1)
        with pytest.raises(ValueError):
            LAYOUT.da_row(0, 513)

    def test_pairing_is_an_involution_and_skips_neighbours(self):
        for sub in range(LAYOUT.subarrays_per_bank):
            pair = LAYOUT.paired_subarray(sub)
            assert pair != sub
            assert LAYOUT.paired_subarray(pair) == sub
            # Open-bitline constraint: partners must not be adjacent
            # (adjacent subarrays share a row buffer).
            assert abs(pair - sub) >= 2

    def test_pairing_small_bank_fallback(self):
        small = SubarrayLayout(subarrays_per_bank=2, rows_per_subarray=8)
        assert small.paired_subarray(0) == 1
        assert small.paired_subarray(1) == 0


class TestSubarrayOccupancy:
    def make(self):
        return Subarray(SubarrayLayout(subarrays_per_bank=4,
                                       rows_per_subarray=8), index=1)

    def test_initial_identity_mapping(self):
        sa = self.make()
        assert sa.occupancy[:8] == list(range(8))
        assert sa.empty_offset == 8
        sa.check_permutation()

    def test_copy_row_moves_occupant(self):
        sa = self.make()
        sa.copy_row(src_offset=3, dst_offset=8)
        assert sa.occupancy[8] == 3
        assert sa.empty_offset == 3
        sa.check_permutation()

    def test_copy_into_occupied_slot_rejected(self):
        sa = self.make()
        with pytest.raises(ValueError):
            sa.copy_row(0, 1)

    def test_copy_from_empty_slot_rejected(self):
        sa = self.make()
        with pytest.raises(ValueError):
            sa.copy_row(8, 0)

    def test_copy_to_self_rejected(self):
        sa = self.make()
        with pytest.raises(ValueError):
            sa.copy_row(2, 2)

    def test_slot_of(self):
        sa = self.make()
        sa.copy_row(5, 8)
        assert sa.slot_of(5) == 8
        with pytest.raises(ValueError):
            sa.slot_of(8)  # 8 is not a valid PA offset for 8-row subarray

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                    max_size=40))
    @settings(max_examples=30)
    def test_random_shuffle_sequences_preserve_permutation(self, rows):
        """A SHADOW-like shuffle (move row X to empty, repeat) is always a
        permutation."""
        sa = self.make()
        for pa_offset in rows:
            src = sa.slot_of(pa_offset)
            dst = sa.empty_offset
            if src == dst:
                continue
            sa.copy_row(src, dst)
            sa.check_permutation()
        sa.check_permutation()
