"""Fault injection: ECC classification, recovery policies, injector."""

import pytest

from repro.dram.device import BankAddress
from repro.dram.sppr import SpprConfig
from repro.dram.subarray import SubarrayLayout
from repro.faults import build_injector
from repro.faults.ecc import (
    CORRECTED,
    MASKED,
    SILENT,
    UNCORRECTABLE,
    EccConfig,
    EccModel,
    classify,
)
from repro.faults.inject import FaultInjector
from repro.faults.recovery import (
    MAX_EVENTS,
    PANIC,
    RECORDED,
    RETIRED,
    RETRY,
    RecoveryConfig,
    RecoveryPipeline,
)
from repro.rowhammer.model import HammerConfig
from repro.spec import FaultSpec, fault_spec

LAYOUT = SubarrayLayout(subarrays_per_bank=4, rows_per_subarray=32)
ADDR = BankAddress(0, 0, 0)


def make_injector(hcnt=8, codewords=4, policy="retire", seed=1,
                  scrub=True, sppr=None):
    return FaultInjector(
        HammerConfig(hcnt=hcnt, blast_radius=1, layout=LAYOUT),
        ecc=EccConfig(codewords_per_row=codewords),
        recovery=RecoveryConfig(
            policy=policy,
            sppr=sppr if sppr is not None else SpprConfig()),
        seed=seed,
        scrub_on_refresh=scrub)


def hammer(injector, victim, acts, aggressor_offset=1, cycle0=0):
    """Activate the victim's adjacent neighbour ``acts`` times."""
    for i in range(acts):
        injector.on_activate(ADDR, victim + aggressor_offset, cycle0 + i)


class TestClassify:
    def test_transitions(self):
        assert classify(0) == CORRECTED
        assert classify(1) == CORRECTED
        assert classify(2) == UNCORRECTABLE
        assert classify(3) == SILENT
        assert classify(7) == SILENT
        with pytest.raises(ValueError):
            classify(-1)


class TestEccModel:
    def test_inject_transitions_per_codeword(self):
        ecc = EccModel(EccConfig(codewords_per_row=4))
        key = (ADDR, 7)
        assert ecc.inject(key, 0, 3) == CORRECTED
        assert ecc.inject(key, 0, 5) == UNCORRECTABLE
        assert ecc.inject(key, 0, 9) == SILENT
        # A different codeword classifies independently.
        assert ecc.inject(key, 1, 3) == CORRECTED
        assert ecc.flipped_bits(key) == 4
        assert ecc.worst_codeword(key) == 3

    def test_duplicate_bit_is_masked(self):
        ecc = EccModel(EccConfig())
        key = (ADDR, 0)
        assert ecc.inject(key, 2, 11) == CORRECTED
        assert ecc.inject(key, 2, 11) == MASKED
        assert ecc.flipped_bits(key) == 1

    def test_bounds_checked(self):
        ecc = EccModel(EccConfig(data_bits=64, check_bits=8,
                                 codewords_per_row=2))
        with pytest.raises(ValueError):
            ecc.inject((ADDR, 0), 2, 0)
        with pytest.raises(ValueError):
            ecc.inject((ADDR, 0), 0, 72)

    def test_scrub_fixes_only_single_bit_codewords(self):
        ecc = EccModel(EccConfig(codewords_per_row=4))
        key = (ADDR, 3)
        ecc.inject(key, 0, 1)            # k=1: scrubbable
        ecc.inject(key, 1, 1)
        ecc.inject(key, 1, 2)            # k=2: stays broken
        corrected, broken = ecc.scrub_row(key)
        assert (corrected, broken) == (1, 1)
        assert ecc.worst_codeword(key) == 2
        # Scrubbing a clean row is a no-op.
        assert ecc.scrub_row((ADDR, 99)) == (0, 0)

    def test_scrub_drops_fully_clean_rows(self):
        ecc = EccModel(EccConfig())
        key = (ADDR, 1)
        ecc.inject(key, 0, 0)
        assert len(ecc) == 1
        assert ecc.scrub_row(key) == (1, 0)
        assert len(ecc) == 0

    def test_move_row_carries_errors(self):
        ecc = EccModel(EccConfig())
        src, dst = (ADDR, 1), (ADDR, 2)
        ecc.inject(src, 0, 0)
        ecc.inject(dst, 5, 5)
        ecc.move_row(src, dst)
        assert ecc.flipped_bits(src) == 0
        # The copy overwrote dst's old state with src's.
        assert ecc.flipped_bits(dst) == 1
        # Moving a clean row wipes the destination.
        ecc.move_row((ADDR, 9), dst)
        assert len(ecc) == 0

    def test_clear_row_and_all(self):
        ecc = EccModel(EccConfig())
        ecc.inject((ADDR, 1), 0, 0)
        ecc.inject((ADDR, 2), 0, 0)
        ecc.clear_row((ADDR, 1))
        assert len(ecc) == 1
        ecc.clear_all()
        assert len(ecc) == 0


class TestRecoveryPolicies:
    def test_retire_uses_sppr_then_panics_on_exhaustion(self):
        pipe = RecoveryPipeline(RecoveryConfig(
            policy="retire",
            sppr=SpprConfig(spare_rows_per_bank=1,
                            repairs_per_bank_group=1)))
        assert pipe.on_uncorrectable(ADDR, 5, 100) == RETIRED
        assert pipe.repairs == 1
        assert pipe.sppr.resolve(ADDR, 5) == 0
        # Spares gone: the next error escalates to a panic, and the
        # power cycle releases the (volatile) soft repairs.
        assert pipe.on_uncorrectable(ADDR, 6, 200) == PANIC
        assert pipe.sppr_exhausted == 1
        assert pipe.panics == 1 and pipe.panicked
        assert pipe.sppr.resolve(ADDR, 5) is None
        assert pipe.sppr.can_repair(ADDR)

    def test_refresh_retry_budget_then_panic(self):
        pipe = RecoveryPipeline(RecoveryConfig(policy="refresh-retry",
                                               max_retries=2))
        assert pipe.on_uncorrectable(ADDR, 5, 1) == RETRY
        assert pipe.on_uncorrectable(ADDR, 5, 2) == RETRY
        assert pipe.on_uncorrectable(ADDR, 5, 3) == PANIC
        assert pipe.retries == 2 and pipe.panics == 1
        # The budget is per-row; a different row retries afresh --
        # and the panic cleared the ledger anyway.
        assert pipe.on_uncorrectable(ADDR, 6, 4) == RETRY

    def test_panic_only_and_record_only(self):
        pipe = RecoveryPipeline(RecoveryConfig(policy="panic"))
        assert pipe.on_uncorrectable(ADDR, 1, 1) == PANIC
        pipe = RecoveryPipeline(RecoveryConfig(policy="none"))
        assert pipe.on_uncorrectable(ADDR, 1, 1) == RECORDED
        assert pipe.panics == 0 and not pipe.panicked
        assert pipe.events_total == 1

    def test_unknown_policy_rejected_with_suggestion(self):
        with pytest.raises(Exception):
            RecoveryConfig(policy="retyre")

    def test_event_log_bounded_count_exact(self):
        pipe = RecoveryPipeline(RecoveryConfig(policy="none"))
        for i in range(MAX_EVENTS + 10):
            pipe.on_uncorrectable(ADDR, i, i)
        assert len(pipe.events) == MAX_EVENTS
        assert pipe.events_total == MAX_EVENTS + 10
        assert pipe.events[0] == {"kind": "uncorrectable",
                                  "bank": "0.0.0", "da_row": 0,
                                  "cycle": 0}


class TestFaultInjector:
    def test_no_flips_below_threshold(self):
        injector = make_injector(hcnt=8)
        hammer(injector, victim=10, acts=7)
        assert injector.first_flip_cycle is None
        assert injector.counts["bits_injected"] == 0

    def test_each_act_past_threshold_injects_one_bit(self):
        # radius 1: the single aggressor (row 11) charges both its
        # neighbours (10 and 12) with weight 1, so each act at or past
        # the threshold injects one bit into each of the two victims.
        injector = make_injector(hcnt=8, codewords=1024)
        hammer(injector, victim=10, acts=12)
        assert injector.first_flip_cycle == 7      # 8th act, cycle 7
        counts = injector.counts
        assert counts["bits_injected"] + counts["bits_masked"] == 2 * 5
        assert len(injector._rows_ever) == 2

    def test_uncorrectable_escalates_to_retire_then_suppresses(self):
        # One codeword with few bits forces the collision fast.
        injector = make_injector(hcnt=4, codewords=1, policy="retire")
        hammer(injector, victim=10, acts=40)
        counts = injector.counts
        assert counts["uncorrectable"] >= 1
        # Default sPPR pool (2 spares/bank) absorbs every retire here.
        assert injector.recovery.repairs == counts["uncorrectable"]
        # Post-retire flips in the victim are absorbed by the spare:
        # its counter restarted at the retire, so crossing hcnt again
        # surfaces as suppressed injections.
        assert counts["suppressed_by_repair"] > 0
        assert injector.ecc.flipped_bits((ADDR, 10)) == 0

    def test_panic_policy_power_cycles_everything(self):
        injector = make_injector(hcnt=4, codewords=1, policy="panic")
        hammer(injector, victim=10, acts=40)
        counts = injector.counts
        assert counts["power_cycles"] >= 1
        assert injector.recovery.panicked
        assert len(injector.ecc) == 0 or counts["uncorrectable"] > 0

    def test_scrub_on_refresh_corrects_single_bit_codewords(self):
        injector = make_injector(hcnt=4, codewords=1024, scrub=True)
        hammer(injector, victim=10, acts=6)
        resident = (injector.ecc.flipped_bits((ADDR, 10))
                    + injector.ecc.flipped_bits((ADDR, 12)))
        assert resident > 0
        rows = LAYOUT.da_rows_per_bank
        injector.on_refresh_range(ADDR, 0, rows, cycle=999)
        assert injector.counts["scrub_corrected"] == resident
        assert injector.ecc.flipped_bits((ADDR, 10)) == 0
        # ... and the sweep reset the disturbance counters too.
        assert injector.max_disturbance() == 0.0

    def test_row_copy_moves_error_state(self):
        injector = make_injector(hcnt=4, codewords=1024, scrub=False)
        hammer(injector, victim=10, acts=5)
        moved = injector.ecc.flipped_bits((ADDR, 10))
        assert moved > 0
        injector.on_row_copy(ADDR, 10, 20, cycle=50)
        assert injector.ecc.flipped_bits((ADDR, 10)) == 0
        assert injector.ecc.flipped_bits((ADDR, 20)) == moved

    def test_injection_is_seed_deterministic(self):
        a, b = make_injector(seed=7), make_injector(seed=7)
        for injector in (a, b):
            hammer(injector, victim=10, acts=30)
        assert a.counts == b.counts
        assert a.report()["first_flip_cycle"] == \
            b.report()["first_flip_cycle"]

    def test_report_shape(self):
        import json
        injector = make_injector(hcnt=4, codewords=1)
        hammer(injector, victim=10, acts=20)
        report = injector.report()
        assert report["hcnt"] == 4
        assert report["policy"] == "retire"
        assert report["total_acts"] == 20
        assert report["rows_flipped"] == 2     # both radius-1 victims
        for key in ("repairs", "retries", "panics", "sppr_exhausted"):
            assert key in report["counts"]
        assert report["degradation_events_total"] == \
            len(report["degradation_events"])
        json.dumps(report)  # must be JSON-able for engine cache entries


class TestFaultSpec:
    def test_build_round_trip(self):
        spec = fault_spec(hcnt=32, policy="panic", seed=9)
        again = FaultSpec.from_dict(spec.to_dict())
        assert again == spec
        injector = spec.build()
        assert isinstance(injector, FaultInjector)
        assert injector.config.hcnt == 32
        assert injector.recovery.config.policy == "panic"

    def test_validation(self):
        with pytest.raises(ValueError):
            fault_spec(hcnt=0)
        with pytest.raises(Exception):
            fault_spec(policy="no-such-policy")

    def test_build_injector_honours_all_fields(self):
        spec = fault_spec(hcnt=16, blast_radius=2, policy="none",
                          seed=3, codewords_per_row=8,
                          scrub_on_refresh=False,
                          refresh_hammers_neighbors=True)
        injector = build_injector(spec)
        assert injector.config.blast_radius == 2
        assert injector.config.refresh_hammers_neighbors
        assert injector.ecc_config.codewords_per_row == 8
        assert injector.seed == 3
        assert not injector._scrub


class TestPassivity:
    def test_injector_never_perturbs_the_simulation(self):
        # The load-bearing invariant: a run with the injector attached
        # is cycle-for-cycle identical to one without, even while bits
        # flip and the recovery pipeline churns.
        from repro.sim import System, SystemConfig
        from repro.spec import scheme_spec
        from repro.workloads.hammer import hammer_profile

        profile = hammer_profile("double-sided", victim_row=260)
        config = SystemConfig(requests_per_thread=400, mlp=1, seed=5)
        scheme = scheme_spec("none")

        plain = System([profile], scheme.build(), config=config).run()
        injector = FaultSpec(hcnt=64, seed=5).build()
        observed = System([profile], scheme.build(), observer=injector,
                          config=config).run()

        assert injector.counts["bits_injected"] > 0  # flips did happen
        assert observed.cycles == plain.cycles
        assert observed.stats.acts == plain.stats.acts
        assert observed.stats.refreshes == plain.stats.refreshes
        assert observed.thread_finish_cycles == \
            plain.thread_finish_cycles
