"""Property tests for the disturbance model's threat-model invariants.

The three assumptions everything downstream (security models, the
red-team harness, the analytic bounds) leans on, checked over random
geometries and activation sequences rather than hand-picked examples:

1. blast weight halves per wordline of distance (and is monotone);
2. disturbance never crosses a subarray boundary;
3. activating a row restores it -- its own accumulated disturbance is
   gone, no matter what history preceded the activation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.device import BankAddress
from repro.dram.subarray import SubarrayLayout
from repro.rowhammer.model import (
    DisturbanceModel,
    HammerConfig,
    blast_weight,
)

ADDR = BankAddress(0, 0, 0)

layouts = st.builds(
    SubarrayLayout,
    subarrays_per_bank=st.integers(min_value=2, max_value=8),
    rows_per_subarray=st.integers(min_value=8, max_value=64))


def make(layout, radius=3, hcnt=10**9):
    # hcnt high enough that no flip path interferes with the property.
    return DisturbanceModel(HammerConfig(
        hcnt=hcnt, blast_radius=radius, layout=layout))


class TestBlastWeightProperties:
    @given(st.integers(min_value=1, max_value=60))
    @settings(max_examples=30)
    def test_halves_per_wordline(self, distance):
        assert blast_weight(distance + 1) == blast_weight(distance) / 2

    @given(st.integers(min_value=1, max_value=60))
    @settings(max_examples=30)
    def test_strictly_monotone_decreasing(self, distance):
        assert blast_weight(distance + 1) < blast_weight(distance)
        assert 0 < blast_weight(distance) <= 1.0


class TestSubarrayConfinement:
    @given(layouts,
           st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_disturbance_never_crosses_subarray(
            self, layout, row_seed, radius, acts):
        model = make(layout, radius=radius)
        aggressor = row_seed % layout.da_rows_per_bank
        for cycle in range(acts):
            model.on_activate(ADDR, aggressor, cycle)
        home = layout.subarray_of_da(aggressor)
        for row in range(layout.da_rows_per_bank):
            if layout.subarray_of_da(row) != home:
                assert model.disturbance(ADDR, row) == 0.0

    @given(layouts, st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_boundary_rows_have_one_sided_neighbourhoods(
            self, layout, radius):
        # The first DA slot of subarray 1 must not list any subarray-0
        # row as a neighbour however large the radius.
        lo, hi = layout.da_range(1)
        for row, _ in layout.da_neighbors(lo, radius):
            assert lo <= row < hi


class TestResetOnActivate:
    @given(layouts,
           st.lists(st.integers(min_value=0, max_value=10**6),
                    min_size=1, max_size=40),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=60, deadline=None)
    def test_activation_restores_the_row(self, layout, history, target):
        # Whatever disturbance history a row accumulated, activating it
        # zeroes its own counter (while charging its neighbours).
        model = make(layout)
        rows = layout.da_rows_per_bank
        for cycle, row_seed in enumerate(history):
            model.on_activate(ADDR, row_seed % rows, cycle)
        row = target % rows
        model.on_activate(ADDR, row, len(history))
        assert model.disturbance(ADDR, row) == 0.0

    @given(layouts, st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=2, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_repeat_activation_is_idempotent_on_self(
            self, layout, row_seed, repeats):
        # N activations of the same row leave the row itself at zero
        # (reset is idempotent) while the neighbours accumulate
        # linearly -- the asymmetry RowHammer exploits.
        model = make(layout)
        row = row_seed % layout.da_rows_per_bank
        for cycle in range(repeats):
            model.on_activate(ADDR, row, cycle)
        assert model.disturbance(ADDR, row) == 0.0
        for victim, distance in layout.da_neighbors(row, 3):
            assert model.disturbance(ADDR, victim) == \
                repeats * blast_weight(distance)
