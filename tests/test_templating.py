"""Memory templating campaigns: static mapping vs SHADOW."""


from repro.dram.subarray import SubarrayLayout
from repro.rowhammer.templating import (
    Template,
    TemplatingCampaign,
    TemplatingReport,
)


class TestTemplatingStatic:
    def test_static_mapping_templates_and_reuses(self):
        campaign = TemplatingCampaign(shadow=False, seed=3)
        report = campaign.run()
        # Double-sided pairs around every probed victim flip reliably...
        assert report.templates_found > 0
        # ...and the templates stay valid: static PA-to-DA mapping.
        assert report.reuse_rate == 1.0

    def test_report_math(self):
        report = TemplatingReport(templates_found=4, exploit_attempts=4,
                                  exploit_successes=1, hammer_rounds=10)
        assert report.reuse_rate == 0.25
        empty = TemplatingReport(0, 0, 0, 0)
        assert empty.reuse_rate == 0.0


class TestTemplatingShadow:
    def test_shadow_breaks_template_reuse(self):
        """The paper's Section III-A claim: templating cannot be
        undertaken successfully against a shuffling defense."""
        static = TemplatingCampaign(shadow=False, seed=5).run()
        shadowed = TemplatingCampaign(shadow=True, seed=5).run()
        # SHADOW may allow a few flips during templating (Hcnt is tiny
        # here), but whatever templates form must decay.
        assert shadowed.templates_found <= static.templates_found
        assert shadowed.reuse_rate < 0.5
        assert static.reuse_rate == 1.0

    def test_shadow_reduces_template_yield(self):
        static = TemplatingCampaign(shadow=False, seed=9).run()
        shadowed = TemplatingCampaign(shadow=True, seed=9).run()
        assert shadowed.templates_found < static.templates_found

    def test_template_dataclass(self):
        t = Template(aggressor_pas=(10, 12), victim_pa=11)
        assert t.victim_pa == 11


class TestSubstrateDetails:
    def test_occupant_roundtrip_static(self):
        campaign = TemplatingCampaign(shadow=False)
        substrate = campaign._substrate()
        layout = campaign.layout
        for pa in (0, 5, layout.mc_rows_per_bank - 1):
            da = substrate.translate(pa)
            assert substrate.occupant(da) == pa

    def test_occupant_roundtrip_shadow_after_shuffles(self):
        campaign = TemplatingCampaign(shadow=True, seed=2)
        substrate = campaign._substrate()
        # Drive enough activity to force several shuffles.
        for i in range(200):
            substrate.activate(i % 16)
        layout = campaign.layout
        for pa in range(layout.mc_rows_per_bank):
            assert substrate.occupant(substrate.translate(pa)) == pa

    def test_custom_layout(self):
        layout = SubarrayLayout(subarrays_per_bank=2, rows_per_subarray=32)
        report = TemplatingCampaign(layout=layout, shadow=False,
                                    hcnt=32, acts_per_round=128).run()
        assert report.templates_found > 0
