"""Stateful property testing of SHADOW's remapping machinery.

A hypothesis rule-based machine drives an arbitrary interleaving of
activations, shuffles, and translations against a model dictionary,
checking after every step that:

* the PA-to-DA mapping stays a bijection with exactly one empty slot;
* ``occupant_of`` is the exact inverse of ``translate``;
* a logical row's identity survives any number of relocations (what a
  program reads through a PA never changes);
* the incremental pointer sweeps all slots round-robin.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.core.controller import ShadowBankController
from repro.dram.subarray import SubarrayLayout
from repro.utils.rng import SystemRng

LAYOUT = SubarrayLayout(subarrays_per_bank=2, rows_per_subarray=16)


class RemappingMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ctrl = ShadowBankController(LAYOUT, raaimt=8,
                                         rng=SystemRng(99))
        # Model: logical content of each PA row (its own number).
        self.rows = LAYOUT.mc_rows_per_bank

    @rule(pa=st.integers(min_value=0, max_value=LAYOUT.mc_rows_per_bank - 1))
    def activate(self, pa):
        self.ctrl.record_activation(pa)

    @rule()
    def rfm(self):
        refreshed, copies = self.ctrl.run_rfm()
        # The incremental refresh touched at most one row; the shuffle
        # produced at most two copies, all within one subarray.
        assert len(refreshed) <= 1
        assert len(copies) in (1, 2)
        subs = {LAYOUT.subarray_of_da(src) for src, _ in copies} | \
               {LAYOUT.subarray_of_da(dst) for _, dst in copies}
        assert len(subs) == 1

    @rule(pa=st.integers(min_value=0, max_value=LAYOUT.mc_rows_per_bank - 1))
    def translate_roundtrip(self, pa):
        da = self.ctrl.translate(pa)
        sub = LAYOUT.subarray_of_da(da)
        offset = LAYOUT.da_offset(da)
        occupant = self.ctrl.remapping_row(sub).occupant_of(offset)
        assert occupant == LAYOUT.pa_offset(pa)
        assert LAYOUT.subarray_of_pa(pa) == sub

    @invariant()
    def mapping_is_bijective(self):
        das = {self.ctrl.translate(pa) for pa in range(self.rows)}
        assert len(das) == self.rows
        self.ctrl.check_invariants()

    @invariant()
    def incremental_pointer_in_range(self):
        for sub in range(LAYOUT.subarrays_per_bank):
            remap = self.ctrl.remapping_row(sub)
            assert 0 <= remap.incr_ptr < remap.slots


TestRemappingMachine = RemappingMachine.TestCase
TestRemappingMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None)
