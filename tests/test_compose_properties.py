"""Property tests for the tracker structures behind composed schemes.

Each tracker backs a security argument, so its invariant is stated as a
*property over arbitrary activation streams* (hypothesis), not as a
handful of examples:

* Misra-Gries: the estimate undercounts the true count by at most the
  spill (the bound Graphene's threshold math relies on).
* CbS min-inheritance: the estimate never undercounts at all -- an
  evicted newcomer inherits min+1, so Mithril can never *miss* a row
  hotter than the table floor.
* D-CBF: a count observed in epoch half k survives through half k+1
  and is fully forgotten by half k+2 (BlockHammer's staleness bound).
* MINT sampler: exactly one capture per window, always one of that
  window's observed keys, uniform over slots.
* Resilient Misra-Gries: the lower bound never exceeds the true count,
  under any stream and across halvings -- the "thrash cannot promote a
  cold row" guarantee DAPPER's deterministic security bound rests on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mitigations.trackers import (
    CounterSummary,
    DualCountingBloomFilter,
    MintSampler,
    MisraGries,
    ResilientMisraGries,
)


class FakeRng:
    """Deterministic RandomSource: yields scripted randrange results."""

    def __init__(self, values):
        self.values = list(values)

    def randrange(self, bound):
        v = self.values.pop(0) % bound
        return v


keys_stream = st.lists(st.integers(min_value=0, max_value=15),
                       min_size=1, max_size=300)


class TestMisraGriesProperties:
    @given(keys_stream, st.integers(min_value=1, max_value=6))
    @settings(max_examples=60)
    def test_bounded_undercount(self, keys, capacity):
        mg = MisraGries(capacity=capacity)
        truth = {}
        for k in keys:
            truth[k] = truth.get(k, 0) + 1
            mg.observe(k)
        for k, count in truth.items():
            assert mg.estimate(k) >= count - mg.spill
            assert mg.estimate(k) <= count + mg.spill

    @given(keys_stream, st.integers(min_value=1, max_value=6))
    @settings(max_examples=30)
    def test_spill_bounded_by_misses(self, keys, capacity):
        mg = MisraGries(capacity=capacity)
        for k in keys:
            mg.observe(k)
        # The spillover counter moves only on an observation that finds
        # the table full without its key, and at least ``capacity``
        # observations went to fills or entry hits.
        assert mg.spill <= max(0, len(keys) - capacity)


class TestCounterSummaryProperties:
    @given(keys_stream, st.integers(min_value=1, max_value=6))
    @settings(max_examples=60)
    def test_min_inheritance_never_undercounts(self, keys, entries):
        cbs = CounterSummary(entries=entries)
        truth = {}
        for k in keys:
            truth[k] = truth.get(k, 0) + 1
            cbs.observe(k)
        for k, count in cbs.counts.items():
            assert count >= truth[k]

    @given(keys_stream)
    @settings(max_examples=30)
    def test_hottest_is_table_max(self, keys):
        cbs = CounterSummary(entries=4)
        for k in keys:
            cbs.observe(k)
        key, count = cbs.hottest()
        assert count == max(cbs.counts.values())
        assert cbs.counts[key] == count


class TestDualCbfProperties:
    @given(keys_stream)
    @settings(max_examples=40)
    def test_epoch_half_alternation(self, keys):
        epoch = 100
        cbf = DualCountingBloomFilter(width=64, epoch_cycles=epoch)
        for k in keys:
            cbf.observe(k, cycle=0)
        truth = {}
        for k in keys:
            truth[k] = truth.get(k, 0) + 1
        # Still visible (and never undercounted) in the next half...
        for k, count in truth.items():
            assert cbf.estimate(k, cycle=epoch) >= count
        # ...and fully forgotten one full epoch later.
        for k in truth:
            assert cbf.estimate(k, cycle=2 * epoch) == 0
        assert cbf.rotations == 2


class TestMintSamplerProperties:
    @given(st.lists(st.integers(min_value=0, max_value=99),
                    min_size=1, max_size=64),
           st.integers(min_value=0, max_value=1 << 30))
    @settings(max_examples=60)
    def test_capture_is_the_selected_observation(self, window_keys, raw):
        window = len(window_keys)
        sampler = MintSampler(window=window, rng=FakeRng([raw]))
        for k in window_keys:
            sampler.observe(k)
        # Exactly one slot is selected per window and the capture is
        # that slot's key.
        assert sampler.windows == 1
        slot = raw % window  # FakeRng folds into range(window)
        assert sampler.sample() == window_keys[slot]

    def test_uniform_over_slots(self):
        window = 4
        counts = [0] * window
        for slot in range(window):
            sampler = MintSampler(window=window, rng=FakeRng([slot]))
            for k in range(window):
                sampler.observe(k)
            counts[sampler.sample()] += 1
        assert counts == [1] * window

    def test_clear_rearms(self):
        sampler = MintSampler(window=2, rng=FakeRng([0, 1]))
        sampler.observe(10)
        sampler.observe(11)
        assert sampler.sample() == 10
        sampler.clear()
        assert sampler.sample() is None
        sampler.observe(20)
        sampler.observe(21)
        assert sampler.sample() == 21
        assert sampler.windows == 2


class TestResilientMisraGriesProperties:
    @given(keys_stream, st.integers(min_value=1, max_value=4))
    @settings(max_examples=60)
    def test_lower_bound_is_sound(self, keys, capacity):
        rmg = ResilientMisraGries(capacity=capacity)
        truth = {}
        for k in keys:
            truth[k] = truth.get(k, 0) + 1
            rmg.observe(k)
        for k in set(keys) | {999}:
            assert rmg.lower_bound(k) <= truth.get(k, 0)

    @given(keys_stream, st.lists(st.booleans(), min_size=0, max_size=8))
    @settings(max_examples=60)
    def test_lower_bound_sound_across_halvings(self, keys, halvings):
        """Interleave halvings anywhere in the stream: the lower bound
        must stay below the true count *since the start* (halving only
        discards history, it never manufactures it)."""
        rmg = ResilientMisraGries(capacity=3)
        truth = {}
        stream = list(keys)
        cuts = sorted(i % (len(stream) + 1) for i, h in enumerate(halvings)
                      if h)
        pos = 0
        for cut in cuts + [len(stream)]:
            for k in stream[pos:cut]:
                truth[k] = truth.get(k, 0) + 1
                rmg.observe(k)
            if cut != len(stream):
                rmg.halve()
            pos = cut
        for k in truth:
            assert rmg.lower_bound(k) <= truth[k]

    @given(keys_stream)
    @settings(max_examples=40)
    def test_hottest_requires_provable_heat(self, keys):
        rmg = ResilientMisraGries(capacity=2)
        truth = {}
        for k in keys:
            truth[k] = truth.get(k, 0) + 1
            rmg.observe(k)
        entry = rmg.hottest()
        if entry is not None:
            key, bound = entry
            assert bound > 0
            assert bound <= truth[key]
