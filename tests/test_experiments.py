"""Experiment drivers: reporting helpers and the fast (analytic) runs."""

import json
import os

import pytest

from repro.experiments import fidelity_config
from repro.experiments import table2, table3
from repro.experiments.report import format_table, save_results, scientific
from repro.experiments.schemes import (
    archsim_scheme_factories,
    make_shadow,
    make_shadow_with_trcd,
    rfm_scheme_factories,
)
from repro.dram.device import DramGeometry
from repro.dram.timing import DDR4_2666


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], ["xy", 3.0]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_scientific_notation(self):
        assert scientific(0.0) == "0"
        assert scientific(-1) == "0"
        assert scientific(1.0) == "1"
        assert scientific(2.3e-15) == "2E-15"
        assert scientific(0.4) == "4E-1"

    def test_save_results_roundtrip(self, tmp_path):
        path = save_results("unit", {"x": 1}, directory=str(tmp_path))
        with open(path) as handle:
            assert json.load(handle) == {"x": 1}
        assert os.path.basename(path) == "unit.json"

    def test_save_results_atomic_no_temp_left_behind(self, tmp_path):
        save_results("unit", {"x": 1}, directory=str(tmp_path))
        save_results("unit", {"x": 2}, directory=str(tmp_path))
        assert [p.name for p in tmp_path.iterdir()] == ["unit.json"]
        with open(tmp_path / "unit.json") as handle:
            assert json.load(handle) == {"x": 2}

    def test_save_results_failed_write_cleans_up(self, tmp_path):
        bad = {}
        bad["self"] = bad   # circular: fails mid-dump despite default=str
        with pytest.raises(ValueError):
            save_results("broken", bad, directory=str(tmp_path))
        # Neither a partial target nor a stranded temp file remains.
        assert list(tmp_path.iterdir()) == []

    def test_save_results_creates_nested_directory(self, tmp_path):
        target = tmp_path / "a" / "b"
        path = save_results("deep", {"ok": True}, directory=str(target))
        with open(path) as handle:
            assert json.load(handle) == {"ok": True}


class TestFidelity:
    def test_levels(self):
        smoke = fidelity_config("smoke")
        full = fidelity_config("full")
        assert smoke.threads < full.threads
        assert smoke.requests_per_thread < full.requests_per_thread
        with pytest.raises(ValueError):
            fidelity_config("ludicrous")

    def test_system_config_uses_paper_geometry(self):
        cfg = fidelity_config("smoke").system_config()
        paper = DramGeometry()
        assert cfg.geometry.total_banks == paper.total_banks == 128


class TestSchemeFactories:
    def test_rfm_set_complete(self):
        factories = rfm_scheme_factories(4096)
        assert set(factories) == {"SHADOW", "PARFM", "Mithril-perf",
                                  "Mithril-area", "DRR"}
        # Fresh instances each call.
        assert factories["SHADOW"]() is not factories["SHADOW"]()

    def test_archsim_set_complete(self):
        assert set(archsim_scheme_factories(4096)) == \
            {"SHADOW", "BlockHammer", "RRS"}

    def test_shadow_trcd_override(self):
        geometry = DramGeometry()
        for target in (23, 25, 27):
            shadow = make_shadow_with_trcd(target, hcnt=4096)
            shadow.bind(geometry, DDR4_2666)
            assert shadow.timings.trcd_prime_cycles == target, target
        with pytest.raises(ValueError):
            make_shadow_with_trcd(19, hcnt=4096)

    def test_distinct_names_for_distinct_timing(self):
        a = make_shadow_with_trcd(23, hcnt=4096)
        b = make_shadow_with_trcd(27, hcnt=4096)
        assert a.name != b.name   # alone-run cache keys must differ

    def test_make_shadow_uses_secure_raaimt(self):
        assert make_shadow(2048).config.raaimt == 32


class TestAnalyticDrivers:
    def test_table2_structure(self):
        results = table2.run()
        assert len(results["cells"]) == 9
        cell = results["cells"]["64,4096"]
        assert cell["secure"]
        assert cell["probability"] == pytest.approx(1.9e-14, rel=1.0)

    def test_table3_structure(self):
        results = table3.run()
        assert set(results["rows"]) == {"tRCD'", "row-copy", "tRCD_RM",
                                        "tWR_RM", "tRD_RM"}
        assert results["shuffle_total_ns"]["DDR4-2666"] == \
            pytest.approx(178, abs=4)
