"""RNG sources, LFSR, and bit helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bits import bit_length_for, extract_bits, parity64, popcount
from repro.utils.lfsr import DEFAULT_TAPS, GaloisLFSR
from repro.utils.rng import (
    BufferedRng,
    LfsrRng,
    PrinceRng,
    SystemRng,
    make_rng,
)


class TestBits:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        with pytest.raises(ValueError):
            popcount(-1)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=50)
    def test_parity64_matches_popcount(self, value):
        assert parity64(value) == popcount(value) % 2

    def test_extract_bits(self):
        assert extract_bits(0b101100, 2, 3) == 0b011
        assert extract_bits(0xFF, 4, 4) == 0xF
        with pytest.raises(ValueError):
            extract_bits(5, -1, 2)

    def test_bit_length_for(self):
        assert bit_length_for(1) == 0
        assert bit_length_for(2) == 1
        assert bit_length_for(512) == 9
        assert bit_length_for(513) == 10
        with pytest.raises(ValueError):
            bit_length_for(0)


class TestLfsr:
    def test_maximal_period_small_width(self):
        lfsr = GaloisLFSR(width=8, seed=1)
        seen = set()
        for _ in range(255):
            seen.add(lfsr.state)
            lfsr.step()
        # A maximal 8-bit LFSR cycles through all 255 non-zero states.
        assert len(seen) == 255
        assert lfsr.state == 1  # back to the seed after the full period

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            GaloisLFSR(width=16, seed=0)
        lfsr = GaloisLFSR(width=16, seed=3)
        with pytest.raises(ValueError):
            lfsr.reseed(0)

    def test_unknown_width_needs_taps(self):
        with pytest.raises(ValueError):
            GaloisLFSR(width=13, seed=1)
        lfsr = GaloisLFSR(width=13, seed=1, taps=0x1B00)
        assert lfsr.width == 13

    def test_next_bits_packs_msb_first(self):
        a = GaloisLFSR(width=16, seed=0xACE1)
        b = GaloisLFSR(width=16, seed=0xACE1)
        bits = [b.step() for _ in range(12)]
        expected = 0
        for bit in bits:
            expected = (expected << 1) | bit
        assert a.next_bits(12) == expected

    def test_default_taps_cover_common_widths(self):
        for width in DEFAULT_TAPS:
            lfsr = GaloisLFSR(width=width, seed=1)
            lfsr.next_bits(64)  # must not raise or get stuck at zero
            assert lfsr.state != 0


class TestRandomSources:
    @pytest.mark.parametrize("kind", ["prince", "lfsr", "system"])
    def test_factory_and_determinism(self, kind):
        a = make_rng(kind, seed=7)
        b = make_rng(kind, seed=7)
        assert [a.next_bits(16) for _ in range(8)] == [
            b.next_bits(16) for _ in range(8)
        ]

    def test_different_seeds_differ(self):
        a = make_rng("prince", seed=1)
        b = make_rng("prince", seed=2)
        assert [a.next_bits(32) for _ in range(4)] != [
            b.next_bits(32) for _ in range(4)
        ]

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_rng("quantum")

    @pytest.mark.parametrize(
        "rng", [PrinceRng(), LfsrRng(), SystemRng(3)], ids=["prince", "lfsr", "sys"]
    )
    def test_randrange_bounds(self, rng):
        for bound in (1, 2, 3, 17, 512, 513):
            for _ in range(50):
                assert 0 <= rng.randrange(bound) < bound

    def test_randrange_rejects_nonpositive(self):
        rng = PrinceRng()
        with pytest.raises(ValueError):
            rng.randrange(0)

    def test_randrange_roughly_uniform(self):
        rng = PrinceRng(key=42)
        counts = [0] * 8
        for _ in range(4000):
            counts[rng.randrange(8)] += 1
        assert min(counts) > 350  # expectation 500; crude uniformity check

    def test_choice_and_shuffle(self):
        rng = SystemRng(5)
        items = list(range(10))
        assert rng.choice(items) in items
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        with pytest.raises(ValueError):
            rng.choice([])

    def test_prince_reseed_restarts_stream(self):
        rng = PrinceRng(key=9)
        first = [rng.next_bits(64) for _ in range(3)]
        rng.reseed(key=9)
        assert [rng.next_bits(64) for _ in range(3)] == first


class TestBufferedRng:
    def test_stream_matches_backing_source(self):
        direct = PrinceRng(key=11)
        buffered = BufferedRng(PrinceRng(key=11), word_width=32, depth=4)
        got = [buffered.next_bits(32) for _ in range(16)]
        want = [direct.next_bits(32) for _ in range(16)]
        assert got == want

    def test_prefills_to_depth(self):
        buffered = BufferedRng(SystemRng(1), word_width=16, depth=8)
        buffered.next_bits(16)
        assert buffered.occupancy == 7
        assert buffered.refills == 8

    def test_wide_requests_consume_multiple_words(self):
        buffered = BufferedRng(SystemRng(2), word_width=8, depth=4)
        value = buffered.next_bits(24)
        assert 0 <= value < (1 << 24)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BufferedRng(SystemRng(0), word_width=0)
        with pytest.raises(ValueError):
            BufferedRng(SystemRng(0), depth=0)
