"""PRINCE cipher: published test vectors and structural properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.prince import (
    ALPHA,
    MASK64,
    PrinceCipher,
    ROUND_CONSTANTS,
    SBOX,
    SBOX_INV,
    m_prime_layer,
    sbox_layer,
    shift_rows,
)

# The five test vectors from Borghoff et al. (ASIACRYPT 2012), Appendix A.
VECTORS = [
    (0x0000000000000000, 0x0000000000000000, 0x0000000000000000,
     0x818665AA0D02DFDA),
    (0xFFFFFFFFFFFFFFFF, 0x0000000000000000, 0x0000000000000000,
     0x604AE6CA03C20ADA),
    (0x0000000000000000, 0xFFFFFFFFFFFFFFFF, 0x0000000000000000,
     0x9FB51935FC3DF524),
    (0x0000000000000000, 0x0000000000000000, 0xFFFFFFFFFFFFFFFF,
     0x78A54CBE737BB7EF),
    (0x0123456789ABCDEF, 0x0000000000000000, 0xFEDCBA9876543210,
     0xAE25AD3CA8FA9CCF),
]


@pytest.mark.parametrize("pt,k0,k1,ct", VECTORS)
def test_published_vectors(pt, k0, k1, ct):
    cipher = PrinceCipher((k0 << 64) | k1)
    assert cipher.encrypt(pt) == ct


@pytest.mark.parametrize("pt,k0,k1,ct", VECTORS)
def test_decrypt_inverts_vectors(pt, k0, k1, ct):
    cipher = PrinceCipher((k0 << 64) | k1)
    assert cipher.decrypt(ct) == pt


def test_sbox_is_a_permutation():
    assert sorted(SBOX) == list(range(16))
    assert all(SBOX_INV[SBOX[i]] == i for i in range(16))


def test_round_constants_alpha_reflection():
    # RC_i XOR RC_{11-i} == alpha: the property enabling cheap decryption.
    for i in range(12):
        assert ROUND_CONSTANTS[i] ^ ROUND_CONSTANTS[11 - i] == ALPHA


@given(st.integers(min_value=0, max_value=MASK64))
@settings(max_examples=50)
def test_m_prime_is_an_involution(state):
    assert m_prime_layer(m_prime_layer(state)) == state


@given(st.integers(min_value=0, max_value=MASK64))
@settings(max_examples=50)
def test_sbox_layer_roundtrips(state):
    assert sbox_layer(sbox_layer(state), inverse=True) == state


@given(st.integers(min_value=0, max_value=MASK64))
@settings(max_examples=50)
def test_shift_rows_roundtrips(state):
    assert shift_rows(shift_rows(state), inverse=True) == state


@given(
    st.integers(min_value=0, max_value=MASK64),
    st.integers(min_value=0, max_value=(1 << 128) - 1),
)
@settings(max_examples=25)
def test_encrypt_decrypt_roundtrip(plaintext, key):
    cipher = PrinceCipher(key)
    assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext


def test_rejects_out_of_range_inputs():
    cipher = PrinceCipher(0)
    with pytest.raises(ValueError):
        cipher.encrypt(1 << 64)
    with pytest.raises(ValueError):
        cipher.decrypt(-1)
    with pytest.raises(ValueError):
        PrinceCipher(1 << 128)
