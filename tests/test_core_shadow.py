"""SHADOW core: remapping row, shuffle choreography, controller, timings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SECURE_RAAIMT, ShadowConfig, secure_raaimt
from repro.core.controller import ShadowBankController
from repro.core.incremental import IncrementalRefresh
from repro.core.pairing import ShadowTimings
from repro.core.remapping import RemappingRow
from repro.core.shadow import Shadow
from repro.core.shuffle import plan_shuffle
from repro.dram.device import BankAddress, DramGeometry
from repro.dram.subarray import SubarrayLayout
from repro.dram.timing import DDR4_2666, DDR5_4800
from repro.utils.rng import SystemRng

LAYOUT = SubarrayLayout(subarrays_per_bank=4, rows_per_subarray=16)


class TestRemappingRow:
    def test_factory_identity(self):
        remap = RemappingRow(8)
        assert [remap.translate(i) for i in range(8)] == list(range(8))
        assert remap.empty_slot == 8
        remap.check_invariants()

    def test_shuffle_moves_both_rows(self):
        remap = RemappingRow(8)
        copies = remap.apply_shuffle(aggr_pa=2, rand_pa=5)
        # Copy 1: Row_rand (slot 5) -> old empty (slot 8).
        # Copy 2: Row_aggr (slot 2) -> Row_rand's old slot (5).
        assert copies == [(5, 8), (2, 5)]
        assert remap.translate(5) == 8
        assert remap.translate(2) == 5
        assert remap.empty_slot == 2
        remap.check_invariants()

    def test_degenerate_shuffle_single_copy(self):
        remap = RemappingRow(8)
        copies = remap.apply_shuffle(aggr_pa=3, rand_pa=3)
        assert copies == [(3, 8)]
        assert remap.translate(3) == 8
        assert remap.empty_slot == 3
        remap.check_invariants()

    def test_occupant_of(self):
        remap = RemappingRow(8)
        remap.apply_shuffle(1, 4)
        assert remap.occupant_of(remap.translate(1)) == 1
        assert remap.occupant_of(remap.empty_slot) is None

    def test_storage_matches_paper(self):
        remap = RemappingRow(512)
        # Paper Section V-A: 513 x 9 bits + 9-bit incremental pointer.
        assert remap.storage_bits() == 513 * 10 + 10 or \
            remap.storage_bits() == 513 * 9 + 9 + 9

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)),
                    min_size=1, max_size=100))
    @settings(max_examples=40)
    def test_mapping_stays_bijective_under_any_shuffles(self, pairs):
        remap = RemappingRow(16)
        for aggr, rand in pairs:
            remap.apply_shuffle(aggr, rand)
            remap.check_invariants()
        # Every PA row is still reachable and distinct.
        slots = [remap.translate(i) for i in range(16)]
        assert len(set(slots)) == 16

    def test_incr_ptr_round_robin(self):
        remap = RemappingRow(4)
        slots = [remap.advance_incr_ptr() for _ in range(6)]
        assert slots == [0, 1, 2, 3, 4, 0]


class TestIncrementalRefresh:
    def test_sweeps_all_slots(self):
        remap = RemappingRow(4)
        incr = IncrementalRefresh(remap)
        assert [incr.step() for _ in range(5)] == [0, 1, 2, 3, 4]
        assert incr.refreshes == 5
        assert incr.window_rfm_intervals() == 5

    def test_disabled(self):
        incr = IncrementalRefresh(RemappingRow(4), enabled=False)
        assert incr.step() == -1
        assert incr.refreshes == 0


class TestPlanShuffle:
    def test_prefers_recent_activations(self):
        rng = SystemRng(1)
        plan = plan_shuffle([(2, 7)], 16, 4, rng)
        assert plan.subarray == 2
        assert plan.aggr_pa_offset == 7

    def test_uniform_over_history(self):
        rng = SystemRng(2)
        history = [(0, i) for i in range(8)]
        picks = {plan_shuffle(history, 16, 4, rng).aggr_pa_offset
                 for _ in range(100)}
        assert len(picks) >= 6

    def test_empty_history_falls_back_to_random(self):
        rng = SystemRng(3)
        plan = plan_shuffle([], 16, 4, rng)
        assert 0 <= plan.subarray < 4
        assert 0 <= plan.aggr_pa_offset < 16

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shuffle([], 0, 4, SystemRng(0))


class TestShadowTimings:
    def test_trcd_prime_matches_paper_ddr4(self):
        st_ = ShadowTimings(DDR4_2666)
        # Paper Fig. 9: SHADOW's default tRCD' is 25 tCK at DDR4-2666.
        assert st_.trcd_prime_cycles == 25
        assert st_.act_extra_cycles == 6

    def test_rfm_work_matches_paper(self):
        # Section VII-B: 178 ns at DDR4-2666 and 186 ns at DDR5-4800.
        ddr4 = ShadowTimings(DDR4_2666).rfm_work_ns()
        ddr5 = ShadowTimings(DDR5_4800).rfm_work_ns()
        assert abs(ddr4 - 178) < 6
        assert abs(ddr5 - 186) < 6

    def test_rfm_work_fits_in_trfm(self):
        for timing in (DDR4_2666, DDR5_4800):
            st_ = ShadowTimings(timing)
            assert st_.rfm_work_cycles() <= timing.tRFM

    def test_no_pairing_ablation_is_slower(self):
        paired = ShadowTimings(DDR4_2666)
        unpaired = ShadowTimings(DDR4_2666, pairing=False)
        assert unpaired.act_extra_cycles > paired.act_extra_cycles
        assert unpaired.rfm_work_cycles() > paired.rfm_work_cycles()

    def test_no_isolation_ablation_is_slower(self):
        isolated = ShadowTimings(DDR4_2666)
        plain = ShadowTimings(DDR4_2666, isolation=False)
        assert plain.act_extra_cycles > isolated.act_extra_cycles

    def test_incremental_refresh_cost(self):
        with_ir = ShadowTimings(DDR4_2666)
        without = ShadowTimings(DDR4_2666, incremental_refresh=False)
        delta = with_ir.rfm_work_cycles() - without.rfm_work_cycles()
        assert delta == DDR4_2666.tRAS + DDR4_2666.tRP

    def test_copies_validation(self):
        st_ = ShadowTimings(DDR4_2666)
        with pytest.raises(ValueError):
            st_.rfm_work_cycles(copies=-1)


class TestShadowConfig:
    def test_secure_raaimt_table(self):
        assert SECURE_RAAIMT[4096] == 64
        assert secure_raaimt(4096) == 64
        assert secure_raaimt(1024) == 16   # extrapolated hcnt/64

    def test_for_hcnt(self):
        cfg = ShadowConfig.for_hcnt(2048)
        assert cfg.raaimt == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            ShadowConfig(raaimt=0)
        with pytest.raises(ValueError):
            ShadowConfig(rng_kind="dice")
        with pytest.raises(ValueError):
            secure_raaimt(0)


class TestBankController:
    def make(self, raaimt=8):
        return ShadowBankController(LAYOUT, raaimt=raaimt,
                                    rng=SystemRng(11))

    def test_translate_identity_initially(self):
        ctrl = self.make()
        for pa in range(LAYOUT.mc_rows_per_bank):
            assert ctrl.translate(pa) == LAYOUT.identity_da(pa)

    def test_rfm_shuffles_recent_aggressor(self):
        ctrl = self.make()
        for _ in range(8):
            ctrl.record_activation(5)   # subarray 0, offset 5
        refreshed, copies = ctrl.run_rfm()
        assert ctrl.shuffles == 1
        # The aggressor had to be row 5; its DA changed.
        assert ctrl.translate(5) != LAYOUT.identity_da(5)
        assert copies  # at least one row copy happened
        assert len(refreshed) == 1  # incremental refresh ran

    def test_history_cleared_each_rfm(self):
        ctrl = self.make(raaimt=4)
        for _ in range(4):
            ctrl.record_activation(3)
        ctrl.run_rfm()
        assert ctrl._recent == []

    def test_history_bounded_by_raaimt(self):
        ctrl = self.make(raaimt=4)
        for i in range(10):
            ctrl.record_activation(i % 16)
        assert len(ctrl._recent) == 4

    def test_rfm_without_history_still_shuffles(self):
        ctrl = self.make()
        refreshed, copies = ctrl.run_rfm()
        assert ctrl.shuffles == 1
        ctrl.check_invariants()

    def test_translations_remain_bijective_under_stress(self):
        ctrl = self.make(raaimt=4)
        rng = SystemRng(5)
        for step in range(200):
            ctrl.record_activation(rng.randrange(LAYOUT.mc_rows_per_bank))
            if step % 4 == 3:
                ctrl.run_rfm()
        ctrl.check_invariants()
        for sub in range(LAYOUT.subarrays_per_bank):
            das = {ctrl.translate(LAYOUT.pa_row(sub, off))
                   for off in range(LAYOUT.rows_per_subarray)}
            assert len(das) == LAYOUT.rows_per_subarray

    def test_requires_empty_row(self):
        plain = SubarrayLayout(has_empty_row=False)
        with pytest.raises(ValueError):
            ShadowBankController(plain, raaimt=8, rng=SystemRng(0))


class TestShadowMitigation:
    def test_bind_rejects_missing_empty_row(self):
        shadow = Shadow(ShadowConfig(rng_kind="system"))
        geometry = DramGeometry(
            layout=SubarrayLayout(has_empty_row=False))
        with pytest.raises(ValueError):
            shadow.bind(geometry, DDR4_2666)

    def test_per_bank_controllers_independent_streams(self):
        shadow = Shadow(ShadowConfig(raaimt=4, rng_kind="prince"))
        geometry = DramGeometry(channels=1, ranks_per_channel=1,
                                banks_per_rank=2, layout=LAYOUT)
        shadow.bind(geometry, DDR4_2666)
        a = shadow.controller(BankAddress(0, 0, 0))
        b = shadow.controller(BankAddress(0, 0, 1))
        assert a is not b
        a.run_rfm()
        b.run_rfm()
        # Streams differ (overwhelmingly likely under distinct keys).
        assert (a.remapping_row(0).pa_to_da != b.remapping_row(0).pa_to_da
                or a.remapping_row(1).pa_to_da != b.remapping_row(1).pa_to_da
                or a.remapping_row(2).pa_to_da != b.remapping_row(2).pa_to_da)

    def test_use_before_bind_rejected(self):
        shadow = Shadow()
        with pytest.raises(RuntimeError):
            _ = shadow.act_extra_cycles
        with pytest.raises(RuntimeError):
            shadow.translate(BankAddress(0, 0, 0), 0)
