"""Core model, system loop, metrics, and runner."""

import pytest

from repro.controller.address import MemoryLocation
from repro.controller.request import MemoryRequest
from repro.core import Shadow, ShadowConfig
from repro.dram.device import DramGeometry
from repro.dram.subarray import SubarrayLayout
from repro.mitigations import DoubleRefreshRate, NoMitigation
from repro.sim import (
    ExperimentRunner,
    System,
    SystemConfig,
    normalized_performance,
    throughput,
    weighted_speedup,
)
from repro.sim.core_model import ThreadState
from repro.sim.metrics import relative_weighted_speedup
from repro.workloads import SPEC_PROFILES

SMALL_GEO = DramGeometry(
    channels=2, ranks_per_channel=1, banks_per_rank=4,
    layout=SubarrayLayout(subarrays_per_bank=4, rows_per_subarray=128),
    columns_per_row=64,
)


def small_config(**kw):
    kw.setdefault("geometry", SMALL_GEO)
    kw.setdefault("requests_per_thread", 200)
    kw.setdefault("seed", 7)
    return SystemConfig(**kw)


def fake_trace(n, gap_ns=10.0, write_every=None):
    def gen():
        i = 0
        while True:
            is_write = write_every is not None and i % write_every == 0
            yield gap_ns, MemoryLocation(0, 0, i % 4, (i * 3) % 128, 0), \
                is_write
            i += 1
    return gen()


class TestThreadState:
    def test_issue_respects_gap(self):
        t = ThreadState(0, fake_trace(10), request_budget=5, tck_ns=0.75)
        assert not t.can_issue(0)
        ready = t.next_ready
        assert t.can_issue(ready)
        req = t.issue(ready)
        assert req.arrival == ready
        assert t.outstanding == 1

    def test_mlp_limit_blocks_loads(self):
        t = ThreadState(0, fake_trace(100), request_budget=50,
                        tck_ns=0.75, mlp=2)
        cycle = 0
        issued = []
        while t.can_issue(max(cycle, t.next_ready)) and len(issued) < 10:
            cycle = max(cycle, t.next_ready)
            issued.append(t.issue(cycle))
        assert len(issued) == 2          # window fills at two loads
        assert t.stalled_on_mlp(t.next_ready)
        t.on_completion(issued[0], cycle + 100)
        assert t.can_issue(max(cycle + 100, t.next_ready))

    def test_writes_do_not_occupy_window(self):
        t = ThreadState(0, fake_trace(100, write_every=1),
                        request_budget=20, tck_ns=0.75, mlp=1)
        cycle = 0
        for _ in range(5):
            cycle = max(cycle, t.next_ready)
            assert t.can_issue(cycle)
            t.issue(cycle)
        assert t.outstanding == 0

    def test_finish_detection(self):
        t = ThreadState(0, fake_trace(10), request_budget=1, tck_ns=0.75)
        req = t.issue(t.next_ready)
        assert t.drained and not t.finished
        t.on_completion(req, 500)
        assert t.finished
        assert t.finish_cycle == 500

    def test_completion_without_outstanding_rejected(self):
        t = ThreadState(0, fake_trace(10), request_budget=2, tck_ns=0.75)
        fake = MemoryRequest(MemoryLocation(0, 0, 0, 0, 0), False, 0, 0)
        with pytest.raises(RuntimeError):
            t.on_completion(fake, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreadState(0, fake_trace(1), request_budget=0, tck_ns=0.75)
        with pytest.raises(ValueError):
            ThreadState(0, fake_trace(1), request_budget=1, tck_ns=0.75,
                        mlp=0)


class TestSystemConfig:
    def test_defaults_valid(self):
        config = SystemConfig()
        assert config.mlp > 0 and config.cpu_ghz > 0

    @pytest.mark.parametrize("field,value", [
        ("requests_per_thread", 0),
        ("requests_per_thread", -5),
        ("mlp", 0),
        ("mlp", -1),
        ("cpu_ghz", 0.0),
        ("cpu_ghz", -2.5),
        ("max_cycles", 0),
        ("max_cycles", -100),
    ])
    def test_non_positive_fields_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            SystemConfig(**{field: value})


class TestSystem:
    def test_all_requests_complete(self):
        system = System([SPEC_PROFILES["gcc"]], config=small_config())
        result = system.run()
        assert result.requests_issued == 200
        assert result.reads_completed > 0
        assert result.cycles > 0
        assert len(result.thread_finish_cycles) == 1

    def test_deterministic(self):
        r1 = System([SPEC_PROFILES["gcc"]], config=small_config()).run()
        r2 = System([SPEC_PROFILES["gcc"]], config=small_config()).run()
        assert r1.cycles == r2.cycles
        assert r1.stats.acts == r2.stats.acts

    def test_more_threads_more_cycles(self):
        one = System([SPEC_PROFILES["lbm"]], config=small_config()).run()
        four = System([SPEC_PROFILES["lbm"]] * 4,
                      config=small_config()).run()
        assert four.cycles > one.cycles
        assert four.requests_issued == 4 * one.requests_issued

    def test_shadow_runs_end_to_end(self):
        shadow = Shadow(ShadowConfig(raaimt=16, rng_kind="system"))
        geometry = DramGeometry(
            channels=1, ranks_per_channel=1, banks_per_rank=2,
            layout=SubarrayLayout(subarrays_per_bank=4,
                                  rows_per_subarray=128),
            columns_per_row=64)
        cfg = SystemConfig(geometry=geometry, requests_per_thread=400,
                           seed=7)
        result = System([SPEC_PROFILES["mcf"]], shadow, config=cfg).run()
        assert result.rfms > 0
        shadow.check_invariants()

    def test_drr_issues_more_refreshes(self):
        cfg = small_config(requests_per_thread=600)
        base = System([SPEC_PROFILES["leela"]], config=cfg).run()
        drr = System([SPEC_PROFILES["leela"]], DoubleRefreshRate(),
                     config=cfg).run()
        # leela is slow enough that both runs span several tREFI.
        assert drr.refreshes > base.refreshes

    def test_empty_profiles_rejected(self):
        with pytest.raises(ValueError):
            System([], config=small_config())

    def test_finish_ns_converts_cycles_to_nanoseconds(self):
        # Regression: finish_ns used to return raw cycles.
        config = small_config()
        result = System([SPEC_PROFILES["gcc"]], config=config).run()
        tck = config.timing.tck_ns
        assert result.tck_ns == tck
        assert tck != 1.0        # conversion must actually change values
        assert result.finish_ns == \
            [c * tck for c in result.thread_finish_cycles]
        assert result.finish_ns[0] != result.thread_finish_cycles[0]


class TestMetrics:
    def test_throughput(self):
        assert throughput(100, 50) == 2.0
        with pytest.raises(ValueError):
            throughput(1, 0)

    def test_normalized_performance(self):
        assert normalized_performance(100, 50) == 2.0   # 2x faster
        assert normalized_performance(50, 100) == 0.5

    def test_weighted_speedup(self):
        # Two threads, one at full speed, one at half speed.
        assert weighted_speedup([100, 100], [100, 200]) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            weighted_speedup([100], [100, 200])
        with pytest.raises(ValueError):
            weighted_speedup([], [])

    def test_relative_weighted_speedup(self):
        rel = relative_weighted_speedup([100, 100], [110, 110], [100, 100])
        assert rel == pytest.approx(100 / 110)


class TestRunner:
    def test_alone_cache_hits(self):
        runner = ExperimentRunner(config=small_config())
        p = SPEC_PROFILES["xz"]
        a = runner.run_alone(p, NoMitigation)
        b = runner.run_alone(p, NoMitigation)
        assert a == b
        assert len(runner._alone_cache) == 1

    def test_run_result_weighted_speedup(self):
        runner = ExperimentRunner(config=small_config())
        result = runner.run([SPEC_PROFILES["xz"], SPEC_PROFILES["gcc"]])
        # Shared execution is never faster than running alone.
        assert result.weighted_speedup <= 2.0 + 1e-9
        assert result.weighted_speedup > 0.5

    def test_relative_performance_close_to_one_for_noop(self):
        runner = ExperimentRunner(config=small_config())
        rel = runner.relative_performance(
            [SPEC_PROFILES["xz"]], NoMitigation, NoMitigation)
        assert rel == pytest.approx(1.0)

    def test_single_thread_relative(self):
        runner = ExperimentRunner(config=small_config())
        rel = runner.single_thread_relative(
            SPEC_PROFILES["gcc"],
            lambda: Shadow(ShadowConfig(raaimt=32, rng_kind="system")))
        # SHADOW costs a little but never approaches DRR-level overhead.
        assert 0.9 < rel <= 1.001
