"""Attack pattern generators and SHADOW-specific adversaries."""

import pytest

from repro.dram.subarray import SubarrayLayout
from repro.rowhammer.attacks import (
    blast_attack,
    double_sided,
    many_sided,
    single_sided,
)
from repro.rowhammer.adversary import (
    ScenarioIAttacker,
    ScenarioIIAttacker,
    ScenarioIIIAttacker,
)
from repro.utils.rng import SystemRng

LAYOUT = SubarrayLayout(subarrays_per_bank=4, rows_per_subarray=64)


class TestPatterns:
    def test_single_sided(self):
        p = single_sided(100)
        rows = list(p.rows(10))
        assert rows.count(100) == 5
        assert p.distinct_aggressors == 2

    def test_double_sided_brackets_victim(self):
        p = double_sided(50)
        assert set(p.aggressor_rows) == {49, 51}
        assert p.intended_victims == (50,)
        rows = list(p.rows(6))
        assert rows == [49, 51, 49, 51, 49, 51]

    def test_many_sided_structure(self):
        p = many_sided(40, sides=5)
        aggs = sorted(p.aggressor_rows)
        # Aggressors spaced two apart, victims between them.
        assert all(b - a == 2 for a, b in zip(aggs, aggs[1:]))
        assert all(v not in aggs for v in p.intended_victims)

    def test_blast_attack_skips_neighbours(self):
        p = blast_attack(30, radius=2)
        assert set(p.aggressor_rows) == {28, 32}
        assert 30 in p.intended_victims
        with pytest.raises(ValueError):
            blast_attack(30, radius=1)

    def test_rows_count_exact(self):
        p = double_sided(5)
        assert len(list(p.rows(0))) == 0
        assert len(list(p.rows(7))) == 7
        with pytest.raises(ValueError):
            list(p.rows(-1))

    def test_validation(self):
        with pytest.raises(ValueError):
            double_sided(0)
        with pytest.raises(ValueError):
            many_sided(1, sides=9)
        with pytest.raises(ValueError):
            many_sided(10, sides=1)


class TestAdversaries:
    def test_scenario_one_changes_rows_between_intervals(self):
        attacker = ScenarioIAttacker(LAYOUT, subarray=1, rng=SystemRng(7))
        rows_a = attacker.interval_rows(0, acts=8)
        rows_b = attacker.interval_rows(1, acts=8)
        # Within an interval: one row, hammered repeatedly.
        assert len(set(rows_a)) == 1
        assert len(set(rows_b)) == 1
        # All rows stay in the chosen subarray.
        assert LAYOUT.subarray_of_pa(rows_a[0]) == 1
        # Over many intervals the attacker varies its row.
        seen = {attacker.interval_rows(i, 1)[0] for i in range(30)}
        assert len(seen) > 5

    def test_scenario_two_fixed_set_round_robin(self):
        attacker = ScenarioIIAttacker(LAYOUT, subarray=2, n_aggr=4,
                                      rng=SystemRng(3))
        assert len(set(attacker.rows)) == 4
        assert all(LAYOUT.subarray_of_pa(r) == 2 for r in attacker.rows)
        rows = attacker.interval_rows(0, acts=8)
        assert rows == attacker.rows * 2
        # Same set in the next interval.
        assert attacker.interval_rows(5, acts=4) == attacker.rows

    def test_scenario_two_validation(self):
        with pytest.raises(ValueError):
            ScenarioIIAttacker(LAYOUT, 0, n_aggr=0, rng=SystemRng(1))
        with pytest.raises(ValueError):
            ScenarioIIAttacker(LAYOUT, 0, n_aggr=65, rng=SystemRng(1))

    def test_scenario_three_spans_subarrays(self):
        attacker = ScenarioIIIAttacker(LAYOUT, n_aggr=16, rng=SystemRng(9))
        subs = {LAYOUT.subarray_of_pa(r) for r in attacker.rows}
        assert len(subs) > 1
        assert len(set(attacker.rows)) == 16

    def test_scenario_three_restricted_subarrays(self):
        attacker = ScenarioIIIAttacker(LAYOUT, n_aggr=6, rng=SystemRng(2),
                                       subarrays=[0, 3])
        subs = {LAYOUT.subarray_of_pa(r) for r in attacker.rows}
        assert subs <= {0, 3}
