"""The bench harness: determinism, report I/O, regression gating."""

from pathlib import Path

import pytest

from repro.bench import (
    BENCH_PROFILES,
    check_overhead,
    check_regression,
    load_report,
    run_bench,
    run_overhead,
    write_report,
)
from repro.bench.harness import SCHEMA, run_one


class TestProfiles:
    def test_expected_profile_set(self):
        assert set(BENCH_PROFILES) == {
            "hit-heavy", "conflict-heavy", "shadow-rfm",
            "refresh-dominated", "idle-heavy", "tracker-heavy",
            "faults-on"}

    def test_tracker_heavy_drives_a_composed_scheme(self):
        # The adversarial tracker profile must exercise a composed
        # tracker x policy x scope scheme on miss-heavy traffic, so the
        # gate covers tracker-bound scheduling.
        from repro.mitigations import ComposedMitigation
        profile = BENCH_PROFILES["tracker-heavy"]
        assert isinstance(profile.scheme.build(), ComposedMitigation)
        assert profile.workload.row_buffer_locality < 0.2

    def test_idle_heavy_is_sparse(self):
        # The point of the profile: many threads, low per-thread
        # intensity, refresh enabled -- most simulated time is idle.
        profile = BENCH_PROFILES["idle-heavy"]
        assert profile.threads >= 8
        assert profile.enable_refresh
        assert profile.workload.mpki < 1.0

    def test_quick_build_is_smaller(self):
        profile = BENCH_PROFILES["hit-heavy"]
        quick = profile.build(quick=True)
        full = profile.build(quick=False)
        assert quick.config.requests_per_thread < \
            full.config.requests_per_thread

    def test_quick_run_is_deterministic(self):
        entry_a = run_one(BENCH_PROFILES["refresh-dominated"], quick=True)
        entry_b = run_one(BENCH_PROFILES["refresh-dominated"], quick=True)
        for key in ("cycles", "requests", "acts", "row_hits",
                    "refreshes", "rfms"):
            assert entry_a[key] == entry_b[key]
        assert entry_a["cycles"] > 0

    def test_cprofile_rows(self):
        entry = run_one(BENCH_PROFILES["refresh-dominated"], quick=True,
                        with_cprofile=True, top_n=5)
        rows = entry["cprofile_top"]
        assert 0 < len(rows) <= 5
        assert all({"function", "ncalls", "tottime_s", "cumtime_s"}
                   <= set(row) for row in rows)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown bench profiles"):
            run_bench(names=["no-such-profile"], log=None)


class TestReportIO:
    def test_write_merges_variants(self, tmp_path):
        path = tmp_path / "bench.json"
        quick = run_bench(names=["refresh-dominated"], quick=True,
                          log=None)
        write_report(path, "quick", quick)
        write_report(path, "full", quick, extra={"pre_pr": {"x": 1}})
        report = load_report(path)
        assert report["schema"] == SCHEMA
        assert set(report["variants"]) == {"quick", "full"}
        assert report["pre_pr"] == {"x": 1}
        assert "refresh-dominated" in report["variants"]["quick"]

    def test_rewrite_preserves_other_variants(self, tmp_path):
        path = tmp_path / "bench.json"
        results = {"p": {"cycles_per_s": 100.0}}
        write_report(path, "quick", results)
        write_report(path, "full", {"p": {"cycles_per_s": 200.0}})
        report = load_report(path)
        assert report["variants"]["quick"]["p"]["cycles_per_s"] == 100.0


class TestRegressionGate:
    BASE = {"variants": {"quick": {
        "p": {"cycles_per_s": 1000.0},
        "q": {"cycles_per_s": 500.0},
    }}}

    def test_pass_within_threshold(self):
        results = {"p": {"cycles_per_s": 800.0},
                   "q": {"cycles_per_s": 495.0}}
        assert check_regression(results, self.BASE, "quick", 0.30) == []

    def test_fail_below_threshold(self):
        results = {"p": {"cycles_per_s": 600.0}}
        failures = check_regression(results, self.BASE, "quick", 0.30)
        assert len(failures) == 1
        assert "p:" in failures[0]

    def test_new_profile_allowed(self):
        results = {"brand-new": {"cycles_per_s": 1.0}}
        assert check_regression(results, self.BASE, "quick", 0.30) == []

    def test_missing_variant_is_not_a_failure(self):
        results = {"p": {"cycles_per_s": 1.0}}
        assert check_regression(results, self.BASE, "full", 0.30) == []

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            check_regression({}, self.BASE, "quick", 1.5)


class TestOverheadMode:
    def test_run_one_with_obs_same_outcome(self):
        from repro.obs import Observability
        profile = BENCH_PROFILES["refresh-dominated"]
        off = run_one(profile, quick=True)
        on = run_one(profile, quick=True,
                     obs_factory=lambda: Observability.in_memory(
                         sample_interval=10_000))
        for key in ("cycles", "requests", "acts", "row_hits",
                    "refreshes", "rfms"):
            assert off[key] == on[key]

    def test_run_overhead_shape_and_traces(self, tmp_path):
        results = run_overhead(names=["refresh-dominated"], quick=True,
                               trace_dir=tmp_path, log=None)
        entry = results["refresh-dominated"]
        assert set(entry) == {"off", "on", "overhead"}
        assert entry["off"]["cycles"] == entry["on"]["cycles"]
        assert (tmp_path / "refresh-dominated.trace.json").exists()

    def test_check_overhead_gate(self):
        results = {"a": {"overhead": 0.05}, "b": {"overhead": 0.40}}
        failures = check_overhead(results, 0.15)
        assert len(failures) == 1 and "b:" in failures[0]
        assert check_overhead(results, 0.50) == []
        with pytest.raises(ValueError):
            check_overhead(results, 0.0)


class TestCommittedReport:
    def test_bench_pr2_report_shape(self):
        # PR2 predates the idle-heavy and tracker-heavy profiles; its
        # report pins the original four.
        report = load_report(
            Path(__file__).resolve().parents[1] / "BENCH_PR2.json")
        assert report["schema"] == SCHEMA
        for variant in ("quick", "full"):
            profiles = report["variants"][variant]
            assert set(profiles) == \
                set(BENCH_PROFILES) - {"idle-heavy", "tracker-heavy",
                                       "faults-on"}
            for entry in profiles.values():
                assert entry["cycles_per_s"] > 0
        speedup = report["speedup_full_vs_pre_pr"]
        assert speedup["geomean"] >= 2.0

    def test_bench_pr7_report_shape(self):
        report = load_report(
            Path(__file__).resolve().parents[1] / "BENCH_PR7.json")
        assert report["schema"] == SCHEMA
        for variant in ("quick", "full"):
            profiles = report["variants"][variant]
            assert set(profiles) == \
                set(BENCH_PROFILES) - {"tracker-heavy", "faults-on"}
            for entry in profiles.values():
                assert entry["cycles_per_s"] > 0
        # pre_pr holds the PR2-era loop's numbers for the profiles that
        # existed then; idle-heavy is new in this report.
        pre = report["pre_pr"]["full"]
        assert set(pre) == \
            set(BENCH_PROFILES) - {"idle-heavy", "tracker-heavy",
                                   "faults-on"}
        speedup = report["speedup_full_vs_pre_pr"]
        # The headline acceptance number of the event-horizon rewrite.
        assert speedup["refresh-dominated"] >= 2.0

    def test_bench_pr9_report_shape(self):
        # PR9 is the current CI gate baseline: every profile that
        # existed then, in both variants (faults-on arrived later;
        # check_regression skips profiles missing from the baseline).
        report = load_report(
            Path(__file__).resolve().parents[1] / "BENCH_PR9.json")
        assert report["schema"] == SCHEMA
        for variant in ("quick", "full"):
            profiles = report["variants"][variant]
            assert set(profiles) == set(BENCH_PROFILES) - {"faults-on"}
            for entry in profiles.values():
                assert entry["cycles_per_s"] > 0
