"""Red-team harness: grid construction and end-to-end discrimination."""

import json

from repro.experiments.engine import Engine
from repro.experiments.redteam import (
    FULL_ATTACKS,
    SMOKE_ATTACKS,
    jobs,
    redteam_schemes,
    render,
    run,
)


class TestGrid:
    def test_smoke_grid_is_the_ci_pair(self):
        grid = jobs("smoke")
        assert set(grid) == {("none", "double-sided"),
                             ("shadow", "double-sided")}
        assert redteam_schemes("smoke") == ["none", "shadow"]

    def test_full_grid_covers_the_zoo(self):
        grid = jobs("full")
        schemes = {scheme for scheme, _ in grid}
        attacks = {attack for _, attack in grid}
        assert "none" in schemes and "shadow" in schemes
        assert len(schemes) > 5
        assert attacks == set(FULL_ATTACKS)

    def test_requests_sized_to_attack_efficiency(self):
        grid = jobs("full", hcnt=1024)
        per_attack = {attack: job.config.requests_per_thread
                      for (scheme, attack), job in grid.items()
                      if scheme == "none"}
        # Every pattern gets at least threshold + headroom...
        for attack, requests in per_attack.items():
            assert requests > 1024, attack
        # ... and dilute patterns proportionally more raw activations.
        assert per_attack["many-sided"] > per_attack["double-sided"]

    def test_jobs_carry_fault_specs_and_serial_acts(self):
        for (_, attack), job in jobs("smoke", hcnt=64).items():
            assert job.faults is not None
            assert job.faults.hcnt == 64
            assert job.config.mlp == 1     # no FR-FCFS batching
            assert "faults" in job.spec

    def test_half_double_jobs_enable_refresh_hammering(self):
        grid = jobs("full", hcnt=64)
        assert grid[("none", "half-double")].faults \
            .refresh_hammers_neighbors
        assert not grid[("none", "double-sided")].faults \
            .refresh_hammers_neighbors


class TestEndToEnd:
    def test_smoke_discriminates_none_from_shadow(self):
        # The CI check at unit-test scale: same trace, same seed, tiny
        # hcnt -- the undefended baseline takes an uncorrectable flip,
        # SHADOW takes none.
        report = run("smoke", engine=Engine(use_cache=False), hcnt=192,
                     seed=1)
        assert report["attacks"] == list(SMOKE_ATTACKS)
        none_entry = report["schemes"]["none"]["double-sided"]
        shadow_entry = report["schemes"]["shadow"]["double-sided"]
        assert none_entry["uncorrectable"] >= 1
        assert none_entry["time_to_first_flip_ns"] > 0
        assert shadow_entry["bits_injected"] == 0
        assert shadow_entry["time_to_first_flip_ns"] is None
        assert "failures" not in report

    def test_report_is_json_able_and_renders(self):
        report = run("smoke", engine=Engine(use_cache=False), hcnt=192,
                     seed=1)
        json.dumps(report)
        table = render(report)
        assert "none" in table and "shadow" in table
        assert "double-sided" in table
