"""Hammer workload profiles and their trace-generator dispatch."""

import dataclasses

import pytest

from repro.controller.address import AddressMapping
from repro.rowhammer.attacks import double_sided, many_sided
from repro.sim import SystemConfig
from repro.spec.registry import WORKLOADS
from repro.workloads.hammer import (
    HammerProfile,
    HammerTraceGenerator,
    hammer_profile,
)

MAPPING = AddressMapping(SystemConfig().geometry)


class TestProfile:
    def test_pattern_matches_attack_generators(self):
        profile = hammer_profile("double-sided", victim_row=100)
        assert profile.pattern().aggressor_rows == \
            double_sided(100).aggressor_rows
        profile = hammer_profile("many-sided", victim_row=100, sides=5)
        assert profile.pattern().aggressor_rows == \
            many_sided(100, sides=5).aggressor_rows

    def test_unknown_attack_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown attack"):
            HammerProfile(attack="quadruple-sided")
        with pytest.raises(ValueError):
            HammerProfile(victim_row=-1)

    def test_profile_is_picklable_and_asdictable(self):
        import pickle
        profile = hammer_profile("blast", victim_row=50, radius=2)
        assert pickle.loads(pickle.dumps(profile)) == profile
        payload = dataclasses.asdict(profile)
        assert payload["attack"] == "blast"
        assert payload["name"] == "hammer-blast"


class TestTraceGenerator:
    def test_materialize_rotates_the_pattern(self):
        profile = hammer_profile("double-sided", victim_row=100)
        generator = profile.trace_generator(MAPPING, 0, seed=1,
                                            cpu_ghz=3.0)
        ops = generator.materialize(5, tck_ns=0.75)
        rows = [loc.row for _, loc, _ in ops]
        assert rows == [99, 101, 99, 101, 99]
        for gap, loc, is_write in ops:
            assert gap == 1                   # activation-bound
            assert not is_write
            assert (loc.channel, loc.rank, loc.bank) == (0, 0, 0)
            assert loc.column == 0

    def test_victim_outside_bank_rejected(self):
        rows = MAPPING.geometry.rows_per_bank
        with pytest.raises(ValueError, match="outside the bank"):
            HammerTraceGenerator(
                HammerProfile(victim_row=rows + 5), MAPPING)

    def test_count_validation(self):
        generator = hammer_profile().trace_generator(MAPPING, 0, 1, 3.0)
        with pytest.raises(ValueError):
            generator.materialize(-1)
        assert generator.materialize(0) == []


class TestRegistry:
    def test_hammer_workload_registered(self):
        profiles = WORKLOADS.build("hammer", attack="single-sided",
                                   victim_row=33)
        assert len(profiles) == 1
        assert profiles[0].attack == "single-sided"
        assert profiles[0].victim_row == 33

    def test_threads_fan_out(self):
        profiles = WORKLOADS.build("hammer", threads=3)
        assert len(profiles) == 3
        assert all(p.attack == "double-sided" for p in profiles)
