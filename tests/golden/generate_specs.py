"""Golden outputs proving the spec-driven driver matches the old drivers.

``python tests/golden/generate_specs.py`` (re)writes
``spec_driver_golden.json`` next to it: the fig8 and fig12 smoke-shape
result dicts at a micro run scale (the same grid as the real smoke
fidelity, with thread counts and request budgets trimmed so the whole
thing runs in seconds).

The committed file was generated against the pre-spec (PR 3) per-figure
drivers, so ``tests/test_spec_driver.py`` asserting the current
spec-interpreting driver reproduces it *exactly* proves the refactor is
value-preserving, not just plausible.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import fig8, fig12
from repro.experiments.configs import FidelityConfig
from repro.experiments.engine import Engine

GOLDEN_PATH = Path(__file__).resolve().parent / "spec_driver_golden.json"

#: The smoke grid shape at micro run scale (mirrors tests/test_engine.py).
MICRO = FidelityConfig(
    name="smoke", threads=2, mt_threads=2,
    requests_per_thread=60, single_thread_requests=40,
    apps_per_suite=1, mix_random_count=1,
    tracker_threads=2, tracker_requests=80,
)


def run_micro():
    """The fig8 + fig12 smoke results at micro scale (no disk cache)."""
    results = {}
    for module in (fig8, fig12):
        original = module.fidelity_config
        module.fidelity_config = lambda name: MICRO
        try:
            results[module.__name__.rsplit(".", 1)[-1]] = module.run(
                "smoke", engine=Engine(use_cache=False))
        finally:
            module.fidelity_config = original
    return results


def main() -> None:
    payload = run_micro()
    GOLDEN_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
