"""Golden scheduler-equivalence scenarios and command-stream capture.

This module is the single source of truth for the golden suite: the
scenario definitions, the command-stream capture hook, and the recorded
fields all live here.  ``python tests/golden/generate.py`` (re)writes
``scheduler_golden.json`` next to it; ``tests/test_scheduler_equivalence.py``
imports this module and asserts the current controller reproduces the
recorded values *exactly* -- same ``SystemResult``, same per-bank command
stream (op, row, cycle), same mitigation-visible side effects.

The committed golden file was generated against the seed (pre-PR2)
controller, so these tests prove the incremental scheduler is
cycle-identical to the original full-recompute scheduler.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.core import Shadow, ShadowConfig
from repro.dram.device import DramGeometry
from repro.dram.subarray import SubarrayLayout
from repro.mitigations import (
    BlockHammer,
    Graphene,
    Mithril,
    NoMitigation,
    Para,
    Parfm,
    RandomizedRowSwap,
)
from repro.sim import System, SystemConfig
from repro.utils.rng import SystemRng
from repro.workloads.trace import WorkloadProfile

GOLDEN_PATH = Path(__file__).resolve().parent / "scheduler_golden.json"

GEOMETRY = DramGeometry(
    channels=2, ranks_per_channel=1, banks_per_rank=8,
    layout=SubarrayLayout(subarrays_per_bank=4, rows_per_subarray=64),
    columns_per_row=64,
)

#: Hot zipf traffic concentrates ACTs so the tracker-based schemes (RRS
#: swaps, BlockHammer throttles) actually fire inside a short run.
_HOT = WorkloadProfile(
    name="golden-hot", mpki=40.0, row_buffer_locality=0.2,
    write_fraction=0.25, footprint_pages=96, zipf_alpha=1.1)
_STREAM = WorkloadProfile(
    name="golden-stream", mpki=30.0, row_buffer_locality=0.85,
    write_fraction=0.2, footprint_pages=64, sequential=True)

THREADS = [_HOT, _STREAM, _HOT]
REQUESTS_PER_THREAD = 400
SEED = 13


def make_mitigation(scheme: str):
    if scheme == "none":
        return NoMitigation()
    if scheme == "shadow":
        return Shadow(ShadowConfig(raaimt=16, rng_kind="system", rng_seed=5))
    if scheme == "rrs":
        return RandomizedRowSwap.for_hcnt(12, rng=SystemRng(99))
    if scheme == "blockhammer":
        return BlockHammer.for_hcnt(16, rate_scale=64.0)
    if scheme == "graphene":
        # Threshold 2: the MC-side TRR fires constantly on hot rows.
        return Graphene(hcnt=8)
    if scheme == "mithril":
        # RAAIMT offset from parfm's 16 so the two RFM TRR schemes
        # produce distinct command cadences (stream-distinctness check).
        return Mithril(raaimt=12, table_entries=8, blast_radius=2)
    if scheme == "para":
        return Para(probability=0.05, rng=SystemRng(71))
    if scheme == "parfm":
        return Parfm(raaimt=16, rng=SystemRng(43))
    raise ValueError(f"unknown golden scheme {scheme!r}")


SCHEMES = ("none", "shadow", "rrs", "blockhammer", "graphene", "mithril",
           "para", "parfm")


def build_system(scheme: str):
    mitigation = make_mitigation(scheme)
    config = SystemConfig(geometry=GEOMETRY, seed=SEED,
                          requests_per_thread=REQUESTS_PER_THREAD)
    return System(list(THREADS), mitigation, config=config), mitigation


# -- command-stream capture ----------------------------------------------------------

_BANK_COMMANDS = ("issue_act", "issue_pre", "issue_rd", "issue_wr",
                  "issue_ref", "issue_rfm")


def run_captured(system):
    """Run ``system`` recording every bank command as a text event.

    Events are ``"<ch>.<rk>.<bk> <OP> [row] @<cycle>"`` in issue order;
    the digest over the joined stream is the cycle-identical fingerprint
    two scheduler implementations must share.
    """
    from repro.dram.bank import Bank

    addr_of = {id(bank): addr for addr, bank in system.device.banks.items()}
    events = []
    originals = {}

    def make_wrapper(name, orig):
        def wrapped(self, *args, **kwargs):
            out = orig(self, *args, **kwargs)
            addr = addr_of.get(id(self))
            if addr is not None:
                where = f"{addr.channel}.{addr.rank}.{addr.bank}"
                if name == "issue_act":
                    events.append(f"{where} ACT {args[0]} @{args[1]}")
                else:
                    events.append(f"{where} {name[6:].upper()} @{args[0]}")
            return out
        return wrapped

    for name in _BANK_COMMANDS:
        originals[name] = getattr(Bank, name)
        setattr(Bank, name, make_wrapper(name, originals[name]))
    try:
        result = system.run()
    finally:
        for name, orig in originals.items():
            setattr(Bank, name, orig)
    digest = hashlib.sha256("\n".join(events).encode()).hexdigest()
    return result, digest, len(events)


# -- recorded fields -----------------------------------------------------------------

def scenario_record(scheme: str) -> dict:
    system, mitigation = build_system(scheme)
    result, digest, n_events = run_captured(system)
    stats = result.stats
    record = {
        "cycles": result.cycles,
        "thread_finish_cycles": list(result.thread_finish_cycles),
        "reads_completed": result.reads_completed,
        "requests_issued": result.requests_issued,
        "refreshes": result.refreshes,
        "rfms": result.rfms,
        "mitigation_name": result.mitigation_name,
        "stats": {name: getattr(stats, name) for name in vars(stats)},
        "command_stream_sha256": digest,
        "command_stream_events": n_events,
    }
    if scheme == "shadow":
        record["shuffles"] = mitigation.total_shuffles()
    elif scheme == "rrs":
        record["swaps"] = mitigation.swaps
    elif scheme == "blockhammer":
        record["throttled_acts"] = mitigation.throttled_acts
        record["total_delay_cycles"] = mitigation.total_delay_cycles
    elif scheme in ("graphene", "mithril", "para", "parfm"):
        record["trr_count"] = mitigation.trr_count
    return record


def generate() -> dict:
    golden = {scheme: scenario_record(scheme) for scheme in SCHEMES}
    return golden


def main() -> None:
    golden = generate()
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n",
                           encoding="utf-8")
    for scheme, record in golden.items():
        print(f"{scheme:>12}: cycles={record['cycles']} "
              f"events={record['command_stream_events']} "
              f"sha={record['command_stream_sha256'][:12]}")


if __name__ == "__main__":
    main()
