"""Bank-group-aware timing: tRRD_L/S, tCCD_L/S, geometry plumbing."""

import pytest

from repro.controller.address import MemoryLocation
from repro.controller.mc import McConfig, MemoryController
from repro.controller.request import MemoryRequest
from repro.dram.device import DramDevice, DramGeometry
from repro.dram.rank import RankTiming
from repro.dram.subarray import SubarrayLayout
from repro.dram.timing import DDR4_2666
from repro.mitigations import NoMitigation

T = DDR4_2666


class TestGeometryGroups:
    def test_default_grouping(self):
        g = DramGeometry()
        assert g.effective_bank_groups == 4
        assert g.bank_group_of(0) == 0
        assert g.bank_group_of(1) == 1
        assert g.bank_group_of(4) == 0

    def test_small_geometry_shrinks_groups(self):
        g = DramGeometry(banks_per_rank=2)
        assert g.effective_bank_groups == 2
        assert {g.bank_group_of(0), g.bank_group_of(1)} == {0, 1}

    def test_indivisible_grouping_rejected(self):
        with pytest.raises(ValueError):
            DramGeometry(banks_per_rank=6, bank_groups=4)

    def test_out_of_range_bank(self):
        with pytest.raises(ValueError):
            DramGeometry().bank_group_of(16)


class TestRankGroupTiming:
    def test_cross_group_act_uses_trrd_s(self):
        rank = RankTiming(T)
        rank.record_act(100, group=0)
        assert rank.earliest_act(100, group=1) == 100 + T.tRRD_S
        assert rank.earliest_act(100, group=0) == 100 + T.tRRD_L

    def test_same_group_spacing_survives_interleaving(self):
        """g0 -> g1 -> g0: the second g0 ACT still honours tRRD_L from
        the first g0 ACT, not just tRRD_S from the g1 ACT."""
        rank = RankTiming(T)
        rank.record_act(0, group=0)
        rank.record_act(T.tRRD_S, group=1)
        assert rank.earliest_act(0, group=0) >= T.tRRD_L

    def test_column_spacing(self):
        rank = RankTiming(T)
        rank.record_column(50, group=0)
        assert rank.earliest_column(50, group=0) == 50 + T.tCCD_L
        assert rank.earliest_column(50, group=1) == 50 + T.tCCD_S
        with pytest.raises(RuntimeError):
            rank.record_column(50 + T.tCCD_S - 1, group=0)

    def test_tfaw_applies_across_groups(self):
        rank = RankTiming(T)
        times = []
        cycle = 0
        for i in range(4):
            cycle = rank.earliest_act(cycle, group=i % 4)
            rank.record_act(cycle, group=i % 4)
            times.append(cycle)
        assert rank.earliest_act(0, group=0) >= times[0] + T.tFAW


class TestSystemLevelGrouping:
    def make_mc(self):
        geometry = DramGeometry(
            channels=1, ranks_per_channel=1, banks_per_rank=4,
            bank_groups=4,
            layout=SubarrayLayout(subarrays_per_bank=2,
                                  rows_per_subarray=32),
            columns_per_row=16)
        device = DramDevice(geometry, T)
        mc = MemoryController(device, NoMitigation(),
                              config=McConfig(enable_refresh=False))
        return device, mc

    def drain_all(self, mc):
        done, cycle = [], 0
        while mc.pending_requests():
            completions, wake = mc.drain(0, cycle)
            done.extend(completions)
            if mc.pending_requests() == 0:
                break
            cycle = wake if wake and wake > cycle else cycle + 1
        return done

    def test_cross_group_acts_faster_than_same_group(self):
        # Two requests to different banks in different groups...
        device, mc = self.make_mc()
        a = MemoryRequest(MemoryLocation(0, 0, 0, 1, 0), False, 0, 0)
        b = MemoryRequest(MemoryLocation(0, 0, 1, 1, 0), False, 0, 0)
        mc.enqueue(a)
        mc.enqueue(b)
        self.drain_all(mc)
        cross_delta = b.issued - a.issued

        # ...vs two banks in the same group (banks 0 and 4 would be,
        # but this geometry has 4 banks = 4 groups, so rebuild with 2
        # groups to force same-group banks 0 and 2).
        geometry = DramGeometry(
            channels=1, ranks_per_channel=1, banks_per_rank=4,
            bank_groups=2,
            layout=SubarrayLayout(subarrays_per_bank=2,
                                  rows_per_subarray=32),
            columns_per_row=16)
        device = DramDevice(geometry, T)
        mc2 = MemoryController(device, NoMitigation(),
                               config=McConfig(enable_refresh=False))
        c = MemoryRequest(MemoryLocation(0, 0, 0, 1, 0), False, 0, 0)
        d = MemoryRequest(MemoryLocation(0, 0, 2, 1, 0), False, 0, 0)
        mc2.enqueue(c)
        mc2.enqueue(d)
        done, cycle = [], 0
        while mc2.pending_requests():
            completions, wake = mc2.drain(0, cycle)
            done.extend(completions)
            if mc2.pending_requests() == 0:
                break
            cycle = wake if wake and wake > cycle else cycle + 1
        same_delta = d.issued - c.issued
        assert cross_delta < same_delta
