"""Regressions for the incremental scheduling core.

Covers the invariants the candidate cache must preserve: FIFO-age
tie-breaking, O(1) pending counters, refresh obligations on idle
channels, and cache invalidation on translation-generation bumps.
"""


from repro.controller.address import MemoryLocation
from repro.controller.mc import McConfig, MemoryController
from repro.controller.request import MemoryRequest
from repro.dram.device import BankAddress, DramDevice, DramGeometry
from repro.dram.subarray import SubarrayLayout
from repro.dram.timing import DDR4_2666
from repro.mitigations.base import Mitigation
from repro.mitigations.none import NoMitigation

T = DDR4_2666
SMALL = DramGeometry(
    channels=1, ranks_per_channel=1, banks_per_rank=2,
    layout=SubarrayLayout(subarrays_per_bank=4, rows_per_subarray=64),
    columns_per_row=32,
)
TWO_CHAN = DramGeometry(
    channels=2, ranks_per_channel=1, banks_per_rank=2,
    layout=SubarrayLayout(subarrays_per_bank=4, rows_per_subarray=64),
    columns_per_row=32,
)


def make_mc(mitigation=None, geometry=SMALL, refresh=True):
    device = DramDevice(geometry, T)
    mc = MemoryController(device, mitigation or NoMitigation(),
                          config=McConfig(enable_refresh=refresh))
    return device, mc


def req(row, col=0, bank=0, channel=0, write=False, arrival=0, thread=0):
    return MemoryRequest(
        location=MemoryLocation(channel, 0, bank, row, col),
        is_write=write, thread_id=thread, arrival=arrival)


def run_to_completion(mc, channels=(0,), horizon=5_000_000):
    done = []
    cycle = 0
    while mc.pending_requests() and cycle < horizon:
        wakes = []
        for ch in channels:
            completions, wake = mc.drain(ch, cycle)
            done.extend(completions)
            if wake is not None:
                wakes.append(wake)
        if mc.pending_requests() == 0:
            break
        nxt = min(wakes) if wakes else cycle + 1
        cycle = nxt if nxt > cycle else cycle + 1
    assert mc.pending_requests() == 0, "requests stuck in the queues"
    return done


class TestFifoAgeTieBreaks:
    def test_same_row_hits_retire_in_fifo_order(self):
        device, mc = make_mc(refresh=False)
        requests = [req(row=3, col=i, arrival=i) for i in range(6)]
        for r in requests:
            mc.enqueue(r)
        done = run_to_completion(mc)
        assert [r.request_id for r, _ in done] == \
            [r.request_id for r in requests]
        issue_cycles = [r.issued for r in requests]
        assert issue_cycles == sorted(issue_cycles)

    def test_equal_readiness_prefers_older_request_across_banks(self):
        # Two closed banks, both ACT-ready at cycle 0: the older arrival
        # must win the tie even though both candidates are identical in
        # (earliest, priority).
        device, mc = make_mc(refresh=False)
        older = req(row=1, bank=1, arrival=0)
        younger = req(row=2, bank=0, arrival=1)
        mc.enqueue(younger)
        mc.enqueue(older)
        run_to_completion(mc)
        assert older.issued < younger.issued

    def test_row_hit_beats_older_conflict(self):
        # FR-FCFS: a younger hit on the open row overtakes an older
        # request that needs a PRE+ACT.
        device, mc = make_mc(refresh=False)
        opener = req(row=1, col=0, arrival=0)
        conflict = req(row=2, col=0, arrival=1)
        hit = req(row=1, col=1, arrival=2)
        for r in (opener, conflict, hit):
            mc.enqueue(r)
        run_to_completion(mc)
        assert hit.completed < conflict.completed


class TestIdleRefreshWake:
    def test_idle_channel_wakes_for_refresh_and_issues_ref(self):
        device, mc = make_mc(refresh=True)
        # Nothing enqueued: the drain finds no candidate before the
        # refresh horizon and must report the tREFI due time as wake.
        completions, wake = mc.drain(0, 0)
        assert completions == []
        tracker = mc.refresh[(0, 0)]
        assert wake == tracker.next_due
        assert wake > 0
        # Draining at the due time issues the REF on the idle channel.
        before = tracker.refs_issued
        mc.drain(0, wake)
        assert tracker.refs_issued == before + 1
        assert device.banks[BankAddress(0, 0, 0)].stats.refreshes == 1

    def test_idle_wake_never_drops_a_due_obligation(self):
        device, mc = make_mc(refresh=True)
        tracker = mc.refresh[(0, 0)]
        # A tracker already due within the horizon must yield a wake
        # just past `until`, not be skipped as "in the past".
        until = tracker.next_due + 100
        wake = mc._idle_wake(0, until)
        assert wake == until + 1

    def test_refreshes_keep_coming_on_idle_channel(self):
        device, mc = make_mc(refresh=True)
        cycle, refs = 0, 0
        for _ in range(5):
            _, wake = mc.drain(0, cycle)
            assert wake is not None
            cycle = wake
            mc.drain(0, cycle)
            refs = mc.refresh[(0, 0)].refs_issued
        assert refs >= 4


class TestPendingCounters:
    def test_counts_per_channel_and_total(self):
        device, mc = make_mc(geometry=TWO_CHAN, refresh=False)
        for i in range(3):
            mc.enqueue(req(row=i, channel=0, arrival=i))
        for i in range(2):
            mc.enqueue(req(row=i, channel=1, arrival=i))
        assert mc.pending_requests() == 5
        assert mc.pending_requests(0) == 3
        assert mc.pending_requests(1) == 2
        run_to_completion(mc, channels=(0, 1))
        assert mc.pending_requests() == 0
        assert mc.pending_requests(0) == 0
        assert mc.pending_requests(1) == 0

    def test_counters_track_queue_contents(self):
        device, mc = make_mc(refresh=False)
        requests = [req(row=r, arrival=r) for r in range(4)]
        for r in requests:
            mc.enqueue(r)
        while mc.pending_requests():
            live = sum(len(q) for q in mc.queues.values())
            assert live == mc.pending_requests()
            before = mc.retired
            cycle = 0 if mc.retired == 0 else max(
                r.completed or 0 for r in requests)
            completions, wake = mc.drain(0, cycle + 100000)
            if not completions and wake is None:
                break
        assert mc.pending_requests() == 0
        assert mc.queues == {}


class _RemapToggle(Mitigation):
    """Toy dynamic scheme: flips two rows' DA mapping on demand."""

    name = "remap-toggle"

    def __init__(self, row_a, row_b):
        super().__init__()
        self.row_a = row_a
        self.row_b = row_b
        self.flipped = False
        self.generation = 0

    def translate(self, addr, pa_row):
        base = self.geometry.layout.identity_da
        if self.flipped:
            if pa_row == self.row_a:
                return base(self.row_b)
            if pa_row == self.row_b:
                return base(self.row_a)
        return base(pa_row)

    def translation_generation(self, addr):
        return self.generation

    def flip(self, addr):
        self.flipped = not self.flipped
        self.generation += 1
        self.notify_translation_changed(addr)


class TestTranslationInvalidation:
    def test_generation_bump_retargets_queued_requests(self):
        mitigation = _RemapToggle(row_a=1, row_b=2)
        device, mc = make_mc(mitigation, refresh=False)
        addr = BankAddress(0, 0, 0)
        ident = mitigation.geometry.layout.identity_da

        opener = req(row=1, col=0, arrival=0)
        queued = req(row=1, col=1, arrival=1)
        mc.enqueue(opener)
        mc.enqueue(queued)
        # Issue ACT+RD for the opener only: stop before queued's column.
        mc.drain(0, T.tRCD)
        assert opener.issued is not None
        assert device.banks[addr].open_row == ident(1)

        # Remap while `queued` is still waiting: its cached DA row and
        # the controller's hit index must re-translate, so it now
        # conflicts with the open row instead of hitting it.
        mitigation.flip(addr)
        run_to_completion(mc)
        assert queued.da_row == ident(2)
        assert device.banks[addr].stats.row_conflicts >= 1

    def test_listener_registered_by_controller(self):
        mitigation = _RemapToggle(row_a=1, row_b=2)
        device, mc = make_mc(mitigation, refresh=False)
        mc.enqueue(req(row=1))
        ctx = mc._ctx[BankAddress(0, 0, 0)]
        mc._best_candidate(0, 0)
        assert not ctx.dirty
        mitigation.flip(BankAddress(0, 0, 0))
        assert ctx.dirty
