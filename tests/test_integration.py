"""End-to-end integration: attacks through the full stack, protocol
fuzzing, and cross-layer consistency checks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.address import MemoryLocation
from repro.controller.mc import McConfig, MemoryController
from repro.controller.request import MemoryRequest
from repro.core import Shadow, ShadowConfig
from repro.dram.device import BankAddress, DramDevice, DramGeometry
from repro.dram.subarray import SubarrayLayout
from repro.dram.timing import DDR4_2666
from repro.mitigations import NoMitigation, Parfm, RandomizedRowSwap, RrsConfig
from repro.rowhammer import DisturbanceModel, HammerConfig, double_sided
from repro.sim import System, SystemConfig
from repro.workloads import WorkloadProfile

GEOMETRY = DramGeometry(
    channels=1, ranks_per_channel=1, banks_per_rank=2,
    layout=SubarrayLayout(subarrays_per_bank=4, rows_per_subarray=64),
    columns_per_row=32,
)


def hammer_through_stack(pattern, mitigation, hcnt=500, total_acts=4000):
    """Replay an attack pattern serially through the MC."""
    device = DramDevice(GEOMETRY, DDR4_2666)
    model = DisturbanceModel(
        HammerConfig(hcnt=hcnt, blast_radius=3, layout=GEOMETRY.layout))
    mc = MemoryController(device, mitigation, observer=model,
                          config=McConfig(enable_refresh=False))
    cycle = 0
    for row in pattern.rows(total_acts):
        request = MemoryRequest(
            location=MemoryLocation(0, 0, 0, row, 0),
            is_write=False, thread_id=0, arrival=cycle)
        mc.enqueue(request)
        while mc.pending_requests():
            _done, wake = mc.drain(0, cycle)
            if mc.pending_requests() == 0:
                break
            cycle = wake if wake and wake > cycle else cycle + 1
        cycle = max(cycle, request.completed or cycle)
        if model.flipped:
            break
    return model


class TestAttackIntegration:
    def test_double_sided_flips_unprotected(self):
        model = hammer_through_stack(double_sided(30), NoMitigation())
        assert model.flipped
        assert model.first_flip().da_row == GEOMETRY.layout.identity_da(30)

    def test_shadow_prevents_double_sided(self):
        shadow = Shadow(ShadowConfig(raaimt=16, rng_kind="system"))
        model = hammer_through_stack(double_sided(30), shadow)
        assert not model.flipped
        assert shadow.total_shuffles() > 0
        shadow.check_invariants()

    def test_parfm_reduces_disturbance(self):
        unprotected = hammer_through_stack(
            double_sided(30), NoMitigation(), hcnt=10_000, total_acts=2000)
        parfm = hammer_through_stack(
            double_sided(30), Parfm(raaimt=16), hcnt=10_000,
            total_acts=2000)
        assert parfm.max_disturbance() < unprotected.max_disturbance()

    def test_rrs_swaps_move_the_aggressors(self):
        rrs = RandomizedRowSwap(RrsConfig(hcnt=300))
        model = hammer_through_stack(double_sided(30), rrs, hcnt=2000,
                                     total_acts=1500)
        assert rrs.swaps > 0
        assert not model.flipped


class TestSystemFuzz:
    """Random workload profiles through the full system: the DRAM
    protocol checker (every issue_* asserts its constraints) acts as
    the property oracle -- any violation raises."""

    @given(
        mpki=st.floats(min_value=0.5, max_value=60.0),
        locality=st.floats(min_value=0.0, max_value=0.95),
        writes=st.floats(min_value=0.0, max_value=1.0),
        zipf=st.floats(min_value=0.0, max_value=1.5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_profiles_complete_cleanly(self, mpki, locality,
                                              writes, zipf, seed):
        profile = WorkloadProfile(
            "fuzz", mpki=mpki, row_buffer_locality=locality,
            write_fraction=writes, footprint_pages=256, zipf_alpha=zipf)
        config = SystemConfig(geometry=GEOMETRY, requests_per_thread=120,
                              seed=seed)
        result = System([profile, profile], config=config).run()
        assert result.requests_issued == 240

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=5, deadline=None)
    def test_shadow_under_fuzz_keeps_invariants(self, seed):
        profile = WorkloadProfile(
            "fuzz", mpki=40.0, row_buffer_locality=0.1,
            footprint_pages=128, zipf_alpha=1.0)
        shadow = Shadow(ShadowConfig(raaimt=8, rng_kind="system",
                                     rng_seed=seed))
        config = SystemConfig(geometry=GEOMETRY, requests_per_thread=200,
                              seed=seed)
        result = System([profile], shadow, config=config).run()
        assert result.requests_issued == 200
        shadow.check_invariants()
        # Translation is still one-to-one on every touched bank.
        for addr in (BankAddress(0, 0, 0), BankAddress(0, 0, 1)):
            rows = GEOMETRY.layout.mc_rows_per_bank
            das = {shadow.translate(addr, pa) for pa in range(rows)}
            assert len(das) == rows


class TestObserverConsistency:
    def test_timing_and_fault_model_see_the_same_acts(self):
        """The ACT count charged by the timing model must equal the ACT
        count observed by the disturbance model."""
        model = DisturbanceModel(
            HammerConfig(hcnt=10**9, layout=GEOMETRY.layout))
        profile = WorkloadProfile("x", mpki=30.0, row_buffer_locality=0.2,
                                  footprint_pages=64)
        config = SystemConfig(geometry=GEOMETRY,
                              requests_per_thread=300, seed=5)
        system = System([profile], observer=model, config=config)
        result = system.run()
        assert model.total_acts == result.stats.acts
