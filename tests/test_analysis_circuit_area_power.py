"""Circuit (Table III), area (Section VII-D) and power models."""

import pytest

from repro.analysis.area import DDR5_DIE_MM2, AreaModel
from repro.analysis.circuit import CircuitModel, CircuitParams
from repro.analysis.power import (
    CommandCounts,
    IddValues,
    PowerModel,
    SystemPowerModel,
)
from repro.dram.timing import DDR4_2666


class TestTable3:
    """Every row of Table III within tight tolerance."""

    MODEL = CircuitModel()
    TABLE = MODEL.table3()

    def test_trcd_prime(self):
        assert self.TABLE.trcd_prime_ns == pytest.approx(17.7, abs=0.5)
        assert self.TABLE.trcd_ratio == pytest.approx(0.29, abs=0.03)

    def test_row_copy(self):
        assert self.TABLE.row_copy_ns == pytest.approx(73.9, abs=1.0)

    def test_remapping_row_sensing(self):
        assert self.TABLE.trcd_rm_ns == pytest.approx(2.3, abs=0.5)
        assert self.TABLE.trcd_rm_ratio == pytest.approx(-0.83, abs=0.05)

    def test_remapping_write_recovery(self):
        assert self.TABLE.twr_rm_ns == pytest.approx(9.0, abs=0.5)
        assert self.TABLE.twr_rm_ratio == pytest.approx(-0.24, abs=0.03)

    def test_remapping_read(self):
        assert self.TABLE.trd_rm_ns == pytest.approx(4.0, abs=0.5)
        assert self.TABLE.trd_rm_ratio == pytest.approx(-0.71, abs=0.05)

    def test_shuffle_totals_match_section7b(self):
        # 178 ns at DDR4-2666, 186 ns at DDR5-4800.
        assert self.MODEL.shuffle_total_ns(32.25, 14.25) == \
            pytest.approx(178, abs=4)
        assert self.MODEL.shuffle_total_ns(32.0, 16.25) == \
            pytest.approx(186, abs=5)

    def test_isolation_mechanism(self):
        """The isolated stub must swing far more than the full bitline
        (the >100x capacitance reduction the paper cites)."""
        full = self.MODEL.charge_sharing_swing_mv(isolated=False)
        stub = self.MODEL.charge_sharing_swing_mv(isolated=True)
        assert stub > 4 * full
        assert self.MODEL.sense_time_ns(True) < \
            0.25 * self.MODEL.sense_time_ns(False)

    def test_rows_layout(self):
        rows = self.TABLE.rows()
        assert len(rows) == 5
        assert rows[0][1] == "tRCD'"

    def test_calibration_guard(self):
        with pytest.raises(ValueError):
            CircuitModel(CircuitParams(baseline_trcd_ns=1.0))


class TestArea:
    MODEL = AreaModel()

    def test_total_matches_paper(self):
        report = self.MODEL.shadow_report()
        assert report.total_mm2 == pytest.approx(0.35, abs=0.06)
        assert report.fraction_of_die == pytest.approx(0.0047, abs=0.001)

    def test_capacity_overhead(self):
        # Paper: 0.6% (empty row + two remapping rows per 512).
        assert self.MODEL.capacity_overhead() == pytest.approx(0.006,
                                                               abs=0.0005)
        closed = AreaModel(open_bitline=False)
        assert closed.capacity_overhead() < self.MODEL.capacity_overhead()

    def test_shadow_beats_tracker_tables(self):
        comp = self.MODEL.comparison(hcnt=2048)
        assert comp["SHADOW"] < comp["Mithril-area"]
        assert comp["SHADOW"] < comp["Mithril-perf"]
        assert comp["SHADOW"] < comp["RRS (MC-side)"]
        # RRS's 43 KB/bank dwarfs everything (paper Section III-B).
        assert comp["RRS (MC-side)"] > comp["Mithril-perf"]

    def test_component_breakdown_positive(self):
        report = self.MODEL.shadow_report()
        assert all(v > 0 for v in report.components_mm2.values())
        assert report.total_mm2 < DDR5_DIE_MM2 * 0.01


class TestPower:
    def make_counts(self, acts=100_000, rfms=0, cycles=10_000_000):
        return CommandCounts(acts=acts, reads=acts * 2, writes=acts // 2,
                             refreshes=cycles // DDR4_2666.tREFI,
                             rfms=rfms, elapsed_cycles=cycles)

    def test_energies_positive_and_ordered(self):
        m = PowerModel(DDR4_2666)
        assert 0 < m.energy_rd_j()
        assert 0 < m.energy_act_j()
        assert m.energy_ref_j() > m.energy_act_j()   # tRFC >> tRC

    def test_shadow_power_slightly_above_baseline(self):
        counts = self.make_counts(rfms=1500)
        base = PowerModel(DDR4_2666, shadow=False).report(
            self.make_counts(rfms=0))
        shad = PowerModel(DDR4_2666, shadow=True).report(counts)
        assert shad.total_w > base.total_w
        # Paper: < 0.63% system-level; device-level stays within a few %.
        assert (shad.total_w - base.total_w) / base.total_w < 0.05

    def test_remap_access_dominates_shuffles(self):
        """Paper Figure 12's observation: power is dominated by the
        per-ACT remapping-row accesses, not the row-shuffle work."""
        counts = self.make_counts(acts=500_000, rfms=500_000 // 64)
        report = PowerModel(DDR4_2666, shadow=True).report(counts)
        assert report.remap_access_w > report.rfm_w

    def test_system_relative_power_is_tiny(self):
        sysm = SystemPowerModel(cpu_tdp_w=165.0, devices=32,
                                timing=DDR4_2666)
        base = self.make_counts(rfms=0)
        shad = self.make_counts(rfms=100_000 // 64)
        rel = sysm.relative_power(shad, base)
        assert 1.0 < rel < 1.0063   # paper: < 0.63% even at 2K hcnt

    def test_breakdown_sums_to_total(self):
        report = PowerModel(DDR4_2666, shadow=True).report(
            self.make_counts(rfms=100))
        assert sum(report.breakdown().values()) == \
            pytest.approx(report.total_w)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(DDR4_2666).report(CommandCounts())
        with pytest.raises(ValueError):
            SystemPowerModel(cpu_tdp_w=0)

    def test_from_stats(self):
        from repro.dram.bank import BankStats
        stats = BankStats(acts=10, reads=20, writes=5, rfms=2)
        counts = CommandCounts.from_stats(stats, refs=3,
                                          elapsed_cycles=1000)
        assert counts.acts == 10
        assert counts.refreshes == 3
