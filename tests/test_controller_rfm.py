"""RAA counter semantics (DDR5 RFM interface)."""

import pytest

from repro.controller.rfm import RaaCounterBank
from repro.dram.device import BankAddress

A = BankAddress(0, 0, 0)
B = BankAddress(0, 0, 1)


def test_threshold_detection():
    raa = RaaCounterBank(raaimt=4)
    for _ in range(3):
        raa.on_activate(A)
    assert not raa.rfm_needed(A)
    raa.on_activate(A)
    assert raa.rfm_needed(A)
    assert raa.banks_needing_rfm() == [A]


def test_rfm_subtracts_raaimt():
    raa = RaaCounterBank(raaimt=4)
    for _ in range(6):
        raa.on_activate(A)
    raa.on_rfm(A)
    assert raa.count(A) == 2
    assert raa.rfms_issued == 1


def test_rfm_below_threshold_rejected():
    raa = RaaCounterBank(raaimt=4)
    raa.on_activate(A)
    with pytest.raises(RuntimeError):
        raa.on_rfm(A)


def test_ref_credits_counter():
    raa = RaaCounterBank(raaimt=8)
    for _ in range(5):
        raa.on_activate(A)
    raa.on_ref(A)
    assert raa.count(A) == 0  # floor at zero


def test_custom_ref_credit():
    raa = RaaCounterBank(raaimt=8, ref_credit=2)
    for _ in range(5):
        raa.on_activate(A)
    raa.on_ref(A)
    assert raa.count(A) == 3


def test_banks_independent():
    raa = RaaCounterBank(raaimt=2)
    raa.on_activate(A)
    raa.on_activate(A)
    raa.on_activate(B)
    assert raa.rfm_needed(A)
    assert not raa.rfm_needed(B)


def test_validation():
    with pytest.raises(ValueError):
        RaaCounterBank(raaimt=0)
    with pytest.raises(ValueError):
        RaaCounterBank(raaimt=4, ref_credit=-1)
