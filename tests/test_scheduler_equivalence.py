"""Golden equivalence: the incremental scheduler is cycle-identical.

``tests/golden/scheduler_golden.json`` was recorded against the original
full-recompute controller.  These tests replay the same seeded
multi-thread workloads under every mitigation class the scheduler
special-cases (none, SHADOW/RFM, RRS channel-blocking swaps, BlockHammer
throttling) and assert the current controller reproduces every recorded
value exactly: total cycles, per-thread finish cycles, aggregate bank
stats, refresh/RFM counts, mitigation-visible side effects, and the
sha256 over the full per-bank command stream (op, row, cycle).
"""

import importlib.util
import json
from pathlib import Path

import pytest

_GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "golden_generate", _GOLDEN_DIR / "generate.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


GEN = _load_generator()
GOLDEN = json.loads((GEN.GOLDEN_PATH).read_text(encoding="utf-8"))


@pytest.mark.parametrize("scheme", GEN.SCHEMES)
def test_scheduler_matches_golden(scheme):
    assert scheme in GOLDEN, (
        f"no golden record for {scheme!r}; run "
        f"`python tests/golden/generate.py` on a known-good controller")
    record = GEN.scenario_record(scheme)
    expected = GOLDEN[scheme]
    # Compare field-by-field first for a readable diff, then whole.
    for key in expected:
        assert record.get(key) == expected[key], (
            f"{scheme}: {key} diverged: expected {expected[key]!r}, "
            f"got {record.get(key)!r}")
    assert record == expected


def test_golden_covers_all_schemes():
    assert set(GOLDEN) == set(GEN.SCHEMES)


def test_golden_streams_are_distinct():
    # Sanity: the four scenarios genuinely exercise different schedules
    # (a capture bug that recorded empty/identical streams would make
    # the equivalence test vacuous).
    digests = {GOLDEN[s]["command_stream_sha256"] for s in GEN.SCHEMES}
    assert len(digests) == len(GEN.SCHEMES)
    for scheme in GEN.SCHEMES:
        assert GOLDEN[scheme]["command_stream_events"] > 1000
