"""Address mapping bijectivity and structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.address import AddressMapping, MemoryLocation
from repro.dram.device import DramGeometry
from repro.dram.subarray import SubarrayLayout

GEOMETRY = DramGeometry(
    channels=4, ranks_per_channel=2, banks_per_rank=16,
    layout=SubarrayLayout(subarrays_per_bank=16, rows_per_subarray=512),
    columns_per_row=128,
)
MAPPING = AddressMapping(GEOMETRY)


def test_capacity():
    # 4 ch * 2 rk * 16 bk * 8192 rows * 128 cols * 64 B = 8 GiB.
    assert MAPPING.capacity_bytes == 8 * 2**30


@given(st.integers(min_value=0, max_value=MAPPING.capacity_bytes - 1))
@settings(max_examples=100)
def test_decode_encode_roundtrip(pa):
    loc = MAPPING.decode(pa)
    assert MAPPING.encode(loc) == pa - (pa % AddressMapping.LINE_BYTES)


@given(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=8191),
    st.integers(min_value=0, max_value=127),
)
@settings(max_examples=100)
def test_encode_decode_roundtrip(ch, rk, bk, row, col):
    loc = MemoryLocation(ch, rk, bk, row, col)
    assert MAPPING.decode(MAPPING.encode(loc)) == loc


def test_sequential_lines_spread_over_channels():
    channels = [MAPPING.decode(i * 64).channel for i in range(128)]
    assert set(channels) == set(range(4))


def test_bank_hash_changes_bank_with_row():
    hashed = AddressMapping(GEOMETRY, xor_bank_hash=True)
    plain = AddressMapping(GEOMETRY, xor_bank_hash=False)
    # Same "bank bits", different rows: the hashed mapping spreads banks.
    locs = [hashed.decode(hashed.capacity_bytes // 8192 * 0 +
                          (row << 21)) for row in range(8)]
    banks_hashed = {loc.bank for loc in locs}
    locs_plain = [plain.decode(row << 21) for row in range(8)]
    banks_plain = {loc.bank for loc in locs_plain}
    assert len(banks_hashed) >= len(banks_plain)


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        MAPPING.decode(MAPPING.capacity_bytes)
    with pytest.raises(ValueError):
        MAPPING.encode(MemoryLocation(9, 0, 0, 0, 0))


def test_non_power_of_two_geometry_rejected():
    bad = DramGeometry(channels=3)
    with pytest.raises(ValueError):
        AddressMapping(bad)


def test_row_address_helper():
    pa = MAPPING.row_address(1, 0, 3, 100, 5)
    loc = MAPPING.decode(pa)
    assert (loc.channel, loc.rank, loc.bank, loc.row, loc.column) == \
        (1, 0, 3, 100, 5)
