"""Appendix XI security analysis: Table II reproduction and structure."""

import math

import pytest

from repro.analysis.security import (
    SecurityAnalysis,
    SecurityParams,
    bit_flip_probability,
    is_secure,
)

#: Paper Table II (rank-year bit-flip probability).
PAPER_TABLE2 = {
    (128, 8192): 2e-15, (128, 4096): 4e-01, (128, 2048): 1.0,
    (64, 8192): 2e-43, (64, 4096): 1e-14, (64, 2048): 5e-01,
    (32, 8192): 0.0, (32, 4096): 1e-43, (32, 2048): 9e-15,
}


def _log10(x: float) -> float:
    return math.log10(x) if x > 0 else -300.0


class TestTable2:
    @pytest.mark.parametrize("raaimt,hcnt", sorted(PAPER_TABLE2))
    def test_each_cell_within_two_decades(self, raaimt, hcnt):
        """The closed form lands within ~2 orders of magnitude of the
        paper's printed value (their analysis includes unstated
        conservative fudges; what must match is the regime)."""
        ours = bit_flip_probability(hcnt, raaimt)
        paper = PAPER_TABLE2[(raaimt, hcnt)]
        if paper == 0.0:
            assert ours < 1e-80
        elif paper >= 0.4:
            assert ours > 1e-2
        else:
            assert abs(_log10(ours) - _log10(paper)) < 2.0

    def test_secure_set_matches_paper_bold_entries(self):
        """The <1%/rank-year classification must agree exactly."""
        for (raaimt, hcnt), paper in PAPER_TABLE2.items():
            assert is_secure(hcnt, raaimt) == (paper < 0.01), \
                f"RAAIMT={raaimt} Hcnt={hcnt}"

    def test_halving_raaimt_collapses_probability(self):
        p128 = bit_flip_probability(4096, 128)
        p64 = bit_flip_probability(4096, 64)
        p32 = bit_flip_probability(4096, 32)
        assert p32 < p64 < p128
        assert p64 < p128 * 1e-5   # super-exponential, not linear

    def test_diagonal_structure(self):
        """Cells with equal hcnt/raaimt sit in the same regime."""
        d1 = bit_flip_probability(8192, 128)
        d2 = bit_flip_probability(4096, 64)
        d3 = bit_flip_probability(2048, 32)
        logs = sorted(map(_log10, (d1, d2, d3)))
        assert logs[-1] - logs[0] < 2.0


class TestScenarios:
    def test_scenario1_uses_equation2(self):
        params = SecurityParams(hcnt=4096, raaimt=64, n_row=512)
        a = SecurityAnalysis(params)
        p1 = a.scenario1_single_window()
        # Direct evaluation of Equation 2.
        m1 = math.ceil(4096 / 64)
        p = 3.5 / 512
        expected = (512 * math.comb(512, m1) * p**m1
                    * (1 - p) ** (512 - m1))
        assert p1 == pytest.approx(expected, rel=1e-9)

    def test_scenario1_impossible_when_window_too_short(self):
        # hcnt/raaimt > N_row: cannot accumulate within the incremental
        # refresh window.
        params = SecurityParams(hcnt=4096, raaimt=4, n_row=512)
        assert SecurityAnalysis(params).scenario1_single_window() == 0.0

    def test_single_aggressor_never_evades(self):
        a = SecurityAnalysis(SecurityParams(hcnt=1024, raaimt=64))
        assert a._evasion_recurrence(1, 4, 1000) == 0.0

    def test_evasion_recurrence_monotone_in_intervals(self):
        a = SecurityAnalysis(SecurityParams(hcnt=1024, raaimt=64))
        p_short = a._evasion_recurrence(4, 8, 100)
        p_long = a._evasion_recurrence(4, 8, 1000)
        assert 0 < p_short < p_long <= 1.0

    def test_evasion_recurrence_harder_with_longer_runs(self):
        a = SecurityAnalysis(SecurityParams(hcnt=1024, raaimt=64))
        easy = a._evasion_recurrence(4, 4, 500)
        hard = a._evasion_recurrence(4, 16, 500)
        assert hard < easy

    def test_scenario2_bounded_by_incremental_window(self):
        a = SecurityAnalysis(SecurityParams(hcnt=4096, raaimt=64))
        # n_aggr = 32 -> m = 2 -> M2 = 2048 > N_row: impossible.
        assert a.scenario2_single_window(n_aggr=32) == 0.0

    def test_scenario3_exceeds_scenario2(self):
        """Without the incremental-refresh bound, the attacker has more
        room: scenario III dominates II at equal parameters."""
        a = SecurityAnalysis(SecurityParams(hcnt=4096, raaimt=64))
        assert (a.scenario3_single_window()
                >= a.scenario2_single_window())

    def test_blast_radius_parameterisation(self):
        wide = SecurityParams.for_blast_radius(4096, 64, radius=6)
        assert wide.w_sum == pytest.approx(2 * (2 - 2 ** -5))
        p_wide = SecurityAnalysis(wide).rank_year()["overall"]
        p_base = bit_flip_probability(4096, 64)
        # A wider radius helps the scenario-I attacker somewhat but must
        # not change the security classification (paper Section VII).
        assert p_wide < 0.01
        assert p_wide >= p_base


class TestParams:
    def test_attack_rate_quantities(self):
        p = SecurityParams(hcnt=4096, raaimt=64)
        assert p.act_interval_seconds == pytest.approx(
            p.timing.nanoseconds(p.timing.tRC) * 1e-9)
        assert p.rfm_interval_seconds == pytest.approx(
            64 * p.act_interval_seconds)
        assert p.incremental_window_seconds == pytest.approx(
            512 * p.rfm_interval_seconds)
        # The incremental window is well under a millisecond (paper
        # Section IV-C claims sub-millisecond effective windows).
        assert p.incremental_window_seconds < 2e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            SecurityParams(hcnt=0, raaimt=64)
        with pytest.raises(ValueError):
            SecurityParams(hcnt=4096, raaimt=64, w_sum=0)
