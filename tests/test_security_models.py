"""Per-scheme security models and the tracker-defense Monte Carlo."""

import pytest

from repro.analysis.security import (
    SECURITY_MODELS,
    SecurityAnalysis,
    SecurityParams,
    resilient_trr_rank_year,
    sampled_trr_rank_year,
)
from repro.analysis.montecarlo import simulate_tracker_defense
from repro.dram.subarray import SubarrayLayout
from repro.rowhammer.adversary import ScenarioIAttacker
from repro.spec.registry import SCHEMES, UnknownNameError
from repro.utils.rng import SystemRng


class TestSecurityModelRegistry:
    def test_all_analyzable_schemes_registered(self):
        names = SECURITY_MODELS.names()
        for expected in ("shadow", "parfm", "mint", "dapper"):
            assert expected in names

    def test_unknown_model_gets_did_you_mean(self):
        with pytest.raises(UnknownNameError, match="did you mean"):
            SECURITY_MODELS.resolve("shadwo")

    def test_shadow_model_matches_direct_analysis(self):
        direct = SecurityAnalysis(
            SecurityParams(hcnt=4096, raaimt=64)).rank_year()
        via_registry = SECURITY_MODELS.resolve("shadow")(4096, raaimt=64)
        assert via_registry["overall"] == direct["overall"]

    def test_shadow_model_derives_default_raaimt(self):
        r = SECURITY_MODELS.resolve("shadow")(4096)
        assert r["raaimt"] == 64.0
        assert r["overall"] < 0.01

    def test_mint_matches_parfm_distribution(self):
        # Identical per-window selection distribution => identical bound
        # at the same RAAIMT.
        mint = SECURITY_MODELS.resolve("mint")(4096, raaimt=32)
        parfm = SECURITY_MODELS.resolve("parfm")(4096, raaimt=32)
        assert mint["overall"] == parfm["overall"]

    def test_every_model_secure_at_paper_threshold(self):
        for name in SECURITY_MODELS.names():
            r = SECURITY_MODELS.resolve(name)(4096)
            assert r["overall"] < 0.01, name


class TestSampledTrrBound:
    def test_secure_at_derived_raaimt(self):
        assert sampled_trr_rank_year(4096, 32)["overall"] < 1e-20

    def test_insecure_when_sampling_too_sparse(self):
        # One sample per 4096 activations against Hcnt=64: the attacker
        # evades with near certainty.
        r = sampled_trr_rank_year(64, 4096)
        assert r["overall"] > 0.5

    def test_monotone_in_raaimt(self):
        tighter = sampled_trr_rank_year(1024, 8)["overall"]
        looser = sampled_trr_rank_year(1024, 64)["overall"]
        assert tighter <= looser

    def test_validation(self):
        with pytest.raises(ValueError):
            sampled_trr_rank_year(0, 32)


class TestResilientTrrBound:
    def test_deterministic_secure_across_table_ii_range(self):
        from repro.mitigations.dapper import dapper_entries, dapper_raaimt
        for hcnt in (1024, 2048, 4096, 8192):
            r = resilient_trr_rank_year(
                hcnt, dapper_raaimt(hcnt), dapper_entries(hcnt))
            assert r["overall"] == 0.0, hcnt
            assert r["margin_acts"] > 0

    def test_undersized_table_voids_the_guarantee(self):
        r = resilient_trr_rank_year(4096, 16, entries=8)
        assert r["overall"] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            resilient_trr_rank_year(4096, 16, entries=0)


class TestTrackerDefenseMonteCarlo:
    LAYOUT = SubarrayLayout(subarrays_per_bank=2, rows_per_subarray=32)

    def _run(self, scheme, hcnt=64, **kw):
        mitigation = SCHEMES.build(scheme, **(
            {} if scheme == "none" else {"hcnt": hcnt}))
        attacker = ScenarioIAttacker(self.LAYOUT, 0, SystemRng(7))
        return simulate_tracker_defense(
            attacker, self.LAYOUT, mitigation, hcnt=hcnt,
            intervals=200, **kw)

    def test_unprotected_flips(self):
        assert self._run("none").flipped

    def test_mint_defends(self):
        result = self._run("mint")
        assert not result.flipped
        assert result.intervals_run == 200

    def test_dapper_defends(self):
        assert not self._run("dapper").flipped

    def test_graphene_defends_at_matched_radius(self):
        result = self._run("graphene", blast_radius=1, ref_every=20)
        assert not result.flipped

    def test_validation(self):
        mitigation = SCHEMES.build("none")
        attacker = ScenarioIAttacker(self.LAYOUT, 0, SystemRng(7))
        with pytest.raises(ValueError):
            simulate_tracker_defense(attacker, self.LAYOUT, mitigation,
                                     hcnt=64, intervals=0)


class TestSecurityCli:
    @pytest.mark.parametrize("scheme", ["shadow", "mint", "dapper",
                                        "parfm"])
    def test_security_subcommand_per_scheme(self, scheme, capsys):
        from repro.cli import main
        rc = main(["security", "--scheme", scheme, "--hcnt", "4096"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "secure (<1%/rank-year): True" in out
