"""sPPR resource pool: repair limits, power-cycle, pipeline wiring."""

import pytest

from repro.dram.device import BankAddress
from repro.dram.sppr import SpprConfig, SpprState
from repro.faults.recovery import (
    PANIC,
    RETIRED,
    RecoveryConfig,
    RecoveryPipeline,
)

BANK0 = BankAddress(0, 0, 0)
BANK1 = BankAddress(0, 0, 1)
BANK2 = BankAddress(0, 0, 2)
OTHER_GROUP = BankAddress(0, 0, 4)   # banks 4..7 with banks_per_group=4


class TestSpprState:
    def test_repair_allocates_spares_in_order(self):
        state = SpprState()
        assert state.repair(BANK0, 100) == 0
        assert state.repair(BANK0, 200) == 1
        assert state.resolve(BANK0, 100) == 0
        assert state.resolve(BANK0, 999) is None
        assert state.repairs_used(BANK0) == 2

    def test_repeat_repair_is_idempotent(self):
        state = SpprState()
        assert state.repair(BANK0, 100) == 0
        assert state.repair(BANK0, 100) == 0
        assert state.repairs_used(BANK0) == 1
        assert state.group_repairs_used(BANK0) == 1

    def test_per_bank_spare_exhaustion_raises(self):
        state = SpprState(config=SpprConfig(spare_rows_per_bank=2,
                                            repairs_per_bank_group=8))
        state.repair(BANK0, 1)
        state.repair(BANK0, 2)
        assert not state.can_repair(BANK0)
        with pytest.raises(RuntimeError):
            state.repair(BANK0, 3)
        # Other banks in the group still have their own spares.
        assert state.can_repair(BANK1)

    def test_group_limit_spans_banks(self):
        state = SpprState(config=SpprConfig(spare_rows_per_bank=2,
                                            repairs_per_bank_group=3))
        state.repair(BANK0, 1)
        state.repair(BANK0, 2)
        state.repair(BANK1, 1)
        # Bank 2 has free spares, but the group budget (3) is spent.
        assert state.repairs_used(BANK2) == 0
        assert not state.can_repair(BANK2)
        with pytest.raises(RuntimeError):
            state.repair(BANK2, 1)
        # A different bank group is unaffected.
        assert state.can_repair(OTHER_GROUP)
        state.repair(OTHER_GROUP, 1)

    def test_power_cycle_releases_everything(self):
        state = SpprState(config=SpprConfig(spare_rows_per_bank=1,
                                            repairs_per_bank_group=1))
        state.repair(BANK0, 7)
        assert not state.can_repair(BANK0)
        state.power_cycle()
        assert state.resolve(BANK0, 7) is None
        assert state.can_repair(BANK0)
        assert state.group_repairs_used(BANK0) == 0
        # The freed budget is genuinely reusable.
        assert state.repair(BANK0, 8) == 0

    def test_row_validation(self):
        with pytest.raises(ValueError):
            SpprState().repair(BANK0, -1)
        with pytest.raises(ValueError):
            SpprConfig(spare_rows_per_bank=0)

    def test_donatable_rows(self):
        state = SpprState(config=SpprConfig(spare_rows_per_bank=2))
        assert state.donatable_rows_per_subarray(16) == 0.125
        with pytest.raises(ValueError):
            state.donatable_rows_per_subarray(0)


class TestPipelineWiring:
    """The recovery pipeline is the real caller of repair/power_cycle."""

    def test_retire_consumes_the_ledger(self):
        pipe = RecoveryPipeline(RecoveryConfig(
            policy="retire",
            sppr=SpprConfig(spare_rows_per_bank=2,
                            repairs_per_bank_group=8)))
        assert pipe.on_uncorrectable(BANK0, 10, 1) == RETIRED
        assert pipe.on_uncorrectable(BANK0, 11, 2) == RETIRED
        assert pipe.sppr.repairs_used(BANK0) == 2
        assert pipe.repairs == 2

    def test_exhaustion_panic_power_cycles_the_ledger(self):
        pipe = RecoveryPipeline(RecoveryConfig(
            policy="retire",
            sppr=SpprConfig(spare_rows_per_bank=1,
                            repairs_per_bank_group=1)))
        pipe.on_uncorrectable(BANK0, 10, 1)
        assert pipe.on_uncorrectable(BANK0, 11, 2) == PANIC
        # panic() called SpprState.power_cycle(): soft repairs are
        # volatile, so the ledger is empty and capacity is back.
        assert pipe.sppr.repairs_used(BANK0) == 0
        assert pipe.sppr.can_repair(BANK0)
        kinds = [e["kind"] for e in pipe.events]
        assert kinds == ["retire", "sppr-exhausted", "panic"]
