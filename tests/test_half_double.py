"""Half-Double: abusing a TRR defense's own refreshes (paper II-C)."""

import pytest

from repro.dram.device import BankAddress
from repro.dram.subarray import SubarrayLayout
from repro.rowhammer.attacks import half_double
from repro.rowhammer.model import DisturbanceModel, HammerConfig

LAYOUT = SubarrayLayout(subarrays_per_bank=2, rows_per_subarray=64)
ADDR = BankAddress(0, 0, 0)


class TestRefreshHammering:
    def test_refresh_charges_neighbours_when_enabled(self):
        model = DisturbanceModel(HammerConfig(
            hcnt=100, blast_radius=2, layout=LAYOUT,
            refresh_hammers_neighbors=True))
        model.on_row_refresh(ADDR, 10, cycle=0)
        assert model.disturbance(ADDR, 11) == 1.0
        assert model.disturbance(ADDR, 12) == 0.5
        assert model.disturbance(ADDR, 10) == 0.0   # refreshed row resets

    def test_disabled_by_default(self):
        model = DisturbanceModel(HammerConfig(hcnt=100, layout=LAYOUT))
        model.on_row_refresh(ADDR, 10, cycle=0)
        assert model.disturbance(ADDR, 11) == 0.0

    def test_refresh_can_complete_a_flip(self):
        model = DisturbanceModel(HammerConfig(
            hcnt=4, blast_radius=1, layout=LAYOUT,
            refresh_hammers_neighbors=True))
        for i in range(3):
            model.on_activate(ADDR, 10, cycle=i)
        assert not model.flipped
        # A "protective" refresh of row 10's twin lands the last stroke.
        model.on_row_refresh(ADDR, 12, cycle=3)
        assert model.flipped
        assert model.first_flip().da_row == 11


class TestHalfDoublePattern:
    def test_structure(self):
        p = half_double(30)
        assert set(p.aggressor_rows) == {28, 29, 31, 32}
        # Far rows dominate the duty cycle 4:1.
        far = sum(1 for r in p.aggressor_rows if abs(r - 30) == 2)
        near = sum(1 for r in p.aggressor_rows if abs(r - 30) == 1)
        assert far == 4 * near
        with pytest.raises(ValueError):
            half_double(1)

    def test_trr_amplifies_half_double(self):
        """Quantify the Half-Double lever: with refresh-as-activation
        physics, a defense that TRRs the near rows' neighbours deposits
        extra disturbance next to the victim."""
        config = HammerConfig(hcnt=10**9, blast_radius=2, layout=LAYOUT,
                              refresh_hammers_neighbors=True)
        pattern = half_double(30)

        # No defense: hammer only.
        plain = DisturbanceModel(config)
        for i, row in enumerate(pattern.rows(1000)):
            plain.on_activate(ADDR, row, cycle=i)

        # Naive TRR defense: every 20 ACTs, refresh the neighbours of
        # the most recent aggressor (a PARA-like response).
        defended = DisturbanceModel(config)
        recent = None
        for i, row in enumerate(pattern.rows(1000)):
            defended.on_activate(ADDR, row, cycle=i)
            recent = row
            if i % 20 == 19:
                for victim in (recent - 1, recent + 1):
                    defended.on_row_refresh(ADDR, victim, cycle=i)

        # The defense's refreshes of rows 29/31's neighbours (i.e. 30's
        # direct neighbours, and 30 itself gets refreshed sometimes too)
        # inject adjacency-1 disturbance pulses around the victim zone:
        # total disturbance near the victim must not be *lower* than an
        # accounting that ignores refresh hammering would claim.
        naive = DisturbanceModel(HammerConfig(
            hcnt=10**9, blast_radius=2, layout=LAYOUT))
        recent = None
        for i, row in enumerate(pattern.rows(1000)):
            naive.on_activate(ADDR, row, cycle=i)
            recent = row
            if i % 20 == 19:
                for victim in (recent - 1, recent + 1):
                    naive.on_row_refresh(ADDR, victim, cycle=i)

        zone = range(28, 33)
        physical = sum(defended.disturbance(ADDR, r) for r in zone)
        assumed = sum(naive.disturbance(ADDR, r) for r in zone)
        assert physical > assumed
