"""Rank/channel constraints, device composition, refresh tracker."""

import pytest

from repro.dram.channel import ChannelTiming
from repro.dram.device import BankAddress, DramDevice, DramGeometry
from repro.dram.rank import RankTiming
from repro.dram.refresh import RefreshTracker, emulated_trefi
from repro.dram.subarray import SubarrayLayout
from repro.dram.timing import DDR4_2666

T = DDR4_2666


class TestRankTiming:
    def test_trrd_enforced(self):
        rank = RankTiming(T)
        rank.record_act(100)
        assert rank.earliest_act(100) == 100 + T.tRRD_L
        with pytest.raises(RuntimeError):
            rank.record_act(100 + T.tRRD_L - 1)

    def test_tfaw_enforced(self):
        rank = RankTiming(T)
        times = [0, T.tRRD_L, 2 * T.tRRD_L, 3 * T.tRRD_L]
        for t in times:
            rank.record_act(t)
        # Fifth ACT must wait until the first leaves the tFAW window.
        expected = max(times[-1] + T.tRRD_L, times[0] + T.tFAW)
        assert rank.earliest_act(0) == expected


class TestChannelTiming:
    def test_command_bus_one_per_cycle(self):
        ch = ChannelTiming()
        ch.record_command(10)
        assert ch.earliest_command(10) == 11
        with pytest.raises(RuntimeError):
            ch.record_command(10)

    def test_data_bus_occupancy(self):
        ch = ChannelTiming()
        ch.record_data(start=50, burst=4)
        assert ch.earliest_data(50) == 54
        with pytest.raises(RuntimeError):
            ch.record_data(53, 4)

    def test_channel_blocking(self):
        ch = ChannelTiming()
        end = ch.block(cycle=100, duration=5000)
        assert end == 5100
        assert ch.earliest_command(100) == 5100
        assert ch.earliest_data(100) == 5100
        assert ch.blocked_cycles == 5000
        # Blocks queue up back-to-back.
        assert ch.block(0, 100) == 5200


class TestDeviceComposition:
    def test_geometry_counts(self):
        g = DramGeometry(channels=2, ranks_per_channel=2, banks_per_rank=4)
        assert g.total_banks == 16
        assert g.rows_per_bank == g.layout.mc_rows_per_bank
        assert len(list(g.bank_addresses())) == 16

    def test_device_lookup_and_validation(self):
        g = DramGeometry(channels=1, ranks_per_channel=1, banks_per_rank=2,
                         layout=SubarrayLayout(subarrays_per_bank=2,
                                               rows_per_subarray=16))
        dev = DramDevice(g, T)
        addr = BankAddress(0, 0, 1)
        assert dev.bank(addr) is dev.banks[addr]
        with pytest.raises(ValueError):
            dev.bank(BankAddress(0, 0, 2))
        with pytest.raises(ValueError):
            dev.channel(1)

    def test_subarrays_lazily_created_and_cached(self):
        g = DramGeometry(channels=1, ranks_per_channel=1, banks_per_rank=1)
        dev = DramDevice(g, T)
        addr = BankAddress(0, 0, 0)
        sa = dev.subarray(addr, 3)
        assert dev.subarray(addr, 3) is sa
        assert sa.index == 3

    def test_aggregate_stats(self):
        g = DramGeometry(channels=1, ranks_per_channel=1, banks_per_rank=2)
        dev = DramDevice(g, T)
        dev.bank(BankAddress(0, 0, 0)).issue_act(1, 0)
        dev.bank(BankAddress(0, 0, 1)).issue_act(2, 0)
        assert dev.aggregate_stats().acts == 2

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            DramGeometry(channels=0)


class TestRefreshTracker:
    def test_rolling_pointer_covers_all_rows(self):
        tracker = RefreshTracker(T, rows_per_bank=8192)
        covered = set()
        cycle = 0
        for _ in range(T.refreshes_per_window):
            cycle = tracker.next_due
            lo, hi = tracker.record_ref(cycle)
            for r in range(lo, hi):
                covered.add(r % 8192)
        assert covered == set(range(8192))

    def test_due_schedule(self):
        tracker = RefreshTracker(T, rows_per_bank=1024)
        assert not tracker.is_due(T.tREFI - 1)
        assert tracker.is_due(T.tREFI)
        tracker.record_ref(T.tREFI)
        assert tracker.next_due == 2 * T.tREFI

    def test_reanchors_when_late(self):
        tracker = RefreshTracker(T, rows_per_bank=1024)
        late = 10 * T.tREFI
        tracker.record_ref(late)
        assert tracker.next_due == late + T.tREFI

    def test_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            RefreshTracker(T, rows_per_bank=0)


class TestEmulatedTrefi:
    def test_no_rfm_means_no_change(self):
        assert emulated_trefi(T, acts_per_window=0, raaimt=64) == T.tREFI

    def test_more_acts_shrink_trefi(self):
        a = emulated_trefi(T, acts_per_window=100_000, raaimt=64)
        b = emulated_trefi(T, acts_per_window=1_000_000, raaimt=64)
        assert b < a < T.tREFI

    def test_lower_raaimt_shrinks_trefi(self):
        a = emulated_trefi(T, acts_per_window=500_000, raaimt=128)
        b = emulated_trefi(T, acts_per_window=500_000, raaimt=32)
        assert b < a

    def test_matches_equation_one(self):
        acts, raaimt = 819_200, 64
        n_ref = T.refreshes_per_window
        n_rfm = acts / raaimt
        expected = int(T.tREFI * T.tRFC / (T.tRFC + T.tRFM * n_rfm / n_ref))
        assert emulated_trefi(T, acts, raaimt) == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            emulated_trefi(T, acts_per_window=-1, raaimt=64)
        with pytest.raises(ValueError):
            emulated_trefi(T, acts_per_window=10, raaimt=0)
