"""Trace statistics."""

import itertools

import pytest

from repro.controller.address import AddressMapping, MemoryLocation
from repro.dram.device import DramGeometry
from repro.workloads import SPEC_PROFILES, TraceGenerator
from repro.workloads.stats import analyze, summarize

L = MemoryLocation


def entries(rows, gap=10.0, bank=0):
    return [(gap, L(0, 0, bank, r, 0), False) for r in rows]


class TestAnalyze:
    def test_basic_counting(self):
        stats = analyze(entries([1, 1, 2, 1]))
        assert stats.requests == 4
        assert stats.distinct_rows == 2
        assert stats.distinct_banks == 1
        # 1 (open) -> hit -> 2 (transition) -> 1 (transition): 3 ACTs.
        assert stats.row_transitions == 3
        assert stats.row_hit_potential == pytest.approx(0.25)
        assert stats.duration_ns == 40.0

    def test_writes_and_rates(self):
        data = [(5.0, L(0, 0, 0, 1, 0), True),
                (5.0, L(0, 0, 0, 2, 0), False)]
        stats = analyze(data)
        assert stats.write_fraction == 0.5
        assert stats.request_rate_per_us == pytest.approx(200.0)
        assert stats.act_rate_per_us == pytest.approx(200.0)

    def test_hottest_row(self):
        stats = analyze(entries([1, 2, 1, 2, 1, 3]))
        assert stats.hottest_row_acts() == 3   # row 1 activated 3 times
        assert stats.would_trigger(3)
        assert not stats.would_trigger(4)

    def test_rfm_rate(self):
        stats = analyze(entries(range(64), gap=100.0))
        # 64 ACTs over 6.4 us with RAAIMT 16 -> 4 RFMs / 0.0064 ms.
        assert stats.rfm_rate_per_ms(16) == pytest.approx(4 / 0.0064)
        with pytest.raises(ValueError):
            stats.rfm_rate_per_ms(0)

    def test_empty_stream(self):
        stats = analyze([])
        assert stats.requests == 0
        assert stats.row_hit_potential == 0.0
        assert stats.hottest_row_acts() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze([], top=0)
        with pytest.raises(ValueError):
            analyze(entries([1])).would_trigger(0)


class TestOnGenerators:
    def test_profiles_separate_by_intensity(self):
        mapping = AddressMapping(DramGeometry())
        def stats_for(name):
            gen = TraceGenerator(SPEC_PROFILES[name], mapping, 0, seed=6)
            return analyze(itertools.islice(gen.requests(), 1500))
        hot = stats_for("lbm")
        cold = stats_for("leela")
        assert hot.request_rate_per_us > 5 * cold.request_rate_per_us

    def test_zipf_profile_concentrates(self):
        mapping = AddressMapping(DramGeometry())
        gen = TraceGenerator(SPEC_PROFILES["mcf"], mapping, 0, seed=6)
        stats = analyze(itertools.islice(gen.requests(), 3000))
        # mcf's Zipf head is what the tracker experiments rely on.
        assert stats.hottest_row_acts() > 20

    def test_summarize_renders(self):
        stats = analyze(entries([1, 2, 3]))
        text = summarize(stats)
        assert "requests" in text and "hottest-row" in text
