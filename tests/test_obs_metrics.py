"""Unit tests for the metric primitives (`repro.obs.metrics`)."""

import pytest

from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c.snapshot() == 6


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("depth")
        g.set(10)
        g.set(3)
        assert g.snapshot() == 3


class TestHistogram:
    def test_log_scale_buckets(self):
        h = Histogram("lat")
        for v in (0, 1, 2, 3, 4, 1000):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 6
        assert snap["sum"] == 1010
        assert snap["max"] == 1000
        assert snap["mean"] == pytest.approx(1010 / 6)
        # 0 -> bucket 0; 1 -> [1,1]; 2,3 -> [2,3]; 4 -> [4,7];
        # 1000 -> [512,1023]
        assert snap["buckets"] == {
            "0..0": 1, "1..1": 1, "2..3": 2, "4..7": 1, "512..1023": 1}

    def test_bucket_bounds(self):
        assert Histogram.bucket_bounds(0) == (0, 0)
        assert Histogram.bucket_bounds(1) == (1, 1)
        assert Histogram.bucket_bounds(4) == (8, 15)


class TestMetricRegistry:
    def test_get_or_create_returns_same_handle(self):
        reg = MetricRegistry()
        a = reg.counter("reqs")
        b = reg.counter("reqs")
        assert a is b
        assert len(reg) == 1
        assert "reqs" in reg

    def test_type_mismatch_raises(self):
        reg = MetricRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")

    def test_snapshot_is_sorted_and_jsonable(self):
        import json

        reg = MetricRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(1.5)
        reg.histogram("c").observe(7)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        json.dumps(snap)  # must not raise


class TestNullFamily:
    def test_null_registry_accepts_everything_and_records_nothing(self):
        reg = NullRegistry()
        reg.counter("x").inc(100)
        reg.gauge("y").set(5)
        reg.histogram("z").observe(9)
        assert len(reg) == 0
        assert "x" not in reg
        assert reg.snapshot() == {}
        assert reg.counter("x").snapshot() == 0
        assert reg.histogram("z").snapshot()["count"] == 0

    def test_null_singletons_are_shared(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
