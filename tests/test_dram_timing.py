"""Timing parameter sets and conversions."""

import pytest

from repro.dram.timing import DDR4_2666, DDR5_4800, TimingParams, ns_to_cycles


def test_ns_to_cycles_rounds_up():
    assert ns_to_cycles(0.0, 0.75) == 0
    assert ns_to_cycles(0.75, 0.75) == 1
    assert ns_to_cycles(0.76, 0.75) == 2
    assert ns_to_cycles(32.0, 0.75) == 43
    with pytest.raises(ValueError):
        ns_to_cycles(-1.0, 0.75)
    with pytest.raises(ValueError):
        ns_to_cycles(1.0, 0.0)


def test_ddr4_matches_paper_table4():
    t = DDR4_2666
    assert (t.tCL, t.tRCD, t.tRP) == (19, 19, 19)
    assert t.tRFC == 467
    assert t.tREFI == 10400
    assert t.tck_ns == 0.75
    # tREFW = 64 ms.
    assert abs(t.nanoseconds(t.tREFW) - 64e6) < t.tck_ns


def test_ddr5_sanity():
    t = DDR5_4800
    assert t.tck_ns == pytest.approx(1 / 2.4)
    assert t.nanoseconds(t.tRCD) >= 16.0 - t.tck_ns
    assert abs(t.nanoseconds(t.tREFW) - 32e6) < t.tck_ns
    assert t.tREFI < t.tREFW


def test_trc_is_tras_plus_trp():
    for t in (DDR4_2666, DDR5_4800):
        assert t.tRC == t.tRAS + t.tRP


def test_refreshes_per_window():
    t = DDR4_2666
    # 64 ms / 7.8 us = 8192 refreshes per window.
    assert t.refreshes_per_window == t.tREFW // t.tREFI
    assert 8000 <= t.refreshes_per_window <= 8400


def test_with_act_extra():
    t = DDR4_2666.with_act_extra(6)
    assert t.tRCD_effective == 25
    assert DDR4_2666.tRCD_effective == 19  # original untouched
    with pytest.raises(ValueError):
        DDR4_2666.with_act_extra(-1)


def test_with_trcd_and_trefi():
    t = DDR4_2666.with_trcd(23)
    assert t.tRCD == 23
    t2 = DDR4_2666.with_refresh_interval(5200)
    assert t2.tREFI == 5200
    assert t2.refreshes_per_window == 2 * DDR4_2666.refreshes_per_window


def test_validation():
    with pytest.raises(ValueError):
        DDR4_2666.with_raaimt(0)
    with pytest.raises(ValueError):
        TimingParams(
            name="bad", tck_ns=1.0, tCL=10, tRCD=10, tRP=10, tRAS=20,
            tWR=10, tRTP=5, tBL=4, tCWL=8, tCCD_L=4, tCCD_S=2, tRRD_L=4,
            tRRD_S=2, tFAW=16, tWTR_L=6, tWTR_S=2, tRFC=100,
            tREFI=1000, tREFW=500, tRFM=100,   # tREFI > tREFW
        )


def test_cycles_roundtrip():
    t = DDR5_4800
    assert t.cycles(t.nanoseconds(123)) == 123
