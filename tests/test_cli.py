"""The shadow-repro CLI."""

import pytest

from repro.cli import build_parser, main, make_scheme
from repro.core import Shadow
from repro.mitigations import (
    BlockHammer,
    DoubleRefreshRate,
    NoMitigation,
    Parfm,
    RandomizedRowSwap,
)


class TestMakeScheme:
    @pytest.mark.parametrize("name,cls", [
        ("none", NoMitigation),
        ("shadow", Shadow),
        ("parfm", Parfm),
        ("blockhammer", BlockHammer),
        ("rrs", RandomizedRowSwap),
        ("drr", DoubleRefreshRate),
    ])
    def test_known_schemes(self, name, cls):
        assert isinstance(make_scheme(name, 4096), cls)

    def test_shadow_uses_secure_raaimt(self):
        assert make_scheme("shadow", 2048).config.raaimt == 32

    def test_unknown_scheme(self):
        with pytest.raises(SystemExit):
            make_scheme("magic", 4096)


class TestCommands:
    def test_run_command(self, capsys):
        rc = main(["run", "--workload", "gcc", "--scheme", "none",
                   "--requests", "150", "--seed", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "requests=150" in out
        assert "scheme=baseline" in out

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "doom"])

    def test_security_command(self, capsys):
        rc = main(["security", "--hcnt", "4096", "--raaimt", "64"])
        assert rc == 0
        assert "secure (<1%/rank-year): True" in capsys.readouterr().out

    def test_attack_command_shadow_defends(self, capsys):
        rc = main(["attack", "--scenario", "1", "--hcnt", "64",
                   "--raaimt", "4", "--intervals", "150"])
        assert rc == 0   # no flip under SHADOW
        assert "flipped=False" in capsys.readouterr().out

    def test_attack_command_no_shuffle_flips(self, capsys):
        rc = main(["attack", "--scenario", "2", "--hcnt", "48",
                   "--raaimt", "16", "--intervals", "100",
                   "--no-shuffle"])
        assert rc == 1   # exit code signals the flip
        assert "flipped=True" in capsys.readouterr().out

    def test_templating_command(self, capsys):
        rc = main(["templating", "--seed", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "static:" in out and "shadow:" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
