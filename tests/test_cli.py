"""The shadow-repro CLI."""

import pytest

from repro.cli import build_parser, main, make_scheme
from repro.core import Shadow
from repro.mitigations import (
    BlockHammer,
    DoubleRefreshRate,
    NoMitigation,
    Parfm,
    RandomizedRowSwap,
)


class TestMakeScheme:
    @pytest.mark.parametrize("name,cls", [
        ("none", NoMitigation),
        ("shadow", Shadow),
        ("parfm", Parfm),
        ("blockhammer", BlockHammer),
        ("rrs", RandomizedRowSwap),
        ("drr", DoubleRefreshRate),
    ])
    def test_known_schemes(self, name, cls):
        assert isinstance(make_scheme(name, 4096), cls)

    def test_shadow_uses_secure_raaimt(self):
        assert make_scheme("shadow", 2048).config.raaimt == 32

    def test_unknown_scheme(self):
        with pytest.raises(SystemExit):
            make_scheme("magic", 4096)


class TestCommands:
    def test_run_command(self, capsys):
        rc = main(["run", "--workload", "gcc", "--scheme", "none",
                   "--requests", "150", "--seed", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "requests=150" in out
        assert "scheme=baseline" in out

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "doom"])

    def test_security_command(self, capsys):
        rc = main(["security", "--hcnt", "4096", "--raaimt", "64"])
        assert rc == 0
        assert "secure (<1%/rank-year): True" in capsys.readouterr().out

    def test_attack_command_shadow_defends(self, capsys):
        rc = main(["attack", "--scenario", "1", "--hcnt", "64",
                   "--raaimt", "4", "--intervals", "150"])
        assert rc == 0   # no flip under SHADOW
        assert "flipped=False" in capsys.readouterr().out

    def test_attack_command_no_shuffle_flips(self, capsys):
        rc = main(["attack", "--scenario", "2", "--hcnt", "48",
                   "--raaimt", "16", "--intervals", "100",
                   "--no-shuffle"])
        assert rc == 1   # exit code signals the flip
        assert "flipped=True" in capsys.readouterr().out

    def test_templating_command(self, capsys):
        rc = main(["templating", "--seed", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "static:" in out and "shadow:" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        from repro.version import __version__
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_log_level_flag_configures_logging(self, capsys):
        import logging
        rc = main(["--log-level", "debug", "security",
                   "--hcnt", "4096", "--raaimt", "64"])
        assert rc == 0
        assert logging.getLogger().level == logging.DEBUG
        logging.getLogger().setLevel(logging.WARNING)

    def test_log_level_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["--log-level", "chatty", "security"])


class TestObservabilityCommands:
    def test_stats_command(self, capsys):
        rc = main(["stats", "--workload", "mcf", "--scheme", "shadow",
                   "--requests", "300", "--sample-interval", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "row-hit rate:" in out
        assert "candidate cache:" in out
        assert "translation" in out
        assert "raa:" in out and "rfms_issued=" in out
        assert "snapshots:" in out

    def test_stats_command_without_rfm_scheme(self, capsys):
        rc = main(["stats", "--workload", "gcc", "--scheme", "none",
                   "--requests", "200"])
        assert rc == 0
        assert "no RFM interface" in capsys.readouterr().out

    def test_trace_command_chrome(self, tmp_path, capsys):
        import json
        out_path = tmp_path / "run.trace.json"
        rc = main(["trace", "--workload", "mcf", "--scheme", "shadow",
                   "--requests", "300", "--out", str(out_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "perfetto" in out
        doc = json.loads(out_path.read_text(encoding="utf-8"))
        assert doc["traceEvents"]

    def test_trace_command_jsonl(self, tmp_path, capsys):
        from repro.obs import read_jsonl
        out_path = tmp_path / "run.jsonl"
        rc = main(["trace", "--workload", "mcf", "--scheme", "none",
                   "--requests", "200", "--format", "jsonl",
                   "--out", str(out_path)])
        assert rc == 0
        events = read_jsonl(out_path)
        assert any(e["ph"] == "X" for e in events)
