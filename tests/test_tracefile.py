"""Trace file round-trips and the FileTrace adapter."""

import io
import itertools

import pytest

from repro.controller.address import AddressMapping, MemoryLocation
from repro.dram.device import DramGeometry
from repro.sim.core_model import ThreadState
from repro.workloads import SPEC_PROFILES, TraceGenerator
from repro.workloads.tracefile import (
    FileTrace,
    dump_trace,
    dump_trace_file,
    load_trace_file,
    parse_trace,
)

ENTRIES = [
    (12.5, MemoryLocation(0, 0, 3, 1047, 12), False),
    (3.0, MemoryLocation(1, 0, 3, 1047, 13), True),
    (0.0, MemoryLocation(0, 1, 0, 0, 0), False),
]


class TestRoundTrip:
    def test_dump_parse_roundtrip(self):
        buffer = io.StringIO()
        assert dump_trace(ENTRIES, buffer) == 3
        parsed = list(parse_trace(buffer.getvalue()))
        assert parsed == ENTRIES

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        dump_trace_file(ENTRIES, path)
        assert load_trace_file(path) == ENTRIES

    def test_synthetic_generator_roundtrips(self, tmp_path):
        mapping = AddressMapping(DramGeometry())
        gen = TraceGenerator(SPEC_PROFILES["gcc"], mapping, 0, seed=4)
        entries = list(itertools.islice(gen.requests(), 50))
        path = str(tmp_path / "gcc.txt")
        dump_trace_file(entries, path)
        loaded = load_trace_file(path)
        assert len(loaded) == 50
        assert [e[1] for e in loaded] == [e[1] for e in entries]
        # Gaps survive within the format's 3-decimal precision.
        for (g1, _a, _b), (g2, _c, _d) in zip(entries, loaded):
            assert abs(g1 - g2) < 1e-3


class TestParsing:
    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n1.0 0 0 0 5 0 R\n"
        assert len(list(parse_trace(text))) == 1

    @pytest.mark.parametrize("line,message", [
        ("1.0 0 0 0 5 0", "7 fields"),
        ("x 0 0 0 5 0 R", "line 1"),
        ("-1 0 0 0 5 0 R", "negative gap"),
        ("1.0 0 0 0 5 0 Z", "kind"),
    ])
    def test_malformed_lines_rejected(self, line, message):
        with pytest.raises(ValueError, match=message):
            list(parse_trace(line))


class TestFileTrace:
    def test_loops_by_default(self):
        trace = FileTrace(ENTRIES)
        stream = trace.requests()
        got = [next(stream) for _ in range(7)]
        assert got[:3] == ENTRIES
        assert got[3:6] == ENTRIES

    def test_no_loop_ends(self):
        trace = FileTrace(ENTRIES, loop=False)
        assert len(list(trace.requests())) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FileTrace([])

    def test_drives_a_thread(self):
        """A file trace plugs straight into the core model."""
        trace = FileTrace(ENTRIES)
        thread = ThreadState(0, trace.requests(), request_budget=9,
                             tck_ns=0.75)
        issued = []
        cycle = 0
        while not thread.drained:
            cycle = max(cycle, thread.next_ready)
            if thread.can_issue(cycle):
                issued.append(thread.issue(cycle))
            else:
                cycle += 1
        assert len(issued) == 9
        assert issued[0].location == ENTRIES[0][1]
