"""The parallel experiment engine and its persistent result cache."""

import dataclasses
import functools
import json
import os
import pathlib
import time

import pytest

from repro.experiments import fig8
from repro.experiments.configs import FidelityConfig, fidelity_config
from repro.experiments.engine import (
    BASELINE,
    Engine,
    EngineStats,
    Job,
    JobFailedError,
    JobFailure,
    JobResult,
    SchemeSpec,
    WsRelativePlan,
    _execute,
    alone_job,
    archsim_scheme_specs,
    rfm_scheme_specs,
    scheme_spec,
    shared_job,
)
from repro.dram.device import DramGeometry
from repro.dram.subarray import SubarrayLayout
from repro.mitigations import NoMitigation
from repro.sim import ExperimentRunner, SystemConfig
from repro.utils.cache import ResultCache, canonical_json, spec_digest
from repro.workloads import SPEC_PROFILES, mix_high

SMALL_GEO = DramGeometry(
    channels=2, ranks_per_channel=1, banks_per_rank=4,
    layout=SubarrayLayout(subarrays_per_bank=4, rows_per_subarray=128),
    columns_per_row=64,
)

#: The smoke-fidelity fig8 grid shape with micro run-scale knobs, so the
#: determinism and cache tests cover the real driver end to end in
#: seconds.
MICRO = FidelityConfig(
    name="smoke", threads=2, mt_threads=2,
    requests_per_thread=60, single_thread_requests=40,
    apps_per_suite=1, mix_random_count=1,
    tracker_threads=2, tracker_requests=80,
)


def small_config(**kw):
    kw.setdefault("geometry", SMALL_GEO)
    kw.setdefault("requests_per_thread", 120)
    kw.setdefault("seed", 7)
    return SystemConfig(**kw)


@pytest.fixture
def micro_fig8(monkeypatch):
    monkeypatch.setattr(fig8, "fidelity_config", lambda name: MICRO)


# -- picklable fault-injection workers (must be module-level: they cross
# -- the process-pool boundary by reference) ---------------------------------------

_CANNED = dict(
    cycles=100, thread_finish_cycles=[100], reads_completed=1,
    requests_issued=1, refreshes=0, rfms=0, mitigation_name="canned",
    tck_ns=0.75, acts=1, precharges=1, reads=1, writes=0, row_hits=0,
    row_misses=1, row_conflicts=0, extra_act_cycles=0, metrics=None)


def _canned_worker(job):
    """Instant deterministic payload; no simulation."""
    payload = dict(_CANNED)
    payload["mitigation_name"] = job.scheme.kind
    return payload


def _fail_for(job, target):
    """Raises deterministically for jobs running the target profile."""
    if any(p.name == target for p in job.profiles):
        raise ValueError(f"injected failure for {target}")
    return _canned_worker(job)


def _always_fail(job):
    raise RuntimeError("permanent fault")


def _flaky(job, marker_dir, run):
    """Fails each job's first attempt, succeeds from the second on.

    The marker directory carries the per-job attempt state across the
    process boundary.
    """
    marker = pathlib.Path(marker_dir) / spec_digest(job.spec)
    if not marker.exists():
        marker.write_text("x")
        raise OSError("transient glitch")
    return run(job)


_flaky_canned = functools.partial(_flaky, run=_canned_worker)
_flaky_real = functools.partial(_flaky, run=_execute)


def _exit_for(job, target, marker_dir):
    """Simulates an OOM-killed worker (BrokenProcessPool), once."""
    if any(p.name == target for p in job.profiles):
        marker = pathlib.Path(marker_dir) / "crashed"
        if not marker.exists():
            marker.write_text("x")
            os._exit(3)
    return _canned_worker(job)


def _exit_always(job, target):
    """Kills the worker on every attempt for the target profile."""
    if any(p.name == target for p in job.profiles):
        os._exit(3)
    return _canned_worker(job)


def _sleep_for(job, target):
    """Overruns any sane job timeout for the target profile."""
    if any(p.name == target for p in job.profiles):
        time.sleep(60)
    return _canned_worker(job)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = {"a": 1, "b": [2, 3]}
        assert cache.get(spec) is None
        cache.put(spec, {"value": 42})
        assert cache.get(spec) == {"value": 42}
        assert cache.hits == 1 and cache.misses == 1

    def test_digest_is_key_order_independent(self):
        assert spec_digest({"a": 1, "b": 2}) == spec_digest({"b": 2, "a": 1})
        assert spec_digest({"a": 1}) != spec_digest({"a": 2})

    def test_schema_version_invalidates(self, tmp_path):
        old = ResultCache(str(tmp_path), schema_version=1)
        old.put({"x": 1}, {"value": 1})
        new = ResultCache(str(tmp_path), schema_version=2)
        assert new.get({"x": 1}) is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = cache.put({"x": 1}, {"value": 1})
        path.write_text("not json{")
        assert cache.get({"x": 1}) is None

    def test_wipe(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put({"x": 1}, {"value": 1})
        cache.put({"x": 2}, {"value": 2})
        assert cache.wipe() == 2
        assert cache.get({"x": 1}) is None

    def test_canonical_json_stable(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == \
            '{"a":[1,2],"b":1}'


class TestSchemeSpec:
    def test_builds_every_registered_kind(self):
        for name, spec in {**rfm_scheme_specs(4096),
                           **archsim_scheme_specs(4096)}.items():
            instance = spec.build()
            assert instance.name, name
            # Fresh per-run state on every build.
            assert spec.build() is not instance

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            scheme_spec("not-a-scheme", hcnt=4096)

    def test_params_order_insensitive(self):
        a = scheme_spec("parfm", hcnt=4096, radius=2)
        b = SchemeSpec("parfm", (("radius", 2), ("hcnt", 4096)))
        assert a == SchemeSpec("parfm", tuple(sorted(b.params)))

    def test_payload_json_serialisable(self):
        payload = scheme_spec("shadow", hcnt=4096).payload()
        assert json.loads(canonical_json(payload)) == payload


class TestJobIdentity:
    def test_equal_specs_equal_jobs(self):
        p = SPEC_PROFILES["mcf"]
        a = alone_job(p, BASELINE, small_config())
        b = alone_job(p, BASELINE, small_config())
        assert a == b and hash(a) == hash(b)

    def test_seed_differentiates(self):
        p = SPEC_PROFILES["mcf"]
        a = alone_job(p, BASELINE, small_config(seed=1))
        b = alone_job(p, BASELINE, small_config(seed=2))
        assert a != b

    def test_scheme_differentiates(self):
        p = SPEC_PROFILES["mcf"]
        a = alone_job(p, scheme_spec("shadow", hcnt=4096), small_config())
        b = alone_job(p, scheme_spec("shadow", hcnt=2048), small_config())
        assert a != b

    def test_empty_profiles_rejected(self):
        with pytest.raises(ValueError):
            Job((), BASELINE, small_config())

    def test_spec_is_json_serialisable(self):
        job = shared_job([SPEC_PROFILES["mcf"]] * 2,
                         scheme_spec("drr"), small_config())
        assert json.loads(canonical_json(job.spec)) == \
            json.loads(canonical_json(job.spec))


class TestEngine:
    def _jobs(self, n=3):
        config = small_config()
        profiles = sorted(SPEC_PROFILES)[:n]
        return [alone_job(SPEC_PROFILES[p], BASELINE, config)
                for p in profiles]

    def test_dedup(self, tmp_path):
        engine = Engine(cache_dir=str(tmp_path))
        jobs = self._jobs(2)
        results = engine.run(jobs + jobs)
        assert engine.stats.submitted == 4
        assert engine.stats.unique == 2
        assert engine.stats.executed == 2
        assert set(results) == set(jobs)

    def test_second_run_hits_cache_with_identical_values(self, tmp_path):
        jobs = self._jobs(3)
        first = Engine(cache_dir=str(tmp_path))
        r1 = first.run(jobs)
        assert first.stats.executed == 3
        assert first.stats.cache_hits == 0
        second = Engine(cache_dir=str(tmp_path))
        r2 = second.run(jobs)
        assert second.stats.executed == 0          # zero simulations
        assert second.stats.cache_hits == 3
        for job in jobs:
            assert r1[job].to_dict() == r2[job].to_dict()

    def test_no_cache_mode(self, tmp_path):
        engine = Engine(cache_dir=str(tmp_path), use_cache=False)
        engine.run(self._jobs(1))
        assert not list(tmp_path.glob("*.json"))

    def test_parallel_matches_serial(self, tmp_path):
        jobs = self._jobs(3)
        serial = Engine(jobs=1, cache_dir=str(tmp_path / "a")).run(jobs)
        parallel = Engine(jobs=2, cache_dir=str(tmp_path / "b")).run(jobs)
        for job in jobs:
            assert serial[job].to_dict() == parallel[job].to_dict()

    def test_result_fields_roundtrip(self, tmp_path):
        job = self._jobs(1)[0]
        result = Engine(cache_dir=str(tmp_path)).run([job])[job]
        assert result.requests_issued == 120
        assert result.acts > 0
        assert result.tck_ns == job.config.timing.tck_ns
        assert result.finish_ns[0] == pytest.approx(
            result.thread_finish_cycles[0] * job.config.timing.tck_ns)
        assert JobResult.from_dict(result.to_dict()) == result

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            Engine(jobs=0)

    def test_results_carry_metrics_summary(self, tmp_path):
        job = self._jobs(1)[0]
        result = Engine(cache_dir=str(tmp_path)).run([job])[job]
        assert result.metrics is not None
        assert result.metrics["acts"] == result.acts
        assert result.metrics["row_hits"] == result.row_hits
        cache = result.metrics["candidate_cache"]
        assert cache["evals"] == cache["hits"] + cache["recomputes"]
        json.dumps(result.metrics)  # cached payload must be JSON-able

    def test_pre_metrics_cache_payload_still_loads(self):
        # Entries written before JobResult grew the metrics field have
        # no "metrics" key; they must deserialise with metrics=None.
        payload = dataclasses.asdict(JobResult(
            cycles=10, thread_finish_cycles=[10], reads_completed=1,
            requests_issued=1, refreshes=0, rfms=0,
            mitigation_name="baseline", tck_ns=0.75, acts=1,
            precharges=1, reads=1, writes=0, row_hits=0, row_misses=1,
            row_conflicts=0, extra_act_cycles=0))
        del payload["metrics"]
        restored = JobResult.from_dict(payload)
        assert restored.metrics is None
        assert restored.cycles == 10


class TestWsRelativePlan:
    def test_matches_experiment_runner(self, tmp_path):
        """The engine path reproduces the serial runner's ratios."""
        config = small_config()
        profiles = mix_high(2)
        spec = scheme_spec("drr")
        plan = WsRelativePlan(config)
        plan.add("drr", profiles, spec)
        results = Engine(cache_dir=str(tmp_path)).run(plan.jobs)
        engine_value = plan.value("drr", results)
        runner = ExperimentRunner(config=config)
        from repro.mitigations import DoubleRefreshRate
        serial_value = runner.relative_performance(
            profiles, DoubleRefreshRate)
        assert engine_value == pytest.approx(serial_value, rel=0, abs=0)

    def test_baseline_jobs_shared_between_labels(self):
        config = small_config()
        profiles = mix_high(2)
        plan = WsRelativePlan(config)
        plan.add("a", profiles, scheme_spec("drr"))
        plan.add("b", profiles, scheme_spec("shadow", hcnt=4096))
        # alone runs + shared baseline are shared; only the scheme
        # shared runs differ.
        distinct_profiles = len(set(profiles))
        assert len(plan.jobs) == distinct_profiles + 1 + 2


class TestFig8OnEngine:
    """End-to-end determinism and caching through the real driver."""

    def test_jobs2_matches_jobs1(self, micro_fig8, tmp_path):
        serial = Engine(jobs=1, cache_dir=str(tmp_path / "serial"))
        parallel = Engine(jobs=2, cache_dir=str(tmp_path / "parallel"))
        r1 = fig8.run("smoke", engine=serial)
        r2 = fig8.run("smoke", engine=parallel)
        assert serial.stats.executed > 0
        assert parallel.stats.executed == serial.stats.executed
        assert r1 == r2

    def test_second_run_all_cache_hits(self, micro_fig8, tmp_path):
        first = Engine(cache_dir=str(tmp_path))
        r1 = fig8.run("smoke", engine=first)
        assert first.stats.executed == first.stats.unique > 0
        second = Engine(cache_dir=str(tmp_path))
        r2 = fig8.run("smoke", engine=second)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == second.stats.unique
        assert r1 == r2

    def test_interrupted_run_resumes(self, micro_fig8, tmp_path):
        """A partial cache is reused, not restarted."""
        warm = Engine(cache_dir=str(tmp_path))
        fig8.run("smoke", engine=warm)
        # Simulate an interruption that lost part of the cache.
        entries = sorted(warm.cache.directory.glob("*.json"))
        for path in entries[: len(entries) // 2]:
            path.unlink()
        resumed = Engine(cache_dir=str(tmp_path))
        fig8.run("smoke", engine=resumed)
        assert resumed.stats.executed == len(entries) // 2
        assert resumed.stats.cache_hits == \
            resumed.stats.unique - len(entries) // 2


class TestCacheTmpCleanup:
    def test_wipe_removes_orphan_tmps(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put({"x": 1}, {"value": 1})
        (tmp_path / "orphan123.tmp").write_text("torn write")
        assert cache.wipe() == 2
        assert not list(tmp_path.iterdir())

    def test_put_cleans_stale_tmps(self, tmp_path):
        orphan = tmp_path / "stale456.tmp"
        orphan.write_text("torn write")
        cache = ResultCache(str(tmp_path), stale_tmp_age_s=0)
        cache.put({"x": 1}, {"value": 1})
        assert not orphan.exists()
        assert cache.get({"x": 1}) == {"value": 1}

    def test_fresh_tmps_are_left_alone(self, tmp_path):
        # A young tmp may belong to a concurrent writer mid-replace.
        fresh = tmp_path / "fresh789.tmp"
        fresh.write_text("concurrent writer")
        cache = ResultCache(str(tmp_path))   # default 1h staleness
        cache.put({"x": 1}, {"value": 1})
        assert fresh.exists()

    def test_engine_init_cleans_stale_tmps(self, tmp_path):
        orphan = tmp_path / "stale.tmp"
        orphan.write_text("torn write")
        age = time.time() - 7200
        os.utime(orphan, (age, age))
        Engine(cache_dir=str(tmp_path))
        assert not orphan.exists()


class TestFaultTolerance:
    """Worker crashes, retries, timeouts, keep-going and resume."""

    def _jobs(self, n=3):
        config = small_config()
        profiles = sorted(SPEC_PROFILES)[:n]
        return [alone_job(SPEC_PROFILES[p], BASELINE, config)
                for p in profiles]

    def _target(self):
        return sorted(SPEC_PROFILES)[0]

    def test_fail_fast_raises_job_failed_error(self, tmp_path):
        worker = functools.partial(_fail_for, target=self._target())
        engine = Engine(jobs=2, cache_dir=str(tmp_path), backoff_s=0,
                        worker=worker)
        with pytest.raises(JobFailedError) as excinfo:
            engine.run(self._jobs(3))
        failure = excinfo.value.failure
        assert failure.exc_type == "ValueError"
        assert self._target() in failure.message
        assert failure.attempts == 1
        assert "injected failure" in failure.traceback

    def test_keep_going_returns_partial_results(self, tmp_path):
        worker = functools.partial(_fail_for, target=self._target())
        engine = Engine(jobs=2, cache_dir=str(tmp_path), backoff_s=0,
                        keep_going=True, worker=worker)
        jobs = self._jobs(3)
        results = engine.run(jobs)
        assert len(results) == 2
        assert len(engine.failures) == 1
        assert engine.stats.executed == 2
        assert engine.stats.failed == 1
        (failed_job,) = engine.failures
        assert failed_job not in results
        report = engine.failure_report()
        json.dumps(report)                     # must be JSON-able
        assert report[0]["workloads"] == [self._target()] \
            or tuple(report[0]["workloads"]) == (self._target(),)

    def test_completed_jobs_resume_as_cache_hits(self, tmp_path):
        """The documented resume invariant: a failure mid-sweep keeps
        every completed result; the rerun only executes the loser."""
        worker = functools.partial(_fail_for, target=self._target())
        first = Engine(jobs=2, cache_dir=str(tmp_path), backoff_s=0,
                       keep_going=True, worker=worker)
        first.run(self._jobs(3))
        assert first.stats.executed == 2
        resumed = Engine(jobs=2, cache_dir=str(tmp_path),
                         worker=_canned_worker)
        results = resumed.run(self._jobs(3))
        assert len(results) == 3
        assert resumed.stats.cache_hits == 2
        assert resumed.stats.executed == 1

    def test_retry_exhaustion_surfaces_jobfailure(self, tmp_path):
        engine = Engine(jobs=2, cache_dir=str(tmp_path), retries=2,
                        backoff_s=0, keep_going=True, worker=_always_fail)
        results = engine.run(self._jobs(2))
        assert results == {}
        assert engine.stats.failed == 2
        assert engine.stats.retried == 4       # 2 retries per job
        for failure in engine.failures.values():
            assert failure.attempts == 3
            assert failure.exc_type == "RuntimeError"

    def test_transient_failures_retried_to_success(self, tmp_path):
        marker = tmp_path / "markers"
        marker.mkdir()
        worker = functools.partial(_flaky_canned, marker_dir=str(marker))
        engine = Engine(jobs=2, cache_dir=str(tmp_path / "cache"),
                        retries=1, backoff_s=0, worker=worker)
        results = engine.run(self._jobs(3))
        assert len(results) == 3
        assert engine.stats.executed == 3
        assert engine.stats.retried == 3
        assert engine.stats.failed == 0

    def test_transient_failures_retried_inline(self, tmp_path):
        marker = tmp_path / "markers"
        marker.mkdir()
        worker = functools.partial(_flaky_canned, marker_dir=str(marker))
        engine = Engine(jobs=1, cache_dir=str(tmp_path / "cache"),
                        retries=1, backoff_s=0, worker=worker)
        results = engine.run(self._jobs(2))
        assert len(results) == 2
        assert engine.stats.retried == 2

    def test_broken_pool_rebuilt_and_survivors_resubmitted(self, tmp_path):
        """A worker death (os._exit, as after an OOM kill) breaks the
        whole pool; the engine must rebuild it and finish every job."""
        worker = functools.partial(_exit_for, target=self._target(),
                                   marker_dir=str(tmp_path))
        engine = Engine(jobs=2, cache_dir=str(tmp_path / "cache"),
                        retries=1, backoff_s=0, worker=worker)
        results = engine.run(self._jobs(3))
        assert len(results) == 3
        assert engine.stats.pool_crashes >= 1
        assert engine.stats.failed == 0

    def test_broken_pool_exhausted_retries_fail(self, tmp_path):
        """A job that kills its worker on every attempt becomes a
        BrokenProcessPool JobFailure instead of looping forever."""
        target = self._target()
        worker = functools.partial(_exit_always, target=target)
        engine = Engine(jobs=2, cache_dir=str(tmp_path / "cache"),
                        retries=1, backoff_s=0, keep_going=True,
                        worker=worker)
        jobs = self._jobs(3)
        results = engine.run(jobs)
        # The culprit of a pool crash is indistinguishable from its
        # victims, so an innocent that shares the pool with the target
        # during both crashes may legitimately burn its own budget as
        # collateral: assert the jobs partition into results and
        # crash failures rather than an exact survivor count.
        assert set(results) | set(engine.failures) == set(jobs)
        assert len(results) == len(jobs) - len(engine.failures)
        assert all(f.exc_type == "BrokenProcessPool"
                   for f in engine.failures.values())
        target_failure = next(f for f in engine.failures.values()
                              if target in f.workloads)
        assert target_failure.attempts == 2
        assert engine.stats.failed == len(engine.failures)
        assert engine.stats.pool_crashes >= 2

    def test_job_timeout_kills_overrunning_job(self, tmp_path):
        worker = functools.partial(_sleep_for, target=self._target())
        engine = Engine(jobs=2, cache_dir=str(tmp_path), backoff_s=0,
                        job_timeout=0.5, keep_going=True, worker=worker)
        results = engine.run(self._jobs(3))
        assert len(results) == 2
        (failure,) = engine.failures.values()
        assert failure.timed_out
        assert engine.stats.timeouts == 1
        assert engine.stats.failed == 1

    def test_jobs4_matches_jobs1_under_transient_failures(self, tmp_path):
        """Retried, out-of-order execution is value-identical to a
        clean serial run -- determinism survives the failure machinery."""
        jobs = self._jobs(3)
        marker = tmp_path / "markers"
        marker.mkdir()
        worker = functools.partial(_flaky_real, marker_dir=str(marker))
        flaky = Engine(jobs=4, cache_dir=str(tmp_path / "a"), retries=1,
                       backoff_s=0, worker=worker)
        parallel = flaky.run(jobs)
        assert flaky.stats.retried == 3
        serial = Engine(jobs=1, cache_dir=str(tmp_path / "b")).run(jobs)
        for job in jobs:
            assert parallel[job].to_dict() == serial[job].to_dict()

    def test_metrics_counters_mirror_stats(self, tmp_path):
        worker = functools.partial(_fail_for, target=self._target())
        engine = Engine(jobs=2, cache_dir=str(tmp_path), retries=1,
                        backoff_s=0, keep_going=True, worker=worker)
        engine.run(self._jobs(3))
        snap = engine.metrics.snapshot()
        assert snap["engine.executed"] == engine.stats.executed == 2
        assert snap["engine.failures"] == engine.stats.failed == 1
        assert snap["engine.retries"] == engine.stats.retried == 1
        rerun = Engine(cache_dir=str(tmp_path), worker=_canned_worker)
        rerun.run(self._jobs(3))
        assert rerun.metrics.snapshot()["engine.cache_hits"] == 2

    def test_stats_summary_reports_failures(self):
        stats = EngineStats(submitted=4, unique=3, cache_hits=1,
                            executed=1, failed=1, retried=2, timeouts=1,
                            pool_crashes=1)
        line = stats.summary()
        assert "1 failed" in line and "2 retried" in line
        assert "1 timed out" in line and "1 pool crashes" in line
        quiet = EngineStats(submitted=1, unique=1, cache_hits=1)
        assert quiet.summary().endswith("0 failed, 0 retried")

    def test_invalid_fault_knobs_rejected(self):
        with pytest.raises(ValueError):
            Engine(retries=-1)
        with pytest.raises(ValueError):
            Engine(job_timeout=0)
        with pytest.raises(ValueError):
            Engine(backoff_s=-0.1)

    def test_failure_dataclass_roundtrip(self):
        job = self._jobs(1)[0]
        try:
            raise ValueError("boom")
        except ValueError as exc:
            failure = JobFailure.from_exception(job, exc, attempts=2,
                                                duration_s=1.25)
        payload = failure.to_dict()
        assert payload["exc_type"] == "ValueError"
        assert payload["attempts"] == 2
        assert not payload["timed_out"]
        json.dumps(payload)


class TestEnvFaultInjection:
    """The REPRO_FAULT_INJECT hook used by the CI fault-injection job."""

    def test_injected_fault_matches_scheme(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "drr")
        job = alone_job(SPEC_PROFILES[sorted(SPEC_PROFILES)[0]],
                        scheme_spec("drr"), small_config())
        engine = Engine(jobs=1, cache_dir=str(tmp_path), keep_going=True)
        engine.run([job])
        (failure,) = engine.failures.values()
        assert "injected worker fault" in failure.message

    def test_no_match_runs_normally(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "no-such-scheme")
        job = alone_job(SPEC_PROFILES[sorted(SPEC_PROFILES)[0]],
                        BASELINE, small_config())
        results = Engine(jobs=1, cache_dir=str(tmp_path)).run([job])
        assert results[job].requests_issued == 120


class TestRunnerBugfixes:
    def test_run_alone_does_not_rebuild_probe(self):
        """Resolving the cache key must not construct mitigations."""
        built = []

        def factory():
            built.append(1)
            return NoMitigation()

        runner = ExperimentRunner(config=small_config())
        p = SPEC_PROFILES["xz"]
        runner.run_alone(p, factory)
        # One probe (name resolution) + one simulated instance.
        assert len(built) == 2
        runner.run_alone(p, factory)                   # cache hit
        assert len(built) == 2
        runner.run_alone(SPEC_PROFILES["gcc"], factory)  # new profile
        assert len(built) == 3

    def test_run_alone_uses_persistent_cache(self, tmp_path):
        config = small_config()
        p = SPEC_PROFILES["xz"]
        first = ExperimentRunner(config=config,
                                 cache=ResultCache(str(tmp_path)))
        cycles = first.run_alone(p, NoMitigation)
        fresh = ExperimentRunner(config=config,
                                 cache=ResultCache(str(tmp_path)))
        assert fresh.run_alone(p, NoMitigation) == cycles
        assert fresh.cache.hits == 1


class TestConfigsBugfix:
    def test_explicit_zero_requests_rejected(self):
        fc = fidelity_config("smoke")
        with pytest.raises(ValueError):
            fc.system_config(requests=0)

    def test_none_requests_uses_fidelity_default(self):
        fc = fidelity_config("smoke")
        cfg = fc.system_config(requests=None)
        assert cfg.requests_per_thread == fc.requests_per_thread

    def test_explicit_requests_respected(self):
        fc = fidelity_config("smoke")
        assert fc.system_config(requests=17).requests_per_thread == 17


class TestFaultJobWiring:
    """Fault-injection jobs: cache identity, result round-trip."""

    def test_faults_key_absent_without_spec(self):
        # Back-compat guarantee: jobs without injection must keep the
        # cache identity they had before the field existed.
        p = SPEC_PROFILES["mcf"]
        job = alone_job(p, BASELINE, small_config())
        assert "faults" not in job.spec

    def test_fault_spec_differentiates_jobs(self):
        from repro.spec import fault_spec
        p = SPEC_PROFILES["mcf"]
        plain = alone_job(p, BASELINE, small_config())
        faulty = dataclasses.replace(plain, faults=fault_spec(hcnt=64))
        assert plain != faulty
        assert faulty.spec["faults"]["hcnt"] == 64
        other = dataclasses.replace(plain, faults=fault_spec(hcnt=128))
        assert faulty != other

    def test_job_result_faults_round_trip(self):
        payload = {k: 0 for k in (
            "cycles", "reads_completed", "requests_issued", "refreshes",
            "rfms", "acts", "precharges", "reads", "writes", "row_hits",
            "row_misses", "row_conflicts", "extra_act_cycles")}
        payload.update(thread_finish_cycles=[1], mitigation_name="none",
                       tck_ns=0.75)
        # Old cache entries predate the field entirely.
        assert JobResult.from_dict(dict(payload)).faults is None
        report = {"counts": {"uncorrectable": 2}, "panicked": False}
        result = JobResult.from_dict(dict(payload, faults=report))
        assert result.faults == report
        assert JobResult.from_dict(result.to_dict()).faults == report

    def test_executed_fault_job_reports_injection(self):
        from repro.spec import fault_spec
        from repro.workloads.hammer import hammer_profile
        job = Job(
            profiles=(hammer_profile("double-sided", victim_row=260),),
            scheme=scheme_spec("none"),
            config=SystemConfig(requests_per_thread=300, mlp=1, seed=3),
            faults=fault_spec(hcnt=64, seed=3))
        result = JobResult.from_dict(_execute(job))
        assert result.faults is not None
        assert result.faults["counts"]["bits_injected"] > 0
        assert result.metrics["faults"]["counts"] == \
            result.faults["counts"]
        # The same job without injection carries no report.
        plain = dataclasses.replace(job, faults=None)
        assert JobResult.from_dict(_execute(plain)).faults is None
