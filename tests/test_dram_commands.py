"""Command objects and miscellaneous small-surface validation."""

import pytest

from repro.dram.commands import Command, CommandType
from repro.dram.timing import DDR5_4800
from repro.analysis.power import IddValues, PowerModel, CommandCounts


class TestCommand:
    def test_act_requires_row(self):
        with pytest.raises(ValueError):
            Command(CommandType.ACT, 0, 0, 0, cycle=0)
        cmd = Command(CommandType.ACT, 0, 0, 0, cycle=0, row=5)
        assert cmd.row == 5

    def test_column_commands_require_column(self):
        with pytest.raises(ValueError):
            Command(CommandType.RD, 0, 0, 0, cycle=0)
        with pytest.raises(ValueError):
            Command(CommandType.WR, 0, 0, 0, cycle=0)
        Command(CommandType.RD, 0, 0, 0, cycle=0, column=3)

    def test_ref_needs_nothing(self):
        Command(CommandType.REF, 0, 0, 0, cycle=10)
        Command(CommandType.RFM, 0, 0, 0, cycle=10)

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            Command(CommandType.PRE, 0, 0, 0, cycle=-1)


class TestPowerOnDdr5:
    def test_energies_scale_with_speed_grade(self):
        ddr5 = PowerModel(DDR5_4800, idd=IddValues(vdd=1.1))
        counts = CommandCounts(acts=1000, reads=2000, writes=500,
                               refreshes=10, rfms=4,
                               elapsed_cycles=1_000_000)
        report = ddr5.report(counts)
        assert report.total_w > 0
        assert report.refresh_w > 0

    def test_shadow_flag_controls_remap_term(self):
        counts = CommandCounts(acts=1000, reads=0, writes=0,
                               refreshes=0, rfms=0,
                               elapsed_cycles=100_000)
        plain = PowerModel(DDR5_4800, shadow=False).report(counts)
        shadowed = PowerModel(DDR5_4800, shadow=True).report(counts)
        assert plain.remap_access_w == 0.0
        assert shadowed.remap_access_w > 0.0
