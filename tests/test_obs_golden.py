"""Observability must observe, not perturb (satellite S3).

Replays the golden scheduler scenarios with observability *fully*
enabled -- metric registry, in-memory trace sink, periodic snapshot
sampler -- and asserts the per-bank command stream is byte-identical to
the committed golden of the uninstrumented run.  Any instrumentation
that advances timing state, reorders candidates, or perturbs an RNG
stream changes the sha256 and fails here.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs import Observability
from repro.sim import System, SystemConfig

_GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "golden_generate_obs", _GOLDEN_DIR / "generate.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


GEN = _load_generator()
GOLDEN = json.loads(GEN.GOLDEN_PATH.read_text(encoding="utf-8"))


def _build_system(scheme: str, obs):
    mitigation = GEN.make_mitigation(scheme)
    config = SystemConfig(geometry=GEN.GEOMETRY, seed=GEN.SEED,
                          requests_per_thread=GEN.REQUESTS_PER_THREAD)
    return System(list(GEN.THREADS), mitigation, config=config, obs=obs)


@pytest.mark.parametrize("scheme", GEN.SCHEMES)
def test_command_stream_identical_with_observability_on(scheme):
    obs = Observability.in_memory(sample_interval=1000)
    system = _build_system(scheme, obs)
    result, digest, n_events = GEN.run_captured(system)
    obs.close()
    expected = GOLDEN[scheme]
    assert digest == expected["command_stream_sha256"], (
        f"{scheme}: observability perturbed the command stream")
    assert n_events == expected["command_stream_events"]
    assert result.cycles == expected["cycles"]
    assert list(result.thread_finish_cycles) == \
        expected["thread_finish_cycles"]
    # And the run actually produced observability output (the test
    # would be vacuous with a dead hub).
    assert obs.summary is not None
    assert obs.snapshots
    assert obs.sink.events_written > 1000


@pytest.mark.parametrize("scheme", ("none", "shadow"))
def test_command_stream_identical_with_observability_off(scheme):
    # The off path (obs=None) must equally match; this guards the
    # refactors made to the scheduler's counting code itself.
    system, _mitigation = GEN.build_system(scheme)
    _result, digest, _n = GEN.run_captured(system)
    assert digest == GOLDEN[scheme]["command_stream_sha256"]


def test_summary_consistent_with_golden_stats():
    obs = Observability(metrics=True)
    system = _build_system("shadow", obs)
    result = system.run()
    expected = GOLDEN["shadow"]
    assert result.cycles == expected["cycles"]
    s = obs.summary
    assert s["acts"] == expected["stats"]["acts"]
    assert s["row_hits"] == expected["stats"]["row_hits"]
    assert s["rfms"] == expected["stats"]["rfms"]
    cache = s["candidate_cache"]
    assert cache["evals"] == cache["hits"] + cache["recomputes"] > 0
    assert s["raa_crossings"] > 0
    assert s["raa"]["rfms_issued"] == expected["rfms"]
