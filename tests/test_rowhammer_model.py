"""Disturbance model: blast weighting, resets, flip detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.device import BankAddress
from repro.dram.subarray import SubarrayLayout
from repro.rowhammer.model import (
    BitFlip,
    DisturbanceModel,
    HammerConfig,
    blast_weight,
    blast_weight_sum,
)

LAYOUT = SubarrayLayout(subarrays_per_bank=4, rows_per_subarray=32)
ADDR = BankAddress(0, 0, 0)


def make(hcnt=16, radius=3, record_all=False):
    return DisturbanceModel(
        HammerConfig(hcnt=hcnt, blast_radius=radius, layout=LAYOUT),
        record_all_flips=record_all)


class TestBlastWeights:
    def test_weights_halve_with_distance(self):
        assert blast_weight(1) == 1.0
        assert blast_weight(2) == 0.5
        assert blast_weight(3) == 0.25
        with pytest.raises(ValueError):
            blast_weight(0)

    def test_wsum_default_matches_paper(self):
        # Appendix XI: W_sum = 3.5 for the default radius of 3.
        assert blast_weight_sum(3) == 3.5
        assert blast_weight_sum(1) == 2.0
        assert blast_weight_sum(0) == 0.0

    @given(st.integers(min_value=1, max_value=16))
    @settings(max_examples=16)
    def test_wsum_is_cumulative(self, radius):
        expected = 2 * sum(blast_weight(d) for d in range(1, radius + 1))
        assert blast_weight_sum(radius) == pytest.approx(expected)


class TestAccumulation:
    def test_neighbours_charge_by_distance(self):
        model = make(radius=3)
        model.on_activate(ADDR, 10, cycle=0)
        assert model.disturbance(ADDR, 11) == 1.0
        assert model.disturbance(ADDR, 12) == 0.5
        assert model.disturbance(ADDR, 13) == 0.25
        assert model.disturbance(ADDR, 14) == 0.0
        assert model.disturbance(ADDR, 9) == 1.0

    def test_aggressor_self_restores(self):
        model = make()
        model.on_activate(ADDR, 10, cycle=0)
        model.on_activate(ADDR, 12, cycle=1)   # charges row 10 (d=2)
        model.on_activate(ADDR, 10, cycle=2)   # re-activating resets row 10
        assert model.disturbance(ADDR, 10) == 0.0

    def test_no_cross_subarray_disturbance(self):
        model = make(radius=3)
        # Last row of subarray 0 (DA 32 with 33 slots... row 32 is the
        # empty slot; ordinary last row is DA 31).
        edge = 32   # the empty-row slot, last DA of subarray 0
        model.on_activate(ADDR, edge, cycle=0)
        # DA 33 belongs to subarray 1: must be untouched.
        assert model.disturbance(ADDR, 33) == 0.0
        assert model.disturbance(ADDR, 31) == 1.0

    def test_flip_at_threshold(self):
        model = make(hcnt=5, radius=1)
        for i in range(5):
            model.on_activate(ADDR, 10, cycle=i)
        assert model.flipped
        flip = model.first_flip()
        assert isinstance(flip, BitFlip)
        assert flip.da_row in (9, 11)
        assert flip.disturbance >= 5

    def test_flip_requires_weighted_threshold_at_distance(self):
        model = make(hcnt=4, radius=2)
        # Hammering at distance 2 contributes 0.5 per ACT: needs 8 ACTs.
        for i in range(7):
            model.on_activate(ADDR, 10, cycle=i)
        assert model.disturbance(ADDR, 12) == 3.5
        model.on_activate(ADDR, 10, cycle=7)
        assert any(f.da_row == 12 for f in model.flips) or \
            any(f.da_row in (9, 11) for f in model.flips)

    def test_duplicate_flips_deduplicated(self):
        model = make(hcnt=3, radius=1)
        for i in range(10):
            model.on_activate(ADDR, 10, cycle=i)
        rows = [f.da_row for f in model.flips]
        assert len(rows) == len(set(rows))

    def test_record_all_flips(self):
        model = make(hcnt=3, radius=1, record_all=True)
        for i in range(6):
            model.on_activate(ADDR, 10, cycle=i)
        rows = [f.da_row for f in model.flips]
        assert len(rows) > len(set(rows))


class TestResets:
    def test_row_refresh_resets(self):
        model = make(hcnt=100)
        for i in range(10):
            model.on_activate(ADDR, 10, cycle=i)
        model.on_row_refresh(ADDR, 11, cycle=10)
        assert model.disturbance(ADDR, 11) == 0.0
        assert model.disturbance(ADDR, 9) > 0.0

    def test_refresh_range_resets_with_wrap(self):
        model = make(hcnt=100)
        rows = LAYOUT.da_rows_per_bank
        model.on_activate(ADDR, 10, cycle=0)
        model.on_activate(ADDR, 2, cycle=1)
        # A wrapping range [rows - 1, rows + 4) covers rows 0..3.
        model.on_refresh_range(ADDR, rows - 1, rows + 4, cycle=2)
        assert model.disturbance(ADDR, 1) == 0.0
        assert model.disturbance(ADDR, 3) == 0.0
        assert model.disturbance(ADDR, 11) == 1.0

    def test_row_copy_resets_both(self):
        model = make(hcnt=100)
        model.on_activate(ADDR, 10, cycle=0)
        model.on_row_copy(ADDR, 9, 11, cycle=1)
        assert model.disturbance(ADDR, 9) == 0.0
        assert model.disturbance(ADDR, 11) == 0.0

    def test_reset_clears_everything(self):
        model = make(hcnt=2, radius=1)
        for i in range(5):
            model.on_activate(ADDR, 10, cycle=i)
        assert model.flipped
        model.reset()
        assert not model.flipped
        assert model.total_acts == 0
        assert model.max_disturbance() == 0.0


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            HammerConfig(hcnt=0)
        with pytest.raises(ValueError):
            HammerConfig(hcnt=10, blast_radius=-1)


class TestIncrementalRefreshSweep:
    """Regression: a REF-by-REF sweep must reset every DA it covers.

    The controller refreshes each bank in consecutive ``[lo, hi)``
    windows (wrapping modulo the bank); after one full pass every
    accumulated counter must be gone.  Runs against both the base model
    and the FaultInjector subclass, whose on_refresh_range inlines the
    sweep for speed -- exactly the kind of duplication this pins.
    """

    def _models(self, hcnt=10**6):
        from repro.faults.inject import FaultInjector
        config = HammerConfig(hcnt=hcnt, blast_radius=3, layout=LAYOUT)
        return [DisturbanceModel(config), FaultInjector(config)]

    def test_swept_das_reset_unswept_keep_accumulating(self):
        for model in self._models():
            for i in range(8):
                model.on_activate(ADDR, 10, cycle=i)   # victims 7..13
            model.on_refresh_range(ADDR, 7, 11, cycle=8)
            for row in (7, 8, 9, 10):
                assert model.disturbance(ADDR, row) == 0.0
            for row in (11, 12, 13):
                assert model.disturbance(ADDR, row) > 0.0

    def test_full_incremental_pass_clears_the_bank(self):
        rows = LAYOUT.da_rows_per_bank
        window = 16
        for model in self._models():
            for i in range(8):
                model.on_activate(ADDR, 10, cycle=i)
                model.on_activate(ADDR, 40, cycle=i)
            assert model.max_disturbance() > 0.0
            # One tREFW worth of REFs: consecutive wrapping windows.
            lo = rows - 5                 # start mid-wrap on purpose
            for _ in range((rows + window - 1) // window + 1):
                model.on_refresh_range(ADDR, lo, lo + window, cycle=9)
                lo = (lo + window) % rows
            assert model.max_disturbance() == 0.0

    def test_sweep_only_touches_the_named_bank(self):
        other = BankAddress(0, 0, 1)
        for model in self._models():
            model.on_activate(ADDR, 10, cycle=0)
            model.on_activate(other, 10, cycle=0)
            model.on_refresh_range(ADDR, 0, LAYOUT.da_rows_per_bank,
                                   cycle=1)
            assert model.disturbance(ADDR, 11) == 0.0
            assert model.disturbance(other, 11) == 1.0
