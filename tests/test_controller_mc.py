"""Memory controller integration: scheduling, refresh, RFM, mitigation hooks."""


from repro.controller.address import MemoryLocation
from repro.controller.mc import McConfig, MemoryController
from repro.controller.request import MemoryRequest
from repro.core import Shadow, ShadowConfig
from repro.dram.device import BankAddress, DramDevice, DramGeometry
from repro.dram.subarray import SubarrayLayout
from repro.dram.timing import DDR4_2666
from repro.mitigations import NoMitigation
from repro.rowhammer import DisturbanceModel, HammerConfig

T = DDR4_2666
SMALL = DramGeometry(
    channels=1, ranks_per_channel=1, banks_per_rank=2,
    layout=SubarrayLayout(subarrays_per_bank=4, rows_per_subarray=64),
    columns_per_row=32,
)


def make_mc(mitigation=None, observer=None, geometry=SMALL,
            refresh=True):
    device = DramDevice(geometry, T)
    mc = MemoryController(
        device, mitigation or NoMitigation(), observer=observer,
        config=McConfig(enable_refresh=refresh))
    return device, mc


def req(row, col=0, bank=0, write=False, arrival=0, thread=0):
    return MemoryRequest(
        location=MemoryLocation(0, 0, bank, row, col),
        is_write=write, thread_id=thread, arrival=arrival)


def run_to_completion(mc, horizon=5_000_000):
    """Drive channel 0 until all queues drain; returns completions."""
    done = []
    cycle = 0
    while mc.pending_requests() and cycle < horizon:
        completions, wake = mc.drain(0, cycle)
        done.extend(completions)
        if mc.pending_requests() == 0:
            break
        if wake is None or wake <= cycle:
            cycle += 1
        else:
            cycle = wake
    assert mc.pending_requests() == 0, "requests stuck in the queues"
    return done


class TestBasicScheduling:
    def test_single_read_latency(self):
        device, mc = make_mc(refresh=False)
        r = req(row=5)
        mc.enqueue(r)
        done = run_to_completion(mc)
        assert len(done) == 1
        # ACT at 0, RD at tRCD, data at tRCD + tCL + tBL.
        assert r.completed == T.tRCD + T.tCL + T.tBL

    def test_row_hit_is_faster_than_conflict(self):
        device, mc = make_mc(refresh=False)
        a, b = req(row=5, col=0), req(row=5, col=1, arrival=1)
        mc.enqueue(a)
        mc.enqueue(b)
        run_to_completion(mc)
        hit_delta = b.completed - a.completed

        device2, mc2 = make_mc(refresh=False)
        c, d = req(row=5), req(row=9, arrival=1)
        mc2.enqueue(c)
        mc2.enqueue(d)
        run_to_completion(mc2)
        conflict_delta = d.completed - c.completed
        assert hit_delta == T.tCCD_L
        assert conflict_delta > hit_delta

    def test_fr_fcfs_prefers_row_hits(self):
        device, mc = make_mc(refresh=False)
        first = req(row=1, col=0, arrival=0)
        conflicting = req(row=2, col=0, arrival=1)
        hit = req(row=1, col=1, arrival=2)
        for r in (first, conflicting, hit):
            mc.enqueue(r)
        run_to_completion(mc)
        # The younger row-hit overtakes the older conflicting request.
        assert hit.completed < conflicting.completed

    def test_banks_overlap(self):
        device, mc = make_mc(refresh=False)
        a = req(row=1, bank=0)
        b = req(row=1, bank=1)
        mc.enqueue(a)
        mc.enqueue(b)
        run_to_completion(mc)
        # Second bank pays only the ACT-to-ACT rank spacing plus bus.
        assert b.completed - a.completed < T.tRC

    def test_writes_complete(self):
        device, mc = make_mc(refresh=False)
        w = req(row=3, write=True)
        mc.enqueue(w)
        done = run_to_completion(mc)
        assert done[0][0] is w
        assert w.completed == T.tCWL + T.tBL + T.tRCD

    def test_stats_counted(self):
        device, mc = make_mc(refresh=False)
        for i in range(4):
            mc.enqueue(req(row=1, col=i))
        run_to_completion(mc)
        stats = device.aggregate_stats()
        assert stats.acts == 1
        assert stats.reads == 4


class TestRefresh:
    def test_refresh_issues_on_schedule(self):
        device, mc = make_mc()
        # Idle drain past several tREFI.
        cycle = 0
        for _ in range(5):
            _, wake = mc.drain(0, cycle)
            assert wake is not None
            cycle = wake
            mc.drain(0, cycle)
        tracker = mc.refresh[(0, 0)]
        assert tracker.refs_issued >= 4
        assert device.aggregate_stats().refreshes >= 4 * SMALL.banks_per_rank

    def test_refresh_blocks_demand(self):
        device, mc = make_mc()
        # A request arriving exactly at tREFI waits for the refresh.
        r = req(row=0, arrival=T.tREFI)
        mc.enqueue(r)
        cycle = T.tREFI
        done = []
        while not done:
            completions, wake = mc.drain(0, cycle)
            done.extend(completions)
            cycle = wake if wake and wake > cycle else cycle + 1
        assert r.issued >= T.tREFI + T.tRFC

    def test_refresh_observer_notified(self):
        class Spy:
            ranges = []

            def on_activate(self, *a):
                pass

            def on_refresh_range(self, addr, lo, hi, cycle):
                Spy.ranges.append((addr, lo, hi))

            def on_row_refresh(self, *a):
                pass

            def on_row_copy(self, *a):
                pass

        Spy.ranges = []
        device, mc = make_mc(observer=Spy())
        mc.drain(0, T.tREFI)
        mc.drain(0, T.tREFI + T.tRFC)
        assert Spy.ranges
        lo, hi = Spy.ranges[0][1], Spy.ranges[0][2]
        assert hi > lo


class TestRfmFlow:
    def make_shadow_mc(self, raaimt=8):
        shadow = Shadow(ShadowConfig(raaimt=raaimt, rng_kind="system"))
        hammer = DisturbanceModel(
            HammerConfig(hcnt=10_000, layout=SMALL.layout))
        device, mc = make_mc(mitigation=shadow, observer=hammer,
                             refresh=False)
        return device, mc, shadow, hammer

    def test_rfm_fires_at_raaimt(self):
        device, mc, shadow, _ = self.make_shadow_mc(raaimt=8)
        # 8 ACTs to distinct rows in bank 0 -> one RFM.
        for i in range(8):
            mc.enqueue(req(row=i * 2))
        run_to_completion(mc)
        assert device.aggregate_stats().rfms == 1
        assert shadow.total_shuffles() == 1

    def test_rfm_blocks_bank_for_trfm(self):
        device, mc, shadow, _ = self.make_shadow_mc(raaimt=4)
        for i in range(4):
            mc.enqueue(req(row=i * 2))
        run_to_completion(mc)
        bank = device.bank(BankAddress(0, 0, 0))
        t_rfm_done = bank.busy_until
        late = req(row=40)
        mc.enqueue(late)
        run_to_completion(mc)
        assert late.issued >= t_rfm_done

    def test_shadow_translation_consistent_after_shuffles(self):
        device, mc, shadow, _ = self.make_shadow_mc(raaimt=4)
        for i in range(32):
            mc.enqueue(req(row=i % 8, arrival=i))
        run_to_completion(mc)
        shadow.check_invariants()
        addr = BankAddress(0, 0, 0)
        # Translation is still a bijection over each subarray.
        seen = set()
        for pa in range(SMALL.layout.rows_per_subarray):
            da = shadow.translate(addr, pa)
            assert da not in seen
            seen.add(da)

    def test_shadow_act_latency_charged(self):
        device, mc, shadow, _ = self.make_shadow_mc()
        r = req(row=5)
        mc.enqueue(r)
        run_to_completion(mc)
        assert r.completed == T.tRCD + shadow.act_extra_cycles + T.tCL + T.tBL


class TestHammerObservation:
    def test_activations_charge_neighbours(self):
        hammer = DisturbanceModel(HammerConfig(hcnt=50, layout=SMALL.layout))
        device, mc = make_mc(observer=hammer, refresh=False)
        # Alternate two conflicting rows so every access is an ACT.
        for i in range(30):
            mc.enqueue(req(row=10 if i % 2 else 20, arrival=i))
        run_to_completion(mc)
        addr = BankAddress(0, 0, 0)
        da = SMALL.layout.identity_da(10)
        assert hammer.disturbance(addr, da + 1) > 0

    def test_flip_detected_without_mitigation(self):
        hammer = DisturbanceModel(HammerConfig(hcnt=20, blast_radius=1,
                                               layout=SMALL.layout))
        device, mc = make_mc(observer=hammer, refresh=False)
        # Serialize the requests (enqueue-drain-enqueue) so FR-FCFS cannot
        # batch the row hits: every access becomes an ACT, the classic
        # double-sided pattern around row 11.
        for i in range(50):
            mc.enqueue(req(row=10 if i % 2 else 12, arrival=i))
            run_to_completion(mc)
        assert hammer.flipped
        flip = hammer.first_flip()
        assert flip.da_row == SMALL.layout.identity_da(11)
