"""Bank timing state machine: protocol legality and constraint arithmetic."""

import pytest

from repro.dram.bank import Bank
from repro.dram.commands import CommandType
from repro.dram.timing import DDR4_2666

T = DDR4_2666


def make_bank():
    return Bank(T)


class TestActivate:
    def test_act_opens_row_and_sets_constraints(self):
        bank = make_bank()
        bank.issue_act(row=42, cycle=0)
        assert bank.open_row == 42
        assert bank.next_rd == T.tRCD
        assert bank.next_pre == T.tRAS
        assert bank.next_act == T.tRC

    def test_act_to_open_bank_rejected(self):
        bank = make_bank()
        bank.issue_act(5, 0)
        with pytest.raises(RuntimeError):
            bank.issue_act(6, T.tRC + 10)

    def test_act_extra_latency_shifts_everything(self):
        bank = make_bank()
        extra = 6  # SHADOW's tRD_RM at DDR4-2666 (4 ns -> 6 cycles)
        bank.issue_act(row=1, cycle=100, extra_latency=extra)
        assert bank.next_rd == 100 + T.tRCD + extra
        assert bank.next_pre == 100 + T.tRAS + extra
        assert bank.stats.extra_act_cycles == extra

    def test_act_before_trp_rejected(self):
        bank = make_bank()
        bank.issue_act(1, 0)
        bank.issue_pre(T.tRAS)
        with pytest.raises(RuntimeError):
            bank.issue_act(2, T.tRAS + T.tRP - 1)
        bank.issue_act(2, T.tRAS + T.tRP)


class TestReadWrite:
    def test_read_returns_data_completion(self):
        bank = make_bank()
        bank.issue_act(7, 0)
        done = bank.issue_rd(T.tRCD)
        assert done == T.tRCD + T.tCL + T.tBL

    def test_read_before_trcd_rejected(self):
        bank = make_bank()
        bank.issue_act(7, 0)
        with pytest.raises(RuntimeError):
            bank.issue_rd(T.tRCD - 1)

    def test_read_to_closed_bank_rejected(self):
        bank = make_bank()
        with pytest.raises(RuntimeError):
            bank.issue_rd(100)

    def test_back_to_back_reads_spaced_by_tccd(self):
        bank = make_bank()
        bank.issue_act(7, 0)
        bank.issue_rd(T.tRCD)
        with pytest.raises(RuntimeError):
            bank.issue_rd(T.tRCD + T.tCCD_L - 1)
        bank.issue_rd(T.tRCD + T.tCCD_L)

    def test_write_pushes_out_precharge(self):
        bank = make_bank()
        bank.issue_act(7, 0)
        t_wr = T.tRCD
        bank.issue_wr(t_wr)
        assert bank.next_pre >= t_wr + T.tCWL + T.tBL + T.tWR

    def test_read_extends_pre_by_trtp(self):
        bank = make_bank()
        bank.issue_act(7, 0)
        t_rd = T.tRAS  # read late, near the end of tRAS
        bank.issue_rd(t_rd)
        assert bank.next_pre >= t_rd + T.tRTP


class TestRefreshAndRfm:
    def test_ref_blocks_bank_for_trfc(self):
        bank = make_bank()
        done = bank.issue_ref(0)
        assert done == T.tRFC
        with pytest.raises(RuntimeError):
            bank.issue_act(1, T.tRFC - 1)
        bank.issue_act(1, T.tRFC)

    def test_ref_requires_precharged_bank(self):
        bank = make_bank()
        bank.issue_act(1, 0)
        with pytest.raises(RuntimeError):
            bank.issue_ref(T.tRCD)

    def test_rfm_blocks_for_trfm_by_default(self):
        bank = make_bank()
        done = bank.issue_rfm(10)
        assert done == 10 + T.tRFM
        assert bank.stats.rfms == 1

    def test_rfm_custom_duration(self):
        bank = make_bank()
        done = bank.issue_rfm(0, duration=250)
        assert done == 250
        with pytest.raises(RuntimeError):
            bank.issue_act(1, 249)

    def test_block_until(self):
        bank = make_bank()
        bank.block_until(500)
        assert bank.earliest_issue(CommandType.ACT, 0) == 500


class TestEarliestIssue:
    def test_earliest_issue_matches_legality(self):
        bank = make_bank()
        bank.issue_act(3, 0)
        t = bank.earliest_issue(CommandType.PRE, 0)
        assert t == T.tRAS
        bank.issue_pre(t)
        t2 = bank.earliest_issue(CommandType.ACT, 0)
        bank.issue_act(4, t2)

    def test_unsupported_command_rejected(self):
        bank = make_bank()
        with pytest.raises(ValueError):
            bank.earliest_issue("NOP", 0)  # type: ignore[arg-type]


class TestStats:
    def test_counters_accumulate(self):
        bank = make_bank()
        bank.issue_act(1, 0)
        bank.issue_rd(T.tRCD)
        bank.issue_pre(bank.next_pre)
        bank.issue_ref(bank.next_act)
        assert bank.stats.acts == 1
        assert bank.stats.reads == 1
        assert bank.stats.precharges == 1
        assert bank.stats.refreshes == 1

    def test_merge(self):
        a, b = make_bank(), make_bank()
        a.issue_act(1, 0)
        b.issue_act(2, 0)
        a.stats.merge(b.stats)
        assert a.stats.acts == 2
